"""Cooperative cancellation tokens for long-running solves.

A solve that takes minutes cannot be aborted safely at an arbitrary
instruction — half-updated velocity fields and torn plan-pool entries are
worse than a finished solve nobody wants.  Instead the solvers poll a
:class:`CancelToken` at their *safe points*: the Gauss-Newton and
gradient-descent drivers check between outer iterations, and the
distributed transport solver checks between semi-Lagrangian time steps.
When the token is set, the solver raises :class:`SolveCancelled` from the
safe point; the caller (the job service) turns that into a ``CANCELLED``
job record rather than a failure.

Tokens are plain ``threading.Event`` wrappers: setting one is lock-free
from the canceller's perspective and polling one is a single attribute
read, so the per-iteration cost is negligible next to a Newton step.

:class:`CombinedCancelToken` models the micro-batcher's semantics: a
merged transport batch runs ``B`` jobs through one solve, so the *solve*
may only be abandoned once **every** rider asked for cancellation —
cancelling one peer must not kill the others' work.  Individual riders
that cancelled are marked ``CANCELLED`` by the service after the shared
solve finishes.

Stdlib-only and dependency-free so every layer (core optimizers, parallel
transport, the service) can import it without cycles.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

__all__ = ["CancelToken", "CombinedCancelToken", "SolveCancelled", "check_cancelled"]


class SolveCancelled(Exception):
    """Raised from a solver's safe point after its cancel token was set.

    Deliberately *not* a ``RuntimeError``: broad ``except Exception``
    failure-isolation in the service handles it before the generic
    worker-error path, and callers that did not pass a token can never
    see it.
    """


class CancelToken:
    """One-way cancellation flag polled by solvers at safe points."""

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent, thread-safe)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` was called."""
        return self._event.is_set()

    def raise_if_cancelled(self, what: str = "solve") -> None:
        """Raise :class:`SolveCancelled` when the token is set."""
        if self._event.is_set():
            raise SolveCancelled(f"{what} cancelled cooperatively")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CancelToken(cancelled={self.cancelled})"


class CombinedCancelToken:
    """Cancelled only when *every* member token is cancelled.

    The micro-batched solve's token: one rider bailing out must not
    abandon its peers' work, but once all riders cancelled there is
    nobody left to pay for the remaining time steps.
    """

    __slots__ = ("_tokens",)

    def __init__(self, tokens: Sequence[CancelToken]) -> None:
        self._tokens = [token for token in tokens if token is not None]

    @property
    def cancelled(self) -> bool:
        return bool(self._tokens) and all(token.cancelled for token in self._tokens)

    def raise_if_cancelled(self, what: str = "solve") -> None:
        if self.cancelled:
            raise SolveCancelled(f"{what} cancelled cooperatively")


def check_cancelled(token: Optional[object], what: str = "solve") -> None:
    """Poll *token* (any object with ``raise_if_cancelled``); ``None`` is a no-op."""
    if token is not None:
        token.raise_if_cancelled(what)
