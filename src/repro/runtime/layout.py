"""Budget-aware stencil-plan layout policy (``REPRO_PLAN_LAYOUT=auto``).

PR 3 introduced the memory-lean stencil layout, PR 4 the chunk-resident
streaming layout, and both left the *choice* to the user: a 512^3 run that
forgot ``--plan-layout streaming`` would happily try to materialize a
4.8 GB lean stencil.  The accounting needed to make that choice
automatically has existed since PR 3 — every layout's projected ``nbytes``
is computable from the point count alone, and the plan pool knows its byte
budget — so this module turns it into a policy:

* ``auto`` (the default since PR 5) projects the lean layout's bytes for
  the plan about to be built and picks **streaming** when they exceed a
  configured fraction of the pool budget (``REPRO_PLAN_AUTO_FRACTION``,
  default 0.5), **lean** otherwise.  Laptop-scale grids keep the faster
  lean plans; out-of-core grids degrade to the chunk-resident layout
  instead of exhausting memory.
* Explicit values (``lean``/``fat``/``streaming`` via the environment, the
  CLI flag or a ``build_stencil_plan`` argument) opt out entirely — the
  policy never overrides a human.
* Every decision is recorded in a process-wide :class:`LayoutDecisionLog`
  (counts per chosen layout + the most recent decisions with their
  inputs), surfaced next to the plan-pool statistics in the verbose CLI.

The module is deliberately free of imports from :mod:`repro.transport` —
the kernel layer calls *into* the policy with projected byte counts, so
the policy stays reusable for future plan kinds (GPU tiles, distributed
blocks) that budget different byte streams.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from repro.observability.metrics import get_metrics_registry

#: Environment variable with the auto-layout threshold: ``auto`` picks the
#: streaming layout when the projected lean-plan bytes exceed this fraction
#: of the plan-pool budget.
AUTO_FRACTION_ENV_VAR = "REPRO_PLAN_AUTO_FRACTION"

#: Default threshold fraction.  One transport plan needs a forward and a
#: backward stencil, so a single plan projected at more than half the pool
#: budget could never hold a warm pair — the point where streaming's
#: chunk-resident layout wins.
DEFAULT_AUTO_FRACTION = 0.5

_process_auto_fraction: Optional[float] = None


def set_auto_fraction(fraction: Optional[float]) -> None:
    """Set the process-wide auto-layout threshold fraction.

    The programmatic twin of ``REPRO_PLAN_AUTO_FRACTION`` (the
    :class:`repro.config.RegistrationConfig` path); ``None`` clears a
    previous override, falling back to the environment / built-in default.
    The environment is never mutated.
    """
    global _process_auto_fraction
    if fraction is None:
        _process_auto_fraction = None
        return
    fraction = float(fraction)
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"auto fraction must lie in (0, 1], got {fraction}")
    _process_auto_fraction = fraction


def auto_streaming_fraction() -> float:
    """Active auto-layout threshold fraction.

    Resolution order: process-wide override (:func:`set_auto_fraction`),
    then ``REPRO_PLAN_AUTO_FRACTION``, then the default.
    """
    if _process_auto_fraction is not None:
        return _process_auto_fraction
    value = os.environ.get(AUTO_FRACTION_ENV_VAR, "").strip()
    if not value:
        return DEFAULT_AUTO_FRACTION
    try:
        fraction = float(value)
    except ValueError as exc:
        raise ValueError(
            f"{AUTO_FRACTION_ENV_VAR} must be a number in (0, 1], got {value!r}"
        ) from exc
    if not 0.0 < fraction <= 1.0:
        raise ValueError(
            f"{AUTO_FRACTION_ENV_VAR} must lie in (0, 1], got {fraction}"
        )
    return fraction


@dataclass(frozen=True)
class LayoutDecision:
    """One auto-layout decision with the inputs that produced it."""

    layout: str
    num_points: int
    projected_lean_bytes: int
    budget_bytes: int
    fraction: float
    reason: str


class LayoutDecisionLog:
    """Process-wide record of auto-layout decisions (counts + recent ones).

    The log only ever sees *auto* decisions — explicit layout choices never
    reach the policy — so its counts answer "what did ``auto`` actually do
    this run", next to the plan pool's hit/miss statistics.
    """

    def __init__(self, recent: int = 8) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        self._recent: Deque[LayoutDecision] = deque(maxlen=recent)

    def record(self, decision: LayoutDecision) -> None:
        with self._lock:
            self._counts[decision.layout] = self._counts.get(decision.layout, 0) + 1
            self._recent.append(decision)

    @property
    def total(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def counts(self) -> Dict[str, int]:
        """Decisions per chosen layout, e.g. ``{"lean": 4, "streaming": 2}``."""
        with self._lock:
            return dict(sorted(self._counts.items()))

    def recent(self) -> Tuple[LayoutDecision, ...]:
        """The most recent decisions, oldest first."""
        with self._lock:
            return tuple(self._recent)

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self._recent.clear()


_decision_log = LayoutDecisionLog()


def layout_decision_log() -> LayoutDecisionLog:
    """The shared process-wide auto-layout decision log."""
    return _decision_log


def _collect_layout_metrics() -> Dict[str, Dict[str, int]]:
    """Pull collector publishing auto-layout decision counts to the registry."""
    counts = _decision_log.counts()
    if not counts:
        return {}
    return {
        "layout.decisions": {
            f"layout={layout}": count for layout, count in counts.items()
        }
    }


get_metrics_registry().register_collector("layout_decisions", _collect_layout_metrics)


def select_layout(
    num_points: int,
    projected_lean_bytes: int,
    budget_bytes: int,
    fraction: Optional[float] = None,
    record: bool = True,
) -> LayoutDecision:
    """Pick a concrete stencil layout for one plan under the ``auto`` policy.

    Parameters
    ----------
    num_points:
        Point count of the plan about to be built (diagnostic only).
    projected_lean_bytes:
        The lean layout's projected payload for that plan (the kernel layer
        computes this exactly; see
        :func:`repro.transport.kernels.projected_stencil_nbytes`).
    budget_bytes:
        The plan pool's byte budget.  ``0`` (pool disabled) means there is
        no byte budget to respect, so the faster lean layout is kept.
    fraction:
        Threshold fraction; ``None`` resolves ``REPRO_PLAN_AUTO_FRACTION``.
    record:
        Record the decision in the shared :func:`layout_decision_log`
        (pass ``False`` for purely diagnostic what-if queries so they never
        skew the log of decisions that actually shaped a plan).

    Returns
    -------
    LayoutDecision
        The chosen layout plus the decision inputs.
    """
    if fraction is None:
        fraction = auto_streaming_fraction()
    if budget_bytes <= 0:
        layout = "lean"
        reason = "plan pool disabled (budget 0); no byte budget to respect"
    elif projected_lean_bytes > fraction * budget_bytes:
        layout = "streaming"
        reason = (
            f"projected lean bytes ({projected_lean_bytes}) exceed "
            f"{fraction:g} x pool budget ({budget_bytes})"
        )
    else:
        layout = "lean"
        reason = (
            f"projected lean bytes ({projected_lean_bytes}) fit within "
            f"{fraction:g} x pool budget ({budget_bytes})"
        )
    decision = LayoutDecision(
        layout=layout,
        num_points=int(num_points),
        projected_lean_bytes=int(projected_lean_bytes),
        budget_bytes=int(budget_bytes),
        fraction=float(fraction),
        reason=reason,
    )
    if record:
        _decision_log.record(decision)
    return decision
