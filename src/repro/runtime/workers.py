"""Unified worker-pool manager for every threaded kernel.

PR 1 introduced ``REPRO_FFT_WORKERS`` for the threaded FFT engines; the
interpolation subsystem of PR 2 stayed single-threaded and every registry
managed its own threading ad hoc.  This module turns the pattern into one
process-wide resource policy:

* ``REPRO_WORKERS`` sets the shared default worker count of *every*
  subsystem (the paper's "one MPI task per core" analogue for the threaded
  single-node path).
* ``REPRO_FFT_WORKERS`` / ``REPRO_INTERP_WORKERS`` override it per
  subsystem, exactly as before (the FFT variable keeps its PR-1 semantics).
* :func:`set_default_workers` is the programmatic/CLI (``--workers``)
  equivalent of ``REPRO_WORKERS``; explicit per-call arguments (e.g.
  ``ScipyFFTBackend(workers=4)``) still win over everything.

Resolution precedence, first match wins::

    explicit argument > per-subsystem env > set_default_workers()
        > REPRO_WORKERS > subsystem default

The subsystem defaults differ deliberately: FFT engines thread inside one
C call and default to all cores (unchanged from PR 1); the stencil executor
threads at the Python level over point chunks and defaults to ``1`` so the
serial path stays bit-for-bit the PR-2 implementation unless the user opts
in.  Thread pools are shared per size (:func:`get_executor`), so the FFT
and interpolation subsystems never oversubscribe the machine with separate
pools of the same width.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Optional

#: Environment variable with the shared default worker count of every
#: subsystem (overridden per subsystem by the variables below).
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Per-subsystem override for the threaded FFT backends (PR-1 semantics).
FFT_WORKERS_ENV_VAR = "REPRO_FFT_WORKERS"

#: Per-subsystem override for the thread-pooled stencil executor.
INTERP_WORKERS_ENV_VAR = "REPRO_INTERP_WORKERS"

#: Per-subsystem override for the registration service's job workers.
SERVICE_WORKERS_ENV_VAR = "REPRO_SERVICE_WORKERS"

#: Per-subsystem override for the out-of-core tile prefetch I/O workers.
IO_WORKERS_ENV_VAR = "REPRO_IO_WORKERS"


def _all_cores() -> int:
    return max(1, os.cpu_count() or 1)


def _one() -> int:
    return 1


@dataclass(frozen=True)
class SubsystemPolicy:
    """Environment variable and fallback default of one subsystem."""

    env_var: str
    default: Callable[[], int]


#: Known subsystems; future engines (GPU streams, distributed launchers)
#: register here by adding a policy.
SUBSYSTEMS: Dict[str, SubsystemPolicy] = {
    "fft": SubsystemPolicy(FFT_WORKERS_ENV_VAR, _all_cores),
    "interp": SubsystemPolicy(INTERP_WORKERS_ENV_VAR, _one),
    # job-level fan-out of repro.service: every worker drives whole solves,
    # so the default is one worker per core (the per-kernel subsystems
    # above still bound the threading *inside* each solve)
    "service": SubsystemPolicy(SERVICE_WORKERS_ENV_VAR, _all_cores),
    # tile prefetch of the out-of-core field sources: one background loader
    # overlaps the next chunk's disk read with the current chunk's gather;
    # more only help when the storage itself is parallel
    "io": SubsystemPolicy(IO_WORKERS_ENV_VAR, _one),
}

_default_workers: Optional[int] = None
_executors: Dict[int, ThreadPoolExecutor] = {}
_subsystem_executors: Dict[str, ThreadPoolExecutor] = {}
_lock = threading.Lock()


def set_default_workers(workers: Optional[int]) -> None:
    """Set (or clear, with ``None``) the process-wide default worker count.

    The programmatic twin of ``REPRO_WORKERS`` used by the CLI ``--workers``
    flag; per-subsystem environment variables still override it.
    """
    global _default_workers
    if workers is None:
        _default_workers = None
        return
    _default_workers = max(1, int(workers))


def _env_int(name: str) -> Optional[int]:
    value = os.environ.get(name, "").strip()
    if not value:
        return None
    try:
        return max(1, int(value))
    except ValueError as exc:
        raise ValueError(f"{name} must be an integer worker count, got {value!r}") from exc


def resolve_workers(subsystem: str, explicit: Optional[int] = None) -> int:
    """Resolve the worker count of *subsystem* under the unified policy."""
    try:
        policy = SUBSYSTEMS[subsystem]
    except KeyError as exc:
        raise ValueError(
            f"unknown worker subsystem {subsystem!r}; known: {tuple(sorted(SUBSYSTEMS))}"
        ) from exc
    if explicit is not None:
        return max(1, int(explicit))
    for resolved in (_env_int(policy.env_var), _default_workers, _env_int(WORKERS_ENV_VAR)):
        if resolved is not None:
            return resolved
    return policy.default()


def get_executor(workers: int) -> ThreadPoolExecutor:
    """Shared :class:`ThreadPoolExecutor` of the given width (process-wide).

    Pools are created lazily and kept for the process lifetime, so repeated
    kernel launches never pay thread start-up costs (the "pooled context"
    of the FFT backends, generalized).
    """
    workers = max(1, int(workers))
    with _lock:
        executor = _executors.get(workers)
        if executor is None:
            executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=f"repro-runtime-{workers}"
            )
            _executors[workers] = executor
        return executor


def get_subsystem_executor(subsystem: str, workers: Optional[int] = None) -> ThreadPoolExecutor:
    """A *dedicated* shared executor owned by one subsystem.

    Unlike :func:`get_executor` — which shares pools by width across
    subsystems — this keeps one pool per subsystem name, resolved once
    under the unified policy on first use.  The tile prefetcher needs this
    separation: its I/O futures must never queue behind the interpolation
    chunk tasks of the very gather that is waiting for them (a shared
    width-1 pool would deadlock).
    """
    if subsystem not in SUBSYSTEMS:
        raise ValueError(
            f"unknown worker subsystem {subsystem!r}; known: {tuple(sorted(SUBSYSTEMS))}"
        )
    with _lock:
        executor = _subsystem_executors.get(subsystem)
        if executor is None:
            width = resolve_workers(subsystem, workers)
            executor = ThreadPoolExecutor(
                max_workers=width, thread_name_prefix=f"repro-{subsystem}"
            )
            _subsystem_executors[subsystem] = executor
        return executor


def shutdown_executors() -> None:
    """Shut down every shared executor (used by tests)."""
    with _lock:
        for executor in _executors.values():
            executor.shutdown(wait=True)
        for executor in _subsystem_executors.values():
            executor.shutdown(wait=True)
        _executors.clear()
        _subsystem_executors.clear()
