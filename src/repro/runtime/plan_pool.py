"""LRU plan pool with byte-accurate memory accounting.

Semi-Lagrangian gather plans are the largest per-velocity data structures of
the solver (tens to hundreds of MB at production grids), and three call
sites used to rebuild them redundantly: the line search re-plans the
velocity the next ``linearize`` call plans again, ``beta``-continuation
warm-starts each level from a velocity whose plan was just built, and the
distributed scatter path re-planned on every ``interpolate`` call.  This
module centralizes the lifecycle: a process-wide LRU cache keyed by
content (grid, velocity fingerprint, kernel, backend), with

* **byte-accurate accounting** — every entry reports its ``nbytes``
  (the exact array payload), the pool tracks the running total, and
* a **configurable budget** — ``REPRO_PLAN_POOL_BYTES`` or the CLI flag
  ``--plan-pool-bytes``; least-recently-used entries are evicted when an
  insert exceeds it, entries larger than the whole budget are handed to
  the caller but never stored, and a budget of ``0`` disables caching
  entirely (every lookup builds), plus
* **hit/miss/eviction statistics** so solvers, tests and benchmarks can
  observe warm-plan reuse (:class:`PoolStats` supports subtraction for
  per-run deltas), both pool-wide and **per entry kind**
  (:meth:`PlanPool.stats_by_tag`: every key's leading string — e.g.
  ``"semi-lagrangian-departure"`` or ``"scatter-plan"`` — is its tag, so
  the distributed scatter plans are visible in the accounting next to the
  serial gather plans).

Keys are content fingerprints (:func:`array_fingerprint`), never object
identities, so two solves that revisit the same velocity on the same grid
share one plan no matter which solver instance asks.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

import numpy as np

from repro.observability.metrics import get_metrics_registry
from repro.observability.trace import trace_span

#: Environment variable with the pool budget in bytes.
POOL_BYTES_ENV_VAR = "REPRO_PLAN_POOL_BYTES"

#: Default budget (512 MiB): comfortably holds every plan of a laptop-scale
#: run and several warm velocities at 64^3; production 128^3+ runs should
#: size the budget explicitly (see the README's memory table).
DEFAULT_POOL_BYTES = 512 * 2**20


def _env_budget() -> int:
    """Pool budget from ``REPRO_PLAN_POOL_BYTES`` (empty/unset -> default)."""
    value = os.environ.get(POOL_BYTES_ENV_VAR, "").strip()
    if not value:
        return DEFAULT_POOL_BYTES
    try:
        return int(value)
    except ValueError as exc:
        raise ValueError(
            f"{POOL_BYTES_ENV_VAR} must be an integer byte count, got {value!r}"
        ) from exc


def env_pool_budget() -> int:
    """The pool budget ``REPRO_PLAN_POOL_BYTES`` resolves to right now.

    Raises the same :class:`ValueError` as lazy pool creation would on a
    malformed value — entry points call this to fail early and cleanly.
    """
    return _env_budget()


def array_fingerprint(*arrays: np.ndarray) -> str:
    """Content fingerprint (BLAKE2b) of one or more arrays.

    Hashes dtype, shape and raw bytes, so any numerical change — including
    sign flips like the backward stepper's ``-v`` — yields a different key.
    """
    digest = hashlib.blake2b(digest_size=16)
    for array in arrays:
        array = np.ascontiguousarray(array)
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        # hash the array's buffer directly — tobytes() would copy the whole
        # payload (~50 MB per 128^3 velocity) on every pool lookup
        digest.update(array.data)
    return digest.hexdigest()


@dataclass(frozen=True)
class PoolStats:
    """Snapshot of one pool's statistics (supports ``-`` for per-run deltas).

    ``hits``/``misses``/``evictions``/``oversize_rejections`` are cumulative
    *counters*; ``current_bytes``/``peak_bytes``/``entries`` are point-in-time
    *gauges* of the whole pool.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    oversize_rejections: int = 0
    current_bytes: int = 0
    peak_bytes: int = 0
    entries: int = 0

    def __sub__(self, other: "PoolStats") -> "PoolStats":
        """Per-run delta: counters are differenced, gauges are NOT.

        The gauge fields (``current_bytes``, ``peak_bytes``, ``entries``)
        describe the pool's state at the *newer* snapshot — they reflect the
        pool's whole lifetime, not just the run being measured.
        """
        return PoolStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            evictions=self.evictions - other.evictions,
            oversize_rejections=self.oversize_rejections - other.oversize_rejections,
            current_bytes=self.current_bytes,
            peak_bytes=self.peak_bytes,
            entries=self.entries,
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "oversize_rejections": self.oversize_rejections,
            "current_bytes": self.current_bytes,
            "peak_bytes": self.peak_bytes,
            "entries": self.entries,
        }


def key_tag(key: Hashable) -> str:
    """Entry-kind tag of a pool key: its leading string element.

    Every subsystem keys its entries with a tuple whose first element names
    the plan kind (``"semi-lagrangian-departure"``, ``"scatter-plan"``, ...);
    anything else lands in the ``"untagged"`` bucket.
    """
    if isinstance(key, tuple) and key and isinstance(key[0], str):
        return key[0]
    return "untagged"


@dataclass
class _Entry:
    value: Any
    nbytes: int
    tag: str = "untagged"


class _InflightBuild:
    """Hand-off slot of one in-progress plan build (single-flight).

    The first thread to miss a key becomes the *owner* and runs the
    builder; every other thread that asks for the same key while the build
    is in flight waits on :attr:`event` and receives the shared product —
    under the concurrent submitters of the job service, N same-grid
    registrations planning the same (e.g. zero) velocity perform one build
    instead of N redundant ones.
    """

    __slots__ = ("event", "value", "success")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.success = False


@dataclass
class _TagCounters:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    oversize: int = 0
    current_bytes: int = 0
    peak_bytes: int = 0
    entries: int = 0


class PlanPool:
    """LRU cache of execution plans with a byte budget.

    Parameters
    ----------
    max_bytes:
        Storage budget.  ``None`` resolves ``REPRO_PLAN_POOL_BYTES`` (falling
        back to :data:`DEFAULT_POOL_BYTES`); ``0`` disables storage (every
        :meth:`get` builds and returns without caching).
    """

    def __init__(self, max_bytes: Optional[int] = None) -> None:
        if max_bytes is None:
            max_bytes = _env_budget()
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._inflight: Dict[Hashable, _InflightBuild] = {}
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._oversize = 0
        self._current_bytes = 0
        self._peak_bytes = 0
        self._tags: Dict[str, _TagCounters] = {}

    def _tag(self, tag: str) -> _TagCounters:
        """Counters of one entry kind (created on first touch, locked)."""
        counters = self._tags.get(tag)
        if counters is None:
            counters = self._tags[tag] = _TagCounters()
        return counters

    # ------------------------------------------------------------------ #
    # core operations
    # ------------------------------------------------------------------ #
    def _record_hit(self, tag: str) -> None:
        """Count one hit, pool-wide and per tag (caller holds the lock)."""
        self._hits += 1
        self._tag(tag).hits += 1

    def get(
        self,
        key: Hashable,
        builder: Callable[[], Any],
        nbytes: Optional[Callable[[Any], int]] = None,
    ) -> Any:
        """Return the cached value for *key*, building (and storing) on miss.

        Builds are **single-flight**: when several threads miss the same key
        concurrently (the job service's worker fan-out planning one shared
        velocity), exactly one runs the builder — charged the miss — and the
        others wait for the shared product, each charged a *hit* (they
        received a warm plan without building; this also holds when the
        built plan is too large to store).  A failed build releases the
        waiters, which then retry (one of them becomes the next owner).

        Parameters
        ----------
        key:
            Hashable content key (include every input the plan depends on).
        builder:
            Zero-argument callable producing the plan; runs outside the pool
            lock (plan builds are expensive).
        nbytes:
            Size accessor; defaults to the value's ``nbytes`` attribute.
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self._record_hit(entry.tag)
                    return entry.value
                flight = self._inflight.get(key)
                if flight is None:
                    flight = self._inflight[key] = _InflightBuild()
                    self._misses += 1
                    self._tag(key_tag(key)).misses += 1
                    owner = True
                else:
                    owner = False
            if owner:
                try:
                    with trace_span("plan_pool.build", tag=key_tag(key)):
                        value = builder()
                    size = int(nbytes(value) if nbytes is not None else value.nbytes)
                except BaseException:
                    with self._lock:
                        self._inflight.pop(key, None)
                    flight.event.set()
                    raise
                self._store(key, value, size)
                with self._lock:
                    flight.value = value
                    flight.success = True
                    self._inflight.pop(key, None)
                flight.event.set()
                return value
            flight.event.wait()
            if not flight.success:
                continue  # the owner's build failed; retry from scratch
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self._record_hit(entry.tag)
                    return entry.value
                # built but never stored (oversize plan, or already evicted
                # by concurrent inserts): the shared build still served us
                self._record_hit(key_tag(key))
                return flight.value

    def peek(self, key: Hashable) -> Optional[Any]:
        """Return the cached value without recording a hit/miss (tests)."""
        with self._lock:
            entry = self._entries.get(key)
            return None if entry is None else entry.value

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _evict_to_fit(self) -> None:
        """Drop least-recently-used entries until the budget holds (locked)."""
        while self._current_bytes > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._current_bytes -= evicted.nbytes
            self._evictions += 1
            counters = self._tag(evicted.tag)
            counters.evictions += 1
            counters.current_bytes -= evicted.nbytes
            counters.entries -= 1

    def _store(self, key: Hashable, value: Any, size: int) -> None:
        tag = key_tag(key)
        with self._lock:
            if size > self.max_bytes:
                # would evict the whole pool and still not fit: hand the
                # plan to the caller but keep the pool contents intact
                self._oversize += 1
                self._tag(tag).oversize += 1
                return
            if key in self._entries:  # concurrent build of the same key
                return
            self._entries[key] = _Entry(value, size, tag)
            self._current_bytes += size
            counters = self._tag(tag)
            counters.current_bytes += size
            counters.entries += 1
            self._evict_to_fit()
            self._peak_bytes = max(self._peak_bytes, self._current_bytes)
            counters.peak_bytes = max(counters.peak_bytes, counters.current_bytes)

    def set_max_bytes(self, max_bytes: int) -> None:
        """Change the budget, evicting LRU entries if it shrinks below use."""
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, got {max_bytes}")
        with self._lock:
            self.max_bytes = int(max_bytes)
            self._evict_to_fit()

    # ------------------------------------------------------------------ #
    # maintenance / introspection
    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        """Drop every entry (statistics are kept; see :meth:`reset`)."""
        with self._lock:
            self._entries.clear()
            self._current_bytes = 0
            for counters in self._tags.values():
                counters.current_bytes = 0
                counters.entries = 0

    def reset(self) -> None:
        """Drop every entry and zero all statistics."""
        with self._lock:
            self.clear()
            self._hits = self._misses = self._evictions = self._oversize = 0
            self._peak_bytes = 0
            self._tags.clear()

    def keys(self) -> Tuple[Hashable, ...]:
        """Current keys in LRU order (least recently used first)."""
        with self._lock:
            return tuple(self._entries)

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._current_bytes

    @property
    def stats(self) -> PoolStats:
        with self._lock:
            return PoolStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                oversize_rejections=self._oversize,
                current_bytes=self._current_bytes,
                peak_bytes=self._peak_bytes,
                entries=len(self._entries),
            )

    def stats_by_tag(self) -> Dict[str, PoolStats]:
        """Per-entry-kind statistics (see :func:`key_tag`).

        The per-tag counters (hits/misses/evictions/oversize) and the
        ``current_bytes``/``entries`` gauges partition the pool-wide
        :attr:`stats` exactly, so the scatter-plan entries of the
        distributed solver are separately visible in the byte accounting.
        ``peak_bytes`` is each tag's *own* high-water mark — tags can peak
        at different times, so those do not sum to the pool-wide peak.
        """
        with self._lock:
            return {
                tag: PoolStats(
                    hits=counters.hits,
                    misses=counters.misses,
                    evictions=counters.evictions,
                    oversize_rejections=counters.oversize,
                    current_bytes=counters.current_bytes,
                    peak_bytes=counters.peak_bytes,
                    entries=counters.entries,
                )
                for tag, counters in sorted(self._tags.items())
            }

    def validate_accounting(self) -> Dict[str, int]:
        """Cross-check the byte/entry counters against the stored entries.

        Recomputes ``current_bytes`` and the per-tag gauges from the actual
        entries under the lock and compares them to the incrementally
        maintained counters; raises :class:`RuntimeError` on any mismatch.
        Used by the concurrency hammer tests (and available to servers as a
        cheap health check): after any interleaving of gets, inserts,
        evictions and budget changes, ``current_bytes`` must equal the sum
        of the stored entries' ``nbytes`` and never exceed the budget.
        """
        with self._lock:
            actual_bytes = sum(entry.nbytes for entry in self._entries.values())
            problems = []
            if actual_bytes != self._current_bytes:
                problems.append(
                    f"current_bytes={self._current_bytes} but stored entries "
                    f"sum to {actual_bytes}"
                )
            if self._current_bytes > self.max_bytes:
                problems.append(
                    f"current_bytes={self._current_bytes} exceeds the budget "
                    f"({self.max_bytes})"
                )
            by_tag_bytes: Dict[str, int] = {}
            by_tag_entries: Dict[str, int] = {}
            for entry in self._entries.values():
                by_tag_bytes[entry.tag] = by_tag_bytes.get(entry.tag, 0) + entry.nbytes
                by_tag_entries[entry.tag] = by_tag_entries.get(entry.tag, 0) + 1
            for tag, counters in self._tags.items():
                if counters.current_bytes != by_tag_bytes.get(tag, 0):
                    problems.append(
                        f"tag {tag!r}: current_bytes={counters.current_bytes} but "
                        f"stored entries sum to {by_tag_bytes.get(tag, 0)}"
                    )
                if counters.entries != by_tag_entries.get(tag, 0):
                    problems.append(
                        f"tag {tag!r}: entries={counters.entries} but "
                        f"{by_tag_entries.get(tag, 0)} stored"
                    )
            if problems:
                raise RuntimeError(
                    "plan pool accounting is inconsistent: " + "; ".join(problems)
                )
            return {"current_bytes": actual_bytes, "entries": len(self._entries)}


# --------------------------------------------------------------------------- #
# process-wide pool
# --------------------------------------------------------------------------- #
_global_pool: Optional[PlanPool] = None
_global_lock = threading.Lock()


def get_plan_pool() -> PlanPool:
    """The shared process-wide plan pool (created lazily from the env)."""
    global _global_pool
    with _global_lock:
        if _global_pool is None:
            _global_pool = PlanPool()
        return _global_pool


def configure_plan_pool(max_bytes: Optional[int]) -> PlanPool:
    """Set the budget of the shared pool (``None`` re-reads the environment).

    Shrinking below the current contents evicts least-recently-used entries
    immediately, so the accounting stays exact after a reconfiguration.
    """
    pool = get_plan_pool()
    pool.set_max_bytes(_env_budget() if max_bytes is None else max_bytes)
    return pool


def reset_plan_pool() -> PlanPool:
    """Clear the shared pool and zero its statistics (tests, benchmarks)."""
    pool = get_plan_pool()
    pool.reset()
    return pool


def _collect_pool_metrics() -> Dict[str, Dict[str, int]]:
    """Pull collector publishing the shared pool's stats into the registry.

    Pool-wide values land under the empty label key; per-tag counters are
    labelled ``tag=<entry kind>`` (gauges are pool-wide only).
    """
    pool = get_plan_pool()
    series: Dict[str, Dict[str, int]] = {
        f"plan_pool.{key}": {"": value} for key, value in pool.stats.as_dict().items()
    }
    for tag, stats in pool.stats_by_tag().items():
        label = f"tag={tag}"
        for key in ("hits", "misses", "evictions", "oversize_rejections"):
            series[f"plan_pool.{key}"][label] = getattr(stats, key)
    return series


get_metrics_registry().register_collector("plan_pool", _collect_pool_metrics)
