"""Shared execution runtime: plan pool and unified worker pools.

PRs 1-2 made the two dominant kernels of the paper's per-iteration cost —
3D FFTs and semi-Lagrangian tricubic gathers — pluggable, planned and
batched.  This subsystem owns the *execution resources* behind both kernel
registries:

:mod:`repro.runtime.plan_pool`
    A process-wide LRU cache of per-velocity plans keyed by content
    (grid, velocity fingerprint, kernel, backend) with byte-accurate
    memory accounting, a configurable budget (``REPRO_PLAN_POOL_BYTES`` /
    ``--plan-pool-bytes``) and hit/miss/eviction statistics.  It carries
    warm plans across the line search, across ``beta``-continuation levels
    and across repeated distributed scatter plans.

:mod:`repro.runtime.workers`
    One resource policy for every threaded kernel: ``REPRO_WORKERS`` sets
    the shared default, ``REPRO_FFT_WORKERS`` / ``REPRO_INTERP_WORKERS``
    override per subsystem, and thread pools are shared per width so the
    subsystems never stack separate pools on the same cores.

:mod:`repro.runtime.layout`
    The budget-aware stencil-layout policy behind ``REPRO_PLAN_LAYOUT=auto``
    (the default): pick the chunk-resident streaming layout when a plan's
    projected lean bytes exceed a configured fraction of the pool budget,
    keep the faster lean layout otherwise.  Decisions are recorded in a
    process-wide log surfaced next to the pool statistics.

GPU engines and distributed launchers added through the backend registries
should acquire their plans and workers here so they inherit the same
lifecycle (budgeting, eviction, statistics) without re-implementing it.
"""

from repro.runtime.cancellation import (
    CancelToken,
    CombinedCancelToken,
    SolveCancelled,
    check_cancelled,
)
from repro.runtime.layout import (
    AUTO_FRACTION_ENV_VAR,
    DEFAULT_AUTO_FRACTION,
    LayoutDecision,
    LayoutDecisionLog,
    auto_streaming_fraction,
    layout_decision_log,
    select_layout,
    set_auto_fraction,
)
from repro.runtime.plan_pool import (
    DEFAULT_POOL_BYTES,
    POOL_BYTES_ENV_VAR,
    PlanPool,
    PoolStats,
    array_fingerprint,
    configure_plan_pool,
    env_pool_budget,
    get_plan_pool,
    key_tag,
    reset_plan_pool,
)
from repro.runtime.workers import (
    FFT_WORKERS_ENV_VAR,
    INTERP_WORKERS_ENV_VAR,
    IO_WORKERS_ENV_VAR,
    SERVICE_WORKERS_ENV_VAR,
    WORKERS_ENV_VAR,
    get_executor,
    get_subsystem_executor,
    resolve_workers,
    set_default_workers,
    shutdown_executors,
)

__all__ = [
    "CancelToken",
    "CombinedCancelToken",
    "SolveCancelled",
    "check_cancelled",
    "AUTO_FRACTION_ENV_VAR",
    "DEFAULT_AUTO_FRACTION",
    "LayoutDecision",
    "LayoutDecisionLog",
    "auto_streaming_fraction",
    "layout_decision_log",
    "select_layout",
    "set_auto_fraction",
    "DEFAULT_POOL_BYTES",
    "POOL_BYTES_ENV_VAR",
    "PlanPool",
    "PoolStats",
    "array_fingerprint",
    "configure_plan_pool",
    "env_pool_budget",
    "get_plan_pool",
    "key_tag",
    "reset_plan_pool",
    "FFT_WORKERS_ENV_VAR",
    "INTERP_WORKERS_ENV_VAR",
    "IO_WORKERS_ENV_VAR",
    "SERVICE_WORKERS_ENV_VAR",
    "WORKERS_ENV_VAR",
    "get_executor",
    "get_subsystem_executor",
    "resolve_workers",
    "set_default_workers",
    "shutdown_executors",
]
