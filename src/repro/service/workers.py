"""The registration service: queued jobs, worker fan-out, micro-batching.

:class:`RegistrationService` is the async front end of the solver: callers
submit work (full registrations or distributed transport solves) and get
:class:`~repro.service.jobs.Job` handles back immediately; a pool of
daemon worker threads drains the :class:`~repro.service.queue.
SubmissionQueue` and executes every job through the *existing* synchronous
paths — :func:`repro.register` and :class:`~repro.parallel.transport.
DistributedTransportSolver` — so a queued solve is numerically the very
solve a direct call would have produced.

What the service adds over a loop of direct calls:

* **Cross-request plan reuse.**  All workers share the process-wide plan
  pool; with the pool's single-flight builds, N concurrent jobs planning
  the same velocity perform one build and N-1 warm hits.
* **Micro-batching.**  Compatible transport jobs (same grid, time step,
  task layout, backend, stencil layout and velocity — see
  :func:`~repro.service.batching.batch_key`) are claimed together and ride
  one ``solve_state_many`` stack: one ghost-exchange round and one return
  ``alltoallv`` per time step for the whole batch, results bitwise
  identical to solving each job alone.
* **Observability.**  Every job records metrics (plan-pool delta, pool hit
  rate, layout-decision counts, communication-ledger summary, timings) and
  can be journaled to a per-job JSON artifact
  (:mod:`repro.service.artifacts`).
"""

from __future__ import annotations

import threading
import traceback
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.config import RegistrationConfig
from repro.core.registration import register
from repro.observability import snapshot as observability_snapshot
from repro.observability import trace_span
from repro.parallel.comm import SimulatedCommunicator
from repro.parallel.pencil import PencilDecomposition
from repro.parallel.transport import DistributedTransportSolver
from repro.runtime.layout import layout_decision_log
from repro.runtime.plan_pool import get_plan_pool
from repro.runtime.workers import resolve_workers
from repro.service.artifacts import write_job_artifact
from repro.service.jobs import (
    Job,
    JobStatus,
    RegistrationJobSpec,
    TransportJobSpec,
)
from repro.service.queue import SubmissionQueue
from repro.utils.logging import get_logger

LOGGER = get_logger("service.workers")

__all__ = ["RegistrationService"]


def _hit_rate(hits: int, misses: int) -> float:
    total = hits + misses
    return hits / total if total else 0.0


class RegistrationService:
    """Thread-pooled job service over the registration solver.

    Parameters
    ----------
    config:
        Execution configuration applied process-wide at service start and
        passed to every registration solve
        (:class:`repro.config.RegistrationConfig`); ``None`` keeps the
        ambient environment-driven defaults.
    num_workers:
        Worker threads draining the queue.  ``None`` resolves the unified
        worker policy for the ``"service"`` subsystem
        (``REPRO_SERVICE_WORKERS`` > ``REPRO_WORKERS`` > one per core).
    max_batch:
        Upper bound on the micro-batch size (1 disables batching).
    artifacts_dir:
        When set, every finished job (including failures) is journaled to
        ``<artifacts_dir>/job-<id>.json``.

    The service is a context manager; leaving the ``with`` block drains the
    queue and joins the workers::

        with RegistrationService(max_batch=4) as service:
            jobs = [service.submit_transport(spec) for spec in specs]
            results = service.gather(jobs)
    """

    def __init__(
        self,
        config: Optional[RegistrationConfig] = None,
        num_workers: Optional[int] = None,
        max_batch: int = 4,
        artifacts_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.config = config
        if config is not None:
            config.apply()
        self.num_workers = resolve_workers("service", num_workers)
        # Fail fast on a malformed REPRO_IO_WORKERS before any job runs:
        # the out-of-core sources resolve it lazily on the first prefetch,
        # which would otherwise surface as a per-job failure mid-run.
        resolve_workers("io")
        self.max_batch = int(max_batch)
        self.artifacts_dir = Path(artifacts_dir) if artifacts_dir is not None else None
        self.queue = SubmissionQueue()
        self._jobs: List[Job] = []
        self._stats_lock = threading.Lock()
        self._batches_executed = 0
        self._batched_jobs = 0
        self._shutdown = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-{index}",
                daemon=True,
            )
            for index in range(self.num_workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------ #
    # submission API
    # ------------------------------------------------------------------ #
    def submit_registration(self, spec: RegistrationJobSpec) -> Job:
        """Queue one registration solve; returns immediately with a handle."""
        return self._submit(spec)

    def submit_transport(self, spec: TransportJobSpec) -> Job:
        """Queue one distributed transport solve (micro-batchable)."""
        return self._submit(spec)

    def _submit(self, spec) -> Job:
        job = Job(spec, self)
        with self._stats_lock:
            self._jobs.append(job)
        self.queue.submit(job)
        return job

    def _cancel(self, job: Job) -> bool:
        return self.queue.cancel(job)

    def gather(
        self,
        jobs: Sequence[Job],
        timeout: Optional[float] = None,
        raise_on_error: bool = True,
    ) -> List[Any]:
        """Results of *jobs* in submission order, blocking until all finish.

        With ``raise_on_error=False``, failed/cancelled jobs yield ``None``
        instead of raising, so a partial atlas run can keep its survivors.
        """
        results: List[Any] = []
        for job in jobs:
            if raise_on_error:
                results.append(job.result(timeout))
            else:
                try:
                    results.append(job.result(timeout))
                except Exception:  # noqa: BLE001 - deliberate partial gather
                    results.append(None)
        return results

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def drain(self) -> None:
        """Block until every submitted job has reached a terminal state."""
        with self._stats_lock:
            jobs = list(self._jobs)
        for job in jobs:
            job.wait()

    def shutdown(self, drain: bool = True) -> None:
        """Stop the service: optionally drain, then join the workers.

        ``drain=True`` (default) lets queued jobs finish; ``drain=False``
        cancels everything still queued.  Idempotent.
        """
        if self._shutdown:
            return
        self._shutdown = True
        if not drain:
            with self._stats_lock:
                jobs = list(self._jobs)
            for job in jobs:
                if job.status is JobStatus.QUEUED:
                    self.queue.cancel(job)
        self.queue.close()
        for thread in self._threads:
            thread.join()

    def __enter__(self) -> "RegistrationService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def service_stats(self) -> Dict[str, Any]:
        """Aggregate service counters plus the shared pool's statistics."""
        with self._stats_lock:
            jobs = list(self._jobs)
            batches = self._batches_executed
            batched_jobs = self._batched_jobs
        by_status: Dict[str, int] = {}
        for job in jobs:
            by_status[job.status.value] = by_status.get(job.status.value, 0) + 1
        pool = get_plan_pool().stats
        return {
            "num_workers": self.num_workers,
            "max_batch": self.max_batch,
            "jobs_submitted": len(jobs),
            "jobs_by_status": by_status,
            "batches_executed": batches,
            "batched_jobs": batched_jobs,
            "plan_pool": pool.as_dict(),
            "plan_pool_hit_rate": _hit_rate(pool.hits, pool.misses),
            "layout_decisions": layout_decision_log().counts(),
            "observability": observability_snapshot(),
        }

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        while True:
            with trace_span("service.claim", max_batch=self.max_batch) as claim_span:
                batch = self.queue.claim_batch(self.max_batch)
                claim_span.set_attr("jobs", 0 if batch is None else len(batch))
            if batch is None:
                return
            try:
                self._execute_batch(batch)
            except Exception as exc:  # noqa: BLE001 - worker must survive
                # _execute_batch already records failures per job; this only
                # triggers on bookkeeping bugs.  Fail the batch, keep going.
                text = traceback.format_exc()
                for job in batch:
                    if not job.done:
                        job._fail(str(exc), text)
                LOGGER.exception("service worker error while executing a batch")

    def _execute_batch(self, batch: List[Job]) -> None:
        with self._stats_lock:
            self._batches_executed += 1
            if len(batch) > 1:
                self._batched_jobs += len(batch)
        kind = batch[0].record.kind
        with trace_span("service.batch", kind=kind, jobs=len(batch)):
            if kind == "transport" and len(batch) >= 1:
                self._execute_transport_batch(batch)
            else:
                for job in batch:
                    self._execute_registration(job)

    def _execute_registration(self, job: Job) -> None:
        spec: RegistrationJobSpec = job.spec
        pool = get_plan_pool()
        pool_before = pool.stats
        decisions_before = layout_decision_log().total
        try:
            with trace_span("service.job", kind="registration", job_id=job.job_id):
                result = register(
                    spec.template,
                    spec.reference,
                    beta=spec.beta,
                    regularization=spec.regularization,
                    incompressible=spec.incompressible,
                    num_time_steps=spec.num_time_steps,
                    gauss_newton=spec.gauss_newton,
                    optimizer=spec.optimizer,
                    options=spec.options,
                    grid=spec.grid,
                    smooth_sigma=spec.smooth_sigma,
                    normalize=spec.normalize,
                    interpolation=spec.interpolation,
                    config=self.config,
                )
        except Exception as exc:  # noqa: BLE001 - job-level isolation
            job._fail(str(exc), traceback.format_exc())
            self._journal(job)
            return
        delta = pool.stats - pool_before
        job.record.metrics = {
            "result": result.to_dict(),
            "plan_pool_delta": delta.as_dict(),
            "plan_pool_hit_rate": _hit_rate(delta.hits, delta.misses),
            "layout_decisions": layout_decision_log().total - decisions_before,
        }
        job._complete(result)
        self._journal(job)

    def _execute_transport_batch(self, batch: List[Job]) -> None:
        lead: TransportJobSpec = batch[0].spec
        grid = lead.resolved_grid()
        decomposition = PencilDecomposition.from_num_tasks(grid.shape, lead.num_tasks)
        comm = SimulatedCommunicator(decomposition.num_tasks)
        pool = get_plan_pool()
        pool_before = pool.stats
        decisions_before = layout_decision_log().total
        try:
            with trace_span(
                "service.job",
                kind="transport",
                jobs=len(batch),
                num_tasks=lead.num_tasks,
            ):
                solver = DistributedTransportSolver(
                    grid,
                    decomposition,
                    num_time_steps=lead.num_time_steps,
                    comm=comm,
                )
                templates = np.stack([job.spec.moving for job in batch], axis=0)
                transported = solver.solve_state_many(lead.velocity, templates)
        except Exception as exc:  # noqa: BLE001 - job-level isolation
            text = traceback.format_exc()
            for job in batch:
                job._fail(str(exc), text)
                self._journal(job)
            return
        delta = pool.stats - pool_before
        ledger = comm.ledger.summary()
        metrics = {
            "batch_size": len(batch),
            "plan_pool_delta": delta.as_dict(),
            "plan_pool_hit_rate": _hit_rate(delta.hits, delta.misses),
            "layout_decisions": layout_decision_log().total - decisions_before,
            "communication": ledger,
            "ghost_exchange_calls": ledger.get("ghost_exchange", {}).get("calls", 0),
        }
        for index, job in enumerate(batch):
            job.record.metrics = dict(metrics)
            job._complete(transported[index])
            self._journal(job)

    def _journal(self, job: Job) -> None:
        if self.artifacts_dir is None:
            return
        try:
            with trace_span("service.artifact", job_id=job.job_id):
                write_job_artifact(self.artifacts_dir, job)
        except Exception:  # noqa: BLE001 - journaling must never fail a job
            LOGGER.exception("failed to write the artifact of job %d", job.job_id)
