"""The registration service: queued jobs, worker fan-out, micro-batching.

:class:`RegistrationService` is the async front end of the solver: callers
submit work (full registrations or distributed transport solves) and get
:class:`~repro.service.jobs.Job` handles back immediately; a pool of
daemon worker threads drains the :class:`~repro.service.queue.
SubmissionQueue` and executes every job through the *existing* synchronous
paths — :func:`repro.register` and :class:`~repro.parallel.transport.
DistributedTransportSolver` — so a queued solve is numerically the very
solve a direct call would have produced.

What the service adds over a loop of direct calls:

* **Cross-request plan reuse.**  All workers share the process-wide plan
  pool; with the pool's single-flight builds, N concurrent jobs planning
  the same velocity perform one build and N-1 warm hits.
* **Micro-batching.**  Compatible transport jobs (same grid, time step,
  task layout, backend, stencil layout and velocity — see
  :func:`~repro.service.batching.batch_key`) are claimed together and ride
  one ``solve_state_many`` stack: one ghost-exchange round and one return
  ``alltoallv`` per time step for the whole batch, results bitwise
  identical to solving each job alone.
* **Observability.**  Every job records metrics (plan-pool delta, pool hit
  rate, layout-decision counts, communication-ledger summary, timings) and
  can be journaled to a per-job JSON artifact
  (:mod:`repro.service.artifacts`).
* **Durability.**  With a journal directory
  (``journal_dir`` / ``REPRO_SERVICE_JOURNAL``), every submission is
  fsync'd to an append-only journal before the submit call returns, and a
  restarted service re-queues every journaled job that never reached a
  terminal state — a kill -9 mid-solve loses no work
  (:mod:`repro.service.journal`).
* **Cooperative cancellation.**  ``Job.cancel(force=True)`` (or an HTTP
  ``DELETE``) sets the job's cancel token; RUNNING solves stop at their
  next safe point — between Newton iterations, between transport time
  steps — and record ``CANCELLED``.  A micro-batched solve is only
  abandoned once every rider cancelled; peers keep their results.
"""

from __future__ import annotations

import dataclasses
import threading
import traceback
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.config import RegistrationConfig, env_service_journal
from repro.core.optim.gauss_newton import SolverOptions
from repro.core.registration import register
from repro.observability import snapshot as observability_snapshot
from repro.observability import trace_span
from repro.parallel.comm import SimulatedCommunicator
from repro.parallel.pencil import PencilDecomposition
from repro.parallel.transport import DistributedTransportSolver
from repro.runtime.cancellation import CombinedCancelToken, SolveCancelled
from repro.runtime.layout import layout_decision_log
from repro.runtime.plan_pool import get_plan_pool
from repro.runtime.workers import resolve_workers
from repro.service.artifacts import write_job_artifact
from repro.service.jobs import (
    Job,
    JobStatus,
    RegistrationJobSpec,
    TransportJobSpec,
)
from repro.service.journal import JobJournal
from repro.service.queue import SubmissionQueue
from repro.utils.logging import get_logger

LOGGER = get_logger("service.workers")

__all__ = ["RegistrationService"]


def _hit_rate(hits: int, misses: int) -> float:
    total = hits + misses
    return hits / total if total else 0.0


class RegistrationService:
    """Thread-pooled job service over the registration solver.

    Parameters
    ----------
    config:
        Execution configuration applied process-wide at service start and
        passed to every registration solve
        (:class:`repro.config.RegistrationConfig`); ``None`` keeps the
        ambient environment-driven defaults.
    num_workers:
        Worker threads draining the queue.  ``None`` resolves the unified
        worker policy for the ``"service"`` subsystem
        (``REPRO_SERVICE_WORKERS`` > ``REPRO_WORKERS`` > one per core).
    max_batch:
        Upper bound on the micro-batch size (1 disables batching).
    artifacts_dir:
        When set, every finished job (including failures) is journaled to
        ``<artifacts_dir>/job-<id>.json``.
    journal_dir:
        Directory of the durable job journal; defaults to
        ``$REPRO_SERVICE_JOURNAL`` (unset = no journal, PR-6 in-memory
        behavior).  On start, journaled jobs without a terminal record are
        compacted and re-queued with their original ids.
    journal_fsync:
        ``False`` skips the per-commit fsync (crash-safe, not
        power-loss-safe); the journal-overhead benchmark's knob.
    class_weights:
        Claim-weight overrides per job class (see
        :class:`~repro.service.queue.SubmissionQueue`).

    The service is a context manager; leaving the ``with`` block drains the
    queue and joins the workers::

        with RegistrationService(max_batch=4) as service:
            jobs = [service.submit_transport(spec) for spec in specs]
            results = service.gather(jobs)
    """

    def __init__(
        self,
        config: Optional[RegistrationConfig] = None,
        num_workers: Optional[int] = None,
        max_batch: int = 4,
        artifacts_dir: Optional[Union[str, Path]] = None,
        journal_dir: Optional[Union[str, Path]] = None,
        journal_fsync: bool = True,
        class_weights: Optional[Dict[str, float]] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.config = config
        if config is not None:
            config.apply()
        self.num_workers = resolve_workers("service", num_workers)
        # Fail fast on a malformed REPRO_IO_WORKERS before any job runs:
        # the out-of-core sources resolve it lazily on the first prefetch,
        # which would otherwise surface as a per-job failure mid-run.
        resolve_workers("io")
        self.max_batch = int(max_batch)
        self.artifacts_dir = Path(artifacts_dir) if artifacts_dir is not None else None
        if journal_dir is None:
            journal_dir = env_service_journal()
        self.journal = (
            JobJournal(journal_dir, fsync_on_commit=journal_fsync)
            if journal_dir is not None
            else None
        )
        self.queue = SubmissionQueue(class_weights=class_weights)
        self._jobs: List[Job] = []
        self._jobs_by_id: Dict[str, Job] = {}
        self._stats_lock = threading.Lock()
        self._batches_executed = 0
        self._batched_jobs = 0
        self._shutdown = False
        self.recovered_jobs: List[Job] = self._recover()
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-{index}",
                daemon=True,
            )
            for index in range(self.num_workers)
        ]
        for thread in self._threads:
            thread.start()

    def _recover(self) -> List[Job]:
        """Re-queue journaled jobs that never finished (before workers start).

        Compaction first: the surviving ``submitted`` records stay live in
        the fresh segment, so a *second* crash before these jobs finish
        still replays them — no re-journaling needed.
        """
        if self.journal is None:
            return []
        recovered: List[Job] = []
        for entry in self.journal.compact():
            try:
                spec = entry.spec()
            except ValueError:
                LOGGER.exception(
                    "journal: dropping unreadable spec of job %s", entry.job_id
                )
                continue
            recovered.append(self._enqueue(spec, job_id=entry.job_id, journal=False))
        if recovered:
            LOGGER.info("journal: re-queued %d unfinished job(s)", len(recovered))
        return recovered

    # ------------------------------------------------------------------ #
    # submission API
    # ------------------------------------------------------------------ #
    def submit_registration(self, spec: RegistrationJobSpec) -> Job:
        """Queue one registration solve; returns immediately with a handle."""
        return self._submit(spec)

    def submit_transport(self, spec: TransportJobSpec) -> Job:
        """Queue one distributed transport solve (micro-batchable)."""
        return self._submit(spec)

    def _submit(self, spec) -> Job:
        return self._enqueue(spec)

    def _enqueue(self, spec, job_id: Optional[str] = None, journal: bool = True) -> Job:
        job = Job(spec, self, job_id=job_id)
        with self._stats_lock:
            self._jobs.append(job)
            self._jobs_by_id[job.job_id] = job
        if journal and self.journal is not None:
            # journal BEFORE queueing: once the caller holds the handle the
            # submission is durable, even if the process dies immediately
            self.journal.record_submitted(job)
        self.queue.submit(job)
        return job

    def job(self, job_id: str) -> Optional[Job]:
        """The job handle of *job_id* (``None`` when unknown) — HTTP lookup."""
        with self._stats_lock:
            return self._jobs_by_id.get(job_id)

    def _cancel(self, job: Job, force: bool = False) -> bool:
        if self.queue.cancel(job):
            # queued -> CANCELLED happened inside the queue lock; persist it
            self._finalize(job)
            return True
        if not force or job.done:
            return False
        # cooperative path: the RUNNING solve observes the token at its next
        # safe point and the worker records CANCELLED; if the solve finishes
        # first, DONE wins (the result exists — nothing worth discarding)
        job.cancel_token.cancel()
        return True

    def gather(
        self,
        jobs: Sequence[Job],
        timeout: Optional[float] = None,
        raise_on_error: bool = True,
    ) -> List[Any]:
        """Results of *jobs* in submission order, blocking until all finish.

        With ``raise_on_error=False``, failed/cancelled jobs yield ``None``
        instead of raising, so a partial atlas run can keep its survivors.
        """
        results: List[Any] = []
        for job in jobs:
            if raise_on_error:
                results.append(job.result(timeout))
            else:
                try:
                    results.append(job.result(timeout))
                except Exception:  # noqa: BLE001 - deliberate partial gather
                    results.append(None)
        return results

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def drain(self) -> None:
        """Block until every submitted job has reached a terminal state."""
        with self._stats_lock:
            jobs = list(self._jobs)
        for job in jobs:
            job.wait()

    def shutdown(self, drain: bool = True) -> None:
        """Stop the service: optionally drain, then join the workers.

        ``drain=True`` (default) lets queued jobs finish; ``drain=False``
        cancels everything still queued.  Idempotent.
        """
        if self._shutdown:
            return
        self._shutdown = True
        if not drain:
            with self._stats_lock:
                jobs = list(self._jobs)
            for job in jobs:
                if job.status is JobStatus.QUEUED:
                    self._cancel(job)
        self.queue.close()
        for thread in self._threads:
            thread.join()
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "RegistrationService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def service_stats(self) -> Dict[str, Any]:
        """Aggregate service counters plus the shared pool's statistics."""
        with self._stats_lock:
            jobs = list(self._jobs)
            batches = self._batches_executed
            batched_jobs = self._batched_jobs
        by_status: Dict[str, int] = {}
        for job in jobs:
            by_status[job.status.value] = by_status.get(job.status.value, 0) + 1
        pool = get_plan_pool().stats
        return {
            "num_workers": self.num_workers,
            "max_batch": self.max_batch,
            "jobs_submitted": len(jobs),
            "jobs_by_status": by_status,
            "jobs_recovered": len(self.recovered_jobs),
            "queue_depths": self.queue.depths(),
            "batches_executed": batches,
            "batched_jobs": batched_jobs,
            "journal": self.journal.stats() if self.journal is not None else None,
            "plan_pool": pool.as_dict(),
            "plan_pool_hit_rate": _hit_rate(pool.hits, pool.misses),
            "layout_decisions": layout_decision_log().counts(),
            "observability": observability_snapshot(),
        }

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        while True:
            with trace_span("service.claim", max_batch=self.max_batch) as claim_span:
                batch = self.queue.claim_batch(self.max_batch)
                claim_span.set_attr("jobs", 0 if batch is None else len(batch))
            if batch is None:
                return
            try:
                self._execute_batch(batch)
            except Exception as exc:  # noqa: BLE001 - worker must survive
                # _execute_batch already records failures per job; this only
                # triggers on bookkeeping bugs.  Fail the batch, keep going.
                text = traceback.format_exc()
                for job in batch:
                    if not job.done:
                        job._fail(str(exc), text)
                LOGGER.exception("service worker error while executing a batch")

    def _execute_batch(self, batch: List[Job]) -> None:
        with self._stats_lock:
            self._batches_executed += 1
            if len(batch) > 1:
                self._batched_jobs += len(batch)
        kind = batch[0].record.kind
        with trace_span("service.batch", kind=kind, jobs=len(batch)):
            if kind == "transport" and len(batch) >= 1:
                self._execute_transport_batch(batch)
            else:
                for job in batch:
                    self._execute_registration(job)

    def _execute_registration(self, job: Job) -> None:
        spec: RegistrationJobSpec = job.spec
        pool = get_plan_pool()
        pool_before = pool.stats
        decisions_before = layout_decision_log().total
        # hand the job's cancel token to the Newton loop on a per-job copy:
        # the caller's options object is never mutated
        options = dataclasses.replace(
            spec.options if spec.options is not None else SolverOptions(),
            cancel_token=job.cancel_token,
        )
        try:
            with trace_span("service.job", kind="registration", job_id=job.job_id):
                result = register(
                    spec.template,
                    spec.reference,
                    beta=spec.beta,
                    regularization=spec.regularization,
                    incompressible=spec.incompressible,
                    num_time_steps=spec.num_time_steps,
                    gauss_newton=spec.gauss_newton,
                    optimizer=spec.optimizer,
                    options=options,
                    grid=spec.grid,
                    smooth_sigma=spec.smooth_sigma,
                    normalize=spec.normalize,
                    interpolation=spec.interpolation,
                    config=self.config,
                )
        except SolveCancelled:
            job._cancelled()
            self._finalize(job)
            return
        except Exception as exc:  # noqa: BLE001 - job-level isolation
            job._fail(str(exc), traceback.format_exc())
            self._finalize(job)
            return
        delta = pool.stats - pool_before
        job.record.metrics = {
            "result": result.to_dict(),
            "plan_pool_delta": delta.as_dict(),
            "plan_pool_hit_rate": _hit_rate(delta.hits, delta.misses),
            "layout_decisions": layout_decision_log().total - decisions_before,
        }
        job._complete(result)
        self._finalize(job)

    def _execute_transport_batch(self, batch: List[Job]) -> None:
        lead: TransportJobSpec = batch[0].spec
        grid = lead.resolved_grid()
        decomposition = PencilDecomposition.from_num_tasks(grid.shape, lead.num_tasks)
        comm = SimulatedCommunicator(decomposition.num_tasks)
        pool = get_plan_pool()
        pool_before = pool.stats
        decisions_before = layout_decision_log().total
        # a merged solve is only abandoned once EVERY rider cancelled;
        # individually cancelled riders are sorted out after the solve
        batch_token = CombinedCancelToken([job.cancel_token for job in batch])
        try:
            with trace_span(
                "service.job",
                kind="transport",
                jobs=len(batch),
                num_tasks=lead.num_tasks,
            ):
                solver = DistributedTransportSolver(
                    grid,
                    decomposition,
                    num_time_steps=lead.num_time_steps,
                    comm=comm,
                )
                templates = np.stack([job.spec.moving for job in batch], axis=0)
                transported = solver.solve_state_many(
                    lead.velocity, templates, cancel_token=batch_token
                )
        except SolveCancelled:
            for job in batch:
                job._cancelled()
                self._finalize(job)
            return
        except Exception as exc:  # noqa: BLE001 - job-level isolation
            text = traceback.format_exc()
            for job in batch:
                job._fail(str(exc), text)
                self._finalize(job)
            return
        delta = pool.stats - pool_before
        ledger = comm.ledger.summary()
        metrics = {
            "batch_size": len(batch),
            "plan_pool_delta": delta.as_dict(),
            "plan_pool_hit_rate": _hit_rate(delta.hits, delta.misses),
            "layout_decisions": layout_decision_log().total - decisions_before,
            "communication": ledger,
            "ghost_exchange_calls": ledger.get("ghost_exchange", {}).get("calls", 0),
        }
        for index, job in enumerate(batch):
            job.record.metrics = dict(metrics)
            if job.cancel_token.cancelled:
                # this rider asked out mid-batch; its peers keep their
                # results, the rider records CANCELLED (no result delivery)
                job._cancelled()
            else:
                job._complete(transported[index])
            self._finalize(job)

    def _finalize(self, job: Job) -> None:
        """Persist a terminal job: journal terminal record + JSON artifact."""
        if self.journal is not None:
            try:
                self.journal.record_terminal(job)
            except Exception:  # noqa: BLE001 - persistence must never fail a job
                LOGGER.exception("failed to journal the end of job %s", job.job_id)
        if self.artifacts_dir is None:
            return
        try:
            with trace_span("service.artifact", job_id=job.job_id):
                write_job_artifact(self.artifacts_dir, job)
        except Exception:  # noqa: BLE001 - journaling must never fail a job
            LOGGER.exception("failed to write the artifact of job %s", job.job_id)
