"""Job records, specs and handles of the registration service.

A *job* is one unit of queued work: either a full registration solve
(:class:`RegistrationJobSpec`, executed through the ordinary
:func:`repro.register` path so the service is a thin facade over
:class:`~repro.core.problem.RegistrationProblem`, never a second code
path), or a distributed transport solve (:class:`TransportJobSpec` — apply
a velocity to a field, e.g. the atlas normalization pass), which the
micro-batcher can merge with compatible neighbours into one
``solve_state_many`` stack.

The submitting thread holds a :class:`Job` *handle*; the service mutates
the underlying :class:`JobRecord` as the job moves through its lifecycle::

    QUEUED -> RUNNING -> DONE
                      -> FAILED     (worker exception; traceback recorded)
    QUEUED -> CANCELLED             (cancel() before a worker claimed it)

A worker exception never poisons the queue: the failure is recorded on the
job (``status=failed`` + traceback text) and the worker moves on; waiting
callers are released and see :class:`JobFailedError` when they ask for the
result.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field as dataclass_field
from enum import Enum
from typing import Any, Dict, Optional

import numpy as np

from repro.core.optim.gauss_newton import SolverOptions
from repro.spectral.grid import Grid

__all__ = [
    "Job",
    "JobCancelledError",
    "JobFailedError",
    "JobRecord",
    "JobStatus",
    "RegistrationJobSpec",
    "TransportJobSpec",
]


class JobStatus(str, Enum):
    """Lifecycle state of one service job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def finished(self) -> bool:
        """True for the three terminal states."""
        return self in (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)


class JobFailedError(RuntimeError):
    """Raised by :meth:`Job.result` when the worker raised.

    Carries the failed job's record so callers can reach the original
    exception text and traceback without digging through the service.
    """

    def __init__(self, record: "JobRecord") -> None:
        super().__init__(
            f"job {record.job_id} ({record.kind}) failed: {record.error}"
        )
        self.record = record


class JobCancelledError(RuntimeError):
    """Raised by :meth:`Job.result` for a job cancelled before it ran."""


@dataclass
class RegistrationJobSpec:
    """One queued registration: the arguments of :func:`repro.register`.

    ``kind = "register"``.  Registrations are never merged by the
    micro-batcher (each solve is an independent Gauss-Newton iteration);
    their cross-request sharing happens in the process-wide plan pool,
    spectral symbol store and worker pools instead.
    """

    template: np.ndarray
    reference: np.ndarray
    beta: float = 1e-2
    regularization: str = "h1"
    incompressible: bool = False
    num_time_steps: int = 4
    gauss_newton: bool = True
    optimizer: str = "gauss_newton"
    smooth_sigma: float = 1.0
    normalize: bool = True
    interpolation: str = "cubic_bspline"
    options: Optional[SolverOptions] = None
    grid: Optional[Grid] = None

    kind = "register"


@dataclass
class TransportJobSpec:
    """One queued (distributed, pure-advection) transport solve.

    ``kind = "transport"``.  Transport the scalar *moving* field over
    ``t in [0, 1]`` with *velocity* on a simulated ``num_tasks``-rank pencil
    decomposition.  Jobs that agree on (grid, time step, task layout,
    kernel backend, stencil-plan layout **and velocity content**) are
    micro-batched: the whole group ships through one
    :meth:`~repro.parallel.transport.DistributedTransportSolver.solve_state_many`
    stack — one ghost-exchange round and one return ``alltoallv`` per time
    step for the entire batch — with results bitwise identical to running
    every job alone.
    """

    velocity: np.ndarray
    moving: np.ndarray
    num_time_steps: int = 4
    num_tasks: int = 4
    grid: Optional[Grid] = None

    kind = "transport"

    def resolved_grid(self) -> Grid:
        """The job's grid (built from the field shape when not given)."""
        return self.grid if self.grid is not None else Grid(self.moving.shape)


@dataclass
class JobRecord:
    """Mutable service-side state of one job (shared with the handle)."""

    job_id: int
    kind: str
    status: JobStatus = JobStatus.QUEUED
    submitted_at: float = dataclass_field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    batch_size: int = 1
    error: Optional[str] = None
    traceback: Optional[str] = None
    metrics: Dict[str, Any] = dataclass_field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready view (the job section of the artifact schema)."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "status": self.status.value,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "batch_size": self.batch_size,
            "error": self.error,
            "traceback": self.traceback,
            "metrics": self.metrics,
        }


_job_ids = itertools.count(1)


class Job:
    """Caller-side handle of one submitted job."""

    def __init__(self, spec, service) -> None:
        self.spec = spec
        self.record = JobRecord(job_id=next(_job_ids), kind=spec.kind)
        self._service = service
        self._done = threading.Event()
        self._result: Any = None

    # ------------------------------------------------------------------ #
    @property
    def job_id(self) -> int:
        return self.record.job_id

    @property
    def status(self) -> JobStatus:
        return self.record.status

    @property
    def done(self) -> bool:
        return self._done.is_set()

    # ------------------------------------------------------------------ #
    def cancel(self) -> bool:
        """Cancel the job if it is still queued.

        Returns ``True`` when the job was removed from the queue (it will
        never run; waiting callers see :class:`JobCancelledError`), and
        ``False`` when a worker already claimed it — running solves are not
        interrupted.
        """
        return self._service._cancel(self)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state (or *timeout*)."""
        return self._done.wait(timeout)

    def result(self, timeout: Optional[float] = None):
        """The job's result, blocking until it finishes.

        Raises
        ------
        TimeoutError
            The job did not finish within *timeout* seconds.
        JobFailedError
            The worker raised; the record carries the traceback.
        JobCancelledError
            The job was cancelled before a worker claimed it.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} did not finish within {timeout} s "
                f"(status: {self.status.value})"
            )
        if self.record.status is JobStatus.FAILED:
            raise JobFailedError(self.record)
        if self.record.status is JobStatus.CANCELLED:
            raise JobCancelledError(f"job {self.job_id} was cancelled")
        return self._result

    # ------------------------------------------------------------------ #
    # service-side completion hooks
    # ------------------------------------------------------------------ #
    def _complete(self, result) -> None:
        self._result = result
        self.record.status = JobStatus.DONE
        self.record.finished_at = time.time()
        self._done.set()

    def _fail(self, error: str, traceback_text: str) -> None:
        self.record.status = JobStatus.FAILED
        self.record.error = error
        self.record.traceback = traceback_text
        self.record.finished_at = time.time()
        self._done.set()

    def _cancelled(self) -> None:
        self.record.status = JobStatus.CANCELLED
        self.record.finished_at = time.time()
        self._done.set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Job(id={self.job_id}, kind={self.record.kind!r}, status={self.status.value})"
