"""Job records, specs and handles of the registration service.

A *job* is one unit of queued work: either a full registration solve
(:class:`RegistrationJobSpec`, executed through the ordinary
:func:`repro.register` path so the service is a thin facade over
:class:`~repro.core.problem.RegistrationProblem`, never a second code
path), or a distributed transport solve (:class:`TransportJobSpec` — apply
a velocity to a field, e.g. the atlas normalization pass), which the
micro-batcher can merge with compatible neighbours into one
``solve_state_many`` stack.

The submitting thread holds a :class:`Job` *handle*; the service mutates
the underlying :class:`JobRecord` as the job moves through its lifecycle::

    QUEUED -> RUNNING -> DONE
                      -> FAILED     (worker exception; traceback recorded)
                      -> CANCELLED  (cancel(force=True): the cooperative
                                     token stops the solve at its next
                                     safe point)
    QUEUED -> CANCELLED             (cancel() before a worker claimed it)

A worker exception never poisons the queue: the failure is recorded on the
job (``status=failed`` + traceback text) and the worker moves on; waiting
callers are released and see :class:`JobFailedError` when they ask for the
result.

Job identifiers are strings of the form ``"<seq>-<suffix>"``: a process-
local monotonic sequence number (submission order stays readable) plus a
random 8-hex-digit suffix, so two service processes — or one service
restarted over the same artifact/journal directory — can never collide on
``job-<id>.json`` and silently overwrite each other's artifacts.  Jobs
recovered from the journal keep their original id, which keeps their
artifact path stable across the restart.

Every spec carries a ``job_class`` (:data:`JOB_CLASS_INTERACTIVE` by
default; the atlas driver submits :data:`JOB_CLASS_ATLAS`): the queue's
weighted claiming uses it so population bursts cannot starve interactive
single registrations.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from dataclasses import dataclass, field as dataclass_field
from enum import Enum
from typing import Any, Dict, Optional

import numpy as np

from repro.core.optim.gauss_newton import SolverOptions
from repro.runtime.cancellation import CancelToken
from repro.spectral.grid import Grid

__all__ = [
    "JOB_CLASS_ATLAS",
    "JOB_CLASS_INTERACTIVE",
    "Job",
    "JobCancelledError",
    "JobFailedError",
    "JobRecord",
    "JobStatus",
    "RegistrationJobSpec",
    "TransportJobSpec",
    "json_safe",
    "new_job_id",
]

#: Default job class: latency-sensitive single submissions.
JOB_CLASS_INTERACTIVE = "interactive"

#: Job class of population (atlas) bursts: throughput-oriented, claimed
#: with a lower weight so interactive jobs keep flowing.
JOB_CLASS_ATLAS = "atlas-burst"


def json_safe(value: Any) -> Any:
    """Recursively coerce *value* into JSON-serializable builtins.

    Worker metrics legitimately carry numpy scalars (ledger byte counts,
    pool statistics, residual norms); ``json.dumps`` rejects those, which
    used to fail the artifact write *after* the tmp file was created.
    Small numpy arrays become lists; unknown objects fall back to ``str``.
    """
    if isinstance(value, dict):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class JobStatus(str, Enum):
    """Lifecycle state of one service job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def finished(self) -> bool:
        """True for the three terminal states."""
        return self in (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)


class JobFailedError(RuntimeError):
    """Raised by :meth:`Job.result` when the worker raised.

    Carries the failed job's record so callers can reach the original
    exception text and traceback without digging through the service.
    """

    def __init__(self, record: "JobRecord") -> None:
        super().__init__(
            f"job {record.job_id} ({record.kind}) failed: {record.error}"
        )
        self.record = record


class JobCancelledError(RuntimeError):
    """Raised by :meth:`Job.result` for a cancelled job.

    Covers both flavours: cancelled while still queued (never ran) and
    cancelled cooperatively while running (``cancel(force=True)``).
    """


@dataclass
class RegistrationJobSpec:
    """One queued registration: the arguments of :func:`repro.register`.

    ``kind = "register"``.  Registrations are never merged by the
    micro-batcher (each solve is an independent Gauss-Newton iteration);
    their cross-request sharing happens in the process-wide plan pool,
    spectral symbol store and worker pools instead.
    """

    template: np.ndarray
    reference: np.ndarray
    beta: float = 1e-2
    regularization: str = "h1"
    incompressible: bool = False
    num_time_steps: int = 4
    gauss_newton: bool = True
    optimizer: str = "gauss_newton"
    smooth_sigma: float = 1.0
    normalize: bool = True
    interpolation: str = "cubic_bspline"
    options: Optional[SolverOptions] = None
    grid: Optional[Grid] = None
    job_class: str = JOB_CLASS_INTERACTIVE

    kind = "register"


@dataclass
class TransportJobSpec:
    """One queued (distributed, pure-advection) transport solve.

    ``kind = "transport"``.  Transport the scalar *moving* field over
    ``t in [0, 1]`` with *velocity* on a simulated ``num_tasks``-rank pencil
    decomposition.  Jobs that agree on (grid, time step, task layout,
    kernel backend, stencil-plan layout **and velocity content**) are
    micro-batched: the whole group ships through one
    :meth:`~repro.parallel.transport.DistributedTransportSolver.solve_state_many`
    stack — one ghost-exchange round and one return ``alltoallv`` per time
    step for the entire batch — with results bitwise identical to running
    every job alone.
    """

    velocity: np.ndarray
    moving: np.ndarray
    num_time_steps: int = 4
    num_tasks: int = 4
    grid: Optional[Grid] = None
    job_class: str = JOB_CLASS_INTERACTIVE

    kind = "transport"

    def resolved_grid(self) -> Grid:
        """The job's grid (built from the field shape when not given)."""
        return self.grid if self.grid is not None else Grid(self.moving.shape)


@dataclass
class JobRecord:
    """Mutable service-side state of one job (shared with the handle)."""

    job_id: str
    kind: str
    status: JobStatus = JobStatus.QUEUED
    job_class: str = JOB_CLASS_INTERACTIVE
    submitted_at: float = dataclass_field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    batch_size: int = 1
    error: Optional[str] = None
    traceback: Optional[str] = None
    metrics: Dict[str, Any] = dataclass_field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready view (the job section of the artifact schema).

        Metrics are coerced through :func:`json_safe`: numpy scalars from
        the ledger/pool statistics must never poison the artifact write.
        """
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "status": self.status.value,
            "job_class": self.job_class,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "batch_size": self.batch_size,
            "error": self.error,
            "traceback": self.traceback,
            "metrics": json_safe(self.metrics),
        }


_job_seq = itertools.count(1)


def new_job_id() -> str:
    """A collision-free job id: ``"<seq>-<8 hex>"``.

    The monotonic sequence number preserves human-readable submission
    order within one process; the random suffix makes ids (and therefore
    ``job-<id>.json`` artifact paths) unique across processes and across
    restarts of the same artifact directory.
    """
    return f"{next(_job_seq)}-{uuid.uuid4().hex[:8]}"


class Job:
    """Caller-side handle of one submitted job.

    *job_id* is normally minted by :func:`new_job_id`; the journal's
    recovery path passes the original id through so a re-queued job keeps
    its artifact path.
    """

    def __init__(self, spec, service, job_id: Optional[str] = None) -> None:
        self.spec = spec
        self.record = JobRecord(
            job_id=job_id if job_id is not None else new_job_id(),
            kind=spec.kind,
            job_class=getattr(spec, "job_class", JOB_CLASS_INTERACTIVE),
        )
        self.cancel_token = CancelToken()
        self._service = service
        self._done = threading.Event()
        self._result: Any = None

    # ------------------------------------------------------------------ #
    @property
    def job_id(self) -> str:
        return self.record.job_id

    @property
    def job_class(self) -> str:
        return self.record.job_class

    @property
    def status(self) -> JobStatus:
        return self.record.status

    @property
    def done(self) -> bool:
        return self._done.is_set()

    # ------------------------------------------------------------------ #
    def cancel(self, force: bool = False) -> bool:
        """Cancel the job.

        A still-queued job is removed from the queue atomically (it will
        never run; waiting callers see :class:`JobCancelledError`) and the
        method returns ``True``.  Once a worker claimed the job, plain
        ``cancel()`` returns ``False`` — running solves are not interrupted
        — while ``cancel(force=True)`` additionally requests *cooperative*
        cancellation: the job's token is set and the solver stops at its
        next safe point (between Newton iterations / transport time
        steps), recording ``CANCELLED``.  ``force=True`` returns ``True``
        when the cancellation was delivered (the job will terminate
        CANCELLED unless it finishes first) and ``False`` only for jobs
        already in a terminal state.
        """
        return self._service._cancel(self, force=force)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state (or *timeout*)."""
        return self._done.wait(timeout)

    def result(self, timeout: Optional[float] = None):
        """The job's result, blocking until it finishes.

        Raises
        ------
        TimeoutError
            The job did not finish within *timeout* seconds.
        JobFailedError
            The worker raised; the record carries the traceback.
        JobCancelledError
            The job was cancelled before a worker claimed it.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} did not finish within {timeout} s "
                f"(status: {self.status.value})"
            )
        if self.record.status is JobStatus.FAILED:
            raise JobFailedError(self.record)
        if self.record.status is JobStatus.CANCELLED:
            raise JobCancelledError(f"job {self.job_id} was cancelled")
        return self._result

    # ------------------------------------------------------------------ #
    # service-side completion hooks
    # ------------------------------------------------------------------ #
    def _complete(self, result) -> None:
        self._result = result
        self.record.status = JobStatus.DONE
        self.record.finished_at = time.time()
        self._done.set()

    def _fail(self, error: str, traceback_text: str) -> None:
        self.record.status = JobStatus.FAILED
        self.record.error = error
        self.record.traceback = traceback_text
        self.record.finished_at = time.time()
        self._done.set()

    def _cancelled(self) -> None:
        self.record.status = JobStatus.CANCELLED
        self.record.finished_at = time.time()
        self._done.set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Job(id={self.job_id}, kind={self.record.kind!r}, status={self.status.value})"
