"""Durable job journal: crash-safe persistence of queued service jobs.

PR 6's job layer is purely in-process: a killed worker process takes every
queued and running job with it, and the submitting side never learns.
This module makes submissions *durable* with nothing but the standard
library and the existing versioned-document discipline:

* **Spec documents.**  :func:`spec_to_dict` / :func:`spec_from_dict`
  serialize :class:`~repro.service.jobs.RegistrationJobSpec` and
  :class:`~repro.service.jobs.TransportJobSpec` as versioned JSON
  (``repro.service-jobspec`` v1).  Arrays are embedded bitwise (base64 of
  the C-contiguous buffer + dtype + shape), so a replayed job computes the
  *identical* result the original submission would have.  The same schema
  is the wire format of the HTTP front's ``POST /jobs``.

* **Append-only segments.**  A journal is a directory of
  ``segment-<n>.jsonl`` files.  Every submission appends one
  ``submitted`` record (spec included) to the active segment and — with
  ``fsync_on_commit`` (the default) — fsyncs before the submit call
  returns, so an acknowledged job survives a crash of the very next
  instruction.  Terminal transitions append small ``done`` / ``failed`` /
  ``cancelled`` records.  Appends never rewrite existing bytes; a torn
  final line (killed mid-append) is detected and skipped at replay.

* **Replay + compaction.**  :meth:`JobJournal.replay` folds the segments
  into the set of jobs that were submitted but never reached a terminal
  state — exactly the work a restarted service must re-queue.
  :meth:`JobJournal.compact` rewrites those pending records into one
  fresh segment through the atomic temp-file + ``os.replace`` pattern
  (fsync'd before the swap), then deletes the dead segments, bounding the
  journal's size by the live backlog instead of the service's lifetime.

Journal sizing: a record is ~1.4x the spec's array payload (base64) plus
~300 bytes of envelope; terminal records are ~150 bytes.  With the default
16 MiB segment cap, a 64^3 transport job (~4 MB of fields) rotates every
~3 jobs, and compaction on service start keeps dead segments from
accumulating.
"""

from __future__ import annotations

import base64
import dataclasses
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.core.optim.gauss_newton import SolverOptions
from repro.core.optim.line_search import ArmijoLineSearch
from repro.observability.trace import trace_span
from repro.service.jobs import (
    JOB_CLASS_INTERACTIVE,
    JobStatus,
    RegistrationJobSpec,
    TransportJobSpec,
)
from repro.spectral.grid import Grid
from repro.utils.logging import get_logger

LOGGER = get_logger("service.journal")

__all__ = [
    "JOURNAL_SCHEMA",
    "JOURNAL_SCHEMA_VERSION",
    "JobJournal",
    "MalformedSpecError",
    "PendingJob",
    "SPEC_SCHEMA",
    "SPEC_SCHEMA_VERSION",
    "spec_from_dict",
    "spec_to_dict",
]

#: Name and version of the serialized job-spec document (also the HTTP
#: submission wire format); bump the version on any breaking field change.
SPEC_SCHEMA = "repro.service-jobspec"
SPEC_SCHEMA_VERSION = 1

#: Name and version of one journal record (one JSON line per event).
JOURNAL_SCHEMA = "repro.service-journal"
JOURNAL_SCHEMA_VERSION = 1

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".jsonl"

#: Default rotation threshold of the active segment.
DEFAULT_SEGMENT_BYTES = 16 * 1024 * 1024


class MalformedSpecError(ValueError):
    """A spec document failed validation (the HTTP 400 error path)."""


# --------------------------------------------------------------------- #
# array / dataclass encoding
# --------------------------------------------------------------------- #
def _encode_array(array: np.ndarray) -> Dict[str, Any]:
    array = np.ascontiguousarray(array)
    return {
        "__ndarray__": True,
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def _decode_array(doc: Any, what: str) -> np.ndarray:
    if not isinstance(doc, dict) or not doc.get("__ndarray__"):
        raise MalformedSpecError(f"{what} must be an encoded ndarray document")
    try:
        dtype = np.dtype(doc["dtype"])
        shape = tuple(int(n) for n in doc["shape"])
        raw = base64.b64decode(doc["data"], validate=True)
    except (KeyError, TypeError, ValueError) as exc:
        raise MalformedSpecError(f"{what} is not a valid ndarray document: {exc}") from None
    expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64)) if shape else dtype.itemsize
    if len(raw) != expected:
        raise MalformedSpecError(
            f"{what} payload has {len(raw)} bytes, expected {expected} "
            f"for dtype {dtype} and shape {shape}"
        )
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


def _encode_grid(grid: Optional[Grid]) -> Optional[Dict[str, Any]]:
    if grid is None:
        return None
    return {
        "shape": list(grid.shape),
        "lengths": list(grid.lengths),
        "dtype": str(grid.dtype),
    }


def _decode_grid(doc: Any) -> Optional[Grid]:
    if doc is None:
        return None
    try:
        return Grid(doc["shape"], lengths=doc["lengths"], dtype=np.dtype(doc["dtype"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise MalformedSpecError(f"invalid grid document: {exc}") from None


def _encode_options(options: Optional[SolverOptions]) -> Optional[Dict[str, Any]]:
    if options is None:
        return None
    # field-by-field, NOT dataclasses.asdict: asdict deep-copies every
    # value, and a live cancel token holds a threading lock (unpicklable);
    # the token is a handle of THIS process and is never serialized anyway
    doc: Dict[str, Any] = {}
    for field in dataclasses.fields(options):
        if field.name == "cancel_token":
            continue
        value = getattr(options, field.name)
        if isinstance(value, ArmijoLineSearch):
            value = dataclasses.asdict(value)
        doc[field.name] = value
    return doc


def _decode_options(doc: Any) -> Optional[SolverOptions]:
    if doc is None:
        return None
    try:
        fields = dict(doc)
        fields.pop("cancel_token", None)
        line_search = fields.pop("line_search", None)
        if line_search is not None:
            fields["line_search"] = ArmijoLineSearch(**line_search)
        return SolverOptions(**fields)
    except (TypeError, ValueError) as exc:
        raise MalformedSpecError(f"invalid solver-options document: {exc}") from None


# --------------------------------------------------------------------- #
# spec documents
# --------------------------------------------------------------------- #
def spec_to_dict(spec: Union[RegistrationJobSpec, TransportJobSpec]) -> Dict[str, Any]:
    """Serialize a job spec as a versioned, JSON-ready document.

    Arrays are embedded bitwise; :func:`spec_from_dict` reconstructs a
    spec whose solve is numerically identical to the original's.
    """
    if spec.kind == "register":
        payload: Dict[str, Any] = {
            "template": _encode_array(spec.template),
            "reference": _encode_array(spec.reference),
            "beta": float(spec.beta),
            "regularization": spec.regularization,
            "incompressible": bool(spec.incompressible),
            "num_time_steps": int(spec.num_time_steps),
            "gauss_newton": bool(spec.gauss_newton),
            "optimizer": spec.optimizer,
            "smooth_sigma": float(spec.smooth_sigma),
            "normalize": bool(spec.normalize),
            "interpolation": spec.interpolation,
            "options": _encode_options(spec.options),
            "grid": _encode_grid(spec.grid),
        }
    elif spec.kind == "transport":
        payload = {
            "velocity": _encode_array(spec.velocity),
            "moving": _encode_array(spec.moving),
            "num_time_steps": int(spec.num_time_steps),
            "num_tasks": int(spec.num_tasks),
            "grid": _encode_grid(spec.grid),
        }
    else:  # pragma: no cover - new spec kinds must extend this module
        raise ValueError(f"unknown job-spec kind {spec.kind!r}")
    return {
        "schema": SPEC_SCHEMA,
        "schema_version": SPEC_SCHEMA_VERSION,
        "kind": spec.kind,
        "job_class": getattr(spec, "job_class", JOB_CLASS_INTERACTIVE),
        "spec": payload,
    }


def spec_from_dict(document: Any) -> Union[RegistrationJobSpec, TransportJobSpec]:
    """Reconstruct a job spec from :func:`spec_to_dict` output.

    Raises
    ------
    MalformedSpecError
        The document is not a valid v1 jobspec (clean, client-facing
        message — the HTTP front returns it verbatim with a 400).
    """
    if not isinstance(document, dict):
        raise MalformedSpecError("jobspec document must be a JSON object")
    if document.get("schema") != SPEC_SCHEMA:
        raise MalformedSpecError(
            f"jobspec schema must be {SPEC_SCHEMA!r}, got {document.get('schema')!r}"
        )
    if document.get("schema_version") != SPEC_SCHEMA_VERSION:
        raise MalformedSpecError(
            f"unsupported jobspec schema version {document.get('schema_version')!r} "
            f"(this service reads version {SPEC_SCHEMA_VERSION})"
        )
    kind = document.get("kind")
    payload = document.get("spec")
    if not isinstance(payload, dict):
        raise MalformedSpecError("jobspec 'spec' section must be a JSON object")
    job_class = document.get("job_class", JOB_CLASS_INTERACTIVE)
    if not isinstance(job_class, str) or not job_class:
        raise MalformedSpecError("jobspec 'job_class' must be a non-empty string")
    try:
        if kind == "register":
            return RegistrationJobSpec(
                template=_decode_array(payload.get("template"), "template"),
                reference=_decode_array(payload.get("reference"), "reference"),
                beta=float(payload.get("beta", 1e-2)),
                regularization=str(payload.get("regularization", "h1")),
                incompressible=bool(payload.get("incompressible", False)),
                num_time_steps=int(payload.get("num_time_steps", 4)),
                gauss_newton=bool(payload.get("gauss_newton", True)),
                optimizer=str(payload.get("optimizer", "gauss_newton")),
                smooth_sigma=float(payload.get("smooth_sigma", 1.0)),
                normalize=bool(payload.get("normalize", True)),
                interpolation=str(payload.get("interpolation", "cubic_bspline")),
                options=_decode_options(payload.get("options")),
                grid=_decode_grid(payload.get("grid")),
                job_class=job_class,
            )
        if kind == "transport":
            return TransportJobSpec(
                velocity=_decode_array(payload.get("velocity"), "velocity"),
                moving=_decode_array(payload.get("moving"), "moving"),
                num_time_steps=int(payload.get("num_time_steps", 4)),
                num_tasks=int(payload.get("num_tasks", 4)),
                grid=_decode_grid(payload.get("grid")),
                job_class=job_class,
            )
    except MalformedSpecError:
        raise
    except (TypeError, ValueError) as exc:
        raise MalformedSpecError(f"invalid {kind} jobspec: {exc}") from None
    raise MalformedSpecError(
        f"jobspec kind must be 'register' or 'transport', got {kind!r}"
    )


# --------------------------------------------------------------------- #
# the journal
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class PendingJob:
    """One journaled job that never reached a terminal state."""

    job_id: str
    job_class: str
    spec_document: Dict[str, Any]

    def spec(self) -> Union[RegistrationJobSpec, TransportJobSpec]:
        return spec_from_dict(self.spec_document)


class JobJournal:
    """Append-only, fsync'd, segmented journal of service jobs.

    Parameters
    ----------
    directory:
        Journal directory (created on first use).  One directory belongs
        to one service process at a time.
    max_segment_bytes:
        Rotation threshold of the active segment.
    fsync_on_commit:
        ``True`` (default) forces every record to stable storage before
        the append returns — the durability the kill -9 test pins.
        ``False`` trades that for lower submit latency (data survives a
        process crash but not a host power loss).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        fsync_on_commit: bool = True,
    ) -> None:
        if max_segment_bytes < 1:
            raise ValueError(
                f"max_segment_bytes must be positive, got {max_segment_bytes}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_segment_bytes = int(max_segment_bytes)
        self.fsync_on_commit = bool(fsync_on_commit)
        self._lock = threading.Lock()
        self._active: Optional[Any] = None  # open file handle of the active segment
        indices = [index for index, _ in self._segments()]
        self._active_index = max(indices) if indices else 0

    # ------------------------------------------------------------------ #
    # segment bookkeeping
    # ------------------------------------------------------------------ #
    def _segment_path(self, index: int) -> Path:
        return self.directory / f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"

    def _segments(self) -> List[Tuple[int, Path]]:
        """(index, path) of every segment on disk, sorted by index."""
        segments: List[Tuple[int, Path]] = []
        for path in self.directory.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"):
            stem = path.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
            try:
                segments.append((int(stem), path))
            except ValueError:  # foreign file; never touch it
                continue
        segments.sort()
        return segments

    def _open_active(self) -> Any:
        if self._active is None or self._active.closed:
            if self._active_index == 0:
                self._active_index = 1
            self._active = open(  # noqa: SIM115 - long-lived append handle
                self._segment_path(self._active_index), "a", encoding="utf-8"
            )
        return self._active

    def _rotate_if_needed(self) -> None:
        # caller holds the lock; the active handle is open
        if self._active.tell() < self.max_segment_bytes:
            return
        self._active.close()
        self._active_index += 1
        self._active = open(  # noqa: SIM115 - long-lived append handle
            self._segment_path(self._active_index), "a", encoding="utf-8"
        )

    def close(self) -> None:
        """Close the active segment handle (the journal stays replayable)."""
        with self._lock:
            if self._active is not None and not self._active.closed:
                self._active.close()

    # ------------------------------------------------------------------ #
    # appends
    # ------------------------------------------------------------------ #
    def _append(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            handle = self._open_active()
            handle.write(line + "\n")
            handle.flush()
            if self.fsync_on_commit:
                os.fsync(handle.fileno())
            self._rotate_if_needed()

    def _record(self, event: str, job_id: str, **extra: Any) -> Dict[str, Any]:
        return {
            "schema": JOURNAL_SCHEMA,
            "schema_version": JOURNAL_SCHEMA_VERSION,
            "event": event,
            "job_id": job_id,
            "at": time.time(),
            **extra,
        }

    def record_submitted(self, job) -> None:
        """Journal one submission (spec included) before it is queued."""
        with trace_span("service.journal.append", event="submitted"):
            self._append(
                self._record(
                    "submitted",
                    job.job_id,
                    job_class=job.job_class,
                    kind=job.record.kind,
                    spec=spec_to_dict(job.spec),
                )
            )

    def record_terminal(self, job) -> None:
        """Journal a terminal transition (done / failed / cancelled)."""
        status = job.record.status
        if not status.finished:  # pragma: no cover - service-side invariant
            raise ValueError(f"job {job.job_id} is not terminal ({status.value})")
        with trace_span("service.journal.append", event=status.value):
            self._append(self._record(status.value, job.job_id))

    # ------------------------------------------------------------------ #
    # replay + compaction
    # ------------------------------------------------------------------ #
    def _iter_records(self) -> Iterator[Dict[str, Any]]:
        segments = self._segments()
        for position, (_, path) in enumerate(segments):
            text = path.read_text(encoding="utf-8")
            lines = text.split("\n")
            # a file killed mid-append may end in a torn line (no trailing
            # newline); only the FINAL line of the FINAL segment may be
            # legitimately torn — anything else is corruption worth a warning
            for line_number, line in enumerate(lines):
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    last_segment = position == len(segments) - 1
                    torn_tail = line_number == len(lines) - 1 and not text.endswith("\n")
                    if last_segment and torn_tail:
                        LOGGER.warning(
                            "journal %s: skipping torn final record (crash mid-append)",
                            path.name,
                        )
                    else:
                        LOGGER.warning(
                            "journal %s:%d: skipping unreadable record",
                            path.name,
                            line_number + 1,
                        )
                    continue
                if record.get("schema") != JOURNAL_SCHEMA:
                    LOGGER.warning(
                        "journal %s:%d: skipping foreign record (schema %r)",
                        path.name,
                        line_number + 1,
                        record.get("schema"),
                    )
                    continue
                yield record

    def replay(self) -> List[PendingJob]:
        """Jobs submitted but never finished, in submission order."""
        with trace_span("service.journal.replay"):
            pending: Dict[str, PendingJob] = {}
            for record in self._iter_records():
                job_id = record.get("job_id")
                event = record.get("event")
                if event == "submitted":
                    spec_doc = record.get("spec")
                    if not isinstance(spec_doc, dict):
                        LOGGER.warning(
                            "journal: submitted record of job %s has no spec; skipping",
                            job_id,
                        )
                        continue
                    pending[job_id] = PendingJob(
                        job_id=job_id,
                        job_class=record.get("job_class", JOB_CLASS_INTERACTIVE),
                        spec_document=spec_doc,
                    )
                elif event in (status.value for status in JobStatus if status.finished):
                    pending.pop(job_id, None)
            return list(pending.values())

    def compact(self) -> List[PendingJob]:
        """Rewrite the journal down to its pending records; return them.

        The surviving records are written to a fresh segment through the
        atomic temp-file + ``os.replace`` pattern (fsync'd before the
        swap), and the dead segments are removed afterwards — a crash at
        any point leaves either the old segment set or the compacted one,
        never a mix missing live records.
        """
        with self._lock:
            if self._active is not None and not self._active.closed:
                self._active.close()
            pending = self.replay()
            old_segments = self._segments()
            next_index = (old_segments[-1][0] + 1) if old_segments else 1
            target = self._segment_path(next_index)
            tmp = target.with_suffix(target.suffix + ".tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                for entry in pending:
                    record = self._record(
                        "submitted",
                        entry.job_id,
                        job_class=entry.job_class,
                        kind=entry.spec_document.get("kind"),
                        spec=entry.spec_document,
                    )
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, target)
            for _, path in old_segments:
                path.unlink(missing_ok=True)
            self._active_index = next_index
            self._active = None
            return pending

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Journal shape for ``service_stats()`` / ``GET /stats``."""
        with self._lock:
            segments = self._segments()
            return {
                "directory": str(self.directory),
                "segments": len(segments),
                "bytes": sum(path.stat().st_size for _, path in segments),
                "fsync_on_commit": self.fsync_on_commit,
                "max_segment_bytes": self.max_segment_bytes,
            }
