"""Per-job JSON artifacts of the registration service.

Every finished job (succeeded, failed or cancelled) can be journaled to a
small JSON document, ``job-<id>.json``, in the service's artifact
directory.  The document is versioned (:data:`ARTIFACT_SCHEMA`); for
registration jobs it embeds the registration result's own versioned report
(:meth:`repro.core.registration.RegistrationResult.to_dict`) under
``"result"`` — one result schema shared by the CLI's verbose report and the
service — and for every job kind it carries the job record (status,
timestamps, batch size, error/traceback) plus the execution metrics the
worker collected (plan-pool delta and hit rate, layout decisions,
communication-ledger summary for distributed batches).

Writes are atomic (temp file + ``os.replace``), so a crash mid-write never
leaves a torn document for a collector to trip over.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Union

from repro.observability import snapshot as observability_snapshot
from repro.service.jobs import Job

#: Name and version of the per-job artifact document; bump the version on
#: any breaking field change.
ARTIFACT_SCHEMA = "repro.service-job"
ARTIFACT_SCHEMA_VERSION = 1

__all__ = [
    "ARTIFACT_SCHEMA",
    "ARTIFACT_SCHEMA_VERSION",
    "artifact_path",
    "job_artifact",
    "write_job_artifact",
]


def artifact_path(directory: Union[str, Path], job: Job) -> Path:
    """Where *job*'s artifact lives under *directory*."""
    return Path(directory) / f"job-{job.job_id}.json"


def job_artifact(job: Job) -> Dict[str, Any]:
    """The artifact document of *job* (JSON-ready).

    Carries the process-wide ``repro.observability-snapshot`` document
    under ``"observability"`` (additive; the job record is unchanged).
    """
    return {
        "schema": ARTIFACT_SCHEMA,
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "job": job.record.as_dict(),
        "observability": observability_snapshot(),
    }


def write_job_artifact(directory: Union[str, Path], job: Job) -> Path:
    """Write *job*'s artifact atomically; returns the written path.

    The temp file is unlinked on *any* failure (serialization included),
    so an artifact that cannot be written never leaks ``job-<id>.json.tmp``
    litter into the directory.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = artifact_path(directory, job)
    tmp = path.with_suffix(".json.tmp")
    try:
        tmp.write_text(json.dumps(job_artifact(job), indent=2, sort_keys=True))
        os.replace(tmp, path)
    finally:
        # after a successful replace the tmp name no longer exists;
        # on any failure this removes the partial file
        tmp.unlink(missing_ok=True)
    return path
