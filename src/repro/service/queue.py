"""Thread-safe submission queue: weighted class claiming + batch merging.

The queue keeps one FIFO per *job class* (``interactive`` submissions vs.
``atlas-burst`` population jobs — see :mod:`repro.service.jobs`) and
claims across them with **stride scheduling**: every class has a virtual
time that advances by ``1 / weight`` per claimed job, and
:meth:`SubmissionQueue.claim_batch` always serves the non-empty class with
the smallest virtual time.  With the default weights (``interactive: 4,
atlas-burst: 1``) a thousand-subject atlas burst cannot starve a single
interactive registration: the interactive job is claimed after at most a
handful of burst jobs, while the burst still consumes every idle worker
slot.  A class that was idle re-enters at the live virtual time, so saved
credit never turns into a retaliatory burst.

Within the chosen class, claiming is FIFO with one twist: workers claim
*batches*.  :meth:`claim_batch` pops the oldest queued job and — when it
is batchable — scans the rest of its class for jobs with the same
:func:`~repro.service.batching.batch_key`, pulling up to ``max_batch`` of
them out of order.  Compatible jobs therefore coalesce at *claim* time
with no artificial waiting when the queue is short.

Cancellation races are resolved here: a job can be cancelled exactly
while it is still in its deque, and the CANCELLED transition happens
**inside** the queue lock — an observer holding the lock (``claim_batch``,
``close``, a stats reader) can never see a job that is neither queued,
RUNNING, nor terminal.  Once ``claim_batch`` hands a job to a worker it
is RUNNING and :meth:`cancel` returns ``False`` (cooperative cancellation
of running jobs lives above the queue, in the job's cancel token).

Per-class queue depths are published to the process metrics registry as
the ``service.queue_depth`` gauge (labelled by ``job_class``), so the
observability snapshot and ``GET /stats`` expose starvation at a glance.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.config import env_service_class_weights
from repro.observability.metrics import get_metrics_registry
from repro.service.batching import batch_key
from repro.service.jobs import Job, JobStatus

__all__ = ["DEFAULT_CLASS_WEIGHTS", "SubmissionQueue"]

#: Built-in claim weights; any class not listed here claims with weight 1.
#: Interactive jobs get 4x the claim rate of atlas-burst jobs.
DEFAULT_CLASS_WEIGHTS: Dict[str, float] = {
    "interactive": 4.0,
    "atlas-burst": 1.0,
}

_QUEUE_DEPTH_GAUGE = get_metrics_registry().gauge(
    "service.queue_depth", "queued service jobs by job class"
)
_CLAIMED_COUNTER = get_metrics_registry().counter(
    "service.jobs_claimed", "service jobs claimed by workers, by job class"
)


class SubmissionQueue:
    """Per-class FIFOs with weighted fair claiming and batch merging.

    Parameters
    ----------
    class_weights:
        Claim weight per job class, layered over
        :data:`DEFAULT_CLASS_WEIGHTS` (and the
        ``REPRO_SERVICE_CLASS_WEIGHTS`` environment variable, which sits
        between the two).  Higher weight = claimed more often under
        contention; unknown classes default to weight 1.
    """

    def __init__(self, class_weights: Optional[Dict[str, float]] = None) -> None:
        self._queues: Dict[str, Deque[Job]] = {}
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._weights = dict(DEFAULT_CLASS_WEIGHTS)
        self._weights.update(env_service_class_weights())
        if class_weights:
            for name, weight in class_weights.items():
                weight = float(weight)
                if weight <= 0:
                    raise ValueError(
                        f"class weight of {name!r} must be positive, got {weight}"
                    )
                self._weights[name] = weight
        #: stride-scheduling virtual time per class (claims / weight)
        self._virtual_time: Dict[str, float] = {}
        #: monotonically increasing submission sequence (FIFO tie-breaks)
        self._submit_seq = 0
        self._seq: Dict[str, int] = {}  # job_id -> submission sequence

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._queues.values())

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def depths(self) -> Dict[str, int]:
        """Current queue depth per job class (snapshot)."""
        with self._lock:
            return {name: len(q) for name, q in self._queues.items()}

    def class_weight(self, job_class: str) -> float:
        """Effective claim weight of *job_class*."""
        return self._weights.get(job_class, 1.0)

    def _publish_depth(self, job_class: str) -> None:
        # caller holds the lock
        queue = self._queues.get(job_class)
        _QUEUE_DEPTH_GAUGE.set(len(queue) if queue else 0, job_class=job_class)

    # ------------------------------------------------------------------ #
    def submit(self, job: Job) -> None:
        """Append *job* to its class FIFO and wake one waiting worker."""
        with self._not_empty:
            if self._closed:
                raise RuntimeError("queue is closed; no further submissions accepted")
            job_class = job.job_class
            queue = self._queues.get(job_class)
            if queue is None:
                queue = self._queues[job_class] = deque()
            if not queue:
                # re-entering class: advance its virtual time to "now" so
                # credit saved while idle cannot starve the active classes
                live = [
                    self._virtual_time.get(name, 0.0)
                    for name, q in self._queues.items()
                    if q and name != job_class
                ]
                if live:
                    self._virtual_time[job_class] = max(
                        self._virtual_time.get(job_class, 0.0), min(live)
                    )
            queue.append(job)
            self._seq[job.job_id] = self._submit_seq
            self._submit_seq += 1
            self._publish_depth(job_class)
            self._not_empty.notify()

    def cancel(self, job: Job) -> bool:
        """Remove *job* if still queued; ``False`` once a worker claimed it.

        The CANCELLED transition happens inside the queue lock so no
        observer can catch the job in limbo between "not queued" and
        "terminal".
        """
        with self._lock:
            queue = self._queues.get(job.job_class)
            try:
                queue.remove(job)  # type: ignore[union-attr]
            except (AttributeError, ValueError):
                return False
            self._seq.pop(job.job_id, None)
            job._cancelled()
            self._publish_depth(job.job_class)
        return True

    def close(self) -> None:
        """Refuse new submissions and wake every blocked worker.

        Jobs already queued stay claimable so a draining shutdown finishes
        them; :meth:`claim_batch` returns ``None`` once the queue is both
        closed and empty.
        """
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    # ------------------------------------------------------------------ #
    def _pick_class(self) -> Optional[str]:
        """The non-empty class to serve next (stride scheduling).

        Caller holds the lock.  Smallest virtual time wins; ties go to the
        class whose head job was submitted first (global FIFO).
        """
        best: Optional[str] = None
        best_key = None
        for name, queue in self._queues.items():
            if not queue:
                continue
            key = (
                self._virtual_time.get(name, 0.0),
                self._seq.get(queue[0].job_id, 0),
            )
            if best_key is None or key < best_key:
                best, best_key = name, key
        return best

    def claim_batch(self, max_batch: int = 1, timeout: Optional[float] = None) -> Optional[List[Job]]:
        """Claim the next job plus up to ``max_batch - 1`` compatible peers.

        Blocks until a job is available; returns ``None`` when the queue is
        closed and drained (worker shutdown) or, with a *timeout*, when
        nothing arrived in time.  Every returned job is marked ``RUNNING``
        before the lock is released, closing the cancellation window.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_empty:
            while True:
                job_class = self._pick_class()
                if job_class is not None:
                    break
                if self._closed:
                    return None
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                self._not_empty.wait(remaining)
            queue = self._queues[job_class]
            lead = queue.popleft()
            batch = [lead]
            key = batch_key(lead.spec)
            if key is not None and max_batch > 1:
                kept: List[Job] = []
                for job in queue:
                    if len(batch) < max_batch and batch_key(job.spec) == key:
                        batch.append(job)
                    else:
                        kept.append(job)
                if len(batch) > 1:
                    self._queues[job_class] = deque(kept)
            weight = self._weights.get(job_class, 1.0)
            self._virtual_time[job_class] = (
                self._virtual_time.get(job_class, 0.0) + len(batch) / weight
            )
            now = time.time()
            for job in batch:
                self._seq.pop(job.job_id, None)
                job.record.status = JobStatus.RUNNING
                job.record.started_at = now
                job.record.batch_size = len(batch)
            self._publish_depth(job_class)
            _CLAIMED_COUNTER.inc(len(batch), job_class=job_class)
        return batch
