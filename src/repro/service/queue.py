"""Thread-safe submission queue with batch-aware claiming.

The queue is a plain FIFO of :class:`~repro.service.jobs.Job` handles with
one twist: workers claim *batches*, not jobs.  :meth:`SubmissionQueue.
claim_batch` pops the oldest queued job and — when it is batchable — scans
the remaining queue for jobs with the same :func:`~repro.service.batching.
batch_key`, pulling up to ``max_batch`` of them out of order.  Compatible
jobs therefore coalesce at *claim* time: whatever accumulated while the
workers were busy merges into one shared solve, with no artificial waiting
when the queue is short.

Cancellation races are resolved here: a job can be cancelled exactly while
it is still in the deque.  Once :meth:`claim_batch` hands it to a worker it
is ``RUNNING`` and :meth:`cancel` returns ``False``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, List, Optional

from repro.service.batching import batch_key
from repro.service.jobs import Job, JobStatus

__all__ = ["SubmissionQueue"]


class SubmissionQueue:
    """FIFO of queued jobs with compatible-batch claiming."""

    def __init__(self) -> None:
        self._jobs: Deque[Job] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # ------------------------------------------------------------------ #
    def submit(self, job: Job) -> None:
        """Append *job* and wake one waiting worker."""
        with self._not_empty:
            if self._closed:
                raise RuntimeError("queue is closed; no further submissions accepted")
            self._jobs.append(job)
            self._not_empty.notify()

    def cancel(self, job: Job) -> bool:
        """Remove *job* if still queued; ``False`` once a worker claimed it."""
        with self._lock:
            try:
                self._jobs.remove(job)
            except ValueError:
                return False
        job._cancelled()
        return True

    def close(self) -> None:
        """Refuse new submissions and wake every blocked worker.

        Jobs already queued stay claimable so a draining shutdown finishes
        them; :meth:`claim_batch` returns ``None`` once the queue is both
        closed and empty.
        """
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    # ------------------------------------------------------------------ #
    def claim_batch(self, max_batch: int = 1, timeout: Optional[float] = None) -> Optional[List[Job]]:
        """Claim the next job plus up to ``max_batch - 1`` compatible peers.

        Blocks until a job is available; returns ``None`` when the queue is
        closed and drained (worker shutdown) or, with a *timeout*, when
        nothing arrived in time.  Every returned job is marked ``RUNNING``
        before the lock is released, closing the cancellation window.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_empty:
            while not self._jobs:
                if self._closed:
                    return None
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                self._not_empty.wait(remaining)
            lead = self._jobs.popleft()
            batch = [lead]
            key = batch_key(lead.spec)
            if key is not None and max_batch > 1:
                kept: List[Job] = []
                for job in self._jobs:
                    if len(batch) < max_batch and batch_key(job.spec) == key:
                        batch.append(job)
                    else:
                        kept.append(job)
                if len(batch) > 1:
                    self._jobs = deque(kept)
            now = time.time()
            for job in batch:
                job.record.status = JobStatus.RUNNING
                job.record.started_at = now
                job.record.batch_size = len(batch)
        return batch
