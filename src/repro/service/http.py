"""Stdlib HTTP front of the registration service.

A thin :class:`http.server.ThreadingHTTPServer` layer that makes a running
:class:`~repro.service.workers.RegistrationService` reachable from outside
the process — no web framework, no new dependencies, just ``http.server``
and ``json``:

``POST /jobs``
    Body: a ``repro.service-jobspec`` v1 document (exactly the journal's
    spec schema — :func:`repro.service.journal.spec_to_dict` is the client
    encoder).  Returns ``202`` with ``{"job_id": ...}``; a malformed spec
    returns ``400`` with the validation message.
``GET /jobs/<id>``
    Status plus the full ``repro.service-job`` v1 artifact document of the
    job (the same document the artifact directory holds); ``404`` for an
    unknown id.
``DELETE /jobs/<id>``
    Cancels the job (cooperatively when RUNNING: the solve stops at its
    next safe point and records ``CANCELLED``).  Returns the delivery
    outcome and the status observed right after.
``GET /stats``
    ``service_stats()`` — queue depths, journal shape, plan-pool counters
    and the process observability snapshot.

The server threads only *submit, look up and cancel*; all solving stays in
the service's own worker pool, so an HTTP burst cannot oversubscribe the
compute workers.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.observability import trace_span
from repro.service.artifacts import job_artifact
from repro.service.jobs import json_safe
from repro.service.journal import MalformedSpecError, spec_from_dict
from repro.service.workers import RegistrationService
from repro.utils.logging import get_logger

LOGGER = get_logger("service.http")

__all__ = ["ServiceHTTPServer", "serve_http"]

#: Upper bound on an accepted request body; a 64^3 registration spec
#: (two fields, base64) is ~5.6 MB, so this admits realistic jobs while
#: refusing accidental multi-GB uploads before reading them.
MAX_BODY_BYTES = 256 * 1024 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` bound to one :class:`RegistrationService`."""

    daemon_threads = True

    def __init__(
        self,
        service: RegistrationService,
        address: Tuple[str, int] = ("127.0.0.1", 0),
    ) -> None:
        super().__init__(address, _ServiceRequestHandler)
        self.service = service

    @property
    def port(self) -> int:
        """The bound port (useful with port 0 — pick any free port)."""
        return self.server_address[1]


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        LOGGER.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, status: int, document: Dict[str, Any]) -> None:
        body = json.dumps(json_safe(document)).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_json_body(self) -> Any:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise MalformedSpecError("request body must be a JSON document")
        if length > MAX_BODY_BYTES:
            raise MalformedSpecError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise MalformedSpecError(f"request body is not valid JSON: {exc}") from None

    def _job_id_from_path(self) -> Optional[str]:
        parts = [part for part in self.path.split("?", 1)[0].split("/") if part]
        if len(parts) == 2 and parts[0] == "jobs":
            return parts[1]
        return None

    # ------------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------------ #
    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        if self.path.split("?", 1)[0].rstrip("/") != "/jobs":
            self._send_error_json(404, f"no such route: POST {self.path}")
            return
        try:
            with trace_span("service.http.submit"):
                document = self._read_json_body()
                spec = spec_from_dict(document)
                job = self.server.service._submit(spec)
        except MalformedSpecError as exc:
            self._send_error_json(400, str(exc))
            return
        except Exception as exc:  # noqa: BLE001 - client-facing boundary
            LOGGER.exception("HTTP submission failed")
            self._send_error_json(500, f"submission failed: {exc}")
            return
        self._send_json(
            202,
            {
                "job_id": job.job_id,
                "kind": job.record.kind,
                "job_class": job.job_class,
                "status": job.status.value,
            },
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        path = self.path.split("?", 1)[0]
        if path.rstrip("/") == "/stats":
            self._send_json(200, self.server.service.service_stats())
            return
        job_id = self._job_id_from_path()
        if job_id is None:
            self._send_error_json(404, f"no such route: GET {self.path}")
            return
        job = self.server.service.job(job_id)
        if job is None:
            self._send_error_json(404, f"unknown job id {job_id!r}")
            return
        self._send_json(
            200,
            {
                "job_id": job.job_id,
                "status": job.status.value,
                "artifact": job_artifact(job),
            },
        )

    def do_DELETE(self) -> None:  # noqa: N802 - http.server naming
        job_id = self._job_id_from_path()
        if job_id is None:
            self._send_error_json(404, f"no such route: DELETE {self.path}")
            return
        job = self.server.service.job(job_id)
        if job is None:
            self._send_error_json(404, f"unknown job id {job_id!r}")
            return
        with trace_span("service.http.cancel", job_id=job_id):
            delivered = job.cancel(force=True)
        self._send_json(
            200,
            {
                "job_id": job.job_id,
                "cancelled": delivered,
                "status": job.status.value,
            },
        )


def serve_http(
    service: RegistrationService,
    port: int,
    host: str = "127.0.0.1",
    background: bool = True,
) -> ServiceHTTPServer:
    """Expose *service* over HTTP; returns the bound server.

    With ``background=True`` (default) the accept loop runs on a daemon
    thread and the call returns immediately — ``server.shutdown()`` stops
    it.  ``port=0`` binds any free port (read it back from
    ``server.port``).
    """
    server = ServiceHTTPServer(service, (host, port))
    if background:
        thread = threading.Thread(
            target=server.serve_forever, name="repro-service-http", daemon=True
        )
        thread.start()
    LOGGER.info("service HTTP front listening on %s:%d", host, server.port)
    return server
