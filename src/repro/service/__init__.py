"""Async job layer over the registration solver (``repro.service``).

The paper's target workloads are *services*, not single solves: population
("atlas") studies run thousands of registrations against one template, and
the stated clinical constraint is throughput.  This subsystem turns the
synchronous :func:`repro.register` path into a queued, observable job
service without forking the numerics:

:mod:`repro.service.jobs`
    Job specs (registration / distributed transport), records, statuses and
    the caller-side :class:`~repro.service.jobs.Job` handle.
:mod:`repro.service.queue`
    Thread-safe submission queue whose claim path coalesces compatible
    transport jobs into micro-batches.
:mod:`repro.service.batching`
    The compatibility policy: which jobs may bitwise-safely share one
    ``solve_state_many`` stack.
:mod:`repro.service.workers`
    :class:`~repro.service.workers.RegistrationService` — the worker
    fan-out executing jobs through the existing solver paths, sharing the
    process-wide plan pool across requests.
:mod:`repro.service.artifacts`
    Versioned per-job JSON artifacts (result report, pool/layout/ledger
    metrics).
:mod:`repro.service.journal`
    Durable, crash-safe job journal (versioned jobspec documents,
    append-only fsync'd segments, replay + compaction on restart).
:mod:`repro.service.http`
    Stdlib HTTP front (``POST /jobs``, ``GET /jobs/<id>``,
    ``DELETE /jobs/<id>``, ``GET /stats``).
:mod:`repro.service.atlas`
    Atlas/population registration driver, the first batch workload.

For scripts, a process-wide default service is available through
:func:`submit` / :func:`gather` (mirrored at the top level as
``repro.submit`` / ``repro.gather``)::

    import repro
    jobs = [repro.submit(moving, atlas) for moving in subjects]
    results = repro.gather(jobs)
"""

from __future__ import annotations

import atexit
import threading
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.service.artifacts import (
    ARTIFACT_SCHEMA,
    ARTIFACT_SCHEMA_VERSION,
    job_artifact,
    write_job_artifact,
)
from repro.service.atlas import AtlasResult, run_atlas, submit_atlas
from repro.service.batching import batch_key, group_compatible, stack_compatible
from repro.service.http import ServiceHTTPServer, serve_http
from repro.service.jobs import (
    JOB_CLASS_ATLAS,
    JOB_CLASS_INTERACTIVE,
    Job,
    JobCancelledError,
    JobFailedError,
    JobRecord,
    JobStatus,
    RegistrationJobSpec,
    TransportJobSpec,
)
from repro.service.journal import (
    JOURNAL_SCHEMA,
    JOURNAL_SCHEMA_VERSION,
    SPEC_SCHEMA,
    SPEC_SCHEMA_VERSION,
    JobJournal,
    MalformedSpecError,
    spec_from_dict,
    spec_to_dict,
)
from repro.service.queue import SubmissionQueue
from repro.service.workers import RegistrationService

__all__ = [
    "ARTIFACT_SCHEMA",
    "ARTIFACT_SCHEMA_VERSION",
    "AtlasResult",
    "JOB_CLASS_ATLAS",
    "JOB_CLASS_INTERACTIVE",
    "JOURNAL_SCHEMA",
    "JOURNAL_SCHEMA_VERSION",
    "Job",
    "JobCancelledError",
    "JobFailedError",
    "JobJournal",
    "JobRecord",
    "JobStatus",
    "MalformedSpecError",
    "RegistrationJobSpec",
    "RegistrationService",
    "SPEC_SCHEMA",
    "SPEC_SCHEMA_VERSION",
    "ServiceHTTPServer",
    "SubmissionQueue",
    "TransportJobSpec",
    "batch_key",
    "default_service",
    "gather",
    "group_compatible",
    "job_artifact",
    "run_atlas",
    "serve_http",
    "shutdown_default_service",
    "spec_from_dict",
    "spec_to_dict",
    "stack_compatible",
    "submit",
    "submit_atlas",
    "write_job_artifact",
]

_default_service: Optional[RegistrationService] = None
_default_lock = threading.Lock()


def default_service() -> RegistrationService:
    """The lazily created process-wide service (shut down at exit)."""
    global _default_service
    with _default_lock:
        if _default_service is None:
            _default_service = RegistrationService()
        return _default_service


def shutdown_default_service(drain: bool = True) -> None:
    """Shut down (and forget) the process-wide default service, if any."""
    global _default_service
    with _default_lock:
        service = _default_service
        _default_service = None
    if service is not None:
        service.shutdown(drain=drain)


atexit.register(shutdown_default_service)


def submit(template: np.ndarray, reference: np.ndarray, **kwargs: Any) -> Job:
    """Queue a registration on the default service; returns the job handle.

    Keyword arguments mirror :func:`repro.register`
    (see :class:`~repro.service.jobs.RegistrationJobSpec`).
    """
    spec = RegistrationJobSpec(template=template, reference=reference, **kwargs)
    return default_service().submit_registration(spec)


def gather(
    jobs: Sequence[Job],
    timeout: Optional[float] = None,
    raise_on_error: bool = True,
) -> List[Any]:
    """Results of *jobs* in submission order (default-service convenience)."""
    return default_service().gather(jobs, timeout=timeout, raise_on_error=raise_on_error)
