"""Atlas (population) registration: the service's first batch workload.

Atlas construction registers every subject image of a population to one
fixed reference (the atlas/template) — the paper's clinical motivation for
a *fast* solver is exactly such population studies, where "a single study
may require thousands of registrations".  The workload is embarrassingly
parallel across subjects but heavily redundant across solves: every
registration shares the grid, the regularization and — at the first
Gauss-Newton iteration — the zero initial velocity, so the plan pool's
single-flight builds turn N cold starts into one build plus N-1 warm hits.

:func:`run_atlas` drives the workload through a
:class:`~repro.service.workers.RegistrationService`: submit one
registration job per subject, gather, and average the deformed subjects
into the updated atlas estimate (one fixed-template iteration of the
classical iterative atlas-building loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.service.jobs import JOB_CLASS_ATLAS, Job, RegistrationJobSpec
from repro.service.workers import RegistrationService

__all__ = ["AtlasResult", "run_atlas", "submit_atlas"]


@dataclass
class AtlasResult:
    """Outcome of one fixed-template atlas pass."""

    #: Per-subject registration results (``None`` where a job failed and
    #: ``raise_on_error=False`` kept the survivors).
    results: List[Any]
    #: Per-subject job handles (status, metrics, timings).
    jobs: List[Job]
    #: Mean of the deformed subjects — the updated atlas estimate.
    mean_deformed: Optional[np.ndarray]

    @property
    def num_succeeded(self) -> int:
        return sum(1 for result in self.results if result is not None)

    @property
    def num_failed(self) -> int:
        return len(self.results) - self.num_succeeded

    def summary(self) -> Dict[str, Any]:
        """Compact population-level report (used by the CLI and the bench)."""
        residuals = [
            result.relative_residual for result in self.results if result is not None
        ]
        return {
            "num_subjects": len(self.results),
            "num_succeeded": self.num_succeeded,
            "num_failed": self.num_failed,
            "mean_relative_residual": float(np.mean(residuals)) if residuals else None,
            "max_relative_residual": float(np.max(residuals)) if residuals else None,
            "all_diffeomorphic": all(
                result.is_diffeomorphic for result in self.results if result is not None
            ),
        }


def submit_atlas(
    service: RegistrationService,
    reference: np.ndarray,
    movings: Sequence[np.ndarray],
    **register_kwargs: Any,
) -> List[Job]:
    """Queue one registration job per subject; returns the handles.

    *register_kwargs* are forwarded into every
    :class:`~repro.service.jobs.RegistrationJobSpec` (``beta``,
    ``num_time_steps``, ``options``, ...), so the whole population runs
    under one set of solver parameters.  Atlas jobs submit under the
    ``atlas-burst`` job class by default, so the queue's weighted claiming
    keeps interactive registrations flowing through a population burst.
    """
    register_kwargs.setdefault("job_class", JOB_CLASS_ATLAS)
    return [
        service.submit_registration(
            RegistrationJobSpec(template=moving, reference=reference, **register_kwargs)
        )
        for moving in movings
    ]


def run_atlas(
    reference: np.ndarray,
    movings: Sequence[np.ndarray],
    service: Optional[RegistrationService] = None,
    raise_on_error: bool = True,
    **register_kwargs: Any,
) -> AtlasResult:
    """Register every subject in *movings* to *reference* through the service.

    Parameters
    ----------
    reference:
        The fixed atlas/template image.
    movings:
        The subject images (all sharing the reference's shape).
    service:
        Service to run on; when omitted a private one is created (with its
        defaults) and shut down afterwards.
    raise_on_error:
        ``True`` propagates the first failed subject; ``False`` records
        ``None`` for failures and averages the survivors.
    register_kwargs:
        Forwarded to every subject's registration (see :func:`submit_atlas`).
    """
    if not len(movings):
        raise ValueError("movings must contain at least one subject image")
    owned = service is None
    if service is None:
        service = RegistrationService()
    try:
        jobs = submit_atlas(service, reference, movings, **register_kwargs)
        results = service.gather(jobs, raise_on_error=raise_on_error)
    finally:
        if owned:
            service.shutdown()
    deformed = [result.deformed_template for result in results if result is not None]
    mean_deformed = np.mean(deformed, axis=0) if deformed else None
    return AtlasResult(results=results, jobs=jobs, mean_deformed=mean_deformed)
