"""Micro-batching policy: which queued jobs may share one solve.

The service batches at the *transport* level: two queued transport jobs can
ride one :meth:`~repro.parallel.transport.DistributedTransportSolver.
solve_state_many` stack — sharing the stepper's plan setup plus one ghost
exchange and one value-return ``alltoallv`` per time step — exactly when
every ingredient of the distributed stencil plan matches.  The issue-level
compatibility tuple is (grid, dt, backend, layout); the plan additionally
depends on the velocity *content* (departure points are ``x - dt·v``), so
the batch key includes the velocity fingerprint too — without it the merged
solve could not be bitwise identical to the serial jobs.

Registration jobs never merge (each one is its own Gauss-Newton iteration
over a different image pair): :func:`batch_key` returns ``None`` and the
queue hands them out one at a time.  Their cross-request sharing happens in
the process-wide plan pool instead, which concurrent workers hit through
the single-flight build path.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Sequence

from repro.runtime.plan_pool import array_fingerprint
from repro.transport.kernels import default_backend_name, plan_layout_cache_token

__all__ = ["batch_key", "group_compatible", "stack_compatible"]


def batch_key(spec) -> Optional[Hashable]:
    """Batch-compatibility key of a job spec, or ``None`` when unbatchable.

    Two specs with equal keys produce bitwise-identical results whether they
    are solved together (one ``solve_state_many`` stack) or alone.
    """
    if getattr(spec, "kind", None) != "transport":
        return None
    grid = spec.resolved_grid()
    return (
        "transport",
        grid.shape,
        int(spec.num_time_steps),
        int(spec.num_tasks),
        default_backend_name(),
        plan_layout_cache_token(),
        array_fingerprint(spec.velocity),
    )


def group_compatible(specs: Iterable, max_batch: int) -> List[List]:
    """Greedily group *specs* into batches of compatible jobs.

    Order inside each batch follows submission order; unbatchable specs
    (``batch_key() is None``) always form singleton groups.  Used by the
    queue's claim path and directly testable against the serial solves.
    """
    if max_batch < 1:
        raise ValueError(f"max_batch must be >= 1, got {max_batch}")
    groups: List[List] = []
    open_groups: dict = {}
    for spec in specs:
        key = batch_key(spec)
        if key is None:
            groups.append([spec])
            continue
        group = open_groups.get(key)
        if group is None or len(group) >= max_batch:
            group = []
            groups.append(group)
            open_groups[key] = group
        group.append(spec)
    return groups


def stack_compatible(specs: Sequence) -> bool:
    """True when every spec in *specs* shares one batch key (and it exists)."""
    if not specs:
        return False
    keys = {batch_key(spec) for spec in specs}
    return len(keys) == 1 and None not in keys
