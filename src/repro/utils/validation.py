"""Argument validation helpers.

Every public entry point validates its inputs through these helpers so that
misuse produces a clear ``ValueError``/``TypeError`` instead of a cryptic
numpy broadcasting failure three layers down.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def check_positive(value: float, name: str) -> float:
    """Ensure *value* is a finite, strictly positive scalar."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_positive_int(value: int, name: str) -> int:
    """Ensure *value* is a strictly positive integer."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_probability(value: float, name: str) -> float:
    """Ensure *value* lies in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_shape_3d(shape: Sequence[int], name: str = "shape") -> Tuple[int, int, int]:
    """Validate a 3D grid shape (three positive integers)."""
    shape = tuple(int(s) for s in shape)
    if len(shape) != 3:
        raise ValueError(f"{name} must have exactly 3 entries, got {len(shape)}")
    for s in shape:
        if s < 2:
            raise ValueError(f"every entry of {name} must be >= 2, got {shape}")
    return shape  # type: ignore[return-value]


def check_same_shape(a: np.ndarray, b: np.ndarray, names: str = "arrays") -> None:
    """Raise if the two arrays do not share the same shape."""
    if a.shape != b.shape:
        raise ValueError(f"{names} must have identical shapes, got {a.shape} and {b.shape}")


def check_velocity_shape(v: np.ndarray, grid_shape: Sequence[int]) -> np.ndarray:
    """Validate a stacked velocity array of shape ``(3, N1, N2, N3)``."""
    v = np.asarray(v)
    expected = (3, *tuple(int(s) for s in grid_shape))
    if v.shape != expected:
        raise ValueError(f"velocity must have shape {expected}, got {v.shape}")
    return v
