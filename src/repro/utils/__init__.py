"""Utility helpers shared across the :mod:`repro` package.

The helpers in this package intentionally have no dependency on the rest of
the library so that every subsystem (spectral operators, transport,
optimization, parallel substrate) can use them freely.
"""

from repro.utils.logging import get_logger, set_verbosity
from repro.utils.timing import Timer, TimingRegistry
from repro.utils.validation import (
    check_positive,
    check_positive_int,
    check_probability,
    check_same_shape,
    check_shape_3d,
    check_velocity_shape,
)

__all__ = [
    "get_logger",
    "set_verbosity",
    "Timer",
    "TimingRegistry",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "check_same_shape",
    "check_shape_3d",
    "check_velocity_shape",
]
