"""Light-weight logging facade.

The solver reports per-iteration convergence information (objective value,
gradient norm, PCG iterations, step length) the same way the paper's C++
implementation streams its convergence history.  We keep this on top of the
standard :mod:`logging` module so downstream users can redirect everything
through their own handlers.
"""

from __future__ import annotations

import logging
import sys

_ROOT_NAME = "repro"
_CONFIGURED = False


def _configure_root() -> None:
    """Attach a single stream handler to the package root logger."""
    global _CONFIGURED
    if _CONFIGURED:
        return
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("[%(levelname)s %(name)s] %(message)s")
        )
        root.addHandler(handler)
    root.setLevel(logging.WARNING)
    _CONFIGURED = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger nested under the package root.

    Parameters
    ----------
    name:
        Dotted suffix, e.g. ``"core.optim"``.  The returned logger is
        ``repro.core.optim``.
    """
    _configure_root()
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def set_verbosity(level: int | str) -> None:
    """Set the verbosity of every logger in the package.

    Parameters
    ----------
    level:
        Either a :mod:`logging` level constant (``logging.INFO``) or one of
        the strings ``"quiet"``, ``"info"``, ``"debug"``.
    """
    _configure_root()
    if isinstance(level, str):
        mapping = {
            "quiet": logging.WARNING,
            "warning": logging.WARNING,
            "info": logging.INFO,
            "debug": logging.DEBUG,
        }
        try:
            level = mapping[level.lower()]
        except KeyError as exc:  # pragma: no cover - defensive
            raise ValueError(
                f"unknown verbosity {level!r}; expected one of {sorted(mapping)}"
            ) from exc
    logging.getLogger(_ROOT_NAME).setLevel(level)
