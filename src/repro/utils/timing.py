"""Wall-clock timing helpers.

The paper reports, for every run, the time-to-solution plus a breakdown into
FFT communication/execution and interpolation communication/execution
(Tables I-IV).  :class:`TimingRegistry` mirrors that breakdown: the solver
wraps its kernels in named :class:`Timer` sections and the registry
accumulates the totals so the benchmark harness can print the same columns.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class Timer:
    """Accumulating timer for one named section.

    Attributes
    ----------
    name:
        Section label (for example ``"fft_execution"``).
    total:
        Accumulated seconds across all calls.
    calls:
        Number of start/stop cycles.
    """

    name: str
    total: float = 0.0
    calls: int = 0
    _started: float | None = None

    def start(self) -> None:
        if self._started is not None:
            raise RuntimeError(f"timer {self.name!r} already running")
        self._started = time.perf_counter()

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError(f"timer {self.name!r} is not running")
        elapsed = time.perf_counter() - self._started
        self._started = None
        self.total += elapsed
        self.calls += 1
        return elapsed

    @property
    def running(self) -> bool:
        return self._started is not None

    @property
    def mean(self) -> float:
        """Mean seconds per call (0 if never called)."""
        return self.total / self.calls if self.calls else 0.0


# Section names used throughout the solver so that the benchmark harness can
# assemble the same columns the paper reports.
FFT_EXECUTION = "fft_execution"
FFT_COMMUNICATION = "fft_communication"
INTERP_EXECUTION = "interp_execution"
INTERP_COMMUNICATION = "interp_communication"
TIME_TO_SOLUTION = "time_to_solution"


@dataclass
class TimingRegistry:
    """Collection of named timers with the paper's reporting categories."""

    timers: Dict[str, Timer] = field(default_factory=dict)

    def timer(self, name: str) -> Timer:
        """Return (creating if needed) the timer called *name*."""
        if name not in self.timers:
            self.timers[name] = Timer(name)
        return self.timers[name]

    @contextmanager
    def section(self, name: str) -> Iterator[Timer]:
        """Context manager accumulating the elapsed time into *name*."""
        t = self.timer(name)
        t.start()
        try:
            yield t
        finally:
            t.stop()

    def total(self, name: str) -> float:
        """Total seconds spent in *name* (0 if the section never ran)."""
        return self.timers[name].total if name in self.timers else 0.0

    def reset(self) -> None:
        self.timers.clear()

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of section totals, suitable for reports."""
        return {name: timer.total for name, timer in sorted(self.timers.items())}

    def merge(self, other: "TimingRegistry") -> None:
        """Accumulate the totals of *other* into this registry."""
        for name, timer in other.timers.items():
            mine = self.timer(name)
            mine.total += timer.total
            mine.calls += timer.calls

    def paper_breakdown(self) -> Dict[str, float]:
        """Breakdown with the exact columns of the paper's tables."""
        return {
            "time_to_solution": self.total(TIME_TO_SOLUTION),
            "fft_communication": self.total(FFT_COMMUNICATION),
            "fft_execution": self.total(FFT_EXECUTION),
            "interp_communication": self.total(INTERP_COMMUNICATION),
            "interp_execution": self.total(INTERP_EXECUTION),
        }
