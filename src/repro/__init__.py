"""repro — reproduction of "Distributed-Memory Large Deformation
Diffeomorphic 3D Image Registration" (Mang, Gholami, Biros; SC 2016).

The package is organized bottom-up, mirroring the structure of the paper:

* :mod:`repro.spectral` — Fourier discretization in space (Sec. III-B1),
* :mod:`repro.transport` — semi-Lagrangian transport in time (Sec. III-B2),
* :mod:`repro.runtime` — the shared execution runtime behind both kernel
  registries: the LRU plan pool with byte-accurate accounting and the
  unified worker-pool policy,
* :mod:`repro.core` — the optimal-control registration problem and the
  preconditioned inexact Gauss-Newton-Krylov solver (Sec. II-B, III-A),
* :mod:`repro.parallel` — the distributed-memory substrate: pencil
  decomposition, distributed FFT, ghost exchange, semi-Lagrangian scatter,
  and the analytic performance model used to reproduce the scaling studies
  (Sec. III-C, IV),
* :mod:`repro.service` — the async job layer: queued registrations,
  worker fan-out, transport micro-batching and the atlas workload,
* :mod:`repro.data` — the synthetic problem of Fig. 5 and the brain-phantom
  substitute for the NIREP data,
* :mod:`repro.analysis` — scaling analysis, table formatting and the paper's
  reference tables.

This module is the stable facade: everything a downstream user needs for
the two supported calling styles is importable from ``repro`` directly.

Synchronous quick start
-----------------------
>>> from repro import register
>>> from repro.data.synthetic import synthetic_registration_problem
>>> prob = synthetic_registration_problem(16)
>>> result = register(prob.template, prob.reference, beta=1e-2)
>>> result.relative_residual < 1.0
True

Queued (service) style::

    import repro
    jobs = [repro.submit(moving, atlas) for moving in subjects]
    results = repro.gather(jobs)

Execution knobs (backends, plan layout, workers, pool budget) travel in a
:class:`repro.RegistrationConfig`; see its docstring for the precedence
rules against the ``REPRO_*`` environment variables.
"""

from repro.config import RegistrationConfig
from repro.core.optim.gauss_newton import SolverOptions
from repro.core.registration import RegistrationResult, RegistrationSolver, register
from repro.service import Job, JobStatus, RegistrationService, gather, submit
from repro.spectral.grid import Grid

__version__ = "1.1.0"

__all__ = [
    "Grid",
    "Job",
    "JobStatus",
    "RegistrationConfig",
    "RegistrationResult",
    "RegistrationService",
    "RegistrationSolver",
    "SolverOptions",
    "__version__",
    "gather",
    "register",
    "submit",
]
