"""repro — reproduction of "Distributed-Memory Large Deformation
Diffeomorphic 3D Image Registration" (Mang, Gholami, Biros; SC 2016).

The package is organized bottom-up, mirroring the structure of the paper:

* :mod:`repro.spectral` — Fourier discretization in space (Sec. III-B1),
* :mod:`repro.transport` — semi-Lagrangian transport in time (Sec. III-B2),
* :mod:`repro.runtime` — the shared execution runtime behind both kernel
  registries: the LRU plan pool with byte-accurate accounting and the
  unified worker-pool policy,
* :mod:`repro.core` — the optimal-control registration problem and the
  preconditioned inexact Gauss-Newton-Krylov solver (Sec. II-B, III-A),
* :mod:`repro.parallel` — the distributed-memory substrate: pencil
  decomposition, distributed FFT, ghost exchange, semi-Lagrangian scatter,
  and the analytic performance model used to reproduce the scaling studies
  (Sec. III-C, IV),
* :mod:`repro.data` — the synthetic problem of Fig. 5 and the brain-phantom
  substitute for the NIREP data,
* :mod:`repro.analysis` — scaling analysis, table formatting and the paper's
  reference tables.

Quick start
-----------
>>> from repro import register
>>> from repro.data.synthetic import synthetic_registration_problem
>>> prob = synthetic_registration_problem(16)
>>> result = register(prob.template, prob.reference, beta=1e-2)
>>> result.relative_residual < 1.0
True
"""

from repro.core.registration import RegistrationResult, RegistrationSolver, register
from repro.core.optim.gauss_newton import SolverOptions
from repro.spectral.grid import Grid

__version__ = "1.0.0"

__all__ = [
    "register",
    "RegistrationSolver",
    "RegistrationResult",
    "SolverOptions",
    "Grid",
    "__version__",
]
