"""Regular periodic Cartesian grid descriptor.

The paper works on the domain ``Omega = [0, 2*pi)^3`` with ``N1 x N2 x N3``
grid points, ``x_i = 2*pi*i/N`` and periodic boundary conditions (Sec. II and
III-B1).  :class:`Grid` centralizes the bookkeeping needed everywhere else:

* grid spacing and cell volume (used by the discretized ``L2`` inner product),
* nodal coordinate arrays,
* integer Fourier wavenumbers for the full and the real-to-complex transform,
* helper factories for scalar and vector (velocity) fields.

The implementation supports anisotropic grids (the brain data in the paper is
``256 x 300 x 256``) and, for completeness, anisotropic domain extents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Tuple

import numpy as np

from repro.utils.validation import check_shape_3d

TWO_PI = 2.0 * np.pi


@dataclass(frozen=True)
class Grid:
    """Periodic Cartesian grid on ``[0, L1) x [0, L2) x [0, L3)``.

    Parameters
    ----------
    shape:
        Number of grid points per dimension ``(N1, N2, N3)``.
    lengths:
        Domain extent per dimension; defaults to ``2*pi`` in every direction
        as in the paper.
    dtype:
        Floating point dtype used for real-space fields.
    """

    shape: Tuple[int, int, int]
    lengths: Tuple[float, float, float] = (TWO_PI, TWO_PI, TWO_PI)
    dtype: np.dtype = field(default=np.dtype(np.float64))

    def __init__(
        self,
        shape: Iterable[int],
        lengths: Iterable[float] | None = None,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        shape = check_shape_3d(tuple(shape), "shape")
        if lengths is None:
            lengths = (TWO_PI, TWO_PI, TWO_PI)
        lengths = tuple(float(length) for length in lengths)
        if len(lengths) != 3 or any(length <= 0 for length in lengths):
            raise ValueError(f"lengths must be 3 positive floats, got {lengths}")
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "lengths", lengths)
        object.__setattr__(self, "dtype", np.dtype(dtype))

    # ------------------------------------------------------------------ #
    # basic geometry
    # ------------------------------------------------------------------ #
    @property
    def ndim(self) -> int:
        return 3

    @property
    def num_points(self) -> int:
        """Total number of grid points ``N1*N2*N3``."""
        n1, n2, n3 = self.shape
        return n1 * n2 * n3

    @property
    def spacing(self) -> Tuple[float, float, float]:
        """Grid spacing ``h_j = L_j / N_j`` per dimension."""
        return tuple(L / n for L, n in zip(self.lengths, self.shape))

    @property
    def cell_volume(self) -> float:
        """Volume of one grid cell, the quadrature weight of the L2 products."""
        h1, h2, h3 = self.spacing
        return h1 * h2 * h3

    @property
    def domain_volume(self) -> float:
        l1, l2, l3 = self.lengths
        return l1 * l2 * l3

    def is_isotropic(self) -> bool:
        """True when the grid spacing is identical in every direction."""
        h1, h2, h3 = self.spacing
        return np.isclose(h1, h2) and np.isclose(h2, h3)

    # ------------------------------------------------------------------ #
    # coordinates
    # ------------------------------------------------------------------ #
    def axis_coordinates(self, axis: int) -> np.ndarray:
        """1D nodal coordinates ``x_i = i * h`` along *axis*."""
        if axis not in (0, 1, 2):
            raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
        n = self.shape[axis]
        return np.arange(n, dtype=self.dtype) * (self.lengths[axis] / n)

    def coordinates(self, sparse: bool = False) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Meshgrid of nodal coordinates (``indexing='ij'``)."""
        axes = [self.axis_coordinates(axis) for axis in range(3)]
        return tuple(np.meshgrid(*axes, indexing="ij", sparse=sparse))

    def coordinate_stack(self) -> np.ndarray:
        """Nodal coordinates stacked as an array of shape ``(3, N1, N2, N3)``."""
        x1, x2, x3 = self.coordinates()
        return np.stack([x1, x2, x3], axis=0)

    # ------------------------------------------------------------------ #
    # wavenumbers
    # ------------------------------------------------------------------ #
    def wavenumbers_1d(self, axis: int, real_axis: bool = False) -> np.ndarray:
        """Angular wavenumbers along *axis*.

        For the default ``L = 2*pi`` the returned values are integers
        ``-N/2+1 .. N/2`` in FFT ordering; for other extents they are scaled
        by ``2*pi/L``.

        Parameters
        ----------
        axis:
            Dimension index.
        real_axis:
            If True, return the (half-spectrum) wavenumbers of a
            real-to-complex transform along this axis.
        """
        n = self.shape[axis]
        scale = TWO_PI / self.lengths[axis]
        if real_axis:
            freqs = np.fft.rfftfreq(n, d=1.0 / n)
        else:
            freqs = np.fft.fftfreq(n, d=1.0 / n)
        return (freqs * scale).astype(self.dtype)

    def derivative_wavenumbers_1d(self, axis: int, real_axis: bool = False) -> np.ndarray:
        """Wavenumbers for *odd-order* (first) derivatives.

        Identical to :meth:`wavenumbers_1d` except that the Nyquist mode of
        an even-length axis is set to zero.  For real data the Nyquist
        coefficient has no well-defined odd derivative (it aliases ``+N/2``
        and ``-N/2``); keeping it non-zero breaks the skew-adjointness of the
        discrete derivative and, in particular, the exactness of the Leray
        projection (``div P v = 0``).  This is the standard convention of
        Fourier pseudo-spectral codes.
        """
        k = self.wavenumbers_1d(axis, real_axis=real_axis).copy()
        n = self.shape[axis]
        if n % 2 == 0:
            nyquist = (n // 2) * TWO_PI / self.lengths[axis]
            k[np.isclose(np.abs(k), nyquist)] = 0.0
        return k

    def wavenumber_mesh(
        self, real_last_axis: bool = True, derivative: bool = False
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Broadcastable wavenumber arrays ``(k1, k2, k3)``.

        When ``real_last_axis`` is True the arrays match the layout of
        ``numpy.fft.rfftn`` output (half spectrum along the last axis).  With
        ``derivative=True`` the Nyquist modes are zeroed (see
        :meth:`derivative_wavenumbers_1d`).
        """
        if derivative:
            k1 = self.derivative_wavenumbers_1d(0)
            k2 = self.derivative_wavenumbers_1d(1)
            k3 = self.derivative_wavenumbers_1d(2, real_axis=real_last_axis)
        else:
            k1 = self.wavenumbers_1d(0)
            k2 = self.wavenumbers_1d(1)
            k3 = self.wavenumbers_1d(2, real_axis=real_last_axis)
        return (
            k1[:, None, None],
            k2[None, :, None],
            k3[None, None, :],
        )

    def laplacian_symbol(self, real_last_axis: bool = True) -> np.ndarray:
        """Spectral symbol of the (negative semi-definite) Laplacian, ``-|k|^2``."""
        k1, k2, k3 = self.wavenumber_mesh(real_last_axis=real_last_axis)
        return -(k1 * k1 + k2 * k2 + k3 * k3)

    def nyquist_wavenumber(self) -> float:
        """Largest resolvable angular wavenumber (isotropic estimate)."""
        return float(
            min(n / 2 * TWO_PI / L for n, L in zip(self.shape, self.lengths))
        )

    # ------------------------------------------------------------------ #
    # field factories
    # ------------------------------------------------------------------ #
    def zeros(self) -> np.ndarray:
        """New scalar field of zeros."""
        return np.zeros(self.shape, dtype=self.dtype)

    def zeros_vector(self) -> np.ndarray:
        """New vector field (e.g. velocity) of zeros, shape ``(3, N1, N2, N3)``."""
        return np.zeros((3, *self.shape), dtype=self.dtype)

    def empty(self) -> np.ndarray:
        return np.empty(self.shape, dtype=self.dtype)

    def random_field(self, rng: np.random.Generator | None = None, amplitude: float = 1.0) -> np.ndarray:
        """Uniform random scalar field, mostly used by the test-suite."""
        rng = np.random.default_rng() if rng is None else rng
        return amplitude * rng.standard_normal(self.shape).astype(self.dtype)

    # ------------------------------------------------------------------ #
    # inner products and norms (discrete L2)
    # ------------------------------------------------------------------ #
    def inner(self, a: np.ndarray, b: np.ndarray) -> float:
        """Discrete L2 inner product ``sum(a*b) * cell_volume``.

        Works for both scalar fields and stacked vector fields.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        if a.shape != b.shape:
            raise ValueError(f"fields must share a shape, got {a.shape} and {b.shape}")
        return float(np.vdot(a.ravel(), b.ravel()).real * self.cell_volume)

    def norm(self, a: np.ndarray) -> float:
        """Discrete L2 norm induced by :meth:`inner`."""
        return float(np.sqrt(max(self.inner(a, a), 0.0)))

    def mean(self, a: np.ndarray) -> float:
        """Domain average of a scalar field."""
        return float(np.mean(a))

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def with_shape(self, shape: Iterable[int]) -> "Grid":
        """Grid on the same domain with a different resolution."""
        return Grid(shape, self.lengths, self.dtype)

    def coarsen(self, factor: int = 2) -> "Grid":
        """Grid coarsened by an integer factor in every dimension."""
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        new_shape = tuple(max(2, n // factor) for n in self.shape)
        return self.with_shape(new_shape)

    def refine(self, factor: int = 2) -> "Grid":
        """Grid refined by an integer factor in every dimension."""
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        return self.with_shape(tuple(n * factor for n in self.shape))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Grid(shape={self.shape}, lengths={tuple(round(L, 6) for L in self.lengths)})"
