"""Serial Fourier-transform frontend over pluggable backends.

The paper's implementation uses AccFFT (built on FFTW) for its distributed
transforms; the serial, single-process transform used by the core solver here
delegates to one of the engines in :mod:`repro.spectral.backends` —
``numpy`` (the reference), ``scipy`` (pooled multi-threaded pocketfft) or
``pyfftw`` (FFTW with plan re-use) — selected per instance, via the
``REPRO_FFT_BACKEND`` environment variable, or the ``--fft-backend`` CLI
flag.  All fields of the problem are real, so the transforms are
real-to-complex.  The distributed pencil-decomposed transform that mirrors
AccFFT's communication pattern lives in
:mod:`repro.parallel.distributed_fft` and is validated against whichever
serial backend is active.

The frontend also counts the number of (scalar 3D) transforms performed.
The paper's complexity model (Sec. III-C4) expresses the per-iteration cost
as a number of 3D FFTs and interpolations; counting the transforms lets the
benchmark harness verify those counts against the analytic formula ``8*nt``
FFTs per Hessian matvec.  Counting happens here — never in the backends —
so the counters are exactly identical no matter which engine runs the
transforms; a batched vector transform counts as three scalar transforms.

Tracing spans (``fft.forward``/``fft.backward``) and the process-wide
``fft.transforms`` metric are emitted at the same seam: each span carries
the batch size as its ``count``, so summed span counts equal the counters
exactly no matter how the transforms were batched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.observability.metrics import get_metrics_registry
from repro.observability.trace import trace_span
from repro.spectral.backends import FFTBackend, get_backend
from repro.spectral.grid import Grid

_fft_metric = get_metrics_registry().counter(
    "fft.transforms", "scalar 3D FFT executions by direction"
)
_FFT_FORWARD = _fft_metric.labels(direction="forward")
_FFT_BACKWARD = _fft_metric.labels(direction="backward")

#: The three trailing axes an n-d (batched) transform acts on.
SPATIAL_AXES = (-3, -2, -1)


@dataclass
class FFTCounters:
    """Number of forward/backward 3D transforms executed."""

    forward: int = 0
    backward: int = 0

    @property
    def total(self) -> int:
        return self.forward + self.backward

    def reset(self) -> None:
        self.forward = 0
        self.backward = 0


@dataclass
class FourierTransform:
    """Real-to-complex 3D FFT bound to a :class:`~repro.spectral.grid.Grid`.

    Parameters
    ----------
    grid:
        The periodic grid defining the transform size.
    backend:
        FFT engine: a registered backend name (``"numpy"``, ``"scipy"``,
        ``"pyfftw"``), a backend instance, or ``None`` for the environment
        default (see :func:`repro.spectral.backends.get_backend`).

    Notes
    -----
    The transform is unnormalized in the forward direction and normalized in
    the backward direction (numpy's convention), which is what every spectral
    symbol in :mod:`repro.spectral.operators` assumes; all three backends
    implement the same convention.
    """

    grid: Grid
    backend: "str | FFTBackend | None" = None
    counters: FFTCounters = field(default_factory=FFTCounters)

    def __post_init__(self) -> None:
        self.backend = get_backend(self.backend)

    @property
    def backend_name(self) -> str:
        """Name of the active FFT engine."""
        return self.backend.name

    @property
    def spectral_shape(self) -> tuple[int, int, int]:
        """Shape of the half-spectrum array produced by :meth:`forward`."""
        n1, n2, n3 = self.grid.shape
        return (n1, n2, n3 // 2 + 1)

    # ------------------------------------------------------------------ #
    # scalar transforms
    # ------------------------------------------------------------------ #
    def forward(self, field_values: np.ndarray) -> np.ndarray:
        """Forward real-to-complex transform of a scalar field."""
        field_values = np.asarray(field_values)
        if field_values.shape != self.grid.shape:
            raise ValueError(
                f"field has shape {field_values.shape}, expected {self.grid.shape}"
            )
        self.counters.forward += 1
        _FFT_FORWARD.inc()
        with trace_span("fft.forward"):
            return self.backend.rfftn(field_values, axes=SPATIAL_AXES)

    def backward(self, spectrum: np.ndarray) -> np.ndarray:
        """Inverse transform returning a real field on the grid."""
        spectrum = np.asarray(spectrum)
        if spectrum.shape != self.spectral_shape:
            raise ValueError(
                f"spectrum has shape {spectrum.shape}, expected {self.spectral_shape}"
            )
        self.counters.backward += 1
        _FFT_BACKWARD.inc()
        with trace_span("fft.backward"):
            out = self.backend.irfftn(spectrum, s=self.grid.shape, axes=SPATIAL_AXES)
        return out.astype(self.grid.dtype, copy=False)

    # ------------------------------------------------------------------ #
    # batched transforms
    # ------------------------------------------------------------------ #
    def forward_batch(self, fields: np.ndarray) -> np.ndarray:
        """Forward transform of a ``(..., N1, N2, N3)`` stack in one call.

        All leading axes are batch dimensions handed to the backend as one
        stacked transform; the counter increases by the batch size (each
        batch entry is one scalar 3D FFT of the paper's complexity model).
        """
        fields = np.asarray(fields)
        if fields.ndim < 3 or fields.shape[-3:] != self.grid.shape:
            raise ValueError(
                f"batched field has shape {fields.shape}, expected "
                f"(..., {', '.join(map(str, self.grid.shape))})"
            )
        batch = int(np.prod(fields.shape[:-3], dtype=int))
        self.counters.forward += batch
        _FFT_FORWARD.inc(batch)
        with trace_span("fft.forward", count=batch, batch=batch):
            return self.backend.rfftn(fields, axes=SPATIAL_AXES)

    def backward_batch(self, spectra: np.ndarray) -> np.ndarray:
        """Inverse transform of a ``(..., N1, N2, N3//2+1)`` spectral stack."""
        spectra = np.asarray(spectra)
        if spectra.ndim < 3 or spectra.shape[-3:] != self.spectral_shape:
            raise ValueError(
                f"batched spectrum has shape {spectra.shape}, expected "
                f"(..., {', '.join(map(str, self.spectral_shape))})"
            )
        batch = int(np.prod(spectra.shape[:-3], dtype=int))
        self.counters.backward += batch
        _FFT_BACKWARD.inc(batch)
        with trace_span("fft.backward", count=batch, batch=batch):
            out = self.backend.irfftn(spectra, s=self.grid.shape, axes=SPATIAL_AXES)
        return out.astype(self.grid.dtype, copy=False)

    def forward_vector(self, vector_field: np.ndarray) -> np.ndarray:
        """Batched forward transform of a ``(3, N1, N2, N3)`` vector field.

        All three components are transformed in one stacked backend call
        (counted as three scalar transforms).
        """
        vector_field = np.asarray(vector_field)
        if vector_field.shape != (3, *self.grid.shape):
            raise ValueError(
                f"vector field has shape {vector_field.shape}, expected {(3, *self.grid.shape)}"
            )
        return self.forward_batch(vector_field)

    def inverse_vector(self, spectra: np.ndarray) -> np.ndarray:
        """Batched inverse transform of a ``(3, ...)`` stacked spectral field."""
        spectra = np.asarray(spectra)
        if spectra.shape != (3, *self.spectral_shape):
            raise ValueError(
                f"spectra have shape {spectra.shape}, expected {(3, *self.spectral_shape)}"
            )
        return self.backward_batch(spectra)

    #: Backwards-compatible alias of :meth:`inverse_vector`.
    backward_vector = inverse_vector

    # ------------------------------------------------------------------ #
    # multiplier application
    # ------------------------------------------------------------------ #
    def apply_symbol(self, field_values: np.ndarray, symbol: np.ndarray) -> np.ndarray:
        """Apply a Fourier multiplier: ``ifft(symbol * fft(field))``.

        This is the fundamental operation behind every differential operator,
        its inverse, the preconditioner and the spectral filters.
        """
        spectrum = self.forward(field_values)
        spectrum = spectrum * symbol
        return self.backward(spectrum)

    def apply_symbol_vector(self, vector_field: np.ndarray, symbol: np.ndarray) -> np.ndarray:
        """Apply one Fourier multiplier to all three components, batched."""
        spectra = self.forward_vector(vector_field)
        spectra = spectra * symbol[None]
        return self.inverse_vector(spectra)

    def reset_counters(self) -> None:
        self.counters.reset()
