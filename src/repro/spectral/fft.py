"""Serial Fourier-transform backend.

The paper's implementation uses AccFFT (built on FFTW) for its distributed
transforms; the serial, single-process backend used by the core solver here
wraps :func:`numpy.fft.rfftn` / :func:`numpy.fft.irfftn` (all fields of the
problem are real).  The distributed pencil-decomposed transform that mirrors
AccFFT's communication pattern lives in
:mod:`repro.parallel.distributed_fft` and is validated against this backend.

The backend also counts the number of transforms performed.  The paper's
complexity model (Sec. III-C4) expresses the per-iteration cost as a number
of 3D FFTs and interpolations; counting the transforms lets the benchmark
harness verify those counts against the analytic formula ``8*nt`` FFTs per
Hessian matvec.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.spectral.grid import Grid


@dataclass
class FFTCounters:
    """Number of forward/backward 3D transforms executed."""

    forward: int = 0
    backward: int = 0

    @property
    def total(self) -> int:
        return self.forward + self.backward

    def reset(self) -> None:
        self.forward = 0
        self.backward = 0


@dataclass
class FourierTransform:
    """Real-to-complex 3D FFT bound to a :class:`~repro.spectral.grid.Grid`.

    Parameters
    ----------
    grid:
        The periodic grid defining the transform size.

    Notes
    -----
    The transform is unnormalized in the forward direction and normalized in
    the backward direction (numpy's default), which is the convention assumed
    by every spectral symbol in :mod:`repro.spectral.operators`.
    """

    grid: Grid
    counters: FFTCounters = field(default_factory=FFTCounters)

    @property
    def spectral_shape(self) -> tuple[int, int, int]:
        """Shape of the half-spectrum array produced by :meth:`forward`."""
        n1, n2, n3 = self.grid.shape
        return (n1, n2, n3 // 2 + 1)

    def forward(self, field_values: np.ndarray) -> np.ndarray:
        """Forward real-to-complex transform of a scalar field."""
        field_values = np.asarray(field_values)
        if field_values.shape != self.grid.shape:
            raise ValueError(
                f"field has shape {field_values.shape}, expected {self.grid.shape}"
            )
        self.counters.forward += 1
        return np.fft.rfftn(field_values)

    def backward(self, spectrum: np.ndarray) -> np.ndarray:
        """Inverse transform returning a real field on the grid."""
        spectrum = np.asarray(spectrum)
        if spectrum.shape != self.spectral_shape:
            raise ValueError(
                f"spectrum has shape {spectrum.shape}, expected {self.spectral_shape}"
            )
        self.counters.backward += 1
        out = np.fft.irfftn(spectrum, s=self.grid.shape)
        return out.astype(self.grid.dtype, copy=False)

    def forward_vector(self, vector_field: np.ndarray) -> np.ndarray:
        """Component-wise forward transform of a ``(3, N1, N2, N3)`` field."""
        vector_field = np.asarray(vector_field)
        if vector_field.shape != (3, *self.grid.shape):
            raise ValueError(
                f"vector field has shape {vector_field.shape}, expected {(3, *self.grid.shape)}"
            )
        return np.stack([self.forward(vector_field[i]) for i in range(3)], axis=0)

    def backward_vector(self, spectra: np.ndarray) -> np.ndarray:
        """Component-wise inverse transform of a stacked spectral field."""
        spectra = np.asarray(spectra)
        if spectra.shape != (3, *self.spectral_shape):
            raise ValueError(
                f"spectra have shape {spectra.shape}, expected {(3, *self.spectral_shape)}"
            )
        return np.stack([self.backward(spectra[i]) for i in range(3)], axis=0)

    def apply_symbol(self, field_values: np.ndarray, symbol: np.ndarray) -> np.ndarray:
        """Apply a Fourier multiplier: ``ifft(symbol * fft(field))``.

        This is the fundamental operation behind every differential operator,
        its inverse, the preconditioner and the spectral filters.
        """
        spectrum = self.forward(field_values)
        spectrum *= symbol
        return self.backward(spectrum)

    def reset_counters(self) -> None:
        self.counters.reset()
