"""Pluggable FFT backends for the spectral discretization.

The paper's per-iteration cost is dominated by 3D FFTs — its complexity model
counts ``8*nt`` transforms per Hessian matvec (Sec. III-C4) — so the choice
and configuration of the FFT engine is a first-order performance knob.  This
module provides a small registry of interchangeable backends behind one
protocol:

``"numpy"``
    :mod:`numpy.fft` (pocketfft).  Always available; the reference backend.
``"scipy"``
    :mod:`scipy.fft` (the vectorized pocketfft C++ engine) with a pooled
    worker configuration (``workers=N`` multi-threading) resolved once per
    process and re-used by every transform.
``"pyfftw"``
    FFTW via :mod:`pyfftw` with the interface plan cache enabled, so repeated
    transforms of the same shape re-use their FFTW plans.  Auto-detected;
    cleanly reported as unavailable when the package is not installed.

Selection precedence (first match wins):

1. an explicit backend instance or name passed to the consumer
   (e.g. ``FourierTransform(grid, backend="scipy")`` or the CLI flag
   ``--fft-backend``),
2. the ``REPRO_FFT_BACKEND`` environment variable,
3. the ``"numpy"`` default.

Backends only perform transforms; transform *counting* stays in
:class:`repro.spectral.fft.FourierTransform`, which guarantees exact FFT
counter parity across backends — the paper's ``8*nt`` count verification is
backend independent by construction.
"""

from __future__ import annotations

import os
from typing import Dict, Protocol, Sequence, Tuple, Type, runtime_checkable

import numpy as np

from repro.runtime.workers import FFT_WORKERS_ENV_VAR
from repro.runtime.workers import resolve_workers as _resolve_runtime_workers

#: Environment variable selecting the default backend.
BACKEND_ENV_VAR = "REPRO_FFT_BACKEND"

#: Environment variable overriding the worker-pool size of threaded backends
#: (the per-subsystem override of the unified ``REPRO_WORKERS`` policy, see
#: :mod:`repro.runtime.workers`).
WORKERS_ENV_VAR = FFT_WORKERS_ENV_VAR

DEFAULT_BACKEND = "numpy"


class BackendUnavailableError(RuntimeError):
    """Raised when a registered backend cannot run in this environment."""


@runtime_checkable
class FFTBackend(Protocol):
    """Minimal transform interface every backend implements.

    All n-dimensional entry points take explicit ``axes`` so that batched
    (stacked) transforms — e.g. all three components of a velocity field in
    one call — map onto a single library invocation.
    """

    name: str

    def rfftn(self, a: np.ndarray, axes: Sequence[int]) -> np.ndarray:
        """Real-to-complex transform over *axes*."""
        ...

    def irfftn(
        self, a: np.ndarray, s: Sequence[int], axes: Sequence[int]
    ) -> np.ndarray:
        """Complex-to-real inverse transform over *axes* with output sizes *s*."""
        ...

    def fft(self, a: np.ndarray, axis: int) -> np.ndarray:
        """Complex 1-D transform along *axis* (used by the distributed FFT)."""
        ...

    def ifft(self, a: np.ndarray, axis: int) -> np.ndarray:
        """Complex 1-D inverse transform along *axis*."""
        ...


def _resolve_workers(workers: int | None) -> int:
    """Worker-pool size under the unified runtime policy.

    Explicit argument > ``REPRO_FFT_WORKERS`` > the shared runtime default
    (``--workers`` / ``REPRO_WORKERS``) > all available cores — see
    :func:`repro.runtime.workers.resolve_workers`.
    """
    return _resolve_runtime_workers("fft", workers)


class NumpyFFTBackend:
    """Reference backend wrapping :mod:`numpy.fft` (always available)."""

    name = "numpy"

    @classmethod
    def is_available(cls) -> bool:
        return True

    def rfftn(self, a: np.ndarray, axes: Sequence[int]) -> np.ndarray:
        return np.fft.rfftn(a, axes=tuple(axes))

    def irfftn(self, a: np.ndarray, s: Sequence[int], axes: Sequence[int]) -> np.ndarray:
        return np.fft.irfftn(a, s=tuple(s), axes=tuple(axes))

    def fft(self, a: np.ndarray, axis: int) -> np.ndarray:
        return np.fft.fft(a, axis=axis)

    def ifft(self, a: np.ndarray, axis: int) -> np.ndarray:
        return np.fft.ifft(a, axis=axis)


class ScipyFFTBackend:
    """:mod:`scipy.fft` backend with a pooled ``workers`` configuration.

    ``scipy.fft`` uses the vectorized (SIMD) pocketfft C++ engine, which is
    measurably faster than :mod:`numpy.fft` even single-threaded, and it
    releases the GIL to thread large transforms over ``workers`` cores.  The
    worker count is resolved once at construction (argument > env var >
    ``os.cpu_count()``) and shared by every transform — the "pooled context"
    the registry hands out is a process-wide singleton per backend name.
    """

    name = "scipy"

    def __init__(self, workers: int | None = None) -> None:
        if not self.is_available():  # pragma: no cover - scipy is a hard dep
            raise BackendUnavailableError("scipy is not installed")
        import scipy.fft as _scipy_fft

        self._fft = _scipy_fft
        self.workers = _resolve_workers(workers)

    @classmethod
    def is_available(cls) -> bool:
        try:
            import scipy.fft  # noqa: F401
        except ImportError:  # pragma: no cover - scipy is a hard dep
            return False
        return True

    def rfftn(self, a: np.ndarray, axes: Sequence[int]) -> np.ndarray:
        return self._fft.rfftn(a, axes=tuple(axes), workers=self.workers)

    def irfftn(self, a: np.ndarray, s: Sequence[int], axes: Sequence[int]) -> np.ndarray:
        return self._fft.irfftn(a, s=tuple(s), axes=tuple(axes), workers=self.workers)

    def fft(self, a: np.ndarray, axis: int) -> np.ndarray:
        return self._fft.fft(a, axis=axis, workers=self.workers)

    def ifft(self, a: np.ndarray, axis: int) -> np.ndarray:
        return self._fft.ifft(a, axis=axis, workers=self.workers)


class PyFFTWBackend:
    """FFTW backend via :mod:`pyfftw` with plan re-use.

    Uses the :mod:`pyfftw.interfaces` numpy-compatible API with the interface
    cache enabled: the first transform of a given shape plans (ESTIMATE
    rigor, so planning stays cheap), subsequent transforms of the same shape
    re-use the cached FFTW plan.  This is the serial stand-in for the AccFFT
    (FFTW-based) engine the paper runs on.
    """

    name = "pyfftw"

    def __init__(self, workers: int | None = None, planner_effort: str = "FFTW_ESTIMATE") -> None:
        if not self.is_available():
            raise BackendUnavailableError(
                "pyfftw is not installed; install the 'fftw' extra "
                "(pip install repro-sc16-registration[fftw]) to enable this backend"
            )
        import pyfftw

        pyfftw.interfaces.cache.enable()
        pyfftw.interfaces.cache.set_keepalive_time(60.0)
        self._interfaces = pyfftw.interfaces.numpy_fft
        self.workers = _resolve_workers(workers)
        self.planner_effort = planner_effort

    @classmethod
    def is_available(cls) -> bool:
        try:
            import pyfftw  # noqa: F401
        except ImportError:
            return False
        return True

    def _kwargs(self) -> dict:
        return {"threads": self.workers, "planner_effort": self.planner_effort}

    def rfftn(self, a: np.ndarray, axes: Sequence[int]) -> np.ndarray:
        return self._interfaces.rfftn(a, axes=tuple(axes), **self._kwargs())

    def irfftn(self, a: np.ndarray, s: Sequence[int], axes: Sequence[int]) -> np.ndarray:
        # FFTW's multi-dimensional c2r transform destroys its input; copy so
        # callers keep their spectra intact, matching numpy/scipy semantics
        return self._interfaces.irfftn(
            np.array(a, copy=True), s=tuple(s), axes=tuple(axes), **self._kwargs()
        )

    def fft(self, a: np.ndarray, axis: int) -> np.ndarray:
        return self._interfaces.fft(a, axis=axis, **self._kwargs())

    def ifft(self, a: np.ndarray, axis: int) -> np.ndarray:
        return self._interfaces.ifft(a, axis=axis, **self._kwargs())


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
_REGISTRY: Dict[str, Type] = {}
_INSTANCES: Dict[str, FFTBackend] = {}


def register_backend(name: str, cls: Type) -> Type:
    """Register a backend class under *name* (overwrites a prior entry).

    Later PRs (GPU, distributed) plug their engines in through this hook.
    """
    _REGISTRY[name.lower()] = cls
    _INSTANCES.pop(name.lower(), None)
    return cls


register_backend("numpy", NumpyFFTBackend)
register_backend("scipy", ScipyFFTBackend)
register_backend("pyfftw", PyFFTWBackend)


def registered_backends() -> Tuple[str, ...]:
    """Names of all registered backends, available or not."""
    return tuple(sorted(_REGISTRY))


def available_backends() -> Tuple[str, ...]:
    """Names of the registered backends that can run in this environment."""
    return tuple(name for name in registered_backends() if _REGISTRY[name].is_available())


def default_backend_name() -> str:
    """Backend selected by the environment (``REPRO_FFT_BACKEND``) or the default.

    A name the registry does not know is rejected here with the valid
    choices and the variable that carried it — an environment typo must
    produce a clear error, never silently select something else.
    """
    raw = os.environ.get(BACKEND_ENV_VAR, DEFAULT_BACKEND)
    name = raw.strip().lower() or DEFAULT_BACKEND
    if name not in _REGISTRY:
        raise ValueError(
            f"{BACKEND_ENV_VAR}={raw!r} is not a registered FFT backend; "
            f"valid choices: {registered_backends()}"
        )
    return name


def get_backend(spec: "str | FFTBackend | None" = None) -> FFTBackend:
    """Resolve *spec* to a backend instance.

    Parameters
    ----------
    spec:
        ``None`` (environment variable or the ``"numpy"`` default), a
        registered backend name, or an already-constructed backend instance
        (returned unchanged, enabling custom engines without registration).
    """
    if spec is None:
        spec = default_backend_name()
    if not isinstance(spec, str):
        if not isinstance(spec, FFTBackend):
            raise TypeError(
                f"fft backend must be a registered name or an object implementing "
                f"the FFTBackend protocol, got {type(spec).__name__}"
            )
        return spec
    name = spec.strip().lower()
    if name in _INSTANCES:
        return _INSTANCES[name]
    try:
        cls = _REGISTRY[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown FFT backend {spec!r}; registered backends: {registered_backends()}"
        ) from exc
    if not cls.is_available():
        raise BackendUnavailableError(
            f"FFT backend {name!r} is registered but not available in this "
            f"environment; available backends: {available_backends()}"
        )
    instance = cls()
    _INSTANCES[name] = instance
    return instance
