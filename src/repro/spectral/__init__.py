"""Spectral (Fourier) discretization in space.

The paper discretizes every spatial operation on a regular periodic grid via
Fourier expansions (Sec. III-B1): derivatives, the Laplacian and biharmonic
regularization operators, their inverses (used by the preconditioner and by
the Leray projection), spectral Gaussian smoothing of the input images, and
zero padding of non-periodic data.  This package provides all of those
building blocks for the single-node (serial) backend; the distributed
counterparts built on the pencil-decomposed FFT live in
:mod:`repro.parallel`.
"""

from repro.spectral.grid import Grid
from repro.spectral.fft import FourierTransform
from repro.spectral.operators import SpectralOperators
from repro.spectral.filters import (
    gaussian_smooth,
    low_pass_filter,
    prolong,
    restrict,
    zero_pad,
    remove_padding,
)

__all__ = [
    "Grid",
    "FourierTransform",
    "SpectralOperators",
    "gaussian_smooth",
    "low_pass_filter",
    "prolong",
    "restrict",
    "zero_pad",
    "remove_padding",
]
