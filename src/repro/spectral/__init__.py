"""Spectral (Fourier) discretization in space.

The paper discretizes every spatial operation on a regular periodic grid via
Fourier expansions (Sec. III-B1): derivatives, the Laplacian and biharmonic
regularization operators, their inverses (used by the preconditioner and by
the Leray projection), spectral Gaussian smoothing of the input images, and
zero padding of non-periodic data.  This package provides all of those
building blocks for the single-node (serial) path; the distributed
counterparts built on the pencil-decomposed FFT live in
:mod:`repro.parallel`.

The actual FFT engine is pluggable: :mod:`repro.spectral.backends` keeps a
registry of interchangeable backends (``numpy``, ``scipy``, ``pyfftw``)
selectable per call site, through the ``REPRO_FFT_BACKEND`` environment
variable, or the ``--fft-backend`` CLI flag.  Spectral symbols are shared
per grid through the :mod:`repro.spectral.symbols` store.
"""

from repro.spectral.backends import (
    BACKEND_ENV_VAR,
    BackendUnavailableError,
    FFTBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    registered_backends,
)
from repro.spectral.fft import FFTCounters, FourierTransform
from repro.spectral.filters import (
    gaussian_smooth,
    low_pass_filter,
    prolong,
    remove_padding,
    restrict,
    zero_pad,
)
from repro.spectral.grid import Grid
from repro.spectral.operators import SpectralOperators
from repro.spectral.symbols import SymbolTable, clear_symbol_cache, get_symbols

__all__ = [
    "BACKEND_ENV_VAR",
    "BackendUnavailableError",
    "FFTBackend",
    "FFTCounters",
    "FourierTransform",
    "Grid",
    "SpectralOperators",
    "SymbolTable",
    "available_backends",
    "clear_symbol_cache",
    "default_backend_name",
    "gaussian_smooth",
    "get_backend",
    "get_symbols",
    "low_pass_filter",
    "prolong",
    "register_backend",
    "registered_backends",
    "remove_padding",
    "restrict",
    "zero_pad",
]
