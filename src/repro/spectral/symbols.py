"""Cached spectral-symbol store, keyed by grid.

Every Fourier-multiplier operator in the code base (derivatives, Laplacian,
biharmonic, their pseudo-inverses, the Leray projection, the Gaussian and
low-pass filters, the Sobolev regularization symbols) is a fixed array that
depends only on the grid (and, for the filters, a scalar parameter).  The
seed implementation recomputed several of these per consumer; this store
computes each symbol once per grid and shares it across every
:class:`~repro.spectral.operators.SpectralOperators`, regularization and
filter instance bound to an equal grid.

:class:`~repro.spectral.grid.Grid` is a frozen, hashable dataclass, so the
store is a plain ``lru_cache`` over the grid value.  Symbols are read-only
(``writeable=False``) to keep the sharing safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property, lru_cache
from typing import Dict, Tuple

import numpy as np

from repro.spectral.grid import Grid


def _readonly(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


@dataclass
class SymbolTable:
    """All spectral symbols of one grid, computed lazily and cached.

    The arrays are laid out for the half-spectrum of the real-to-complex
    transform (``real_last_axis=True``), matching
    :attr:`repro.spectral.fft.FourierTransform.spectral_shape`.
    """

    grid: Grid
    _parametric: Dict[Tuple, np.ndarray] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------ #
    # derivative / Laplacian family
    # ------------------------------------------------------------------ #
    @cached_property
    def ik(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Broadcastable ``i*k_j`` first-derivative multipliers.

        Nyquist modes are zeroed (see
        :meth:`repro.spectral.grid.Grid.derivative_wavenumbers_1d`) so the
        discrete first derivatives stay skew-adjoint and ``div P v = 0``
        holds exactly after the Leray projection.
        """
        k1, k2, k3 = self.grid.wavenumber_mesh(real_last_axis=True, derivative=True)
        return (_readonly(1j * k1), _readonly(1j * k2), _readonly(1j * k3))

    @cached_property
    def minus_ksq(self) -> np.ndarray:
        """Laplacian symbol ``-|k|^2`` (negative semi-definite)."""
        return _readonly(self.grid.laplacian_symbol(real_last_axis=True))

    @cached_property
    def ksq(self) -> np.ndarray:
        return _readonly(-self.minus_ksq)

    @cached_property
    def inv_minus_ksq(self) -> np.ndarray:
        """Pseudo-inverse of the Laplacian symbol (zero on the constant mode)."""
        return _readonly(_pseudo_inverse(self.minus_ksq))

    @cached_property
    def k4(self) -> np.ndarray:
        """Biharmonic symbol ``|k|^4``."""
        return _readonly(self.ksq * self.ksq)

    @cached_property
    def inv_k4(self) -> np.ndarray:
        """Pseudo-inverse of the biharmonic symbol."""
        return _readonly(_pseudo_inverse(self.k4))

    @cached_property
    def derivative_ksq(self) -> np.ndarray:
        """``|k|^2`` built from the *derivative* wavenumbers (Nyquist zeroed).

        This is the denominator of the Leray projection, which must use the
        same wavenumber convention as the ``i*k`` numerators.
        """
        k1, k2, k3 = self.grid.wavenumber_mesh(real_last_axis=True, derivative=True)
        return _readonly(k1 * k1 + k2 * k2 + k3 * k3)

    @cached_property
    def inv_derivative_ksq(self) -> np.ndarray:
        """Pseudo-inverse of :attr:`derivative_ksq` (the Leray denominator)."""
        return _readonly(_pseudo_inverse(self.derivative_ksq))

    # ------------------------------------------------------------------ #
    # parametric symbols (Sobolev orders, filters)
    # ------------------------------------------------------------------ #
    def sobolev(self, order: int) -> np.ndarray:
        """Sobolev seminorm symbol ``|k|^(2*order)`` (H1, H2, H3, ...)."""
        key = ("sobolev", int(order))
        if key not in self._parametric:
            self._parametric[key] = _readonly(self.ksq ** int(order))
        return self._parametric[key]

    def inverse_sobolev(self, order: int) -> np.ndarray:
        """Pseudo-inverse of :meth:`sobolev` (zero on the constant mode)."""
        key = ("inverse_sobolev", int(order))
        if key not in self._parametric:
            self._parametric[key] = _readonly(_pseudo_inverse(self.sobolev(order)))
        return self._parametric[key]

    def gaussian(self, sigma: Tuple[float, float, float]) -> np.ndarray:
        """Periodic Gaussian filter symbol ``exp(-|k sigma|^2 / 2)``."""
        key = ("gaussian", tuple(float(s) for s in sigma))
        if key not in self._parametric:
            k1, k2, k3 = self.grid.wavenumber_mesh(real_last_axis=True)
            exponent = (
                (k1 * key[1][0]) ** 2 + (k2 * key[1][1]) ** 2 + (k3 * key[1][2]) ** 2
            )
            self._parametric[key] = _readonly(np.exp(-0.5 * exponent))
        return self._parametric[key]

    def low_pass_mask(self, cutoff_fraction: float) -> np.ndarray:
        """Sharp low-pass mask of the classic de-aliasing rule."""
        key = ("low_pass", float(cutoff_fraction))
        if key not in self._parametric:
            k1, k2, k3 = self.grid.wavenumber_mesh(real_last_axis=True)
            cutoffs = [
                float(cutoff_fraction) * (n / 2) * (2.0 * np.pi / L)
                for n, L in zip(self.grid.shape, self.grid.lengths)
            ]
            mask = (
                (np.abs(k1) <= cutoffs[0])
                & (np.abs(k2) <= cutoffs[1])
                & (np.abs(k3) <= cutoffs[2])
            ).astype(self.grid.dtype)
            self._parametric[key] = _readonly(mask)
        return self._parametric[key]


def _pseudo_inverse(symbol: np.ndarray) -> np.ndarray:
    """Moore-Penrose pseudo-inverse of a diagonal symbol (0 maps to 0)."""
    out = np.zeros_like(symbol)
    nonzero = symbol != 0.0
    out[nonzero] = 1.0 / symbol[nonzero]
    return out


@lru_cache(maxsize=64)
def get_symbols(grid: Grid) -> SymbolTable:
    """The shared :class:`SymbolTable` of *grid* (process-wide cache)."""
    return SymbolTable(grid)


def clear_symbol_cache() -> None:
    """Drop every cached symbol table (used by tests and benchmarks)."""
    get_symbols.cache_clear()
