"""Spectral differential operators on the periodic grid.

These implement every spatial operator the formulation needs (Sec. II-B and
III-B1 of the paper):

* first derivatives, gradient and divergence,
* the (vector) Laplacian ``lap`` used by the H1 regularization,
* the biharmonic operator ``lap^2`` used by the H2 regularization,
* their (pseudo-)inverses, applied as spectral diagonal scalings,
* the Leray projection ``P = I - grad lap^{-1} div`` which eliminates the
  incompressibility constraint ``div v = 0`` from the optimality system,
* the curl (used for diagnostics on volume-preserving velocity fields).

All operators are Fourier multipliers, hence commute, are exact for band
limited fields, and are applied in ``O(N^3 log N)`` time.  The inverse of the
Laplacian/biharmonic is the Moore-Penrose pseudo-inverse: the constant
(zero-frequency) mode, which lies in the null space, is mapped to zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.spectral.fft import FourierTransform
from repro.spectral.grid import Grid
from repro.utils.validation import check_velocity_shape


@dataclass
class SpectralOperators:
    """Collection of Fourier-multiplier operators bound to one grid."""

    grid: Grid

    def __post_init__(self) -> None:
        self.fft = FourierTransform(self.grid)

    # ------------------------------------------------------------------ #
    # cached spectral symbols
    # ------------------------------------------------------------------ #
    @cached_property
    def _ik(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Broadcastable ``i*k_j`` multipliers for the three derivatives.

        The Nyquist modes are zeroed (see
        :meth:`repro.spectral.grid.Grid.derivative_wavenumbers_1d`) so that
        the discrete first derivatives are skew-adjoint and ``div P v``
        vanishes identically after the Leray projection.
        """
        k1, k2, k3 = self.grid.wavenumber_mesh(real_last_axis=True, derivative=True)
        return (1j * k1, 1j * k2, 1j * k3)

    @cached_property
    def _minus_ksq(self) -> np.ndarray:
        """Laplacian symbol ``-|k|^2`` (negative semi-definite)."""
        return self.grid.laplacian_symbol(real_last_axis=True)

    @cached_property
    def _inv_minus_ksq(self) -> np.ndarray:
        """Pseudo-inverse of the Laplacian symbol (zero on the constant mode)."""
        sym = self._minus_ksq
        out = np.zeros_like(sym)
        nonzero = sym != 0.0
        out[nonzero] = 1.0 / sym[nonzero]
        return out

    @cached_property
    def _ksq(self) -> np.ndarray:
        return -self._minus_ksq

    @cached_property
    def _k4(self) -> np.ndarray:
        """Biharmonic symbol ``|k|^4``."""
        return self._ksq * self._ksq

    @cached_property
    def _inv_k4(self) -> np.ndarray:
        """Pseudo-inverse of the biharmonic symbol."""
        sym = self._k4
        out = np.zeros_like(sym)
        nonzero = sym != 0.0
        out[nonzero] = 1.0 / sym[nonzero]
        return out

    # ------------------------------------------------------------------ #
    # scalar operators
    # ------------------------------------------------------------------ #
    def derivative(self, field: np.ndarray, axis: int) -> np.ndarray:
        """Partial derivative ``d field / d x_axis``."""
        if axis not in (0, 1, 2):
            raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
        spectrum = self.fft.forward(field)
        spectrum *= self._ik[axis]
        return self.fft.backward(spectrum)

    def gradient(self, field: np.ndarray) -> np.ndarray:
        """Gradient of a scalar field, returned as ``(3, N1, N2, N3)``.

        A single forward transform is shared by the three derivatives, which
        mirrors the paper's optimization of the ``grad``/``div`` operators
        (Sec. III-C1: avoid multiple 3D FFTs).
        """
        spectrum = self.fft.forward(field)
        return np.stack(
            [self.fft.backward(self._ik[axis] * spectrum) for axis in range(3)],
            axis=0,
        )

    def laplacian(self, field: np.ndarray) -> np.ndarray:
        """Scalar Laplacian ``lap field``."""
        return self.fft.apply_symbol(field, self._minus_ksq)

    def inverse_laplacian(self, field: np.ndarray) -> np.ndarray:
        """Pseudo-inverse of the Laplacian (zero-mean result)."""
        return self.fft.apply_symbol(field, self._inv_minus_ksq)

    def biharmonic(self, field: np.ndarray) -> np.ndarray:
        """Biharmonic operator ``lap^2 field``."""
        return self.fft.apply_symbol(field, self._k4)

    def inverse_biharmonic(self, field: np.ndarray) -> np.ndarray:
        """Pseudo-inverse of the biharmonic operator."""
        return self.fft.apply_symbol(field, self._inv_k4)

    def apply_scalar_symbol(self, field: np.ndarray, symbol: np.ndarray) -> np.ndarray:
        """Apply an arbitrary Fourier multiplier to a scalar field."""
        return self.fft.apply_symbol(field, symbol)

    # ------------------------------------------------------------------ #
    # vector operators
    # ------------------------------------------------------------------ #
    def divergence(self, vector_field: np.ndarray) -> np.ndarray:
        """Divergence of a ``(3, N1, N2, N3)`` vector field."""
        vector_field = check_velocity_shape(vector_field, self.grid.shape)
        spectrum = self.fft.forward(vector_field[0]) * self._ik[0]
        spectrum += self.fft.forward(vector_field[1]) * self._ik[1]
        spectrum += self.fft.forward(vector_field[2]) * self._ik[2]
        return self.fft.backward(spectrum)

    def vector_laplacian(self, vector_field: np.ndarray) -> np.ndarray:
        """Component-wise Laplacian of a vector field."""
        vector_field = check_velocity_shape(vector_field, self.grid.shape)
        return np.stack([self.laplacian(vector_field[i]) for i in range(3)], axis=0)

    def vector_biharmonic(self, vector_field: np.ndarray) -> np.ndarray:
        """Component-wise biharmonic operator on a vector field."""
        vector_field = check_velocity_shape(vector_field, self.grid.shape)
        return np.stack([self.biharmonic(vector_field[i]) for i in range(3)], axis=0)

    def apply_vector_symbol(self, vector_field: np.ndarray, symbol: np.ndarray) -> np.ndarray:
        """Apply a Fourier multiplier to each component of a vector field."""
        vector_field = check_velocity_shape(vector_field, self.grid.shape)
        return np.stack(
            [self.fft.apply_symbol(vector_field[i], symbol) for i in range(3)], axis=0
        )

    def curl(self, vector_field: np.ndarray) -> np.ndarray:
        """Curl of a vector field (diagnostic for solenoidal fields)."""
        vector_field = check_velocity_shape(vector_field, self.grid.shape)
        spectra = [self.fft.forward(vector_field[i]) for i in range(3)]
        ik1, ik2, ik3 = self._ik
        c1 = self.fft.backward(ik2 * spectra[2] - ik3 * spectra[1])
        c2 = self.fft.backward(ik3 * spectra[0] - ik1 * spectra[2])
        c3 = self.fft.backward(ik1 * spectra[1] - ik2 * spectra[0])
        return np.stack([c1, c2, c3], axis=0)

    def jacobian(self, vector_field: np.ndarray) -> np.ndarray:
        """Full Jacobian ``d v_i / d x_j`` of a vector field, shape ``(3, 3, ...)``."""
        vector_field = check_velocity_shape(vector_field, self.grid.shape)
        rows = []
        for i in range(3):
            spectrum = self.fft.forward(vector_field[i])
            rows.append(
                np.stack(
                    [self.fft.backward(self._ik[j] * spectrum) for j in range(3)],
                    axis=0,
                )
            )
        return np.stack(rows, axis=0)

    # ------------------------------------------------------------------ #
    # Leray projection
    # ------------------------------------------------------------------ #
    def leray_project(self, vector_field: np.ndarray) -> np.ndarray:
        """Project a vector field onto its divergence-free part.

        Implements ``P v = v - grad lap^{-1} div v`` (the Leray operator of
        Eq. 4), applied entirely in the spectral domain:
        ``P v^ = v^ - k (k . v^) / |k|^2``.
        """
        vector_field = check_velocity_shape(vector_field, self.grid.shape)
        spectra = np.stack([self.fft.forward(vector_field[i]) for i in range(3)], axis=0)
        k1, k2, k3 = self.grid.wavenumber_mesh(real_last_axis=True, derivative=True)
        ksq = k1 * k1 + k2 * k2 + k3 * k3
        inv_ksq = np.zeros_like(ksq)
        nonzero = ksq != 0.0
        inv_ksq[nonzero] = 1.0 / ksq[nonzero]
        k_dot_v = k1 * spectra[0] + k2 * spectra[1] + k3 * spectra[2]
        factor = k_dot_v * inv_ksq
        projected = np.stack(
            [
                spectra[0] - k1 * factor,
                spectra[1] - k2 * factor,
                spectra[2] - k3 * factor,
            ],
            axis=0,
        )
        return np.stack([self.fft.backward(projected[i]) for i in range(3)], axis=0)

    def is_divergence_free(self, vector_field: np.ndarray, tol: float = 1e-10) -> bool:
        """Check (up to *tol*, relative) that ``div v`` vanishes."""
        div = self.divergence(vector_field)
        scale = max(self.grid.norm(vector_field), 1e-30)
        return self.grid.norm(div) <= tol * scale
