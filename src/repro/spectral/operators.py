"""Spectral differential operators on the periodic grid.

These implement every spatial operator the formulation needs (Sec. II-B and
III-B1 of the paper):

* first derivatives, gradient and divergence,
* the (vector) Laplacian ``lap`` used by the H1 regularization,
* the biharmonic operator ``lap^2`` used by the H2 regularization,
* their (pseudo-)inverses, applied as spectral diagonal scalings,
* the Leray projection ``P = I - grad lap^{-1} div`` which eliminates the
  incompressibility constraint ``div v = 0`` from the optimality system,
* the curl (used for diagnostics on volume-preserving velocity fields).

All operators are Fourier multipliers, hence commute, are exact for band
limited fields, and are applied in ``O(N^3 log N)`` time.  The inverse of the
Laplacian/biharmonic is the Moore-Penrose pseudo-inverse: the constant
(zero-frequency) mode, which lies in the null space, is mapped to zero.

Two performance properties of this layer:

* every spectral symbol comes from the process-wide
  :mod:`repro.spectral.symbols` store, so grids of equal value share one set
  of symbol arrays across operators, regularizations and filters;
* every vector-field operator transforms all components in one **batched**
  backend call (:meth:`FourierTransform.forward_vector` /
  :meth:`FourierTransform.inverse_vector`), which mirrors the paper's
  optimization of the ``grad``/``div`` operators (Sec. III-C1: avoid
  multiple 3D FFT invocations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.spectral.backends import FFTBackend
from repro.spectral.fft import FourierTransform
from repro.spectral.grid import Grid
from repro.spectral.symbols import SymbolTable, get_symbols
from repro.utils.validation import check_velocity_shape


@dataclass
class SpectralOperators:
    """Collection of Fourier-multiplier operators bound to one grid.

    Parameters
    ----------
    grid:
        The periodic computational grid.
    fft_backend:
        FFT engine name or instance forwarded to
        :class:`~repro.spectral.fft.FourierTransform`; ``None`` selects the
        environment default.
    """

    grid: Grid
    fft_backend: Optional[Union[str, FFTBackend]] = None

    def __post_init__(self) -> None:
        self.fft = FourierTransform(self.grid, backend=self.fft_backend)
        self.symbols: SymbolTable = get_symbols(self.grid)

    # ------------------------------------------------------------------ #
    # cached spectral symbols (shared through the symbol store)
    # ------------------------------------------------------------------ #
    @property
    def _ik(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Broadcastable ``i*k_j`` multipliers for the three derivatives."""
        return self.symbols.ik

    @property
    def _minus_ksq(self) -> np.ndarray:
        """Laplacian symbol ``-|k|^2`` (negative semi-definite)."""
        return self.symbols.minus_ksq

    @property
    def _inv_minus_ksq(self) -> np.ndarray:
        """Pseudo-inverse of the Laplacian symbol (zero on the constant mode)."""
        return self.symbols.inv_minus_ksq

    @property
    def _ksq(self) -> np.ndarray:
        return self.symbols.ksq

    @property
    def _k4(self) -> np.ndarray:
        """Biharmonic symbol ``|k|^4``."""
        return self.symbols.k4

    @property
    def _inv_k4(self) -> np.ndarray:
        """Pseudo-inverse of the biharmonic symbol."""
        return self.symbols.inv_k4

    # ------------------------------------------------------------------ #
    # scalar operators
    # ------------------------------------------------------------------ #
    def derivative(self, field: np.ndarray, axis: int) -> np.ndarray:
        """Partial derivative ``d field / d x_axis``."""
        if axis not in (0, 1, 2):
            raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
        spectrum = self.fft.forward(field)
        spectrum = spectrum * self._ik[axis]
        return self.fft.backward(spectrum)

    def gradient(self, field: np.ndarray) -> np.ndarray:
        """Gradient of a scalar field, returned as ``(3, N1, N2, N3)``.

        A single forward transform is shared by the three derivatives and
        the three inverse transforms run as one batched call.
        """
        spectrum = self.fft.forward(field)
        ik1, ik2, ik3 = self._ik
        stacked = np.stack([ik1 * spectrum, ik2 * spectrum, ik3 * spectrum], axis=0)
        return self.fft.inverse_vector(stacked)

    def gradient_many(self, fields: np.ndarray) -> np.ndarray:
        """Gradients of a ``(B, N1, N2, N3)`` stack, returned ``(B, 3, ...)``.

        The whole stack runs through one batched forward and one batched
        inverse transform (``4 B`` scalar FFTs, exactly the per-field count
        of :meth:`gradient` — batching changes the dispatch, never the
        complexity accounting).  This is the time-axis fusion of the
        incremental solvers: all ``nt + 1`` state-gradient levels in two
        backend calls instead of ``nt + 1`` Python-loop iterations.
        """
        fields = np.asarray(fields)
        if fields.ndim != 4 or fields.shape[1:] != self.grid.shape:
            raise ValueError(
                f"field stack has shape {fields.shape}, expected (B, {', '.join(map(str, self.grid.shape))})"
            )
        spectra = self.fft.forward_batch(fields)
        ik1, ik2, ik3 = self._ik
        stacked = np.stack([ik1 * spectra, ik2 * spectra, ik3 * spectra], axis=1)
        return self.fft.backward_batch(stacked)

    def laplacian(self, field: np.ndarray) -> np.ndarray:
        """Scalar Laplacian ``lap field``."""
        return self.fft.apply_symbol(field, self._minus_ksq)

    def inverse_laplacian(self, field: np.ndarray) -> np.ndarray:
        """Pseudo-inverse of the Laplacian (zero-mean result)."""
        return self.fft.apply_symbol(field, self._inv_minus_ksq)

    def biharmonic(self, field: np.ndarray) -> np.ndarray:
        """Biharmonic operator ``lap^2 field``."""
        return self.fft.apply_symbol(field, self._k4)

    def inverse_biharmonic(self, field: np.ndarray) -> np.ndarray:
        """Pseudo-inverse of the biharmonic operator."""
        return self.fft.apply_symbol(field, self._inv_k4)

    def apply_scalar_symbol(self, field: np.ndarray, symbol: np.ndarray) -> np.ndarray:
        """Apply an arbitrary Fourier multiplier to a scalar field."""
        return self.fft.apply_symbol(field, symbol)

    # ------------------------------------------------------------------ #
    # vector operators (batched transforms)
    # ------------------------------------------------------------------ #
    def divergence(self, vector_field: np.ndarray) -> np.ndarray:
        """Divergence of a ``(3, N1, N2, N3)`` vector field."""
        vector_field = check_velocity_shape(vector_field, self.grid.shape)
        spectra = self.fft.forward_vector(vector_field)
        ik1, ik2, ik3 = self._ik
        spectrum = ik1 * spectra[0] + ik2 * spectra[1] + ik3 * spectra[2]
        return self.fft.backward(spectrum)

    def divergence_many(self, vector_fields: np.ndarray) -> np.ndarray:
        """Divergences of a ``(B, 3, N1, N2, N3)`` stack, returned ``(B, ...)``.

        One batched forward over all ``3 B`` components and one batched
        inverse over the ``B`` results (``4 B`` scalar FFTs, matching ``B``
        calls of :meth:`divergence`).  Fuses the full-Newton source loop of
        the incremental adjoint into two backend calls.
        """
        vector_fields = np.asarray(vector_fields)
        if vector_fields.ndim != 5 or vector_fields.shape[1:] != (3, *self.grid.shape):
            raise ValueError(
                f"vector stack has shape {vector_fields.shape}, "
                f"expected (B, 3, {', '.join(map(str, self.grid.shape))})"
            )
        spectra = self.fft.forward_batch(vector_fields)
        ik1, ik2, ik3 = self._ik
        combined = ik1 * spectra[:, 0] + ik2 * spectra[:, 1] + ik3 * spectra[:, 2]
        return self.fft.backward_batch(combined)

    def vector_laplacian(self, vector_field: np.ndarray) -> np.ndarray:
        """Component-wise Laplacian of a vector field (one batched call)."""
        return self.apply_vector_symbol(vector_field, self._minus_ksq)

    def vector_biharmonic(self, vector_field: np.ndarray) -> np.ndarray:
        """Component-wise biharmonic operator on a vector field."""
        return self.apply_vector_symbol(vector_field, self._k4)

    def apply_vector_symbol(self, vector_field: np.ndarray, symbol: np.ndarray) -> np.ndarray:
        """Apply a Fourier multiplier to each component of a vector field."""
        vector_field = check_velocity_shape(vector_field, self.grid.shape)
        return self.fft.apply_symbol_vector(vector_field, symbol)

    def curl(self, vector_field: np.ndarray) -> np.ndarray:
        """Curl of a vector field (diagnostic for solenoidal fields)."""
        vector_field = check_velocity_shape(vector_field, self.grid.shape)
        spectra = self.fft.forward_vector(vector_field)
        ik1, ik2, ik3 = self._ik
        curl_spectra = np.stack(
            [
                ik2 * spectra[2] - ik3 * spectra[1],
                ik3 * spectra[0] - ik1 * spectra[2],
                ik1 * spectra[1] - ik2 * spectra[0],
            ],
            axis=0,
        )
        return self.fft.inverse_vector(curl_spectra)

    def jacobian(self, vector_field: np.ndarray) -> np.ndarray:
        """Full Jacobian ``d v_i / d x_j`` of a vector field, shape ``(3, 3, ...)``.

        Three forward transforms (batched) feed all nine derivative spectra,
        which come back through a single batched inverse transform.
        """
        vector_field = check_velocity_shape(vector_field, self.grid.shape)
        spectra = self.fft.forward_vector(vector_field)
        ik = self._ik
        rows = np.stack(
            [
                np.stack([ik[j] * spectra[i] for j in range(3)], axis=0)
                for i in range(3)
            ],
            axis=0,
        )
        return self.fft.backward_batch(rows)

    # ------------------------------------------------------------------ #
    # Leray projection
    # ------------------------------------------------------------------ #
    def leray_project(self, vector_field: np.ndarray) -> np.ndarray:
        """Project a vector field onto its divergence-free part.

        Implements ``P v = v - grad lap^{-1} div v`` (the Leray operator of
        Eq. 4), applied entirely in the spectral domain:
        ``P v^ = v^ - k (k . v^) / |k|^2``.
        """
        vector_field = check_velocity_shape(vector_field, self.grid.shape)
        spectra = self.fft.forward_vector(vector_field)
        k1, k2, k3 = self.grid.wavenumber_mesh(real_last_axis=True, derivative=True)
        inv_ksq = self.symbols.inv_derivative_ksq
        k_dot_v = k1 * spectra[0] + k2 * spectra[1] + k3 * spectra[2]
        factor = k_dot_v * inv_ksq
        projected = np.stack(
            [
                spectra[0] - k1 * factor,
                spectra[1] - k2 * factor,
                spectra[2] - k3 * factor,
            ],
            axis=0,
        )
        return self.fft.inverse_vector(projected)

    def is_divergence_free(self, vector_field: np.ndarray, tol: float = 1e-10) -> bool:
        """Check (up to *tol*, relative) that ``div v`` vanishes."""
        div = self.divergence(vector_field)
        scale = max(self.grid.norm(vector_field), 1e-30)
        return self.grid.norm(div) <= tol * scale
