"""Spectral filters, padding, and grid-transfer operators.

The paper's pre-processing pipeline (Sec. III-B1):

* input images are generally **not periodic**, so they are zero-padded before
  the spectral discretization is applied;
* images have discontinuities, so they are **smoothed spectrally with a
  Gaussian filter** whose bandwidth is the grid size ``2*pi/N``;
* the ``beta``-continuation and the two-level ideas referenced in the paper
  require transferring fields between grids, which the spectral basis does
  exactly for resolved modes (restriction/prolongation by spectral
  truncation/zero-filling).

All filters are Fourier multipliers and therefore preserve periodicity and
commute with the differential operators.  Filter symbols come from the
shared :mod:`repro.spectral.symbols` store and the transforms from a small
per-grid transform cache, so repeated filtering of same-sized images (the
multilevel pre-processing path) re-uses both the symbol arrays and the
backend plan state instead of rebuilding them per call.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence, Tuple, Union

import numpy as np

from repro.spectral.backends import FFTBackend, get_backend
from repro.spectral.fft import FourierTransform
from repro.spectral.grid import Grid
from repro.spectral.symbols import get_symbols


@lru_cache(maxsize=64)
def _cached_transform(grid: Grid, backend: FFTBackend) -> FourierTransform:
    """Shared per-(grid, backend instance) transform used by the filters.

    The filters are outside the solver's counted hot loop (their transform
    counts are not part of the ``8*nt`` complexity model), so sharing one
    frontend per grid is safe and keeps backend plan caches warm.  Keying on
    the backend *instance* (not its name) means a re-registered backend —
    which gets a fresh singleton from :func:`get_backend` — automatically
    gets a fresh cache entry rather than a stale engine.
    """
    return FourierTransform(grid, backend=backend)


def _transform_for(grid: Grid, backend: Union[str, FFTBackend, None]) -> FourierTransform:
    return _cached_transform(grid, get_backend(backend))


def _normalize_sigma(
    grid: Grid, sigma: Sequence[float] | float | None
) -> Tuple[float, float, float]:
    if sigma is None:
        sigma = grid.spacing
    if np.isscalar(sigma):
        sigma = (float(sigma),) * 3
    sigma = tuple(float(s) for s in sigma)
    if len(sigma) != 3 or any(s < 0 for s in sigma):
        raise ValueError(f"sigma must be 3 non-negative floats, got {sigma}")
    return sigma


def gaussian_symbol(grid: Grid, sigma: Sequence[float] | float | None = None) -> np.ndarray:
    """Spectral symbol ``exp(-|k sigma|^2 / 2)`` of a periodic Gaussian filter.

    Parameters
    ----------
    grid:
        Target grid.
    sigma:
        Standard deviation of the Gaussian, per dimension or scalar.  The
        default is the grid spacing (the paper smooths with a bandwidth of
        one grid cell, ``2*pi/N``).
    """
    return get_symbols(grid).gaussian(_normalize_sigma(grid, sigma))


def gaussian_smooth(
    field: np.ndarray,
    grid: Grid,
    sigma: Sequence[float] | float | None = None,
    backend: Union[str, FFTBackend, None] = None,
) -> np.ndarray:
    """Smooth a scalar field with the periodic spectral Gaussian filter."""
    fft = _transform_for(grid, backend)
    return fft.apply_symbol(np.asarray(field, dtype=grid.dtype), gaussian_symbol(grid, sigma))


def low_pass_filter(
    field: np.ndarray,
    grid: Grid,
    cutoff_fraction: float = 2.0 / 3.0,
    backend: Union[str, FFTBackend, None] = None,
) -> np.ndarray:
    """Sharp spectral low-pass (classic 2/3 de-aliasing rule by default).

    Modes with ``|k_j| > cutoff_fraction * k_nyquist_j`` in any direction are
    zeroed.
    """
    if not 0.0 < cutoff_fraction <= 1.0:
        raise ValueError(f"cutoff_fraction must lie in (0, 1], got {cutoff_fraction}")
    fft = _transform_for(grid, backend)
    mask = get_symbols(grid).low_pass_mask(cutoff_fraction)
    return fft.apply_symbol(np.asarray(field, dtype=grid.dtype), mask)


# --------------------------------------------------------------------------- #
# zero padding of non-periodic data
# --------------------------------------------------------------------------- #
def zero_pad(field: np.ndarray, pad_width: int | Tuple[int, int, int]) -> np.ndarray:
    """Embed a (possibly non-periodic) image into a larger zero background.

    The paper zero-pads the input images so that the periodic spectral
    approximation does not produce excessive aliasing from the wrap-around
    discontinuity.  Padding is symmetric per dimension.
    """
    field = np.asarray(field)
    if field.ndim != 3:
        raise ValueError(f"expected a 3D image, got ndim={field.ndim}")
    if np.isscalar(pad_width):
        pad_width = (int(pad_width),) * 3
    pad_width = tuple(int(p) for p in pad_width)
    if any(p < 0 for p in pad_width):
        raise ValueError(f"pad widths must be non-negative, got {pad_width}")
    pads = [(p, p) for p in pad_width]
    return np.pad(field, pads, mode="constant", constant_values=0.0)


def remove_padding(field: np.ndarray, pad_width: int | Tuple[int, int, int]) -> np.ndarray:
    """Inverse of :func:`zero_pad`: crop the symmetric zero margin."""
    field = np.asarray(field)
    if np.isscalar(pad_width):
        pad_width = (int(pad_width),) * 3
    pad_width = tuple(int(p) for p in pad_width)
    slices = tuple(
        slice(p, field.shape[d] - p if p else None) for d, p in enumerate(pad_width)
    )
    return field[slices]


# --------------------------------------------------------------------------- #
# grid transfer (spectral restriction / prolongation)
# --------------------------------------------------------------------------- #
def _spectral_copy_indices(n_src: int, n_dst: int) -> Tuple[np.ndarray, np.ndarray]:
    """Matching full-spectrum FFT indices of modes present on both grids."""
    n_keep = min(n_src, n_dst)
    kmax = (n_keep - 1) // 2
    # retain modes -kmax..kmax (drop the unmatched Nyquist mode to stay real
    # and symmetric)
    freqs = list(range(0, kmax + 1)) + list(range(-kmax, 0))
    src_idx = np.array([f % n_src for f in freqs], dtype=np.intp)
    dst_idx = np.array([f % n_dst for f in freqs], dtype=np.intp)
    return src_idx, dst_idx


def _resample(field: np.ndarray, src: Grid, dst: Grid) -> np.ndarray:
    """Spectral resampling of a scalar field between two grids on one domain."""
    if not np.allclose(src.lengths, dst.lengths):
        raise ValueError("grids must cover the same physical domain")
    spectrum = np.fft.fftn(np.asarray(field, dtype=src.dtype))
    out_spectrum = np.zeros(dst.shape, dtype=complex)
    idx = [_spectral_copy_indices(src.shape[d], dst.shape[d]) for d in range(3)]
    src_idx = np.ix_(idx[0][0], idx[1][0], idx[2][0])
    dst_idx = np.ix_(idx[0][1], idx[1][1], idx[2][1])
    out_spectrum[dst_idx] = spectrum[src_idx]
    scale = dst.num_points / src.num_points
    return np.real(np.fft.ifftn(out_spectrum * scale)).astype(dst.dtype)


def restrict(field: np.ndarray, fine: Grid, coarse: Grid) -> np.ndarray:
    """Restrict a field from a fine grid to a coarse grid (spectral truncation)."""
    for n_f, n_c in zip(fine.shape, coarse.shape):
        if n_c > n_f:
            raise ValueError("coarse grid must not be finer than the fine grid")
    return _resample(field, fine, coarse)


def prolong(field: np.ndarray, coarse: Grid, fine: Grid) -> np.ndarray:
    """Prolong a field from a coarse grid to a fine grid (spectral zero fill)."""
    for n_f, n_c in zip(fine.shape, coarse.shape):
        if n_c > n_f:
            raise ValueError("fine grid must not be coarser than the coarse grid")
    return _resample(field, coarse, fine)
