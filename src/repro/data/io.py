"""Reading and writing registration problems and results.

Simple, dependency-free ``.npz`` persistence for image pairs, velocities and
deformation maps, so that examples and benchmarks can cache expensive data
generation and so that downstream users can run the solver on their own
volumes (any tool can produce an ``.npz`` with ``reference`` and
``template`` arrays).

Two loading modes are provided:

* :func:`load_problem` materializes every array in memory (the classic
  path, works for compressed and uncompressed archives alike);
* :func:`open_problem` returns **memory-mapped** arrays instead: nothing is
  read until a slice is touched, so the out-of-core field pipeline
  (:mod:`repro.transport.sources`) can gather plane tiles of volumes far
  larger than RAM.  Mappability requires the *uncompressed* ``.npz``
  variant — save with ``save_problem(..., compress=False)`` (a zip member
  can only be mapped when it is stored, not deflated).
"""

from __future__ import annotations

import zipfile
from pathlib import Path
from typing import Dict, Optional

import numpy as np
from numpy.lib import format as npy_format

from repro.spectral.grid import Grid

__all__ = [
    "save_problem",
    "load_problem",
    "open_problem",
    "memmap_npz_member",
]


def save_problem(
    path: str | Path,
    reference: np.ndarray,
    template: np.ndarray,
    grid: Optional[Grid] = None,
    velocity: Optional[np.ndarray] = None,
    metadata: Optional[Dict[str, float]] = None,
    compress: bool = True,
) -> Path:
    """Save a registration problem (and optional velocity) to ``.npz``.

    ``compress=False`` writes a plain (stored, uncompressed) archive whose
    members :func:`open_problem` can memory-map — the on-disk format of the
    out-of-core pipeline.  Compressed archives stay the default for
    portability; they simply cannot be mapped.
    """
    path = Path(path)
    reference = np.asarray(reference)
    template = np.asarray(template)
    if reference.shape != template.shape:
        raise ValueError(
            f"reference and template must share a shape, got {reference.shape} and {template.shape}"
        )
    grid = grid or Grid(reference.shape)
    payload: Dict[str, np.ndarray] = {
        "reference": reference,
        "template": template,
        "grid_shape": np.asarray(grid.shape, dtype=np.int64),
        "grid_lengths": np.asarray(grid.lengths, dtype=np.float64),
    }
    if velocity is not None:
        velocity = np.asarray(velocity)
        if velocity.shape != (3, *reference.shape):
            raise ValueError(
                f"velocity must have shape {(3, *reference.shape)}, got {velocity.shape}"
            )
        payload["velocity"] = velocity
    if metadata:
        payload["metadata_keys"] = np.asarray(sorted(metadata), dtype="U64")
        payload["metadata_values"] = np.asarray(
            [float(metadata[k]) for k in sorted(metadata)], dtype=np.float64
        )
    path.parent.mkdir(parents=True, exist_ok=True)
    if compress:
        np.savez_compressed(path, **payload)
    else:
        np.savez(path, **payload)
    return path


def load_problem(path: str | Path) -> Dict[str, object]:
    """Load a problem saved with :func:`save_problem`.

    Returns a dictionary with keys ``reference``, ``template``, ``grid`` and
    optionally ``velocity`` and ``metadata``.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such problem file: {path}")
    with np.load(path, allow_pickle=False) as data:
        grid = Grid(
            tuple(int(n) for n in data["grid_shape"]),
            tuple(float(L) for L in data["grid_lengths"]),
        )
        out: Dict[str, object] = {
            "reference": np.asarray(data["reference"]),
            "template": np.asarray(data["template"]),
            "grid": grid,
        }
        if "velocity" in data:
            out["velocity"] = np.asarray(data["velocity"])
        if "metadata_keys" in data:
            keys = [str(k) for k in data["metadata_keys"]]
            values = [float(v) for v in data["metadata_values"]]
            out["metadata"] = dict(zip(keys, values))
    return out


# --------------------------------------------------------------------------- #
# memory-mapped access (the out-of-core pipeline's disk format)
# --------------------------------------------------------------------------- #
def _member_array_offset(path: Path, handle, info: "zipfile.ZipInfo"):
    """Byte offset, dtype and shape of an ``.npy`` member's raw array data.

    ``numpy.load`` reads zip members through :class:`zipfile.ZipExtFile`,
    which cannot be memory-mapped.  A *stored* (uncompressed) member,
    however, sits byte-for-byte inside the archive file: we seek to its zip
    local file header (whose name/extra lengths may legitimately differ
    from the central directory's), skip it, parse the ``.npy`` header, and
    the file position is exactly where :func:`numpy.memmap` must start.
    """
    handle.seek(info.header_offset)
    local = handle.read(30)
    if len(local) != 30 or local[:4] != b"PK\x03\x04":
        raise ValueError(
            f"{path}: corrupt archive (bad local file header for member {info.filename!r})"
        )
    name_len = int.from_bytes(local[26:28], "little")
    extra_len = int.from_bytes(local[28:30], "little")
    handle.seek(info.header_offset + 30 + name_len + extra_len)
    version = npy_format.read_magic(handle)
    if version == (1, 0):
        shape, fortran_order, dtype = npy_format.read_array_header_1_0(handle)
    elif version == (2, 0):
        shape, fortran_order, dtype = npy_format.read_array_header_2_0(handle)
    else:
        raise ValueError(
            f"{path}: member {info.filename!r} uses .npy format version {version}, "
            "which this reader does not support"
        )
    if dtype.hasobject:
        raise ValueError(
            f"{path}: member {info.filename!r} has object dtype {dtype}; only plain "
            "numeric arrays can be memory-mapped"
        )
    if fortran_order:
        raise ValueError(
            f"{path}: member {info.filename!r} is stored in Fortran (column-major) "
            "order; the tiled gather executor requires C-contiguous plane tiles — "
            "re-save it with numpy's default (C) order"
        )
    return handle.tell(), dtype, shape


def memmap_npz_member(path: str | Path, key: str) -> np.ndarray:
    """Memory-map one array of an *uncompressed* ``.npz`` archive.

    Returns a read-only :class:`numpy.memmap` view of the member's data
    inside the archive file — no bytes are read until they are sliced.
    Raises a clear error when the member was saved compressed (use
    ``save_problem(..., compress=False)`` / plain :func:`numpy.savez`), has
    an object dtype, or is not C-contiguous on disk.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such file: {path}")
    member = key if key.endswith(".npy") else f"{key}.npy"
    with zipfile.ZipFile(path) as archive:
        try:
            info = archive.getinfo(member)
        except KeyError as exc:
            names = sorted(name[:-4] for name in archive.namelist() if name.endswith(".npy"))
            raise KeyError(f"{path} has no array {key!r}; available: {names}") from exc
        if info.compress_type != zipfile.ZIP_STORED:
            raise ValueError(
                f"{path}: member {key!r} is compressed and cannot be memory-mapped; "
                "save the archive uncompressed (save_problem(..., compress=False) "
                "or numpy.savez instead of numpy.savez_compressed)"
            )
    with open(path, "rb") as handle:
        offset, dtype, shape = _member_array_offset(path, handle, info)
    return np.memmap(path, dtype=dtype, mode="r", offset=offset, shape=shape, order="C")


def open_problem(path: str | Path, mmap: bool = True) -> Dict[str, object]:
    """Open a problem with its volume arrays memory-mapped.

    The out-of-core twin of :func:`load_problem`: ``reference``,
    ``template`` and ``velocity`` come back as read-only memmap views (for
    ``.npz``: of the archive members in place), so opening a 512^3 problem
    costs a few kB — the field bytes are paged in tile by tile as the
    gather executor touches them.  The small arrays (grid geometry,
    metadata) are always materialized.

    ``mmap=False`` degrades to :func:`load_problem` exactly (compressed
    archives included); with ``mmap=True`` a compressed archive raises a
    clear error pointing at ``save_problem(..., compress=False)``.
    """
    if not mmap:
        return load_problem(path)
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such problem file: {path}")
    with np.load(path, allow_pickle=False) as data:
        names = set(data.files)
        grid = Grid(
            tuple(int(n) for n in data["grid_shape"]),
            tuple(float(L) for L in data["grid_lengths"]),
        )
        out: Dict[str, object] = {"grid": grid}
        if "metadata_keys" in names:
            keys = [str(k) for k in data["metadata_keys"]]
            values = [float(v) for v in data["metadata_values"]]
            out["metadata"] = dict(zip(keys, values))
    out["reference"] = memmap_npz_member(path, "reference")
    out["template"] = memmap_npz_member(path, "template")
    if "velocity" in names:
        out["velocity"] = memmap_npz_member(path, "velocity")
    return out
