"""Reading and writing registration problems and results.

Simple, dependency-free ``.npz`` persistence for image pairs, velocities and
deformation maps, so that examples and benchmarks can cache expensive data
generation and so that downstream users can run the solver on their own
volumes (any tool can produce an ``.npz`` with ``reference`` and
``template`` arrays).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.spectral.grid import Grid


def save_problem(
    path: str | Path,
    reference: np.ndarray,
    template: np.ndarray,
    grid: Optional[Grid] = None,
    velocity: Optional[np.ndarray] = None,
    metadata: Optional[Dict[str, float]] = None,
) -> Path:
    """Save a registration problem (and optional velocity) to ``.npz``."""
    path = Path(path)
    reference = np.asarray(reference)
    template = np.asarray(template)
    if reference.shape != template.shape:
        raise ValueError(
            f"reference and template must share a shape, got {reference.shape} and {template.shape}"
        )
    grid = grid or Grid(reference.shape)
    payload: Dict[str, np.ndarray] = {
        "reference": reference,
        "template": template,
        "grid_shape": np.asarray(grid.shape, dtype=np.int64),
        "grid_lengths": np.asarray(grid.lengths, dtype=np.float64),
    }
    if velocity is not None:
        velocity = np.asarray(velocity)
        if velocity.shape != (3, *reference.shape):
            raise ValueError(
                f"velocity must have shape {(3, *reference.shape)}, got {velocity.shape}"
            )
        payload["velocity"] = velocity
    if metadata:
        payload["metadata_keys"] = np.asarray(sorted(metadata), dtype="U64")
        payload["metadata_values"] = np.asarray(
            [float(metadata[k]) for k in sorted(metadata)], dtype=np.float64
        )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)
    return path


def load_problem(path: str | Path) -> Dict[str, object]:
    """Load a problem saved with :func:`save_problem`.

    Returns a dictionary with keys ``reference``, ``template``, ``grid`` and
    optionally ``velocity`` and ``metadata``.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such problem file: {path}")
    with np.load(path, allow_pickle=False) as data:
        grid = Grid(
            tuple(int(n) for n in data["grid_shape"]),
            tuple(float(L) for L in data["grid_lengths"]),
        )
        out: Dict[str, object] = {
            "reference": np.asarray(data["reference"]),
            "template": np.asarray(data["template"]),
            "grid": grid,
        }
        if "velocity" in data:
            out["velocity"] = np.asarray(data["velocity"])
        if "metadata_keys" in data:
            keys = [str(k) for k in data["metadata_keys"]]
            values = [float(v) for v in data["metadata_values"]]
            out["metadata"] = dict(zip(keys, values))
    return out
