"""Image pre-processing used before registration.

The paper's pipeline (Sec. III-B1): images are rescaled, zero-padded when
they are not periodic, and smoothed spectrally with a Gaussian whose
bandwidth equals the grid spacing so that the spectral differentiation of
discontinuous intensities does not produce excessive aliasing.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.spectral.filters import gaussian_smooth, zero_pad
from repro.spectral.grid import Grid


def normalize_intensity(image: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Affinely rescale intensities to the unit interval ``[0, 1]``.

    A constant image is mapped to zeros (there is nothing to register).
    """
    image = np.asarray(image, dtype=np.float64)
    lo = float(image.min())
    hi = float(image.max())
    if hi - lo < eps:
        return np.zeros_like(image)
    return (image - lo) / (hi - lo)


def smooth_image(
    image: np.ndarray, grid: Grid, sigma_cells: float = 1.0, backend: object = None
) -> np.ndarray:
    """Spectral Gaussian smoothing with a bandwidth of *sigma_cells* cells.

    ``sigma_cells = 1`` reproduces the paper's choice of a ``2*pi/N``
    bandwidth.  *backend* selects the FFT engine (``None``: environment
    default).
    """
    if sigma_cells < 0:
        raise ValueError(f"sigma_cells must be non-negative, got {sigma_cells}")
    if sigma_cells == 0:
        return np.asarray(image, dtype=grid.dtype).copy()
    sigma = tuple(sigma_cells * h for h in grid.spacing)
    return gaussian_smooth(image, grid, sigma=sigma, backend=backend)


def pad_image(image: np.ndarray, grid: Grid, pad_cells: int = 4) -> Tuple[np.ndarray, Grid]:
    """Zero-pad a non-periodic image and return the enlarged grid.

    Returns the padded image together with a new :class:`Grid` covering the
    enlarged index space with the same grid spacing.
    """
    if pad_cells < 0:
        raise ValueError(f"pad_cells must be non-negative, got {pad_cells}")
    padded = zero_pad(image, pad_cells)
    spacing = grid.spacing
    new_lengths = tuple(h * n for h, n in zip(spacing, padded.shape))
    return padded, Grid(padded.shape, new_lengths, grid.dtype)
