"""The paper's synthetic registration problem (Sec. IV-A1, Fig. 5).

The template image, the analytic velocity and the construction of the
reference image follow the paper verbatim:

* template:  ``rho_T(x) = (sin^2 x1 + sin^2 x2 + sin^2 x3) / 3``
* velocity:  ``v*(x)  = (cos x1 sin x2, cos x2 sin x1, cos x1 sin x3)``
* reference: ``rho_R`` is the solution of the state equation (2b) with the
  exact velocity ``v*`` — i.e. the template transported by ``v*``.

For the incompressible (volume-preserving) experiments the paper uses "a
similar but divergence free velocity field"; :func:`solenoidal_velocity`
provides one (an ABC-type field, exactly divergence free).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.spectral.grid import Grid
from repro.transport.solvers import TransportSolver
from repro.utils.validation import check_positive_int


def sinusoidal_template(grid: Grid) -> np.ndarray:
    """Template ``rho_T(x) = (sin^2 x1 + sin^2 x2 + sin^2 x3)/3``."""
    x1, x2, x3 = grid.coordinates(sparse=True)
    return ((np.sin(x1) ** 2 + np.sin(x2) ** 2 + np.sin(x3) ** 2) / 3.0).astype(grid.dtype)


def synthetic_velocity(grid: Grid, amplitude: float = 1.0) -> np.ndarray:
    """The paper's analytic velocity ``v*`` (generally not divergence free)."""
    x1, x2, x3 = grid.coordinates()
    v1 = np.cos(x1) * np.sin(x2)
    v2 = np.cos(x2) * np.sin(x1)
    v3 = np.cos(x1) * np.sin(x3)
    return amplitude * np.stack([v1, v2, v3], axis=0).astype(grid.dtype)


def solenoidal_velocity(grid: Grid, amplitude: float = 1.0) -> np.ndarray:
    """A divergence-free analogue of ``v*`` for the incompressible runs.

    Each component is independent of its own coordinate
    (``v = (sin x2 sin x3, sin x1 sin x3, sin x1 sin x2)``), hence
    ``div v = 0`` exactly (and spectrally on the grid).
    """
    x1, x2, x3 = grid.coordinates()
    v1 = np.sin(x2) * np.sin(x3)
    v2 = np.sin(x1) * np.sin(x3)
    v3 = np.sin(x1) * np.sin(x2)
    return amplitude * np.stack([v1, v2, v3], axis=0).astype(grid.dtype)


@dataclass
class SyntheticProblem:
    """A synthetic registration problem with known generating velocity."""

    grid: Grid
    template: np.ndarray
    reference: np.ndarray
    true_velocity: np.ndarray
    num_time_steps: int
    incompressible: bool

    @property
    def initial_residual(self) -> float:
        """L2 mismatch between the unregistered images."""
        return self.grid.norm(self.reference - self.template)

    def describe(self) -> dict:
        return {
            "grid": self.grid.shape,
            "incompressible": self.incompressible,
            "num_time_steps": self.num_time_steps,
            "initial_residual": self.initial_residual,
        }


def synthetic_registration_problem(
    resolution: int | tuple[int, int, int] = 64,
    amplitude: float = 1.0,
    num_time_steps: int = 4,
    incompressible: bool = False,
    grid: Optional[Grid] = None,
    interpolation: str = "cubic_bspline",
) -> SyntheticProblem:
    """Build the synthetic problem of Fig. 5 at the requested resolution.

    Parameters
    ----------
    resolution:
        Grid points per dimension (scalar for the isotropic case the paper
        uses, or an explicit 3-tuple).
    amplitude:
        Scaling of the analytic velocity; 1 reproduces the paper's setup.
    num_time_steps:
        Time steps used when transporting the template to create the
        reference (paper default 4).
    incompressible:
        Use the divergence-free velocity (the setup of Table III).
    grid:
        Optional pre-built grid (overrides *resolution*).
    interpolation:
        Interpolation kernel used for the data-generating transport solve.
    """
    if grid is None:
        if np.isscalar(resolution):
            check_positive_int(int(resolution), "resolution")
            shape = (int(resolution),) * 3
        else:
            shape = tuple(int(r) for r in resolution)
        grid = Grid(shape)
    template = sinusoidal_template(grid)
    velocity = (
        solenoidal_velocity(grid, amplitude)
        if incompressible
        else synthetic_velocity(grid, amplitude)
    )
    transport = TransportSolver(grid, num_time_steps=num_time_steps, interpolation=interpolation)
    plan = transport.plan(velocity)
    reference = transport.solve_state(plan, template)[-1]
    return SyntheticProblem(
        grid=grid,
        template=template,
        reference=reference,
        true_velocity=velocity,
        num_time_steps=num_time_steps,
        incompressible=incompressible,
    )


@dataclass
class SyntheticPopulation:
    """A synthetic atlas population: one atlas, many deformed subjects."""

    grid: Grid
    atlas: np.ndarray
    subjects: List[np.ndarray]
    amplitudes: List[float]
    num_time_steps: int

    @property
    def num_subjects(self) -> int:
        return len(self.subjects)


def synthetic_population(
    resolution: int | tuple[int, int, int] = 32,
    num_subjects: int = 4,
    amplitude: float = 1.0,
    spread: float = 0.5,
    num_time_steps: int = 4,
    incompressible: bool = False,
    grid: Optional[Grid] = None,
    interpolation: str = "cubic_bspline",
) -> SyntheticPopulation:
    """A deterministic population for the atlas (service) workload.

    Every subject is the sinusoidal template transported by the analytic
    velocity at a subject-specific amplitude, spaced evenly across
    ``amplitude * [1 - spread, 1 + spread]``; the atlas is the untransported
    template.  Registering each subject back to the atlas is therefore a
    genuine large-deformation problem with a known generating velocity per
    subject — and all subjects share the atlas's grid, so the service-side
    plan reuse across the population is exercised exactly as in a real
    population study.
    """
    check_positive_int(num_subjects, "num_subjects")
    if not 0.0 <= spread < 1.0:
        raise ValueError(f"spread must lie in [0, 1), got {spread}")
    if grid is None:
        if np.isscalar(resolution):
            check_positive_int(int(resolution), "resolution")
            shape = (int(resolution),) * 3
        else:
            shape = tuple(int(r) for r in resolution)
        grid = Grid(shape)
    atlas = sinusoidal_template(grid)
    if num_subjects == 1:
        amplitudes = [float(amplitude)]
    else:
        offsets = np.linspace(-spread, spread, num_subjects)
        amplitudes = [float(amplitude * (1.0 + offset)) for offset in offsets]
    transport = TransportSolver(grid, num_time_steps=num_time_steps, interpolation=interpolation)
    subjects = []
    for subject_amplitude in amplitudes:
        velocity = (
            solenoidal_velocity(grid, subject_amplitude)
            if incompressible
            else synthetic_velocity(grid, subject_amplitude)
        )
        plan = transport.plan(velocity)
        subjects.append(transport.solve_state(plan, atlas)[-1])
    return SyntheticPopulation(
        grid=grid,
        atlas=atlas,
        subjects=subjects,
        amplitudes=amplitudes,
        num_time_steps=num_time_steps,
    )
