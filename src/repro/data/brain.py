"""Procedural multi-subject brain phantom (NIREP substitute).

The paper's real-world experiments register two T1-weighted MRI brain
volumes of *different individuals* from the NIREP repository (na01 and na02,
grid ``256 x 300 x 256``).  Those data are not available offline, so this
module synthesizes a pair of "subjects" that reproduces the properties that
matter for the solver:

* a compact head/brain geometry embedded in a zero background (the image is
  *not* periodic — it exercises the zero-padding / spectral-smoothing
  pipeline),
* several tissue classes with distinct intensities (white matter, gray
  matter ribbon, CSF/ventricles, background),
* cortical-folding-like high-frequency structure,
* genuine *inter-subject* anatomical variability: the second subject is a
  smoothly warped and intensity-perturbed version of the base anatomy, with
  an unknown (non-affine) correspondence, which is exactly the situation of
  a multi-subject registration problem,
* optionally an anisotropic grid (the default mimics the NIREP aspect ratio
  ``256 : 300 : 256``).

The generator is deterministic for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.data.preprocessing import normalize_intensity
from repro.spectral.filters import gaussian_smooth
from repro.spectral.grid import Grid
from repro.transport.interpolation import PeriodicInterpolator

#: Aspect ratio of the NIREP na01/na02 volumes used in the paper.
NIREP_ASPECT = (256, 300, 256)


def nirep_like_shape(base_resolution: int = 64) -> Tuple[int, int, int]:
    """A grid shape with the NIREP aspect ratio scaled to *base_resolution*.

    ``base_resolution = 256`` reproduces the paper's ``256 x 300 x 256``.
    """
    if base_resolution < 8:
        raise ValueError(f"base_resolution must be >= 8, got {base_resolution}")
    scale = base_resolution / NIREP_ASPECT[0]
    return tuple(max(8, int(round(n * scale))) for n in NIREP_ASPECT)


def _smooth_random_field(grid: Grid, rng: np.random.Generator, correlation_cells: float) -> np.ndarray:
    """Zero-mean smooth random field with unit peak amplitude."""
    noise = rng.standard_normal(grid.shape)
    sigma = tuple(correlation_cells * h for h in grid.spacing)
    smooth = gaussian_smooth(noise, grid, sigma=sigma)
    smooth -= smooth.mean()
    peak = np.max(np.abs(smooth))
    if peak > 0:
        smooth /= peak
    return smooth.astype(grid.dtype)


def _normalized_coordinates(grid: Grid) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Coordinates mapped to ``[-1, 1)`` per dimension (head-centered frame)."""
    coords = []
    for axis in range(3):
        x = grid.axis_coordinates(axis)
        coords.append(2.0 * x / grid.lengths[axis] - 1.0)
    return tuple(np.meshgrid(*coords, indexing="ij"))


def brain_phantom(
    grid: Grid,
    seed: int = 0,
    subject_variability: float = 0.0,
    folding_frequency: float = 9.0,
) -> np.ndarray:
    """Synthesize one brain-like 3D image on *grid*.

    Parameters
    ----------
    grid:
        Target grid (may be anisotropic).
    seed:
        Seed controlling the subject-independent random structures.
    subject_variability:
        Amplitude (in units of the head radius) of the smooth random warp
        and intensity perturbation that distinguishes one "subject" from the
        base anatomy.  0 yields the base anatomy itself.
    folding_frequency:
        Angular frequency of the cortical-folding-like texture.
    """
    rng = np.random.default_rng(seed)
    xi, yi, zi = _normalized_coordinates(grid)

    if subject_variability > 0.0:
        # smooth, subject-specific coordinate warp (anatomical variability)
        warp_scale = subject_variability
        xi = xi + warp_scale * _smooth_random_field(grid, rng, correlation_cells=6.0)
        yi = yi + warp_scale * _smooth_random_field(grid, rng, correlation_cells=6.0)
        zi = zi + warp_scale * _smooth_random_field(grid, rng, correlation_cells=6.0)
    else:
        # consume the same number of random draws so that the base anatomy is
        # reproducible regardless of the variability setting
        for _ in range(3):
            _smooth_random_field(grid, rng, correlation_cells=6.0)

    # head/brain ellipsoid occupying ~60% of the domain
    r2 = (xi / 0.62) ** 2 + (yi / 0.72) ** 2 + (zi / 0.62) ** 2
    brain = np.clip(1.0 - r2, 0.0, None)
    brain_mask = (r2 < 1.0).astype(grid.dtype)

    # white-matter core
    r2_core = (xi / 0.40) ** 2 + (yi / 0.48) ** 2 + (zi / 0.40) ** 2
    white = np.clip(1.0 - r2_core, 0.0, None)

    # ventricles: two small ellipsoids near the center, low intensity
    left = ((xi + 0.12) / 0.10) ** 2 + (yi / 0.22) ** 2 + (zi / 0.10) ** 2
    right = ((xi - 0.12) / 0.10) ** 2 + (yi / 0.22) ** 2 + (zi / 0.10) ** 2
    ventricles = ((left < 1.0) | (right < 1.0)).astype(grid.dtype)

    # cortical-folding-like texture confined to the gray-matter ribbon
    texture = (
        np.sin(folding_frequency * np.pi * xi)
        * np.sin(folding_frequency * np.pi * yi + 1.3)
        * np.sin(folding_frequency * np.pi * zi + 0.7)
    )
    ribbon = np.clip(brain - white, 0.0, None)

    image = (
        0.55 * brain_mask * brain
        + 0.35 * white
        + 0.18 * ribbon * (0.5 + 0.5 * texture)
        - 0.45 * ventricles
    )

    if subject_variability > 0.0:
        # mild subject-specific intensity in-homogeneity (bias-field like)
        bias = _smooth_random_field(grid, rng, correlation_cells=10.0)
        image = image * (1.0 + 0.08 * subject_variability / 0.05 * bias)

    image = np.clip(image, 0.0, None)
    # light smoothing so the phantom has the resolution-independent smooth
    # appearance of an MRI acquisition
    image = gaussian_smooth(image, grid, sigma=tuple(1.0 * h for h in grid.spacing))
    return normalize_intensity(image)


@dataclass
class BrainPhantomPair:
    """A multi-subject registration pair (our na01/na02 analogue)."""

    grid: Grid
    reference: np.ndarray
    template: np.ndarray
    seed: int

    @property
    def initial_residual(self) -> float:
        return self.grid.norm(self.reference - self.template)

    def masks(self, threshold: float = 0.15) -> Tuple[np.ndarray, np.ndarray]:
        """Foreground (head) masks of the two subjects."""
        return self.reference > threshold, self.template > threshold


def brain_registration_pair(
    base_resolution: int = 64,
    seed: int = 42,
    subject_variability: float = 0.05,
    grid: Optional[Grid] = None,
    isotropic: bool = False,
) -> BrainPhantomPair:
    """Generate a pair of distinct "subjects" for multi-subject registration.

    Parameters
    ----------
    base_resolution:
        First-dimension resolution; the other dimensions follow the NIREP
        aspect ratio unless *isotropic* is set.  256 reproduces the paper's
        grid size.
    seed:
        Base random seed; the two subjects use ``seed`` and ``seed + 1``.
    subject_variability:
        Amplitude of the inter-subject anatomical variability.
    grid:
        Optional explicit grid, overriding *base_resolution*.
    isotropic:
        Use a cubic grid instead of the NIREP aspect ratio.
    """
    if grid is None:
        shape = (
            (base_resolution,) * 3 if isotropic else nirep_like_shape(base_resolution)
        )
        grid = Grid(shape)
    reference = brain_phantom(grid, seed=seed, subject_variability=subject_variability)
    template = brain_phantom(grid, seed=seed + 1, subject_variability=subject_variability)
    return BrainPhantomPair(grid=grid, reference=reference, template=template, seed=seed)


def warped_self_pair(
    base_resolution: int = 32,
    seed: int = 7,
    warp_amplitude: float = 0.3,
    grid: Optional[Grid] = None,
) -> BrainPhantomPair:
    """A same-subject pair related by a known smooth warp.

    Useful for controlled validation: the template is the base anatomy and
    the reference is the same anatomy resampled through a smooth synthetic
    displacement, so a successful registration must drive the residual far
    below the initial mismatch.
    """
    if grid is None:
        grid = Grid((base_resolution,) * 3)
    rng = np.random.default_rng(seed)
    base = brain_phantom(grid, seed=seed, subject_variability=0.0)

    displacement = np.stack(
        [
            warp_amplitude * _smooth_random_field(grid, rng, correlation_cells=5.0)
            for _ in range(3)
        ],
        axis=0,
    )
    interpolator = PeriodicInterpolator(grid)
    points = grid.coordinate_stack() + displacement
    warped = interpolator(base, points)
    return BrainPhantomPair(grid=grid, reference=warped, template=base, seed=seed)
