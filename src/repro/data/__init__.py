"""Image data: synthetic benchmark problems and the brain-phantom substitute.

The paper evaluates on (i) an analytically defined synthetic problem used
for all scalability studies (Sec. IV-A1, Fig. 5) and (ii) two 3D MRI brain
images from the NIREP repository (na01/na02, grid 256 x 300 x 256).  The
NIREP data cannot be redistributed or downloaded in this offline
environment, so :mod:`repro.data.brain` generates a procedural multi-subject
brain phantom that exercises the identical code path (see DESIGN.md for the
substitution rationale).
"""

from repro.data.preprocessing import normalize_intensity, pad_image, smooth_image
from repro.data.synthetic import (
    SyntheticProblem,
    sinusoidal_template,
    synthetic_registration_problem,
    synthetic_velocity,
    solenoidal_velocity,
)
from repro.data.brain import BrainPhantomPair, brain_phantom, brain_registration_pair
from repro.data.io import load_problem, memmap_npz_member, open_problem, save_problem

__all__ = [
    "normalize_intensity",
    "pad_image",
    "smooth_image",
    "SyntheticProblem",
    "sinusoidal_template",
    "synthetic_registration_problem",
    "synthetic_velocity",
    "solenoidal_velocity",
    "BrainPhantomPair",
    "brain_phantom",
    "brain_registration_pair",
    "load_problem",
    "open_problem",
    "memmap_npz_member",
    "save_problem",
]
