"""Plain-text table formatting mimicking the paper's table layout."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

BREAKDOWN_COLUMNS = (
    "time_to_solution",
    "fft_communication",
    "fft_execution",
    "interp_communication",
    "interp_execution",
)


def _format_value(value: object, precision: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-2:
            return f"{value:.2e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_rows(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a list of dictionaries as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [[_format_value(row.get(c)) for c in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(columns))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_breakdown_table(
    entries: Iterable[Dict[str, object]],
    title: Optional[str] = None,
) -> str:
    """Format paper-vs-reproduced breakdown rows.

    Each entry is a dictionary with at least ``label`` plus any of the
    breakdown columns, typically produced by
    :func:`repro.analysis.experiments.reproduce_scaling_table`.
    """
    columns = ["label", "grid", "tasks", "source", *BREAKDOWN_COLUMNS]
    rows = []
    for entry in entries:
        row = {c: entry.get(c) for c in columns}
        rows.append(row)
    return format_rows(rows, columns=columns, title=title)
