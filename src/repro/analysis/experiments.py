"""Experiment drivers that regenerate the paper's tables and figures.

Each driver returns plain data (lists of dictionaries) so it can be used
from the benchmark harness, the examples, or interactively.  Two kinds of
reproduction are combined (see DESIGN.md):

* **measured** — the actual Python solver is run at laptop-scale resolution
  (the algorithmic quantities the paper reports — Newton iterations,
  Hessian mat-vecs, residual reduction, positivity of ``det grad y`` — are
  resolution-independent claims and are measured for real);
* **modeled** — wall-clock rows for the paper's node counts are projected
  with the calibrated performance model of
  :mod:`repro.parallel.performance` (a laptop cannot time 1024-task runs).

Every returned entry carries a ``source`` field (``"paper"``, ``"model"``
or ``"measured"``) so reports remain unambiguous about what was measured
and what was projected.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.paper_tables import TABLE_V, PaperRun, paper_table
from repro.core.optim.gauss_newton import SolverOptions
from repro.core.registration import RegistrationSolver
from repro.data.brain import brain_registration_pair
from repro.data.synthetic import synthetic_registration_problem
from repro.parallel.machines import get_machine
from repro.parallel.performance import RegistrationCostModel


# --------------------------------------------------------------------------- #
# Tables I-IV: scaling studies (paper rows + model projections)
# --------------------------------------------------------------------------- #
def _model_entry(run: PaperRun, num_time_steps: int, num_newton: int, num_matvecs: int) -> Dict[str, object]:
    model = RegistrationCostModel(
        grid_shape=run.grid,
        num_tasks=run.tasks,
        machine=get_machine(run.machine),
        num_time_steps=num_time_steps,
        num_newton_iterations=num_newton,
        num_hessian_matvecs=num_matvecs,
    )
    breakdown = model.breakdown()
    return {
        "label": f"run #{run.run_id}",
        "grid": "x".join(str(n) for n in run.grid),
        "tasks": run.tasks,
        "source": "model",
        **{k: v for k, v in breakdown.as_dict().items() if k not in ("num_tasks", "num_nodes")},
    }


def _paper_entry(run: PaperRun) -> Dict[str, object]:
    return {
        "label": f"run #{run.run_id}",
        "grid": "x".join(str(n) for n in run.grid),
        "tasks": run.tasks,
        "source": "paper",
        "time_to_solution": run.time_to_solution,
        "fft_communication": run.fft_communication,
        "fft_execution": run.fft_execution,
        "interp_communication": run.interp_communication,
        "interp_execution": run.interp_execution,
    }


def reproduce_scaling_table(
    table: str,
    num_time_steps: int = 4,
    num_newton_iterations: int = 2,
    num_hessian_matvecs: int = 2,
) -> List[Dict[str, object]]:
    """Paper rows and model projections for scaling Table ``"I"``-``"IV"``.

    The iteration counts default to the paper's scalability setup (two
    Gauss-Newton iterations); pass the counts measured by
    :func:`measure_solver_iterations` to tie the projection to an actual
    solve of the same problem at reduced resolution.
    """
    entries: List[Dict[str, object]] = []
    for run in paper_table(table):
        entries.append(_paper_entry(run))
        entries.append(
            _model_entry(run, num_time_steps, num_newton_iterations, num_hessian_matvecs)
        )
    return entries


def measure_solver_iterations(
    resolution: int = 32,
    beta: float = 1e-2,
    incompressible: bool = False,
    num_newton_iterations: int = 2,
    num_time_steps: int = 4,
) -> Dict[str, object]:
    """Run the real solver on the synthetic problem (scaled down) and count work.

    The paper's scalability runs fix the number of Newton iterations to two;
    this helper measures how many Hessian mat-vecs the inexact solver needs
    in that setting so the performance model projects the same amount of
    algorithmic work.
    """
    problem = synthetic_registration_problem(
        resolution, num_time_steps=num_time_steps, incompressible=incompressible
    )
    options = SolverOptions(
        gradient_tolerance=1e-2,
        max_newton_iterations=num_newton_iterations,
        max_krylov_iterations=50,
    )
    solver = RegistrationSolver(
        beta=beta,
        incompressible=incompressible,
        num_time_steps=num_time_steps,
        options=options,
    )
    result = solver.run(problem.template, problem.reference, grid=problem.grid)
    return {
        "resolution": resolution,
        "newton_iterations": result.num_newton_iterations,
        "hessian_matvecs": result.num_hessian_matvecs,
        "relative_residual": result.relative_residual,
        "det_grad_min": result.det_grad_stats["min"],
        "time_to_solution": result.elapsed_seconds,
        "source": "measured",
    }


# --------------------------------------------------------------------------- #
# Table V: sensitivity to the regularization weight beta
# --------------------------------------------------------------------------- #
def reproduce_beta_sensitivity(
    resolution: int = 24,
    betas: Sequence[float] = (1e-1, 1e-3, 1e-5),
    num_newton_iterations: int = 4,
    max_krylov_iterations: int = 100,
    seed: int = 42,
) -> List[Dict[str, object]]:
    """Measured analogue of Table V on the brain-phantom pair.

    The paper fixes four Newton iterations and reports how the number of
    Hessian mat-vecs (and hence the time to solution) grows as ``beta``
    decreases, exposing the ``beta``-dependence of the preconditioner.  The
    same experiment is run here at reduced resolution; the *growth factors*
    are the reproduced quantity.
    """
    pair = brain_registration_pair(base_resolution=resolution, seed=seed)
    rows: List[Dict[str, object]] = []
    baseline_time: Optional[float] = None
    baseline_matvecs: Optional[int] = None
    for beta in betas:
        options = SolverOptions(
            gradient_tolerance=1e-12,  # run the fixed iteration budget, as in the paper
            absolute_gradient_tolerance=1e-30,
            max_newton_iterations=num_newton_iterations,
            max_krylov_iterations=max_krylov_iterations,
        )
        solver = RegistrationSolver(beta=beta, options=options)
        start = time.perf_counter()
        result = solver.run(pair.template, pair.reference, grid=pair.grid)
        elapsed = time.perf_counter() - start
        if baseline_time is None:
            baseline_time = elapsed
            baseline_matvecs = max(result.num_hessian_matvecs, 1)
        paper_row = TABLE_V.get(beta)
        rows.append(
            {
                "beta": beta,
                "source": "measured",
                "hessian_matvecs": result.num_hessian_matvecs,
                "time_to_solution": elapsed,
                "relative_time": elapsed / baseline_time,
                "relative_matvecs": result.num_hessian_matvecs / baseline_matvecs,
                "relative_residual": result.relative_residual,
                "paper_matvecs": paper_row[0] if paper_row else None,
                "paper_time": paper_row[1] if paper_row else None,
                "paper_relative_time": paper_row[2] if paper_row else None,
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Figures 5-7: synthetic problem and brain registration
# --------------------------------------------------------------------------- #
def reproduce_synthetic_problem(
    resolution: int = 32,
    beta: float = 1e-2,
    incompressible: bool = False,
    max_newton_iterations: int = 10,
) -> Dict[str, object]:
    """Regenerate the synthetic experiment of Fig. 5 and report its metrics."""
    problem = synthetic_registration_problem(resolution, incompressible=incompressible)
    options = SolverOptions(
        gradient_tolerance=1e-2,
        max_newton_iterations=max_newton_iterations,
        max_krylov_iterations=50,
    )
    solver = RegistrationSolver(beta=beta, incompressible=incompressible, options=options)
    result = solver.run(problem.template, problem.reference, grid=problem.grid)
    summary = result.summary()
    summary.update(
        {
            "resolution": resolution,
            "incompressible": incompressible,
            "beta": beta,
            "source": "measured",
        }
    )
    return summary


def reproduce_brain_registration(
    resolution: int = 32,
    beta: float = 1e-3,
    gradient_tolerance: float = 1e-2,
    max_newton_iterations: int = 25,
    seed: int = 42,
    slices: Sequence[float] = (0.45, 0.5, 0.6),
) -> Dict[str, object]:
    """Regenerate the brain registration of Figs. 6-7 on the phantom pair.

    Returns the global metrics plus per-slice residual reductions and
    ``det(grad y)`` statistics (the paper's Fig. 7 shows three axial
    slices).
    """
    pair = brain_registration_pair(base_resolution=resolution, seed=seed)
    options = SolverOptions(
        gradient_tolerance=gradient_tolerance,
        max_newton_iterations=max_newton_iterations,
        max_krylov_iterations=50,
    )
    solver = RegistrationSolver(beta=beta, options=options)
    result = solver.run(pair.template, pair.reference, grid=pair.grid)

    reference = result.problem.reference
    template = result.problem.template
    deformed = result.deformed_template
    det = result.deformation.determinant()

    slice_rows = []
    n_axial = pair.grid.shape[1]
    for fraction in slices:
        index = min(n_axial - 1, int(round(fraction * n_axial)))
        before = float(np.linalg.norm(reference[:, index, :] - template[:, index, :]))
        after = float(np.linalg.norm(reference[:, index, :] - deformed[:, index, :]))
        slice_rows.append(
            {
                "slice_index": index,
                "residual_before": before,
                "residual_after": after,
                "residual_ratio": after / max(before, 1e-30),
                "det_grad_min": float(det[:, index, :].min()),
                "det_grad_max": float(det[:, index, :].max()),
            }
        )

    summary = result.summary()
    summary.update(
        {
            "resolution": "x".join(str(n) for n in pair.grid.shape),
            "beta": beta,
            "source": "measured",
            "slices": slice_rows,
        }
    )
    return summary
