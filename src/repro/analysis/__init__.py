"""Analysis and reporting: reference tables, experiment drivers, formatting.

This package connects the library to the paper's evaluation section:

* :mod:`repro.analysis.paper_tables` — the reference numbers of Tables I-V
  transcribed from the paper, used for side-by-side comparison,
* :mod:`repro.analysis.experiments` — drivers that regenerate every table
  and figure (measured at laptop scale where feasible, model-projected at
  the paper's node counts), consumed by the benchmark harness,
* :mod:`repro.analysis.reporting` — plain-text table formatting that mimics
  the layout of the paper's tables.
"""

from repro.analysis.paper_tables import (
    PaperRun,
    TABLE_I,
    TABLE_II,
    TABLE_III,
    TABLE_IV,
    TABLE_V,
    paper_table,
)
from repro.analysis.reporting import format_breakdown_table, format_rows
from repro.analysis.experiments import (
    reproduce_scaling_table,
    reproduce_beta_sensitivity,
    reproduce_synthetic_problem,
    reproduce_brain_registration,
)

__all__ = [
    "PaperRun",
    "TABLE_I",
    "TABLE_II",
    "TABLE_III",
    "TABLE_IV",
    "TABLE_V",
    "paper_table",
    "format_breakdown_table",
    "format_rows",
    "reproduce_scaling_table",
    "reproduce_beta_sensitivity",
    "reproduce_synthetic_problem",
    "reproduce_brain_registration",
]
