"""Reference data: the numbers reported in the paper's Tables I-V.

These values are transcribed verbatim from the paper (Mang, Gholami, Biros;
SC16) so that every benchmark can print the paper's row next to the
reproduced row and EXPERIMENTS.md can record the comparison.

Times are in seconds.  ``None`` marks entries the paper does not report
(e.g. FFT communication of a single-task run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class PaperRun:
    """One row of a scaling table in the paper."""

    run_id: int
    grid: Tuple[int, int, int]
    nodes: int
    tasks: int
    time_to_solution: float
    fft_communication: Optional[float]
    fft_execution: Optional[float]
    interp_communication: Optional[float]
    interp_execution: Optional[float]
    machine: str = "maverick"
    incompressible: bool = False

    @property
    def kernel_sum(self) -> float:
        parts = [
            self.fft_communication,
            self.fft_execution,
            self.interp_communication,
            self.interp_execution,
        ]
        return sum(p for p in parts if p is not None)


#: Table I — synthetic problem, Maverick, 16 tasks/node, compressible.
TABLE_I: List[PaperRun] = [
    PaperRun(1, (64, 64, 64), 1, 16, 1.54, 1.20e-1, 9.69e-2, 1.82e-1, 8.20e-1),
    PaperRun(2, (64, 64, 64), 2, 32, 9.50e-1, 1.42e-1, 4.88e-2, 1.15e-1, 4.27e-1),
    PaperRun(3, (128, 128, 128), 1, 16, 1.52e1, 1.73, 1.35, 1.84, 6.66),
    PaperRun(4, (128, 128, 128), 2, 32, 7.88, 1.30, 5.47e-1, 1.17, 3.49),
    PaperRun(5, (128, 128, 128), 4, 64, 4.70, 1.19, 2.83e-1, 5.43e-1, 1.87),
    PaperRun(6, (128, 128, 128), 16, 256, 2.01, 6.68e-1, 6.60e-2, 1.86e-1, 4.91e-1),
    PaperRun(7, (256, 256, 256), 2, 32, 7.99e1, 1.44e1, 1.01e1, 1.08e1, 2.83e1),
    PaperRun(8, (256, 256, 256), 8, 128, 2.30e1, 7.27, 1.56, 2.60, 8.04),
    PaperRun(9, (256, 256, 256), 32, 512, 7.23, 2.67, 3.38e-1, 5.93e-1, 2.00),
    PaperRun(10, (256, 256, 256), 64, 1024, 4.72, 1.70, 1.72e-1, 4.80e-1, 1.04),
    PaperRun(11, (512, 512, 512), 8, 128, 1.91e2, 4.50e1, 2.38e1, 2.18e1, 6.89e1),
    PaperRun(12, (512, 512, 512), 32, 512, 6.07e1, 1.90e1, 4.18, 4.22, 1.74e1),
    PaperRun(13, (512, 512, 512), 64, 1024, 3.29e1, 1.28e1, 1.77, 2.33, 8.57),
]

#: Table II — synthetic problem, Stampede, 2 tasks/node, compressible.
TABLE_II: List[PaperRun] = [
    PaperRun(14, (512, 512, 512), 256, 512, 3.84e1, 4.61, 2.62, 4.12, 1.98e1, machine="stampede"),
    PaperRun(15, (512, 512, 512), 512, 1024, 2.02e1, 2.23, 1.30, 2.38, 9.42, machine="stampede"),
    PaperRun(16, (512, 512, 512), 1024, 2048, 1.31e1, 1.69, 6.29e-1, 1.25, 4.83, machine="stampede"),
    PaperRun(17, (1024, 1024, 1024), 256, 512, 3.54e2, 3.29e1, 3.10e1, 3.72e1, 1.93e2, machine="stampede"),
    PaperRun(18, (1024, 1024, 1024), 512, 1024, 1.69e2, 2.23e1, 1.39e1, 1.79e1, 8.85e1, machine="stampede"),
    PaperRun(19, (1024, 1024, 1024), 1024, 2048, 8.57e1, 1.15e1, 6.75, 8.78, 4.42e1, machine="stampede"),
]

#: Table III — incompressible (volume preserving) runs, 128^3, Maverick, 2 tasks/node.
TABLE_III: List[PaperRun] = [
    PaperRun(20, (128, 128, 128), 1, 1, 1.48e2, 0.0, 1.98e1, 2.82, 9.26e1, machine="maverick-2tpn", incompressible=True),
    PaperRun(21, (128, 128, 128), 2, 4, 4.27e1, 3.18, 5.73, 8.39e-1, 2.31e1, machine="maverick-2tpn", incompressible=True),
    PaperRun(22, (128, 128, 128), 4, 8, 2.25e1, 2.17, 2.72, 5.83e-1, 1.15e1, machine="maverick-2tpn", incompressible=True),
    PaperRun(23, (128, 128, 128), 8, 16, 1.09e1, 1.10, 1.25, 4.03e-1, 5.80, machine="maverick-2tpn", incompressible=True),
    PaperRun(24, (128, 128, 128), 16, 32, 5.69, 6.69e-1, 6.20e-1, 2.68e-1, 2.93, machine="maverick-2tpn", incompressible=True),
]

#: Table IV — brain images (256 x 300 x 256), Maverick, strong scaling, beta = 1e-2.
TABLE_IV: List[PaperRun] = [
    PaperRun(25, (256, 300, 256), 1, 1, 1.34e3, 0.0, 2.59e2, 2.70e1, 7.72e2),
    PaperRun(26, (256, 300, 256), 2, 4, 3.92e2, 2.76e1, 6.91e1, 5.73, 1.90e2),
    PaperRun(27, (256, 300, 256), 8, 16, 9.54e1, 8.59, 1.38e1, 1.20, 4.78e1),
    PaperRun(28, (256, 300, 256), 16, 32, 4.85e1, 4.94, 6.50, 5.35e-1, 2.36e1),
    PaperRun(29, (256, 300, 256), 32, 256, 1.20e1, 4.03, 1.10, 8.77e-2, 3.31),
]

#: Table V — sensitivity to the regularization weight beta (brain images,
#: 4 Newton iterations).  Keys: beta -> (hessian matvecs, time to solution,
#: relative increase).  Note the paper's table header lists
#: {1e-2, 1e-3, 1e-4} in the caption but the rows read 1e-1/1e-3/1e-5.
TABLE_V: Dict[float, Tuple[int, float, float]] = {
    1e-1: (43, 2.42e1, 1.0),
    1e-3: (217, 1.11e2, 4.6),
    1e-5: (1689, 8.58e2, 35.0),
}

_TABLES = {
    "I": TABLE_I,
    "II": TABLE_II,
    "III": TABLE_III,
    "IV": TABLE_IV,
}


def paper_table(name: str) -> List[PaperRun]:
    """Return the reference rows of scaling table ``"I"``..``"IV"``."""
    try:
        return list(_TABLES[name.upper()])
    except KeyError as exc:
        raise ValueError(f"unknown table {name!r}; expected one of {sorted(_TABLES)}") from exc


def strong_scaling_groups(rows: List[PaperRun]) -> Dict[Tuple[int, int, int], List[PaperRun]]:
    """Group a table's rows by grid size (each group is a strong-scaling sweep)."""
    groups: Dict[Tuple[int, int, int], List[PaperRun]] = {}
    for row in rows:
        groups.setdefault(row.grid, []).append(row)
    for rows_for_grid in groups.values():
        rows_for_grid.sort(key=lambda r: r.tasks)
    return groups
