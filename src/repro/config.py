"""Unified registration configuration (:class:`RegistrationConfig`).

PRs 1-5 grew the runtime a knob at a time — ``REPRO_FFT_BACKEND``,
``REPRO_INTERP_BACKEND``, ``REPRO_PLAN_LAYOUT``, ``REPRO_WORKERS``,
``REPRO_PLAN_POOL_BYTES``, ``REPRO_PLAN_AUTO_FRACTION`` — each with its own
environment variable, CLI flag and keyword argument.  Every entry point
(the CLI, :func:`repro.register`, the benchmarks, and now the job service)
re-implemented the same resolve-and-apply dance.  This module consolidates
the scattered knobs into one frozen dataclass that every entry point
accepts:

* :meth:`RegistrationConfig.from_env` snapshots the *effective* environment
  configuration (useful for artifacts: "what configuration produced this
  result"),
* :meth:`RegistrationConfig.apply` validates every field and pushes the
  process-wide ones (plan layout, worker default, pool budget, auto
  fraction) into the runtime — fields left at ``None`` keep the
  environment/default behavior untouched,
* :meth:`RegistrationConfig.replace` derives a variant (the CLI layers its
  flags over a base config this way).

Precedence, first match wins (unchanged from the pre-config behavior —
the config object slots in where the scattered kwargs used to be)::

    explicit kwarg / CLI flag  >  RegistrationConfig field  >
        per-subsystem env var  >  shared env var  >  built-in default

The legacy keyword arguments (``register(..., fft_backend=...)``) keep
working through a deprecation shim in :mod:`repro.core.registration` that
warns once per process.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Dict, Optional

from repro.observability.trace import (
    disable_tracing,
    enable_tracing,
    env_trace_enabled,
    env_trace_out,
    tracing_enabled,
)
from repro.runtime.layout import auto_streaming_fraction, set_auto_fraction
from repro.runtime.plan_pool import configure_plan_pool, env_pool_budget, get_plan_pool
from repro.runtime.workers import resolve_workers, set_default_workers
from repro.spectral import backends as fft_backends
from repro.transport import kernels as interp_kernels
from repro.transport import sources as field_sources

__all__ = [
    "HTTP_PORT_ENV_VAR",
    "RegistrationConfig",
    "SERVICE_CLASS_WEIGHTS_ENV_VAR",
    "SERVICE_JOURNAL_ENV_VAR",
    "env_http_port",
    "env_service_class_weights",
    "env_service_journal",
]

#: Directory of the durable job journal; set = every service submission is
#: journaled and unfinished jobs re-queue on the next service start.
SERVICE_JOURNAL_ENV_VAR = "REPRO_SERVICE_JOURNAL"

#: Default port of the ``repro-serve --http`` front (flag overrides env).
HTTP_PORT_ENV_VAR = "REPRO_HTTP_PORT"

#: Claim-weight overrides of the queue's weighted fair scheduling, e.g.
#: ``interactive=4,atlas-burst=1``.
SERVICE_CLASS_WEIGHTS_ENV_VAR = "REPRO_SERVICE_CLASS_WEIGHTS"


def env_service_journal() -> Optional[str]:
    """``$REPRO_SERVICE_JOURNAL`` (journal directory), or ``None``."""
    value = os.environ.get(SERVICE_JOURNAL_ENV_VAR, "").strip()
    return value or None


def env_http_port() -> Optional[int]:
    """``$REPRO_HTTP_PORT`` as a validated port number, or ``None``."""
    value = os.environ.get(HTTP_PORT_ENV_VAR, "").strip()
    if not value:
        return None
    try:
        port = int(value)
    except ValueError:
        raise ValueError(
            f"{HTTP_PORT_ENV_VAR} must be an integer port, got {value!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"{HTTP_PORT_ENV_VAR} must lie in [0, 65535], got {port}")
    return port


def env_service_class_weights() -> Dict[str, float]:
    """``$REPRO_SERVICE_CLASS_WEIGHTS`` parsed into ``{class: weight}``.

    Format: comma-separated ``class=weight`` entries, e.g.
    ``interactive=4,atlas-burst=1``.  Malformed entries raise with the
    variable name and the expected format (the clean-error path shared by
    every ``REPRO_*`` knob).
    """
    value = os.environ.get(SERVICE_CLASS_WEIGHTS_ENV_VAR, "").strip()
    if not value:
        return {}
    weights: Dict[str, float] = {}
    for entry in value.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, sep, raw = entry.partition("=")
        name = name.strip()
        try:
            weight = float(raw.strip()) if sep else float("nan")
        except ValueError:
            weight = float("nan")
        if not sep or not name or not weight > 0:
            raise ValueError(
                f"{SERVICE_CLASS_WEIGHTS_ENV_VAR} entries must look like "
                f"'class=positive_weight' (e.g. 'interactive=4,atlas-burst=1'), "
                f"got {entry!r}"
            )
        weights[name] = weight
    return weights


@dataclass(frozen=True)
class RegistrationConfig:
    """Consolidated execution configuration of one registration entry point.

    Every field defaults to ``None`` = "defer to the environment / built-in
    default", so ``RegistrationConfig()`` is always a valid no-op config.

    Parameters
    ----------
    fft_backend:
        FFT engine name (``"numpy"``, ``"scipy"``, ``"pyfftw"``).
    interp_backend:
        Semi-Lagrangian gather engine name (``"scipy"``, ``"numpy"``,
        ``"numba"``).
    plan_layout:
        Stencil-plan storage layout (``"auto"``, ``"lean"``, ``"fat"``,
        ``"streaming"``); applied process-wide (the ``--plan-layout`` path).
    workers:
        Shared default worker count for threaded kernels (the
        ``REPRO_WORKERS`` / ``--workers`` knob); per-subsystem environment
        variables still override it.
    plan_pool_bytes:
        Byte budget of the shared execution-plan pool (``0`` disables
        caching).
    auto_fraction:
        Threshold fraction of the budget-aware ``auto`` layout policy,
        in ``(0, 1]``.
    field_source:
        Field-source mode (``"resident"``, ``"memmap"``); ``memmap`` runs
        every frontend gather through a disk-backed source (the
        ``REPRO_FIELD_SOURCE`` / ``--field-source`` knob).
    gradient_cache:
        Enable the per-iterate state-gradient cache
        (:mod:`repro.core.gradients`; the ``REPRO_GRADIENT_CACHE`` knob).
        ``False`` restores the paper's uncached ``8 nt``-FFT mat-vec cost
        model; results are bitwise identical either way.
    trace:
        Enable structured tracing spans (the ``REPRO_TRACE`` / ``--trace``
        knob).  Applying ``trace=True`` turns the process-wide recorder on;
        ``None`` defers to the environment.  Tracing never changes results
        — spans observe the kernels, the numerics are untouched.
    trace_out:
        Path for the Chrome trace-event JSON export (the
        ``REPRO_TRACE_OUT`` / ``--trace-out`` knob).  Consumed by the CLI
        after the solve; setting it implies ``trace`` unless tracing was
        explicitly disabled.
    """

    fft_backend: Optional[str] = None
    interp_backend: Optional[str] = None
    plan_layout: Optional[str] = None
    workers: Optional[int] = None
    plan_pool_bytes: Optional[int] = None
    auto_fraction: Optional[float] = None
    field_source: Optional[str] = None
    gradient_cache: Optional[bool] = None
    trace: Optional[bool] = None
    trace_out: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers is not None and int(self.workers) < 1:
            raise ValueError(f"workers must be a positive count, got {self.workers}")
        if self.plan_pool_bytes is not None and int(self.plan_pool_bytes) < 0:
            raise ValueError(
                f"plan_pool_bytes must be non-negative, got {self.plan_pool_bytes}"
            )
        if self.auto_fraction is not None and not 0.0 < float(self.auto_fraction) <= 1.0:
            raise ValueError(
                f"auto_fraction must lie in (0, 1], got {self.auto_fraction}"
            )

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_env(cls) -> "RegistrationConfig":
        """Snapshot the *effective* configuration of this process.

        Resolves every knob the way the solvers would (environment variable,
        process-wide override, or built-in default) and freezes the concrete
        values, so the snapshot is reproducible even if the environment
        changes later.  Malformed environment values raise here with the
        valid choices, exactly as they would at solve time.
        """
        # imported lazily: repro.core.registration imports this module, so a
        # top-level import of repro.core.* here would be circular
        from repro.core.gradients import gradient_cache_enabled

        return cls(
            fft_backend=fft_backends.default_backend_name(),
            interp_backend=interp_kernels.default_backend_name(),
            plan_layout=interp_kernels.default_plan_layout(),
            workers=resolve_workers("service"),
            plan_pool_bytes=get_plan_pool().max_bytes,
            auto_fraction=auto_streaming_fraction(),
            field_source=field_sources.default_field_source(),
            gradient_cache=gradient_cache_enabled(),
            trace=tracing_enabled() or bool(env_trace_enabled()),
            trace_out=env_trace_out(),
        )

    def replace(self, **changes: object) -> "RegistrationConfig":
        """A copy with *changes* applied (:func:`dataclasses.replace`)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------ #
    # application
    # ------------------------------------------------------------------ #
    def validate(self) -> "RegistrationConfig":
        """Resolve every knob (set or environmental) for a clean early error.

        Nothing is mutated: this is the validation the CLI used to run
        before starting a solve, factored into the config object.
        """
        fft_backends.get_backend(self.fft_backend)
        interp_kernels.get_backend(self.interp_backend)
        if self.plan_layout is not None and (
            self.plan_layout not in interp_kernels.PLAN_LAYOUT_CHOICES
        ):
            raise ValueError(
                f"unknown stencil-plan layout {self.plan_layout!r}; "
                f"expected one of {interp_kernels.PLAN_LAYOUT_CHOICES}"
            )
        if self.field_source is not None and (
            self.field_source not in field_sources.FIELD_SOURCE_MODES
        ):
            raise ValueError(
                f"unknown field-source mode {self.field_source!r}; "
                f"expected one of {field_sources.FIELD_SOURCE_MODES}"
            )
        from repro.core.gradients import env_gradient_cache_enabled

        interp_kernels.default_plan_layout()  # validate $REPRO_PLAN_LAYOUT
        auto_streaming_fraction()  # ... and $REPRO_PLAN_AUTO_FRACTION
        env_gradient_cache_enabled()  # ... and $REPRO_GRADIENT_CACHE
        env_pool_budget()  # ... and $REPRO_PLAN_POOL_BYTES
        field_sources.default_field_source()  # ... and $REPRO_FIELD_SOURCE
        env_trace_enabled()  # ... and $REPRO_TRACE
        env_http_port()  # ... and $REPRO_HTTP_PORT
        env_service_class_weights()  # ... and $REPRO_SERVICE_CLASS_WEIGHTS
        for subsystem in ("fft", "interp", "service", "io"):  # ... and the worker vars
            resolve_workers(subsystem)
        return self

    def apply(self) -> "RegistrationConfig":
        """Validate, then push the process-wide knobs into the runtime.

        Only fields that are set are applied; ``None`` fields leave the
        corresponding runtime state (and any prior override) untouched, so
        applying a partial config never clobbers another entry point's
        explicit choices.
        """
        self.validate()
        if self.plan_layout is not None:
            interp_kernels.set_default_plan_layout(self.plan_layout)
        if self.auto_fraction is not None:
            set_auto_fraction(self.auto_fraction)
        if self.workers is not None:
            set_default_workers(self.workers)
        if self.plan_pool_bytes is not None:
            configure_plan_pool(self.plan_pool_bytes)
        if self.field_source is not None:
            field_sources.set_default_field_source(self.field_source)
        if self.gradient_cache is not None:
            from repro.core.gradients import set_gradient_cache_enabled

            set_gradient_cache_enabled(self.gradient_cache)
        if self.trace is not None:
            if self.trace:
                enable_tracing()
            else:
                disable_tracing()
        elif self.trace_out is not None:
            enable_tracing()
        return self

    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view (``None`` fields mean "environment default")."""
        return dataclasses.asdict(self)
