"""Pencil decomposition of the regular grid.

The paper partitions the data "using the pencil decomposition for 3D FFTs"
(Fig. 4): with ``p = p1 * p2`` MPI tasks, each task owns an
``(N1/p1) x (N2/p2) x N3`` block of the grid — the first two axes are
distributed over a two-dimensional process grid and the third axis is local.
During the distributed transform the data are transposed twice so that each
axis becomes local when its 1-D FFTs are computed.

:class:`PencilDecomposition` provides the index bookkeeping for all of this:
block boundaries per axis, local slices of a rank for any distribution of
two axes over the process grid, scatter/gather between a global array and
the per-rank blocks, and the owner lookup used by the semi-Lagrangian
scatter phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_positive_int, check_shape_3d


def split_axis(length: int, parts: int) -> List[Tuple[int, int]]:
    """Contiguous, balanced partition of ``range(length)`` into *parts* blocks.

    The first ``length % parts`` blocks get one extra element (the same
    convention as ``numpy.array_split``).
    """
    check_positive_int(parts, "parts")
    if parts > length:
        raise ValueError(f"cannot split an axis of length {length} into {parts} parts")
    base = length // parts
    remainder = length % parts
    bounds = []
    start = 0
    for block in range(parts):
        size = base + (1 if block < remainder else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


@dataclass(frozen=True)
class PencilDecomposition:
    """2D (pencil) decomposition of a 3D grid over ``p1 x p2`` tasks.

    Parameters
    ----------
    global_shape:
        Global grid shape ``(N1, N2, N3)``.
    p1, p2:
        Process-grid dimensions; the total number of ranks is ``p1 * p2``.
        The *input* distribution assigns axis 0 to the ``p1`` direction and
        axis 1 to the ``p2`` direction (axis 2 local), exactly as in Fig. 4a
        of the paper.
    """

    global_shape: Tuple[int, int, int]
    p1: int
    p2: int

    def __init__(self, global_shape: Sequence[int], p1: int, p2: int) -> None:
        global_shape = check_shape_3d(global_shape, "global_shape")
        check_positive_int(p1, "p1")
        check_positive_int(p2, "p2")
        if p1 > global_shape[0]:
            raise ValueError(f"p1={p1} exceeds N1={global_shape[0]}")
        if p2 > global_shape[1]:
            raise ValueError(f"p2={p2} exceeds N2={global_shape[1]}")
        object.__setattr__(self, "global_shape", global_shape)
        object.__setattr__(self, "p1", int(p1))
        object.__setattr__(self, "p2", int(p2))

    # ------------------------------------------------------------------ #
    @classmethod
    def from_num_tasks(cls, global_shape: Sequence[int], num_tasks: int) -> "PencilDecomposition":
        """Choose a near-square ``p1 x p2`` factorization of *num_tasks*."""
        check_positive_int(num_tasks, "num_tasks")
        best = (1, num_tasks)
        for p1 in range(1, int(np.sqrt(num_tasks)) + 1):
            if num_tasks % p1 == 0:
                best = (p1, num_tasks // p1)
        p1, p2 = best
        return cls(global_shape, p1, p2)

    @property
    def num_tasks(self) -> int:
        return self.p1 * self.p2

    # ------------------------------------------------------------------ #
    # rank <-> process-grid coordinates
    # ------------------------------------------------------------------ #
    def rank_coordinates(self, rank: int) -> Tuple[int, int]:
        """Process-grid coordinates ``(r1, r2)`` of *rank* (row-major)."""
        if not 0 <= rank < self.num_tasks:
            raise ValueError(f"rank {rank} out of range for {self.num_tasks} tasks")
        return rank // self.p2, rank % self.p2

    def rank_of(self, r1: int, r2: int) -> int:
        if not (0 <= r1 < self.p1 and 0 <= r2 < self.p2):
            raise ValueError(f"process-grid coordinates ({r1}, {r2}) out of range")
        return r1 * self.p2 + r2

    def row_group(self, r1: int) -> List[int]:
        """Ranks sharing the first process-grid coordinate (``p2`` of them)."""
        return [self.rank_of(r1, r2) for r2 in range(self.p2)]

    def column_group(self, r2: int) -> List[int]:
        """Ranks sharing the second process-grid coordinate (``p1`` of them)."""
        return [self.rank_of(r1, r2) for r1 in range(self.p1)]

    # ------------------------------------------------------------------ #
    # block boundaries and local slices
    # ------------------------------------------------------------------ #
    def axis_blocks(self, axis: int, parts: int) -> List[Tuple[int, int]]:
        """Block boundaries of *axis* split into *parts* contiguous pieces."""
        return split_axis(self.global_shape[axis], parts)

    def local_slices(
        self, rank: int, distributed_axes: Tuple[int, int] = (0, 1)
    ) -> Tuple[slice, slice, slice]:
        """Slices of the global array owned by *rank* for a given distribution.

        ``distributed_axes = (a, b)`` means axis ``a`` is split over the
        ``p1`` process-grid direction and axis ``b`` over the ``p2``
        direction; the remaining axis is local.  The paper's input
        distribution is ``(0, 1)``; the distributions after the first and
        second FFT transpose are ``(0, 2)`` and ``(1, 2)``.
        """
        a, b = distributed_axes
        if a == b or not {a, b} <= {0, 1, 2}:
            raise ValueError(f"distributed_axes must be two distinct axes, got {distributed_axes}")
        r1, r2 = self.rank_coordinates(rank)
        bounds_a = self.axis_blocks(a, self.p1)[r1]
        bounds_b = self.axis_blocks(b, self.p2)[r2]
        slices: List[slice] = [slice(None)] * 3
        slices[a] = slice(*bounds_a)
        slices[b] = slice(*bounds_b)
        return tuple(slices)

    def local_shape(
        self, rank: int, distributed_axes: Tuple[int, int] = (0, 1)
    ) -> Tuple[int, int, int]:
        slices = self.local_slices(rank, distributed_axes)
        return tuple(
            (s.stop - s.start) if s.start is not None else self.global_shape[axis]
            for axis, s in enumerate(slices)
        )

    # ------------------------------------------------------------------ #
    # scatter / gather between global arrays and per-rank blocks
    # ------------------------------------------------------------------ #
    def scatter(
        self, global_array: np.ndarray, distributed_axes: Tuple[int, int] = (0, 1)
    ) -> List[np.ndarray]:
        """Split a global array into the per-rank local blocks (copies)."""
        global_array = np.asarray(global_array)
        if global_array.shape != self.global_shape:
            raise ValueError(
                f"array has shape {global_array.shape}, expected {self.global_shape}"
            )
        return [
            global_array[self.local_slices(rank, distributed_axes)].copy()
            for rank in range(self.num_tasks)
        ]

    def gather(
        self, blocks: Sequence[np.ndarray], distributed_axes: Tuple[int, int] = (0, 1)
    ) -> np.ndarray:
        """Reassemble the global array from the per-rank blocks."""
        if len(blocks) != self.num_tasks:
            raise ValueError(f"expected {self.num_tasks} blocks, got {len(blocks)}")
        dtype = np.result_type(*[np.asarray(b).dtype for b in blocks])
        out = np.empty(self.global_shape, dtype=dtype)
        for rank, block in enumerate(blocks):
            slices = self.local_slices(rank, distributed_axes)
            expected = self.local_shape(rank, distributed_axes)
            block = np.asarray(block)
            if block.shape != expected:
                raise ValueError(
                    f"block of rank {rank} has shape {block.shape}, expected {expected}"
                )
            out[slices] = block
        return out

    # ------------------------------------------------------------------ #
    # ownership lookup (used by the semi-Lagrangian scatter phase)
    # ------------------------------------------------------------------ #
    def owner_of_indices(
        self, indices: np.ndarray, distributed_axes: Tuple[int, int] = (0, 1)
    ) -> np.ndarray:
        """Rank owning each (integer, already-wrapped) grid index.

        Parameters
        ----------
        indices:
            Integer array of shape ``(3, M)`` with ``0 <= indices[d] < N_d``.
        """
        indices = np.asarray(indices)
        if indices.ndim != 2 or indices.shape[0] != 3:
            raise ValueError(f"indices must have shape (3, M), got {indices.shape}")
        a, b = distributed_axes
        bounds_a = np.array([stop for (_, stop) in self.axis_blocks(a, self.p1)])
        bounds_b = np.array([stop for (_, stop) in self.axis_blocks(b, self.p2)])
        r1 = np.searchsorted(bounds_a, indices[a], side="right")
        r2 = np.searchsorted(bounds_b, indices[b], side="right")
        return r1 * self.p2 + r2
