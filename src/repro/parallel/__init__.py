"""Distributed-memory substrate (simulated MPI) and performance model.

The paper's parallelization (Sec. III-C) rests on four ingredients, all of
which are implemented here *for real* — the algorithms run on explicitly
partitioned per-rank data with explicit message exchange — but inside a
single process, because neither MPI nor a multi-node machine is available in
this environment (see DESIGN.md, "Substitutions"):

* **pencil decomposition** of the regular grid across a ``p1 x p2`` process
  grid (:mod:`repro.parallel.pencil`),
* **distributed 3D FFT** (AccFFT-style: local 1-D FFTs interleaved with
  all-to-all transposes within rows/columns of the process grid,
  :mod:`repro.parallel.distributed_fft`) and distributed spectral operators
  built on it (:mod:`repro.parallel.operators`),
* **ghost-layer exchange** and the **scatter (owner/worker) plan** for
  semi-Lagrangian interpolation at off-grid points
  (:mod:`repro.parallel.ghost`, :mod:`repro.parallel.scatter`),
* a **communication ledger** recording every message and byte moved
  (:mod:`repro.parallel.comm`), which feeds the **analytic machine model**
  (:mod:`repro.parallel.performance`) used to regenerate the paper's
  scaling tables for the Maverick and Stampede node counts.
"""

from repro.parallel.comm import CommunicationLedger, SimulatedCommunicator
from repro.parallel.pencil import PencilDecomposition
from repro.parallel.distributed_fft import DistributedFFT
from repro.parallel.ghost import exchange_ghost_layers
from repro.parallel.scatter import ScatterInterpolationPlan
from repro.parallel.operators import DistributedSpectralOperators
from repro.parallel.transport import DistributedSemiLagrangian, DistributedTransportSolver
from repro.parallel.machines import MachineSpec, MAVERICK, STAMPEDE, get_machine
from repro.parallel.performance import (
    KernelCostModel,
    RegistrationCostModel,
    SolverCostBreakdown,
)

__all__ = [
    "CommunicationLedger",
    "SimulatedCommunicator",
    "PencilDecomposition",
    "DistributedFFT",
    "exchange_ghost_layers",
    "ScatterInterpolationPlan",
    "DistributedSpectralOperators",
    "DistributedSemiLagrangian",
    "DistributedTransportSolver",
    "MachineSpec",
    "MAVERICK",
    "STAMPEDE",
    "get_machine",
    "KernelCostModel",
    "RegistrationCostModel",
    "SolverCostBreakdown",
]
