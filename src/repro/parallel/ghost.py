"""Ghost-layer (halo) exchange for pencil-decomposed fields.

"Every processor maintains a layer of ghost points, regular grid points that
belong to other processors.  The values ... at these points must be
synchronized before interpolation takes place" (Sec. III-C2).  With the
pencil decomposition each rank has four neighbours (two per distributed
axis); the corner regions are obtained by performing the exchange axis by
axis on the already-extended block, which is the standard trick the paper
alludes to ("the four corner neighbors can be combined with the messages of
the edge neighbors").

The third (non-distributed) axis is fully local, so its periodic halo is
built without communication.

Since PR 5 the exchange is **batched**: a whole ``(B, n1, n2, n3)`` stack
of fields moves through *one* exchange round
(:func:`exchange_ghost_layers_batched`) — the same number of messages as a
single field, with ``B`` times the payload per message.  The per-field
ghost exchange was the dominant distributed overhead once the scatter
plans were pooled (each transported field used to pay the full
latency-bound neighbour round), so the batched distributed
``interpolate_many`` ships every stacked field's halos together.  The
scalar :func:`exchange_ghost_layers` is the ``B = 1`` case of the same
implementation, bit-for-bit.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.observability.trace import trace_span
from repro.parallel.comm import SimulatedCommunicator
from repro.parallel.pencil import PencilDecomposition


def _periodic_pad_axis(block: np.ndarray, axis: int, width: int) -> np.ndarray:
    """Pad one axis periodically using only local data."""
    if width == 0:
        return block
    lo = np.take(block, range(block.shape[axis] - width, block.shape[axis]), axis=axis)
    hi = np.take(block, range(0, width), axis=axis)
    return np.concatenate([lo, block, hi], axis=axis)


def exchange_ghost_layers_batched(
    stacks: Sequence[np.ndarray],
    decomposition: PencilDecomposition,
    width: int,
    comm: SimulatedCommunicator,
    distributed_axes: Tuple[int, int] = (0, 1),
) -> List[np.ndarray]:
    """Extend per-rank ``(B, n1, n2, n3)`` stacks by periodic ghost layers.

    One exchange round for the whole batch: every neighbour message carries
    the halo strips of all ``B`` fields stacked together, so the message
    *count* (the latency term of the machine model) is that of a single
    field while the payload scales with ``B``.  The grid axes of each stack
    are extended by ``2 * width`` points; the batch axis is untouched.

    Parameters
    ----------
    stacks:
        Per-rank field stacks in the ``distributed_axes`` distribution,
        each of shape ``(B, n1, n2, n3)`` with one common batch size ``B``.
    decomposition:
        The pencil decomposition.
    width:
        Halo width in grid points (2 is enough for tricubic interpolation).
    comm:
        Communicator used (and charged) for the neighbour exchanges.
    distributed_axes:
        Which two *grid* axes are distributed (default: the input
        distribution).

    Returns
    -------
    list of numpy.ndarray
        Per-rank stacks of shape ``(B, n1 + 2w, n2 + 2w, n3 + 2w)``.
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    deco = decomposition
    p = deco.num_tasks
    if len(stacks) != p:
        raise ValueError(f"expected {p} block stacks, got {len(stacks)}")
    axis_a, axis_b = distributed_axes
    local_axis = ({0, 1, 2} - {axis_a, axis_b}).pop()

    extended = [np.asarray(s).copy() for s in stacks]
    batch = None
    for rank in range(p):
        stack = extended[rank]
        if stack.ndim != 4:
            raise ValueError(
                f"stack of rank {rank} must be (B, n1, n2, n3), got shape {stack.shape}"
            )
        if batch is None:
            batch = stack.shape[0]
        elif stack.shape[0] != batch:
            raise ValueError(
                f"stack of rank {rank} has batch size {stack.shape[0]}, "
                f"expected {batch} (all ranks must ship the same batch)"
            )
        expected = deco.local_shape(rank, distributed_axes)
        if stack.shape[1:] != expected:
            raise ValueError(
                f"stack of rank {rank} has grid shape {stack.shape[1:]}, expected {expected}"
            )

    if width == 0:
        return extended

    min_extent = min(
        min(deco.local_shape(rank, distributed_axes)) for rank in range(p)
    )
    if width > min_extent:
        raise ValueError(
            f"ghost width {width} exceeds the smallest local extent {min_extent}"
        )

    for rank in range(p):
        # the non-distributed axis is periodic locally (+1: the batch axis)
        extended[rank] = _periodic_pad_axis(extended[rank], local_axis + 1, width)

    def neighbours(rank: int, direction: str) -> Tuple[int, int]:
        """Predecessor and successor of *rank* along one process-grid direction."""
        r1, r2 = deco.rank_coordinates(rank)
        if direction == "p1":
            parts = deco.p1
            prev_rank = deco.rank_of((r1 - 1) % parts, r2)
            next_rank = deco.rank_of((r1 + 1) % parts, r2)
        else:
            parts = deco.p2
            prev_rank = deco.rank_of(r1, (r2 - 1) % parts)
            next_rank = deco.rank_of(r1, (r2 + 1) % parts)
        return prev_rank, next_rank

    # exchange along the two distributed axes, one after the other so that
    # the corner halos are carried along automatically.  Two separate
    # exchanges per axis (high-strip-to-successor, low-strip-to-predecessor)
    # keep the receive side unambiguous even for periodic rings of length 2.
    with trace_span(
        "parallel.ghost_exchange", width=width, ranks=p, batch=int(batch)
    ):
        for grid_axis, direction in ((axis_a, "p1"), (axis_b, "p2")):
            axis = grid_axis + 1  # account for the batch axis
            high_messages = []
            low_messages = []
            for rank in range(p):
                prev_rank, next_rank = neighbours(rank, direction)
                stack = extended[rank]
                n = stack.shape[axis]
                low_strip = np.take(stack, range(0, width), axis=axis)
                high_strip = np.take(stack, range(n - width, n), axis=axis)
                # my high boundary is my successor's low halo; my low boundary
                # is my predecessor's high halo
                high_messages.append((rank, next_rank, high_strip))
                low_messages.append((rank, prev_rank, low_strip))
            inbox_low_halos = comm.exchange(high_messages, category="ghost_exchange")
            inbox_high_halos = comm.exchange(low_messages, category="ghost_exchange")

            new_stacks: List[np.ndarray] = [None] * p
            for rank in range(p):
                (_, low_halo), = inbox_low_halos[rank]
                (_, high_halo), = inbox_high_halos[rank]
                new_stacks[rank] = np.concatenate(
                    [low_halo, extended[rank], high_halo], axis=axis
                )
            extended = new_stacks
    return extended


def exchange_ghost_layers(
    blocks: Sequence[np.ndarray],
    decomposition: PencilDecomposition,
    width: int,
    comm: SimulatedCommunicator,
    distributed_axes: Tuple[int, int] = (0, 1),
) -> List[np.ndarray]:
    """Extend every rank's block by *width* periodic ghost layers on all axes.

    The single-field (``B = 1``) case of
    :func:`exchange_ghost_layers_batched`: same messages, same ledger
    charges, same bits.

    Parameters
    ----------
    blocks:
        Per-rank local blocks in the ``distributed_axes`` distribution.
    decomposition:
        The pencil decomposition.
    width:
        Halo width in grid points (2 is enough for tricubic interpolation).
    comm:
        Communicator used (and charged) for the neighbour exchanges.
    distributed_axes:
        Which two axes are distributed (default: the input distribution).

    Returns
    -------
    list of numpy.ndarray
        Per-rank blocks enlarged by ``2 * width`` points along every axis.
    """
    stacks = []
    for rank, block in enumerate(blocks):
        block = np.asarray(block)
        if block.ndim != 3:
            raise ValueError(
                f"block of rank {rank} must be 3-dimensional, got shape {block.shape}"
            )
        stacks.append(block[None])
    extended = exchange_ghost_layers_batched(
        stacks, decomposition, width, comm, distributed_axes
    )
    return [stack[0] for stack in extended]
