"""Analytic performance model for the distributed registration solver.

The paper analyses the cost of its solver in Sec. III-C4:

.. code-block:: text

   T_flop ~ nt ( 8 * 7.5 (N^3/p) log N  +  4 * 600 N^3/p )
   T_mpi  ~ 8 nt ( 3 t_s sqrt(p) + t_w 3 N^3 / p )  +  4 nt ( t_s + t_w N^2 / p )

per Hessian mat-vec: ``8 nt`` 3D FFTs and ``4 nt`` interpolation sweeps.
This module turns those expressions into wall-clock estimates for a given
:class:`~repro.parallel.machines.MachineSpec`, grid size, task count and
iteration counts, producing the same five columns the paper's tables report
(time to solution, FFT communication/execution, interpolation
communication/execution).

Because a laptop cannot time 1024-task runs, the absolute constants
(sustained kernel efficiencies and effective all-to-all bandwidth) are
**calibrated once against run #3 of Table I** (synthetic problem, 128^3,
16 tasks on Maverick) and then used unchanged for every other configuration;
the reproduction claims only the *shape* of the scaling behaviour (who
dominates where, how efficiency degrades), not the absolute seconds.  See
DESIGN.md and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.parallel.machines import MachineSpec
from repro.utils.validation import check_positive_int

#: Floating point work per interpolated point (paper: "roughly 10 x 64").
INTERP_FLOPS_PER_POINT = 640
#: Memory traffic per interpolated point: 64 stencil values of 8 bytes.
INTERP_BYTES_PER_POINT = 64 * 8
#: FFT work constant of the paper's model (7.5 N^3 log N per 3D transform).
FFT_FLOPS_CONSTANT = 7.5
#: Fraction of the pure-kernel time spent in everything else (vector ops,
#: spectral diagonal scalings, optimizer overhead); fitted to Table I run #3.
OTHER_FRACTION = 0.30
#: Fraction of the raw network bandwidth sustained by the p-way transpose /
#: all-to-all exchanges (contention, many small messages).
ALLTOALL_EFFICIENCY = 0.10
#: Fraction of the semi-Lagrangian points whose values cross task boundaries
#: during the scatter phase (the paper's synthetic velocity has CFL > 1, so
#: most points leave their cell).
SCATTER_FRACTION = 1.0


@dataclass(frozen=True)
class SolverCostBreakdown:
    """The five columns of the paper's tables (in seconds), plus bookkeeping."""

    time_to_solution: float
    fft_communication: float
    fft_execution: float
    interp_communication: float
    interp_execution: float
    other: float
    num_tasks: int
    num_nodes: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "time_to_solution": self.time_to_solution,
            "fft_communication": self.fft_communication,
            "fft_execution": self.fft_execution,
            "interp_communication": self.interp_communication,
            "interp_execution": self.interp_execution,
            "other": self.other,
            "num_tasks": self.num_tasks,
            "num_nodes": self.num_nodes,
        }

    @property
    def kernel_sum(self) -> float:
        return (
            self.fft_communication
            + self.fft_execution
            + self.interp_communication
            + self.interp_execution
        )


@dataclass
class KernelCostModel:
    """Per-kernel cost estimates for one task configuration.

    Parameters
    ----------
    grid_shape:
        Global grid size ``(N1, N2, N3)``.
    num_tasks:
        Number of MPI tasks ``p``.
    machine:
        Machine model providing rates and network parameters.
    """

    grid_shape: Tuple[int, int, int]
    num_tasks: int
    machine: MachineSpec

    def __post_init__(self) -> None:
        check_positive_int(self.num_tasks, "num_tasks")
        self.grid_shape = tuple(int(n) for n in self.grid_shape)

    # ------------------------------------------------------------------ #
    @property
    def num_points(self) -> int:
        n1, n2, n3 = self.grid_shape
        return n1 * n2 * n3

    @property
    def points_per_task(self) -> float:
        return self.num_points / self.num_tasks

    @property
    def effective_alltoall_bandwidth(self) -> float:
        """Sustained per-task bandwidth of the transpose/scatter exchanges."""
        return ALLTOALL_EFFICIENCY / self.machine.inverse_bandwidth

    # ------------------------------------------------------------------ #
    # single-kernel costs
    # ------------------------------------------------------------------ #
    def fft_execution_time(self) -> float:
        """Wall-clock seconds of one 3D FFT (local 1-D FFT work only)."""
        log_n = np.log2(max(self.num_points ** (1.0 / 3.0), 2.0))
        flops = FFT_FLOPS_CONSTANT * self.points_per_task * log_n
        return flops / (self.machine.fft_efficiency * self.machine.flops_per_task)

    def fft_communication_time(self) -> float:
        """Wall-clock seconds of the two transposes of one 3D FFT.

        Paper model: ``3 t_s sqrt(p) + t_w 3 N^3 / p`` (two all-to-alls
        within groups of ``sqrt(p)`` tasks plus a local reshuffle).
        """
        if self.num_tasks == 1:
            return 0.0
        sqrt_p = np.sqrt(self.num_tasks)
        latency = 3.0 * self.machine.latency * sqrt_p
        volume_bytes = 3.0 * self.points_per_task * 8.0
        return latency + volume_bytes / self.effective_alltoall_bandwidth

    def interpolation_execution_time(self, points: float | None = None) -> float:
        """Wall-clock seconds of one tricubic interpolation sweep.

        The kernel is memory bound (computation-to-traffic ratio O(1), see
        Sec. III-C2), so the estimate is the max of the flop and the memory
        stream time.
        """
        points = self.points_per_task if points is None else points
        flop_time = (
            INTERP_FLOPS_PER_POINT
            * points
            / (self.machine.interp_efficiency * self.machine.flops_per_task)
        )
        memory_time = INTERP_BYTES_PER_POINT * points / self.machine.memory_bandwidth_per_task
        return max(flop_time, memory_time)

    def interpolation_communication_time(self) -> float:
        """Wall-clock seconds of the scatter + ghost exchange of one sweep."""
        if self.num_tasks == 1:
            return 0.0
        ghost_bytes = 8.0 * 4.0 * 2.0 * self.points_per_task ** (2.0 / 3.0)
        # scatter: 3 coordinates out + 1 value back per communicated point
        scatter_bytes = 32.0 * SCATTER_FRACTION * self.points_per_task
        latency = 8.0 * self.machine.latency
        return latency + (ghost_bytes + scatter_bytes) / self.effective_alltoall_bandwidth

    # ------------------------------------------------------------------ #
    # per-matvec aggregates (paper Sec. III-C4)
    # ------------------------------------------------------------------ #
    def matvec_cost(self, num_time_steps: int) -> Dict[str, float]:
        """Cost of one Hessian mat-vec: ``8 nt`` FFTs and ``4 nt`` sweeps."""
        check_positive_int(num_time_steps, "num_time_steps")
        nt = num_time_steps
        return {
            "fft_execution": 8 * nt * self.fft_execution_time(),
            "fft_communication": 8 * nt * self.fft_communication_time(),
            "interp_execution": 4 * nt * self.interpolation_execution_time(),
            "interp_communication": 4 * nt * self.interpolation_communication_time(),
        }

    def memory_per_task_bytes(self, num_time_steps: int) -> float:
        """Paper's storage estimate: ``(2 nt + 5) N^3 / p`` values."""
        return 8.0 * (2 * num_time_steps + 5) * self.points_per_task


@dataclass
class RegistrationCostModel:
    """Whole-solve cost estimate (one row of a scaling table).

    Parameters
    ----------
    grid_shape:
        Global grid size.
    num_tasks:
        Number of MPI tasks.
    machine:
        Machine model.
    num_time_steps:
        Semi-Lagrangian time steps ``nt`` (the paper uses 4).
    num_newton_iterations:
        Outer Gauss-Newton iterations (the scalability runs use 2).
    num_hessian_matvecs:
        Total Hessian mat-vecs (PCG iterations summed over the outer
        iterations).
    gradient_cost_factor:
        Cost of one gradient + line-search evaluation in units of a Hessian
        mat-vec (the paper notes the gradient is cheaper).
    """

    grid_shape: Tuple[int, int, int]
    num_tasks: int
    machine: MachineSpec
    num_time_steps: int = 4
    num_newton_iterations: int = 2
    num_hessian_matvecs: int = 2
    gradient_cost_factor: float = 1.5
    kernels: KernelCostModel = field(init=False)

    def __post_init__(self) -> None:
        self.kernels = KernelCostModel(self.grid_shape, self.num_tasks, self.machine)

    @property
    def matvec_equivalents(self) -> float:
        """Total work expressed in Hessian-mat-vec equivalents."""
        return self.num_hessian_matvecs + self.gradient_cost_factor * self.num_newton_iterations

    def breakdown(self) -> SolverCostBreakdown:
        """Predicted table row for this configuration."""
        per_matvec = self.kernels.matvec_cost(self.num_time_steps)
        scale = self.matvec_equivalents
        fft_comm = scale * per_matvec["fft_communication"]
        fft_exec = scale * per_matvec["fft_execution"]
        interp_comm = scale * per_matvec["interp_communication"]
        interp_exec = scale * per_matvec["interp_execution"]
        kernel_sum = fft_comm + fft_exec + interp_comm + interp_exec
        other = OTHER_FRACTION * kernel_sum
        return SolverCostBreakdown(
            time_to_solution=kernel_sum + other,
            fft_communication=fft_comm,
            fft_execution=fft_exec,
            interp_communication=interp_comm,
            interp_execution=interp_exec,
            other=other,
            num_tasks=self.num_tasks,
            num_nodes=self.machine.nodes_for_tasks(self.num_tasks),
        )


def strong_scaling_efficiency(breakdowns: Sequence[SolverCostBreakdown]) -> list[float]:
    """Parallel efficiency relative to the first entry of a strong-scaling sweep."""
    if not breakdowns:
        return []
    base = breakdowns[0]
    out = []
    for b in breakdowns:
        ideal = base.time_to_solution * base.num_tasks / b.num_tasks
        out.append(ideal / b.time_to_solution if b.time_to_solution > 0 else float("nan"))
    return out


def weak_scaling_efficiency(breakdowns: Sequence[SolverCostBreakdown]) -> list[float]:
    """Efficiency of a weak-scaling sweep (constant work per task)."""
    if not breakdowns:
        return []
    base = breakdowns[0].time_to_solution
    return [base / b.time_to_solution if b.time_to_solution > 0 else float("nan") for b in breakdowns]
