"""Distributed semi-Lagrangian interpolation (the "scatter" phase).

Implements Algorithm 1 of the paper.  For every regular grid point ``x``
owned by rank ``r`` the semi-Lagrangian scheme needs the field value at the
departure point ``X``, which may fall into the subdomain of a different rank
(the *owner*).  The plan therefore

1. computes, for every local departure point, the owner rank
   (``owner(X)``),
2. sends the points to their owners (``alltoallv`` — the scatter phase,
   done once per velocity field since the points only change when the
   velocity changes),
3. lets every owner evaluate the tricubic interpolant on its ghosted local
   block (line 3 of Algorithm 1; the ghost exchange is line 1),
4. returns the interpolated values to the ranks that asked for them
   (``alltoallv``, once per transported field per time step).

The result is numerically identical to the serial
:class:`repro.transport.interpolation.PeriodicInterpolator` with the
``"catmull_rom"`` kernel, which is what the test-suite asserts.

The per-owner stencil plans (the 4x4x4 base indices and weights of the
points each owner received) depend only on the departure points, so they
are built **once per plan**, right next to the ``alltoallv`` routing
tables, and fetched through the shared plan pool
(:mod:`repro.runtime.plan_pool`) — a second plan for the same velocity
(e.g. the backward characteristics of a re-created solver) is a warm hit.
Every ``interpolate`` call then only exchanges ghosts and runs the cached
stencils, giving the distributed path the same per-velocity amortization
as the serial steppers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.parallel.comm import SimulatedCommunicator
from repro.parallel.ghost import exchange_ghost_layers
from repro.parallel.pencil import PencilDecomposition
from repro.runtime.plan_pool import array_fingerprint, get_plan_pool
from repro.spectral.grid import Grid
from repro.transport.kernels import StencilPlanLike, build_stencil_plan, execute_stencil_plan

#: Halo width required by the 4-point (tricubic) stencil.
GHOST_WIDTH = 2


@dataclass
class ScatterInterpolationPlan:
    """Owner/worker interpolation plan for a fixed set of departure points.

    Parameters
    ----------
    grid:
        Global grid (provides the spacing used to map physical coordinates
        to fractional grid indices).
    decomposition:
        Pencil decomposition of the grid (input distribution, axes 0 and 1).
    comm:
        Simulated communicator (charged for the scatter and the ghost
        exchange).
    departure_points:
        Per-rank arrays of physical coordinates, shape ``(3, M_r)``; the
        points rank ``r`` needs values at (one per locally owned grid point
        in the semi-Lagrangian scheme, but any point set is accepted).
    """

    grid: Grid
    decomposition: PencilDecomposition
    comm: SimulatedCommunicator
    departure_points: Sequence[np.ndarray]
    _owner_of_point: List[np.ndarray] = field(init=False, repr=False)
    _points_by_owner: List[List[np.ndarray]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        deco = self.decomposition
        if len(self.departure_points) != deco.num_tasks:
            raise ValueError(
                f"expected one point array per rank ({deco.num_tasks}), "
                f"got {len(self.departure_points)}"
            )
        spacing = np.asarray(self.grid.spacing)[:, None]
        shape = np.asarray(self.grid.shape, dtype=np.float64)[:, None]

        self._owner_of_point = []
        send: List[List[np.ndarray]] = [
            [np.empty((3, 0)) for _ in range(deco.num_tasks)] for _ in range(deco.num_tasks)
        ]
        self._fractional = []
        for rank in range(deco.num_tasks):
            pts = np.asarray(self.departure_points[rank], dtype=np.float64)
            if pts.ndim != 2 or pts.shape[0] != 3:
                raise ValueError(
                    f"departure points of rank {rank} must have shape (3, M), got {pts.shape}"
                )
            q = np.mod(pts / spacing, shape)  # fractional global grid indices
            # floating-point mod of a value that is a tiny negative multiple of
            # the period can return exactly `shape`; wrap it back to 0
            q = np.where(q >= shape, q - shape, q)
            self._fractional.append(q)
            owner = deco.owner_of_indices(np.floor(q).astype(np.intp) % shape.astype(np.intp))
            self._owner_of_point.append(owner)
            for other in range(deco.num_tasks):
                send[rank][other] = q[:, owner == other]
        # scatter phase: ship the points to their owners (once per velocity)
        received = self.comm.alltoallv(send, category="interp_scatter")
        self._points_by_owner = received

        # planning phase: build each owner's local stencil plans once, next
        # to the routing tables, through the shared plan pool (content keyed,
        # so a re-created plan for the same departure points is a warm hit)
        self.stencil_builds = 0
        pool = get_plan_pool()
        self._stencil_plans: List[List[Optional[StencilPlanLike]]] = [
            [None] * deco.num_tasks for _ in range(deco.num_tasks)
        ]
        for owner in range(deco.num_tasks):
            slices = deco.local_slices(owner, (0, 1))
            offsets = np.array([s.start or 0 for s in slices], dtype=np.float64)[:, None]
            extended_shape = tuple(
                n + 2 * GHOST_WIDTH for n in deco.local_shape(owner, (0, 1))
            )
            for requester in range(deco.num_tasks):
                q = np.asarray(self._points_by_owner[owner][requester])
                if q.size == 0:
                    continue
                # the owner test guarantees floor(q) lies in the owner's index
                # range, so the shift into the ghost-extended block needs no
                # periodic unwrapping
                local = q - offsets + GHOST_WIDTH

                def build(local=local, shape=extended_shape):
                    self.stencil_builds += 1
                    return build_stencil_plan(shape, local, "catmull_rom", periodic=False)

                key = (
                    "scatter-stencil",
                    "catmull_rom",
                    extended_shape,
                    array_fingerprint(local),
                )
                self._stencil_plans[owner][requester] = pool.get(key, build)

    # ------------------------------------------------------------------ #
    @property
    def num_tasks(self) -> int:
        return self.decomposition.num_tasks

    def local_point_counts(self) -> List[int]:
        """Number of points each owner has to interpolate (load-balance view)."""
        return [
            int(sum(np.asarray(chunk).shape[1] for chunk in self._points_by_owner[rank]))
            for rank in range(self.num_tasks)
        ]

    # ------------------------------------------------------------------ #
    def interpolate(self, blocks: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Interpolate a distributed scalar field at the planned points.

        Parameters
        ----------
        blocks:
            Per-rank local blocks (input distribution) of the field to
            interpolate.

        Returns
        -------
        list of numpy.ndarray
            For every rank, the interpolated values at its original
            departure points, in their original order.
        """
        deco = self.decomposition
        if len(blocks) != deco.num_tasks:
            raise ValueError(f"expected {deco.num_tasks} blocks, got {len(blocks)}")

        # line 1 of Algorithm 1: synchronize the ghost layers
        extended = exchange_ghost_layers(blocks, deco, GHOST_WIDTH, self.comm)

        # line 3: every owner runs its cached (non-periodic) stencil plans —
        # the same registered kernel the serial backends evaluate, planned
        # once in __post_init__ instead of per call
        results_back: List[List[np.ndarray]] = [
            [np.empty(0) for _ in range(deco.num_tasks)] for _ in range(deco.num_tasks)
        ]
        for owner in range(deco.num_tasks):
            flat_block = np.ascontiguousarray(extended[owner], dtype=np.float64).reshape(1, -1)
            for requester in range(deco.num_tasks):
                plan = self._stencil_plans[owner][requester]
                if plan is None:
                    results_back[owner][requester] = np.empty(0)
                    continue
                results_back[owner][requester] = execute_stencil_plan(flat_block, plan)[0]

        # line 4: send the values back to the ranks that requested them
        returned = self.comm.alltoallv(results_back, category="interp_return")

        output: List[np.ndarray] = []
        for rank in range(deco.num_tasks):
            owner = self._owner_of_point[rank]
            n_points = owner.shape[0]
            values = np.empty(n_points, dtype=np.float64)
            for source in range(deco.num_tasks):
                mask = owner == source
                if np.any(mask):
                    values[mask] = returned[rank][source]
            output.append(values)
        return output

    def interpolate_global(self, global_field: np.ndarray) -> List[np.ndarray]:
        """Convenience wrapper: scatter a global field, then interpolate."""
        blocks = self.decomposition.scatter(np.asarray(global_field))
        return self.interpolate(blocks)
