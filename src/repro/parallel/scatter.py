"""Distributed semi-Lagrangian interpolation (the "scatter" phase).

Implements Algorithm 1 of the paper.  For every regular grid point ``x``
owned by rank ``r`` the semi-Lagrangian scheme needs the field value at the
departure point ``X``, which may fall into the subdomain of a different rank
(the *owner*).  The plan therefore

1. computes, for every local departure point, the owner rank
   (``owner(X)``),
2. sends the points to their owners (``alltoallv`` — the scatter phase,
   done once per velocity field since the points only change when the
   velocity changes),
3. lets every owner evaluate the tricubic interpolant on its ghosted local
   block (line 3 of Algorithm 1; the ghost exchange is line 1),
4. returns the interpolated values to the ranks that asked for them
   (``alltoallv``, once per transported field per time step).

The result is numerically identical to the serial
:class:`repro.transport.interpolation.PeriodicInterpolator` with the
``"catmull_rom"`` kernel, which is what the test-suite asserts.

The whole planning product — the owner map, the ``alltoallv`` routing
tables (which points each owner received from each requester) and the
per-owner non-periodic stencil plans — depends only on the departure
points, the grid and the decomposition, so since PR 4 it is pooled **as
one unit** (:class:`ScatterPlanData`) in the shared plan pool
(:mod:`repro.runtime.plan_pool`), keyed by content.  Re-creating a plan
for an unchanged velocity — a re-built distributed solver, the backward
characteristics of an adjoint sweep — is a single warm hit with *zero*
``alltoallv`` setup: no owner computation, no point scatter, no stencil
builds.  Every ``interpolate`` call then only exchanges ghosts and runs
the cached stencils, giving the distributed path the same per-velocity
amortization as the serial steppers, now including the routing tables
the alltoallv setup used to rebuild per plan.

With the setup amortized, the per-*field* ghost exchange became the
dominant distributed overhead, so since PR 5 the evaluation side batches
too: :meth:`ScatterInterpolationPlan.interpolate_many` ships a whole
``(B, ...)`` stack of fields through **one** ghost-exchange round and
**one** value-return ``alltoallv`` — the same message counts as a single
field with ``B`` times the payload — mirroring how the serial
``interpolate_many`` batches gathers.  The scalar :meth:`interpolate` is
the ``B = 1`` case of the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.parallel.comm import SimulatedCommunicator
from repro.parallel.ghost import exchange_ghost_layers_batched
from repro.parallel.pencil import PencilDecomposition
from repro.runtime.plan_pool import array_fingerprint, get_plan_pool
from repro.spectral.grid import Grid
from repro.transport.kernels import (
    StencilPlanLike,
    StreamingStencilPlan,
    build_stencil_plan,
    execute_stencil_plan,
    plan_layout_cache_token,
)

#: Halo width required by the 4-point (tricubic) stencil.
GHOST_WIDTH = 2

#: Leading key element (= plan-pool tag) of pooled scatter-plan entries.
SCATTER_PLAN_TAG = "scatter-plan"


@dataclass
class ScatterPlanData:
    """The pooled content of one scatter plan (communicator independent).

    Everything the ``alltoallv`` setup produces for one set of departure
    points: the owner of every local point, the routing tables (the point
    coordinates each owner received, per requester — exactly the layout the
    value return travels back along) and the per-owner ghost-block stencil
    plans.  None of it references the communicator, so one pooled entry
    serves any number of re-created :class:`ScatterInterpolationPlan`
    instances, each with its own ledger.

    Because the product is pooled as one unit, it is also evicted (or
    oversize-rejected) as one unit: a plan larger than the whole pool
    budget caches nothing, and every re-creation then redoes the full
    setup.  Size ``REPRO_PLAN_POOL_BYTES`` for distributed runs accordingly
    — one entry is roughly ``(32 + stencil bytes/point) * N^3`` bytes; the
    streaming layout shrinks the stencil term to a per-owner constant.
    """

    owner_of_point: List[np.ndarray]
    points_by_owner: List[List[np.ndarray]]
    stencil_plans: List[List[Optional[StencilPlanLike]]]
    stencil_builds: int

    @property
    def nbytes(self) -> int:
        """Exact array payload in bytes (plan-pool accounting).

        Streaming stencils only report their one-chunk scratch cap and
        *borrow* their coordinate buffers — here those buffers are owned by
        this entry (they are the shifted ghost-block coordinates, not the
        routing-table points), so they are charged explicitly.
        """
        total = sum(owner.nbytes for owner in self.owner_of_point)
        for rows in self.points_by_owner:
            total += sum(np.asarray(chunk).nbytes for chunk in rows)
        for rows in self.stencil_plans:
            for plan in rows:
                if plan is None:
                    continue
                total += plan.nbytes
                if isinstance(plan, StreamingStencilPlan):
                    total += plan.coordinates.nbytes
        return total


@dataclass
class ScatterInterpolationPlan:
    """Owner/worker interpolation plan for a fixed set of departure points.

    Parameters
    ----------
    grid:
        Global grid (provides the spacing used to map physical coordinates
        to fractional grid indices).
    decomposition:
        Pencil decomposition of the grid (input distribution, axes 0 and 1).
    comm:
        Simulated communicator (charged for the scatter and the ghost
        exchange).
    departure_points:
        Per-rank arrays of physical coordinates, shape ``(3, M_r)``; the
        points rank ``r`` needs values at (one per locally owned grid point
        in the semi-Lagrangian scheme, but any point set is accepted).
    use_plan_pool:
        Set to ``False`` to bypass the shared pool (always rebuild the
        routing tables and stencils).

    After construction, ``pool_hit`` records whether the whole planning
    product came warm from the pool (in which case the construction did no
    ``alltoallv`` and ``stencil_builds`` is 0).
    """

    grid: Grid
    decomposition: PencilDecomposition
    comm: SimulatedCommunicator
    departure_points: Sequence[np.ndarray]
    use_plan_pool: bool = True
    pool_hit: bool = field(init=False, default=False)
    _data: ScatterPlanData = field(init=False, repr=False)

    def __post_init__(self) -> None:
        deco = self.decomposition
        if len(self.departure_points) != deco.num_tasks:
            raise ValueError(
                f"expected one point array per rank ({deco.num_tasks}), "
                f"got {len(self.departure_points)}"
            )
        points: List[np.ndarray] = []
        for rank in range(deco.num_tasks):
            pts = np.asarray(self.departure_points[rank], dtype=np.float64)
            if pts.ndim != 2 or pts.shape[0] != 3:
                raise ValueError(
                    f"departure points of rank {rank} must have shape (3, M), got {pts.shape}"
                )
            points.append(np.ascontiguousarray(pts))

        # the entire planning product is keyed by content: same grid, same
        # decomposition, same departure points (and the same stencil layout)
        # -> same routing tables and stencils, no matter which solver or
        # communicator asks
        built: List[bool] = []

        def build() -> ScatterPlanData:
            built.append(True)
            return self._build_plan_data(points)

        if self.use_plan_pool:
            key = (
                SCATTER_PLAN_TAG,
                self.grid,
                self.decomposition,
                plan_layout_cache_token(),
                array_fingerprint(*points),
            )
            data = get_plan_pool().get(key, build)
        else:
            data = build()
        self.pool_hit = not built
        # builds executed during *this* construction (0 on a warm hit)
        self.stencil_builds = data.stencil_builds if built else 0
        self._data = data

    def _build_plan_data(self, points: List[np.ndarray]) -> ScatterPlanData:
        """Owner map + alltoallv routing tables + stencils (the miss path)."""
        deco = self.decomposition
        spacing = np.asarray(self.grid.spacing)[:, None]
        shape = np.asarray(self.grid.shape, dtype=np.float64)[:, None]

        owner_of_point: List[np.ndarray] = []
        send: List[List[np.ndarray]] = [
            [np.empty((3, 0)) for _ in range(deco.num_tasks)] for _ in range(deco.num_tasks)
        ]
        for rank in range(deco.num_tasks):
            q = np.mod(points[rank] / spacing, shape)  # fractional global grid indices
            # floating-point mod of a value that is a tiny negative multiple of
            # the period can return exactly `shape`; wrap it back to 0
            q = np.where(q >= shape, q - shape, q)
            owner = deco.owner_of_indices(np.floor(q).astype(np.intp) % shape.astype(np.intp))
            owner_of_point.append(owner)
            for other in range(deco.num_tasks):
                send[rank][other] = q[:, owner == other]
        # scatter phase: ship the points to their owners (once per velocity
        # *content* — a pooled plan never repeats this)
        points_by_owner = self.comm.alltoallv(send, category="interp_scatter")

        # planning phase: build each owner's local stencil plans once, right
        # next to the routing tables they belong to
        stencil_builds = 0
        stencil_plans: List[List[Optional[StencilPlanLike]]] = [
            [None] * deco.num_tasks for _ in range(deco.num_tasks)
        ]
        for owner in range(deco.num_tasks):
            slices = deco.local_slices(owner, (0, 1))
            offsets = np.array([s.start or 0 for s in slices], dtype=np.float64)[:, None]
            extended_shape = tuple(
                n + 2 * GHOST_WIDTH for n in deco.local_shape(owner, (0, 1))
            )
            for requester in range(deco.num_tasks):
                q = np.asarray(points_by_owner[owner][requester])
                if q.size == 0:
                    continue
                # the owner test guarantees floor(q) lies in the owner's index
                # range, so the shift into the ghost-extended block needs no
                # periodic unwrapping
                local = q - offsets + GHOST_WIDTH
                stencil_builds += 1
                stencil_plans[owner][requester] = build_stencil_plan(
                    extended_shape, local, "catmull_rom", periodic=False
                )
        return ScatterPlanData(
            owner_of_point=owner_of_point,
            points_by_owner=points_by_owner,
            stencil_plans=stencil_plans,
            stencil_builds=stencil_builds,
        )

    # ------------------------------------------------------------------ #
    @property
    def num_tasks(self) -> int:
        return self.decomposition.num_tasks

    def local_point_counts(self) -> List[int]:
        """Number of points each owner has to interpolate (load-balance view)."""
        return [
            int(sum(np.asarray(chunk).shape[1] for chunk in self._data.points_by_owner[rank]))
            for rank in range(self.num_tasks)
        ]

    # ------------------------------------------------------------------ #
    def interpolate_many(self, block_stacks: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Interpolate a whole stack of distributed fields in one round trip.

        The distributed twin of the serial ``interpolate_many``: every rank
        contributes a ``(B, n1, n2, n3)`` stack of local blocks (one common
        batch size ``B``), and all ``B`` fields move through **one** ghost
        exchange round and **one** value-return ``alltoallv`` — the same
        message counts as a single field, with ``B`` times the payload.
        Each owner then runs its cached non-periodic stencil plans once per
        requester for the whole batch (one index computation serves every
        field, the serial batching win).  Per-field values are bitwise
        identical to ``B`` separate :meth:`interpolate` calls; only the
        ledger's latency story changes.

        Parameters
        ----------
        block_stacks:
            Per-rank ``(B, n1, n2, n3)`` stacks (input distribution) of the
            fields to interpolate.

        Returns
        -------
        list of numpy.ndarray
            For every rank, a ``(B, M_r)`` array of interpolated values at
            its original departure points, in their original order.
        """
        deco = self.decomposition
        if len(block_stacks) != deco.num_tasks:
            raise ValueError(
                f"expected {deco.num_tasks} block stacks, got {len(block_stacks)}"
            )
        stacks = [np.asarray(stack) for stack in block_stacks]
        for rank, stack in enumerate(stacks):
            if stack.ndim != 4:
                raise ValueError(
                    f"block stack of rank {rank} must be (B, n1, n2, n3), "
                    f"got shape {stack.shape}"
                )
        batch = stacks[0].shape[0]

        # line 1 of Algorithm 1: synchronize the ghost layers — one
        # neighbour round for the whole batch (shape validation included)
        extended = exchange_ghost_layers_batched(stacks, deco, GHOST_WIDTH, self.comm)

        # line 3: every owner runs its cached (non-periodic) stencil plans —
        # the same registered kernel the serial backends evaluate, planned
        # once per departure-point content instead of per call; the whole
        # batch gathers through one pass per (owner, requester) plan
        stencil_plans = self._data.stencil_plans
        results_back: List[List[np.ndarray]] = [
            [np.empty((batch, 0)) for _ in range(deco.num_tasks)]
            for _ in range(deco.num_tasks)
        ]
        for owner in range(deco.num_tasks):
            flat_blocks = np.ascontiguousarray(extended[owner], dtype=np.float64).reshape(
                batch, -1
            )
            for requester in range(deco.num_tasks):
                plan = stencil_plans[owner][requester]
                if plan is None:
                    continue
                results_back[owner][requester] = execute_stencil_plan(flat_blocks, plan)

        # line 4: one alltoallv returns every field's values together
        returned = self.comm.alltoallv(results_back, category="interp_return")

        output: List[np.ndarray] = []
        for rank in range(deco.num_tasks):
            owner = self._data.owner_of_point[rank]
            n_points = owner.shape[0]
            values = np.empty((batch, n_points), dtype=np.float64)
            for source in range(deco.num_tasks):
                mask = owner == source
                if np.any(mask):
                    values[:, mask] = returned[rank][source]
            output.append(values)
        return output

    def interpolate(self, blocks: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Interpolate a distributed scalar field at the planned points.

        The single-field (``B = 1``) case of :meth:`interpolate_many` —
        same code path, same ledger charges, same bits.

        Parameters
        ----------
        blocks:
            Per-rank local blocks (input distribution) of the field to
            interpolate.

        Returns
        -------
        list of numpy.ndarray
            For every rank, the interpolated values at its original
            departure points, in their original order.
        """
        deco = self.decomposition
        if len(blocks) != deco.num_tasks:
            raise ValueError(f"expected {deco.num_tasks} blocks, got {len(blocks)}")
        stacks = []
        for rank, block in enumerate(blocks):
            block = np.asarray(block)
            if block.ndim != 3:
                raise ValueError(
                    f"block of rank {rank} must be 3-dimensional, got shape {block.shape}"
                )
            stacks.append(block[None])
        return [values[0] for values in self.interpolate_many(stacks)]

    def interpolate_global(self, global_field: np.ndarray) -> List[np.ndarray]:
        """Convenience wrapper: scatter a global field, then interpolate."""
        blocks = self.decomposition.scatter(np.asarray(global_field))
        return self.interpolate(blocks)

    def interpolate_many_global(self, global_fields: np.ndarray) -> List[np.ndarray]:
        """Convenience wrapper: scatter a ``(B, N1, N2, N3)`` stack, batch it."""
        global_fields = np.asarray(global_fields)
        if global_fields.ndim != 4:
            raise ValueError(
                f"global fields must be stacked as (B, N1, N2, N3), "
                f"got shape {global_fields.shape}"
            )
        per_field_blocks = [self.decomposition.scatter(field) for field in global_fields]
        stacks = [
            np.stack([blocks[rank] for blocks in per_field_blocks], axis=0)
            for rank in range(self.decomposition.num_tasks)
        ]
        return self.interpolate_many(stacks)
