"""Distributed (pencil-decomposed) 3D FFT.

Re-implements the communication pattern of AccFFT, the library the paper
uses (Sec. III-C1 and Fig. 4): starting from the input distribution in which
axes 0 and 1 are split over the ``p1 x p2`` process grid and axis 2 is
local, the transform proceeds as

1. local 1-D FFTs along axis 2,
2. all-to-all transpose within every **row group** (``p2`` ranks) so that
   axis 1 becomes local and axis 2 becomes distributed,
3. local 1-D FFTs along axis 1,
4. all-to-all transpose within every **column group** (``p1`` ranks) so that
   axis 0 becomes local and axis 1 becomes distributed,
5. local 1-D FFTs along axis 0.

The output therefore lives in the ``(1, 2)`` distribution (axis 0 local).
The inverse transform runs the same steps in reverse.  Every transpose is an
``alltoallv`` recorded in the communication ledger; the communication volume
matches the paper's model, ``O(t_s sqrt(p) + t_w 3 N^3 / p)`` per 3D FFT.

The transform is validated against ``numpy.fft.fftn`` in the test-suite for
several grid shapes and process-grid configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.parallel.comm import SimulatedCommunicator
from repro.parallel.pencil import PencilDecomposition
from repro.spectral.backends import get_backend

#: Distribution labels: which two axes are split over (p1, p2).
INPUT_DIST: Tuple[int, int] = (0, 1)
MID_DIST: Tuple[int, int] = (0, 2)
OUTPUT_DIST: Tuple[int, int] = (1, 2)


@dataclass
class DistributedFFT:
    """Pencil-decomposed complex 3D FFT over a simulated communicator.

    Parameters
    ----------
    decomposition:
        The pencil decomposition (process grid and global shape).
    comm:
        Simulated communicator; created automatically when omitted.
    backend:
        Serial FFT engine performing the per-pencil 1-D transforms
        (``None`` resolves the active default, so the distributed transform
        is validated against whichever serial backend is selected).
    """

    decomposition: PencilDecomposition
    comm: SimulatedCommunicator = None
    backend: Optional[object] = None
    fft_1d_count: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.backend = get_backend(self.backend)
        if self.comm is None:
            self.comm = SimulatedCommunicator(self.decomposition.num_tasks)
        if self.comm.size != self.decomposition.num_tasks:
            raise ValueError(
                f"communicator size {self.comm.size} does not match the decomposition "
                f"({self.decomposition.num_tasks} tasks)"
            )

    # ------------------------------------------------------------------ #
    # transposes
    # ------------------------------------------------------------------ #
    def _transpose(
        self,
        blocks: Sequence[np.ndarray],
        from_dist: Tuple[int, int],
        to_dist: Tuple[int, int],
        within: str,
        category: str,
    ) -> List[np.ndarray]:
        """Repartition the per-rank blocks from one distribution to another.

        ``within`` selects the process-grid groups inside which the exchange
        happens (``"row"`` = fixed ``r1``, i.e. ``p2`` ranks, or ``"column"``
        = fixed ``r2``, i.e. ``p1`` ranks); ranks outside the group exchange
        nothing, which reproduces the ``sqrt(p)`` concurrent all-to-alls of
        the pencil transpose.
        """
        deco = self.decomposition
        p = deco.num_tasks
        send: List[List[np.ndarray]] = [
            [np.empty(0, dtype=complex) for _ in range(p)] for _ in range(p)
        ]
        empty = np.empty(0, dtype=complex)
        for rank in range(p):
            block = np.asarray(blocks[rank])
            my_slices = deco.local_slices(rank, from_dist)
            offsets = tuple(s.start or 0 for s in my_slices)
            r1, r2 = deco.rank_coordinates(rank)
            group = deco.row_group(r1) if within == "row" else deco.column_group(r2)
            for other in group:
                other_slices = deco.local_slices(other, to_dist)
                # intersection of my "from" block with the other's "to" block,
                # expressed in my local coordinates
                local = []
                valid = True
                for axis in range(3):
                    lo = my_slices[axis].start or 0
                    hi = my_slices[axis].stop if my_slices[axis].stop is not None else deco.global_shape[axis]
                    olo = other_slices[axis].start or 0
                    ohi = (
                        other_slices[axis].stop
                        if other_slices[axis].stop is not None
                        else deco.global_shape[axis]
                    )
                    start = max(lo, olo)
                    stop = min(hi, ohi)
                    if start >= stop:
                        valid = False
                        break
                    local.append(slice(start - offsets[axis], stop - offsets[axis]))
                send[rank][other] = block[tuple(local)].copy() if valid else empty
        received = self.comm.alltoallv(send, category=category)

        out: List[np.ndarray] = []
        for rank in range(p):
            target_shape = deco.local_shape(rank, to_dist)
            target = np.zeros(target_shape, dtype=complex)
            to_slices = deco.local_slices(rank, to_dist)
            to_offsets = tuple(s.start or 0 for s in to_slices)
            for source, chunk in enumerate(received[rank]):
                chunk = np.asarray(chunk)
                if chunk.size == 0:
                    continue
                source_slices = deco.local_slices(source, from_dist)
                local = []
                for axis in range(3):
                    lo = source_slices[axis].start or 0
                    hi = (
                        source_slices[axis].stop
                        if source_slices[axis].stop is not None
                        else deco.global_shape[axis]
                    )
                    olo = to_slices[axis].start or 0
                    ohi = (
                        to_slices[axis].stop
                        if to_slices[axis].stop is not None
                        else deco.global_shape[axis]
                    )
                    start = max(lo, olo)
                    stop = min(hi, ohi)
                    local.append(slice(start - to_offsets[axis], stop - to_offsets[axis]))
                target[tuple(local)] = chunk
            out.append(target)
        return out

    # ------------------------------------------------------------------ #
    # forward / backward transforms
    # ------------------------------------------------------------------ #
    def _fft_along(self, blocks: Sequence[np.ndarray], axis: int, inverse: bool) -> List[np.ndarray]:
        transform = self.backend.ifft if inverse else self.backend.fft
        out = []
        for block in blocks:
            self.fft_1d_count += int(np.prod(block.shape) // block.shape[axis])
            out.append(transform(np.asarray(block, dtype=complex), axis=axis))
        return out

    def forward(self, local_blocks: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Forward transform of per-rank blocks in the input distribution.

        Returns the per-rank spectral blocks in the output distribution
        (axis 0 local, axes 1 and 2 distributed).
        """
        self._check_blocks(local_blocks, INPUT_DIST)
        blocks = self._fft_along(local_blocks, axis=2, inverse=False)
        blocks = self._transpose(blocks, INPUT_DIST, MID_DIST, within="row", category="fft_transpose")
        blocks = self._fft_along(blocks, axis=1, inverse=False)
        blocks = self._transpose(blocks, MID_DIST, OUTPUT_DIST, within="column", category="fft_transpose")
        blocks = self._fft_along(blocks, axis=0, inverse=False)
        return blocks

    def backward(self, spectral_blocks: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Inverse transform from the output distribution back to the input one."""
        self._check_blocks(spectral_blocks, OUTPUT_DIST)
        blocks = self._fft_along(spectral_blocks, axis=0, inverse=True)
        blocks = self._transpose(blocks, OUTPUT_DIST, MID_DIST, within="column", category="fft_transpose")
        blocks = self._fft_along(blocks, axis=1, inverse=True)
        blocks = self._transpose(blocks, MID_DIST, INPUT_DIST, within="row", category="fft_transpose")
        blocks = self._fft_along(blocks, axis=2, inverse=True)
        return blocks

    def _check_blocks(self, blocks: Sequence[np.ndarray], dist: Tuple[int, int]) -> None:
        deco = self.decomposition
        if len(blocks) != deco.num_tasks:
            raise ValueError(f"expected {deco.num_tasks} blocks, got {len(blocks)}")
        for rank, block in enumerate(blocks):
            expected = deco.local_shape(rank, dist)
            if np.asarray(block).shape != expected:
                raise ValueError(
                    f"block of rank {rank} has shape {np.asarray(block).shape}, expected {expected}"
                )

    # ------------------------------------------------------------------ #
    # convenience: full round trip against a global array
    # ------------------------------------------------------------------ #
    def forward_global(self, global_field: np.ndarray) -> np.ndarray:
        """Scatter a global field, transform, gather the global spectrum."""
        deco = self.decomposition
        blocks = deco.scatter(np.asarray(global_field, dtype=complex), INPUT_DIST)
        spectral = self.forward(blocks)
        return deco.gather(spectral, OUTPUT_DIST)

    def backward_global(self, global_spectrum: np.ndarray) -> np.ndarray:
        """Scatter a global spectrum, inverse-transform, gather the field."""
        deco = self.decomposition
        blocks = deco.scatter(np.asarray(global_spectrum, dtype=complex), OUTPUT_DIST)
        fields = self.backward(blocks)
        return deco.gather(fields, INPUT_DIST)

    def apply_symbol(
        self, local_blocks: Sequence[np.ndarray], symbol: np.ndarray
    ) -> List[np.ndarray]:
        """Apply a Fourier multiplier given as a *global* symbol array.

        The symbol is indexed in the output distribution per rank; this is
        the distributed counterpart of
        :meth:`repro.spectral.fft.FourierTransform.apply_symbol`.
        """
        symbol = np.asarray(symbol)
        if symbol.shape != self.decomposition.global_shape:
            raise ValueError(
                f"symbol has shape {symbol.shape}, expected {self.decomposition.global_shape}"
            )
        spectral = self.forward(local_blocks)
        filtered = []
        for rank, block in enumerate(spectral):
            slices = self.decomposition.local_slices(rank, OUTPUT_DIST)
            filtered.append(block * symbol[slices])
        back = self.backward(filtered)
        return [np.real(b) for b in back]
