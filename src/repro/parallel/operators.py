"""Distributed spectral operators built on the pencil-decomposed FFT.

These are the distributed counterparts of
:class:`repro.spectral.operators.SpectralOperators`: gradient, divergence,
Laplacian (and its inverse), biharmonic, and the Leray projection, each
applied to per-rank local blocks in the input (pencil) distribution.  They
are validated against the serial operators in the test-suite, which is the
correctness argument behind using the *serial* backend plus the *counted*
communication volumes for the performance reproduction (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import List, Sequence

import numpy as np

from repro.parallel.comm import SimulatedCommunicator
from repro.parallel.distributed_fft import OUTPUT_DIST, DistributedFFT
from repro.parallel.pencil import PencilDecomposition
from repro.spectral.grid import Grid


@dataclass
class DistributedSpectralOperators:
    """Fourier-multiplier operators acting on pencil-distributed fields.

    Parameters
    ----------
    grid:
        Global grid (provides the wavenumbers).
    decomposition:
        Pencil decomposition of the grid.
    comm:
        Simulated communicator shared by all operators (a fresh one is
        created when omitted).
    """

    grid: Grid
    decomposition: PencilDecomposition
    comm: SimulatedCommunicator = None

    def __post_init__(self) -> None:
        if tuple(self.decomposition.global_shape) != tuple(self.grid.shape):
            raise ValueError(
                f"decomposition shape {self.decomposition.global_shape} does not match "
                f"grid shape {self.grid.shape}"
            )
        if self.comm is None:
            self.comm = SimulatedCommunicator(self.decomposition.num_tasks)
        self.fft = DistributedFFT(self.decomposition, self.comm)

    # ------------------------------------------------------------------ #
    # full-spectrum symbols (the distributed transform is complex-to-complex)
    # ------------------------------------------------------------------ #
    @cached_property
    def _k(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        k1 = self.grid.derivative_wavenumbers_1d(0)
        k2 = self.grid.derivative_wavenumbers_1d(1)
        k3 = self.grid.derivative_wavenumbers_1d(2)
        return (
            k1[:, None, None] * np.ones(self.grid.shape),
            k2[None, :, None] * np.ones(self.grid.shape),
            k3[None, None, :] * np.ones(self.grid.shape),
        )

    @cached_property
    def _minus_ksq(self) -> np.ndarray:
        k1 = self.grid.wavenumbers_1d(0)[:, None, None]
        k2 = self.grid.wavenumbers_1d(1)[None, :, None]
        k3 = self.grid.wavenumbers_1d(2)[None, None, :]
        return -(k1 * k1 + k2 * k2 + k3 * k3) * np.ones(self.grid.shape)

    def _local_symbol(self, symbol: np.ndarray, rank: int) -> np.ndarray:
        return symbol[self.decomposition.local_slices(rank, OUTPUT_DIST)]

    # ------------------------------------------------------------------ #
    # scalar operators
    # ------------------------------------------------------------------ #
    def derivative(self, blocks: Sequence[np.ndarray], axis: int) -> List[np.ndarray]:
        """Distributed partial derivative along *axis*."""
        if axis not in (0, 1, 2):
            raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
        spectral = self.fft.forward(blocks)
        filtered = [
            block * (1j * self._local_symbol(self._k[axis], rank))
            for rank, block in enumerate(spectral)
        ]
        return [np.real(b) for b in self.fft.backward(filtered)]

    def gradient(self, blocks: Sequence[np.ndarray]) -> List[List[np.ndarray]]:
        """Distributed gradient; returns ``[component][rank]`` blocks.

        The forward transform is shared by the three components, mirroring
        the paper's optimization of the gradient operator.
        """
        spectral = self.fft.forward(blocks)
        components: List[List[np.ndarray]] = []
        for axis in range(3):
            filtered = [
                block * (1j * self._local_symbol(self._k[axis], rank))
                for rank, block in enumerate(spectral)
            ]
            components.append([np.real(b) for b in self.fft.backward(filtered)])
        return components

    def laplacian(self, blocks: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Distributed Laplacian."""
        return self.fft.apply_symbol(blocks, self._minus_ksq)

    def inverse_laplacian(self, blocks: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Distributed pseudo-inverse of the Laplacian."""
        sym = self._minus_ksq
        inv = np.zeros_like(sym)
        nonzero = sym != 0.0
        inv[nonzero] = 1.0 / sym[nonzero]
        return self.fft.apply_symbol(blocks, inv)

    def biharmonic(self, blocks: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Distributed biharmonic operator."""
        return self.fft.apply_symbol(blocks, self._minus_ksq**2)

    # ------------------------------------------------------------------ #
    # vector operators
    # ------------------------------------------------------------------ #
    def divergence(self, vector_blocks: Sequence[Sequence[np.ndarray]]) -> List[np.ndarray]:
        """Distributed divergence of ``[component][rank]`` blocks."""
        if len(vector_blocks) != 3:
            raise ValueError("vector_blocks must have three components")
        p = self.decomposition.num_tasks
        accum: List[np.ndarray] = [None] * p
        for axis in range(3):
            spectral = self.fft.forward(vector_blocks[axis])
            for rank in range(p):
                term = spectral[rank] * (1j * self._local_symbol(self._k[axis], rank))
                accum[rank] = term if accum[rank] is None else accum[rank] + term
        return [np.real(b) for b in self.fft.backward(accum)]

    def leray_project(
        self, vector_blocks: Sequence[Sequence[np.ndarray]]
    ) -> List[List[np.ndarray]]:
        """Distributed Leray projection of ``[component][rank]`` blocks."""
        if len(vector_blocks) != 3:
            raise ValueError("vector_blocks must have three components")
        p = self.decomposition.num_tasks
        spectra = [self.fft.forward(vector_blocks[axis]) for axis in range(3)]
        projected: List[List[np.ndarray]] = [[None] * p for _ in range(3)]
        for rank in range(p):
            k = [self._local_symbol(self._k[axis], rank) for axis in range(3)]
            ksq = k[0] ** 2 + k[1] ** 2 + k[2] ** 2
            inv = np.zeros_like(ksq)
            nonzero = ksq != 0.0
            inv[nonzero] = 1.0 / ksq[nonzero]
            dot = k[0] * spectra[0][rank] + k[1] * spectra[1][rank] + k[2] * spectra[2][rank]
            factor = dot * inv
            for axis in range(3):
                projected[axis][rank] = spectra[axis][rank] - k[axis] * factor
        return [
            [np.real(b) for b in self.fft.backward(projected[axis])] for axis in range(3)
        ]

    # ------------------------------------------------------------------ #
    # convenience: compare against a serial (gathered) evaluation
    # ------------------------------------------------------------------ #
    def gather_scalar(self, blocks: Sequence[np.ndarray]) -> np.ndarray:
        return self.decomposition.gather([np.asarray(b) for b in blocks])

    def scatter_scalar(self, global_field: np.ndarray) -> List[np.ndarray]:
        return self.decomposition.scatter(np.asarray(global_field, dtype=self.grid.dtype))
