"""Simulated MPI communicator with a communication ledger.

The distributed kernels in this package are written in SPMD style against a
small communicator interface (all-to-all-v, point-to-point exchange,
all-reduce).  :class:`SimulatedCommunicator` provides that interface for a
set of ranks living in one Python process: "sending" moves numpy arrays
between per-rank slots, and every transfer is recorded in a
:class:`CommunicationLedger` (message count, payload bytes, per category).

The ledger is what connects the executable distributed algorithms to the
paper's performance analysis: the counted volumes are fed to the latency /
bandwidth machine model (:mod:`repro.parallel.performance`) to regenerate
the communication columns of Tables I-IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.observability.metrics import get_metrics_registry
from repro.observability.trace import trace_span
from repro.utils.validation import check_positive_int

_comm_registry = get_metrics_registry()
_COMM_MESSAGES = _comm_registry.counter(
    "comm.messages", "simulated MPI messages by category"
)
_COMM_BYTES = _comm_registry.counter(
    "comm.bytes", "simulated MPI payload bytes by category"
)
_COMM_CALLS = _comm_registry.counter(
    "comm.calls", "simulated MPI collective calls by category"
)


@dataclass
class LedgerEntry:
    """Aggregate record of one category of communication."""

    messages: int = 0
    bytes: int = 0
    calls: int = 0

    def add(self, messages: int, payload_bytes: int) -> None:
        self.messages += int(messages)
        self.bytes += int(payload_bytes)
        self.calls += 1


@dataclass
class CommunicationLedger:
    """Per-category accounting of every simulated message."""

    entries: Dict[str, LedgerEntry] = field(default_factory=dict)

    def record(self, category: str, messages: int, payload_bytes: int) -> None:
        if category not in self.entries:
            self.entries[category] = LedgerEntry()
        self.entries[category].add(messages, payload_bytes)
        # mirror into the process-wide metrics registry; every ledger
        # (there is one per simulated communicator) feeds the same series
        _COMM_MESSAGES.inc(int(messages), category=category)
        _COMM_BYTES.inc(int(payload_bytes), category=category)
        _COMM_CALLS.inc(1, category=category)

    def messages(self, category: str | None = None) -> int:
        if category is not None:
            return self.entries[category].messages if category in self.entries else 0
        return sum(e.messages for e in self.entries.values())

    def bytes(self, category: str | None = None) -> int:
        if category is not None:
            return self.entries[category].bytes if category in self.entries else 0
        return sum(e.bytes for e in self.entries.values())

    def reset(self) -> None:
        self.entries.clear()

    def summary(self) -> Dict[str, Dict[str, int]]:
        return {
            name: {"messages": e.messages, "bytes": e.bytes, "calls": e.calls}
            for name, e in sorted(self.entries.items())
        }


@dataclass
class SimulatedCommunicator:
    """A *p*-rank communicator executed inside one process.

    All collective operations take and return **lists indexed by rank**: the
    caller iterates over ranks itself (SPMD emulation), and the communicator
    only moves data between the per-rank slots while book-keeping the traffic.

    Parameters
    ----------
    size:
        Number of ranks ``p``.
    ledger:
        Communication ledger (a fresh one is created when omitted).
    """

    size: int
    ledger: CommunicationLedger = field(default_factory=CommunicationLedger)

    def __post_init__(self) -> None:
        check_positive_int(self.size, "size")

    # ------------------------------------------------------------------ #
    def ranks(self) -> range:
        return range(self.size)

    @staticmethod
    def _payload_bytes(array: np.ndarray) -> int:
        return int(np.asarray(array).nbytes)

    # ------------------------------------------------------------------ #
    # collectives
    # ------------------------------------------------------------------ #
    def alltoallv(
        self, send: Sequence[Sequence[np.ndarray]], category: str = "alltoallv"
    ) -> List[List[np.ndarray]]:
        """All-to-all-v exchange.

        ``send[i][j]`` is the array rank *i* sends to rank *j*; the result
        ``recv[j][i]`` is that same array as received by rank *j*.  Self
        messages (``i == j``) are moved but not charged to the ledger, which
        matches how an MPI implementation short-circuits them through shared
        memory.
        """
        if len(send) != self.size:
            raise ValueError(f"send must have one entry per rank ({self.size}), got {len(send)}")
        for i, row in enumerate(send):
            if len(row) != self.size:
                raise ValueError(
                    f"send[{i}] must have one entry per destination rank, got {len(row)}"
                )
        recv: List[List[np.ndarray]] = [[None] * self.size for _ in range(self.size)]
        with trace_span("comm.alltoallv", category=category, ranks=self.size) as span:
            messages = 0
            payload = 0
            for i in range(self.size):
                for j in range(self.size):
                    data = np.asarray(send[i][j])
                    recv[j][i] = data
                    if i != j and data.size:
                        messages += 1
                        payload += self._payload_bytes(data)
            self.ledger.record(category, messages, payload)
            span.set_attr("messages", messages)
            span.set_attr("bytes", payload)
        return recv

    def exchange(
        self,
        messages: Sequence[tuple[int, int, np.ndarray]],
        category: str = "point_to_point",
    ) -> List[List[tuple[int, np.ndarray]]]:
        """Batch of point-to-point messages ``(source, destination, data)``.

        Returns, for every destination rank, the list of ``(source, data)``
        pairs it received (in submission order).
        """
        inbox: List[List[tuple[int, np.ndarray]]] = [[] for _ in range(self.size)]
        with trace_span("comm.exchange", category=category, ranks=self.size) as span:
            count = 0
            payload = 0
            for source, destination, data in messages:
                if not (0 <= source < self.size and 0 <= destination < self.size):
                    raise ValueError(
                        f"invalid ranks ({source} -> {destination}) for communicator of size {self.size}"
                    )
                data = np.asarray(data)
                inbox[destination].append((source, data))
                if source != destination and data.size:
                    count += 1
                    payload += self._payload_bytes(data)
            self.ledger.record(category, count, payload)
            span.set_attr("messages", count)
            span.set_attr("bytes", payload)
        return inbox

    def allreduce_sum(self, values: Sequence[float], category: str = "allreduce") -> float:
        """Sum-all-reduce of one scalar per rank."""
        if len(values) != self.size:
            raise ValueError(f"expected {self.size} values, got {len(values)}")
        # a tree all-reduce moves O(2 p) scalar messages
        self.ledger.record(category, 2 * (self.size - 1), 8 * 2 * (self.size - 1))
        return float(np.sum(values))

    def allgather(self, values: Sequence[np.ndarray], category: str = "allgather") -> List[np.ndarray]:
        """Each rank contributes one array; everyone receives all of them."""
        if len(values) != self.size:
            raise ValueError(f"expected {self.size} arrays, got {len(values)}")
        payload = sum(self._payload_bytes(v) for v in values)
        self.ledger.record(category, self.size * (self.size - 1), payload * (self.size - 1))
        return [np.asarray(v) for v in values]
