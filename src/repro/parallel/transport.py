"""Distributed semi-Lagrangian transport.

Combines the pieces of Sec. III-C2 into the actual distributed transport
kernel of the solver: the departure points of the semi-Lagrangian scheme are
computed per rank, the velocity and the transported scalar are interpolated
at those off-grid points with the owner/worker scatter plan
(:class:`~repro.parallel.scatter.ScatterInterpolationPlan`), and the state
equation is advanced one step at a time — exactly the "interpolation
planner" + "transport" structure the paper describes.

The distributed result is validated in the test-suite against the serial
:class:`~repro.transport.solvers.TransportSolver` with the same
(Catmull-Rom) interpolation kernel, to machine precision.  Only the pure
advection (state / adjoint for divergence-free velocities) is provided here;
it is the kernel whose communication pattern the performance model charges
for, and the source-term variants reduce to extra interpolations of grid
fields through the very same plan.

Both scatter plans of the RK2 trace (the first-stage ``X*`` plan and the
departure plan) are fetched through the shared plan pool: re-creating the
stepper — or a whole :class:`DistributedTransportSolver` run — for an
unchanged velocity performs **zero** ``alltoallv`` setup; ``plan_pool_hits``
reports how many of the two plans came warm.

Every multi-field interpolation rides the batched distributed entry point
(:meth:`~repro.parallel.scatter.ScatterInterpolationPlan.interpolate_many`):
the three velocity components of the RK2 trace move through **one** ghost
exchange and **one** return ``alltoallv`` (instead of one round per
component), and :meth:`DistributedSemiLagrangian.step_many` /
:meth:`DistributedTransportSolver.solve_state_many` advance whole stacks of
transported fields per round the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.parallel.comm import SimulatedCommunicator
from repro.parallel.pencil import PencilDecomposition
from repro.parallel.scatter import ScatterInterpolationPlan
from repro.runtime.cancellation import check_cancelled
from repro.spectral.grid import Grid
from repro.utils.validation import check_positive_int, check_velocity_shape


@dataclass
class DistributedSemiLagrangian:
    """Distributed semi-Lagrangian stepper for a stationary velocity field.

    Parameters
    ----------
    grid:
        Global grid.
    decomposition:
        Pencil decomposition (input distribution, axes 0 and 1).
    velocity:
        Stationary velocity as a *global* ``(3, N1, N2, N3)`` array (each
        rank only ever touches its own block plus what the scatter plan
        ships to it; the global array is accepted for convenience of the
        driver).
    dt:
        Time-step size.
    comm:
        Simulated communicator (created when omitted).
    use_plan_pool:
        Set to ``False`` to bypass the shared plan pool (always rebuild the
        scatter plans' routing tables and stencils).
    """

    grid: Grid
    decomposition: PencilDecomposition
    velocity: np.ndarray
    dt: float
    comm: Optional[SimulatedCommunicator] = None
    use_plan_pool: bool = True
    star_plan: ScatterInterpolationPlan = field(init=False, repr=False)
    departure_plan: ScatterInterpolationPlan = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.velocity = check_velocity_shape(self.velocity, self.grid.shape)
        if self.dt < 0:
            raise ValueError(f"dt must be non-negative, got {self.dt}")
        if self.comm is None:
            self.comm = SimulatedCommunicator(self.decomposition.num_tasks)
        deco = self.decomposition

        # per-rank arrival coordinates and local velocity blocks
        coords = self.grid.coordinate_stack()
        self._local_coords = [
            coords[(slice(None), *deco.local_slices(rank))] for rank in range(deco.num_tasks)
        ]
        self._local_velocity = [
            self.velocity[(slice(None), *deco.local_slices(rank))]
            for rank in range(deco.num_tasks)
        ]

        # first stage: X* = x - dt v(x) (purely local)
        x_star = [
            (self._local_coords[rank] - self.dt * self._local_velocity[rank]).reshape(3, -1)
            for rank in range(deco.num_tasks)
        ]
        self.star_plan = ScatterInterpolationPlan(
            self.grid, deco, self.comm, x_star, use_plan_pool=self.use_plan_pool
        )
        # all three velocity components ride one batched round trip (one
        # ghost exchange + one return alltoallv instead of one round each)
        v_at_star = self.star_plan.interpolate_many(
            [self._local_velocity[rank] for rank in range(deco.num_tasks)]
        )

        # second stage: X = x - dt/2 (v(x) + v(X*))
        departure_points: List[np.ndarray] = []
        for rank in range(deco.num_tasks):
            shape = self._local_coords[rank].shape
            v_star = v_at_star[rank].reshape(shape)
            departure = self._local_coords[rank] - 0.5 * self.dt * (
                self._local_velocity[rank] + v_star
            )
            departure_points.append(departure.reshape(3, -1))
        self.departure_plan = ScatterInterpolationPlan(
            self.grid, deco, self.comm, departure_points, use_plan_pool=self.use_plan_pool
        )

    # ------------------------------------------------------------------ #
    @property
    def plan_pool_hits(self) -> int:
        """How many of the two scatter plans came warm from the plan pool.

        ``2`` means this stepper was re-created for a velocity the pool had
        already planned: the construction performed zero ``alltoallv`` setup
        and zero stencil builds.
        """
        return int(self.star_plan.pool_hit) + int(self.departure_plan.pool_hit)

    def step(self, blocks: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Advance a distributed scalar field by one (pure advection) step."""
        deco = self.decomposition
        values = self.departure_plan.interpolate(blocks)
        out = []
        for rank in range(deco.num_tasks):
            shape = deco.local_shape(rank)
            out.append(values[rank].reshape(shape))
        return out

    def step_many(self, block_stacks: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Advance a stack of distributed fields by one step, batched.

        Every rank contributes a ``(B, n1, n2, n3)`` stack; all ``B`` fields
        share one ghost exchange and one value-return ``alltoallv`` (the
        batched :meth:`~repro.parallel.scatter.ScatterInterpolationPlan.
        interpolate_many` round).  Per-field results are bitwise identical
        to ``B`` separate :meth:`step` calls.
        """
        deco = self.decomposition
        values = self.departure_plan.interpolate_many(block_stacks)
        out = []
        for rank in range(deco.num_tasks):
            shape = deco.local_shape(rank)
            out.append(values[rank].reshape(values[rank].shape[0], *shape))
        return out

    def departure_points(self, rank: int) -> np.ndarray:
        """Departure coordinates of *rank*'s grid points, shape ``(3, M_r)``."""
        return np.asarray(self.departure_plan.departure_points[rank])


@dataclass
class DistributedTransportSolver:
    """Distributed solver for the (pure advection) state equation.

    This is the distributed counterpart of
    :meth:`repro.transport.solvers.TransportSolver.solve_state`, operating on
    per-rank blocks throughout and charging every exchange to the
    communicator's ledger.
    """

    grid: Grid
    decomposition: PencilDecomposition
    num_time_steps: int = 4
    comm: Optional[SimulatedCommunicator] = None

    def __post_init__(self) -> None:
        check_positive_int(self.num_time_steps, "num_time_steps")
        if self.comm is None:
            self.comm = SimulatedCommunicator(self.decomposition.num_tasks)

    @property
    def dt(self) -> float:
        return 1.0 / self.num_time_steps

    def solve_state(
        self,
        velocity: np.ndarray,
        template: np.ndarray,
        cancel_token: Optional[object] = None,
    ) -> np.ndarray:
        """Transport *template* with *velocity* over ``t in [0, 1]``.

        Both arguments are global arrays; the computation runs on per-rank
        blocks and the gathered final state is returned (global, for easy
        comparison against the serial solver).  *cancel_token* (see
        :mod:`repro.runtime.cancellation`) is polled between time steps.
        """
        template = np.asarray(template, dtype=self.grid.dtype)
        if template.shape != self.grid.shape:
            raise ValueError(
                f"template has shape {template.shape}, expected {self.grid.shape}"
            )
        stepper = DistributedSemiLagrangian(
            self.grid, self.decomposition, velocity, self.dt, self.comm
        )
        blocks = self.decomposition.scatter(template)
        for _ in range(self.num_time_steps):
            check_cancelled(cancel_token, "transport solve")
            blocks = stepper.step(blocks)
        return self.decomposition.gather(blocks)

    def solve_state_many(
        self,
        velocity: np.ndarray,
        templates: np.ndarray,
        cancel_token: Optional[object] = None,
    ) -> np.ndarray:
        """Transport a ``(B, N1, N2, N3)`` stack of templates together.

        All ``B`` state equations share one stepper (one plan setup) and —
        per time step — one batched ghost exchange and one value return,
        so the latency-bound communication is paid once per step instead of
        once per field per step.  Results are bitwise identical to ``B``
        separate :meth:`solve_state` calls with the same velocity.
        """
        templates = np.asarray(templates, dtype=self.grid.dtype)
        if templates.ndim != 4 or templates.shape[1:] != self.grid.shape:
            raise ValueError(
                f"templates must be stacked as (B, {self.grid.shape}), "
                f"got shape {templates.shape}"
            )
        deco = self.decomposition
        stepper = DistributedSemiLagrangian(
            self.grid, deco, velocity, self.dt, self.comm
        )
        per_field_blocks = [deco.scatter(field) for field in templates]
        stacks = [
            np.stack([blocks[rank] for blocks in per_field_blocks], axis=0)
            for rank in range(deco.num_tasks)
        ]
        for _ in range(self.num_time_steps):
            check_cancelled(cancel_token, "transport solve")
            stacks = stepper.step_many(stacks)
        return np.stack(
            [
                self.decomposition.gather([stack[b] for stack in stacks])
                for b in range(templates.shape[0])
            ],
            axis=0,
        )
