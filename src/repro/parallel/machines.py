"""Machine models for the systems used in the paper's evaluation.

The paper runs on two TACC systems (Sec. IV-A2):

* **Maverick** — dual ten-core Intel Xeon E5-2680 v2 (Ivy Bridge) at
  2.8 GHz, 12.8 GB/core; the scalability runs use 16 tasks per node
  (Table I) or 2 tasks per node (Table III) and an FDR InfiniBand fabric.
* **Stampede** — dual eight-core Xeon E5-2680 v1 (Sandy Bridge), 32 GB per
  node, FDR InfiniBand; the large-scale runs use 2 tasks per node
  (Table II).

The :class:`MachineSpec` captures the handful of parameters the paper's own
complexity model needs (latency ``t_s``, reciprocal bandwidth ``t_w``,
sustained per-task flop rate, and memory bandwidth per task), plus empirical
efficiency factors for the two dominant kernels.  The absolute values are
order-of-magnitude estimates for 2013-era Xeon nodes with FDR InfiniBand —
the reproduction targets the *shape* of the scaling tables, not the absolute
seconds (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class MachineSpec:
    """Analytic machine description used by the performance model.

    Parameters
    ----------
    name:
        Human-readable system name.
    cores_per_node:
        Physical cores per node.
    tasks_per_node:
        MPI tasks per node used in the corresponding experiment.
    flops_per_task:
        Sustained floating-point rate of one task [flop/s] on the
        memory-bound kernels of this application (well below peak).
    memory_bandwidth_per_task:
        Sustained memory bandwidth per task [bytes/s]; the tricubic
        interpolation is memory bound (the paper estimates a computation to
        memory-traffic ratio of O(1)).
    latency:
        Effective per-message overhead ``t_s`` [s] of the collective
        exchanges (hardware latency plus the software/synchronization
        overhead of an all-to-all across nodes; this is why it is much
        larger than the ~1 microsecond wire latency).
    inverse_bandwidth:
        Reciprocal network bandwidth ``t_w`` [s per byte] per task.
    fft_efficiency:
        Fraction of ``flops_per_task`` sustained by the 1-D FFT kernels.
    interp_efficiency:
        Fraction of ``flops_per_task`` sustained by the interpolation kernel
        (lower: irregular gather-dominated access pattern).
    """

    name: str
    cores_per_node: int
    tasks_per_node: int
    flops_per_task: float
    memory_bandwidth_per_task: float
    latency: float
    inverse_bandwidth: float
    fft_efficiency: float = 0.5
    interp_efficiency: float = 0.12

    def __post_init__(self) -> None:
        check_positive(self.flops_per_task, "flops_per_task")
        check_positive(self.memory_bandwidth_per_task, "memory_bandwidth_per_task")
        check_positive(self.latency, "latency")
        check_positive(self.inverse_bandwidth, "inverse_bandwidth")

    def nodes_for_tasks(self, num_tasks: int) -> int:
        """Number of nodes needed to host *num_tasks* tasks."""
        return max(1, -(-num_tasks // self.tasks_per_node))


#: TACC Maverick, 16 tasks/node configuration (Tables I and IV).
MAVERICK = MachineSpec(
    name="maverick",
    cores_per_node=20,
    tasks_per_node=16,
    flops_per_task=4.0e9,
    memory_bandwidth_per_task=4.0e9,
    latency=5.0e-5,
    inverse_bandwidth=1.0 / 3.0e9,
    fft_efficiency=0.20,
    interp_efficiency=0.25,
)

#: TACC Maverick, 2 tasks/node configuration (Table III, incompressible runs).
MAVERICK_2TPN = MachineSpec(
    name="maverick-2tpn",
    cores_per_node=20,
    tasks_per_node=2,
    flops_per_task=8.0e9,
    memory_bandwidth_per_task=2.0e10,
    latency=5.0e-5,
    inverse_bandwidth=1.0 / 5.0e9,
    fft_efficiency=0.20,
    interp_efficiency=0.25,
)

#: TACC Stampede, 2 tasks/node configuration (Table II).
STAMPEDE = MachineSpec(
    name="stampede",
    cores_per_node=16,
    tasks_per_node=2,
    flops_per_task=7.0e9,
    memory_bandwidth_per_task=1.8e10,
    latency=5.0e-5,
    inverse_bandwidth=1.0 / 5.0e9,
    fft_efficiency=0.20,
    interp_efficiency=0.25,
)

_MACHINES = {
    "maverick": MAVERICK,
    "maverick-2tpn": MAVERICK_2TPN,
    "stampede": STAMPEDE,
}


def get_machine(name: str) -> MachineSpec:
    """Look a machine model up by name."""
    try:
        return _MACHINES[name.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown machine {name!r}; expected one of {sorted(_MACHINES)}"
        ) from exc
