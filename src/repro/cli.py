"""Command-line interface.

Three subcommands are provided so the solver can be driven without writing
Python:

``repro-register register``
    Register a template onto a reference image.  Inputs are either an
    ``.npz`` problem file (as written by :func:`repro.data.io.save_problem`,
    i.e. arrays ``reference`` and ``template``), or one of the built-in
    problems (``--synthetic N``, ``--brain N``) used throughout the paper's
    evaluation.  The resulting velocity, deformed template and determinant
    map are written to an ``.npz`` file.

``repro-register scaling``
    Print one of the paper's scaling tables (I-IV) next to the projection of
    the calibrated performance model, or a custom configuration
    (``--grid N --tasks p --machine maverick``).

``repro-register serve`` (also installed as ``repro-serve``)
    Run an atlas (population) workload through the registration service:
    every subject image is queued as a job, a worker pool executes the
    solves sharing the process-wide plan pool, and per-job JSON artifacts
    can be journaled with ``--artifacts-dir``.  With ``--http PORT`` (or
    ``$REPRO_HTTP_PORT``) the command instead runs a long-lived service
    exposing the stdlib HTTP front (``POST /jobs``, ``GET /jobs/<id>``,
    ``DELETE /jobs/<id>``, ``GET /stats``); with ``--journal DIR`` (or
    ``$REPRO_SERVICE_JOURNAL``) every submission is crash-safe — a killed
    service re-queues its unfinished jobs on restart.

Execution knobs (``--fft-backend``, ``--plan-layout``, ``--workers``, ...)
are shared by ``register`` and ``serve``; internally they are layered onto
a :class:`repro.config.RegistrationConfig` (flags beat config fields beat
``REPRO_*`` environment variables beat built-in defaults).

Examples
--------
::

    repro-register register --synthetic 32 --beta 1e-2 --output result.npz
    repro-register register --input pair.npz --incompressible --output result.npz
    repro-register scaling --table I
    repro-register scaling --grid 256 --tasks 512 --machine stampede
    repro-serve --synthetic 16 --subjects 4 --max-batch 4 --output atlas.npz
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

import numpy as np

from repro.analysis.experiments import reproduce_scaling_table
from repro.analysis.reporting import format_breakdown_table, format_rows
from repro.config import RegistrationConfig, env_http_port
from repro.core.gradients import gradient_cache_decision_log
from repro.core.optim.gauss_newton import SolverOptions
from repro.core.registration import RegistrationSolver
from repro.data.brain import brain_registration_pair
from repro.data.io import load_problem, memmap_npz_member, open_problem
from repro.data.synthetic import synthetic_population, synthetic_registration_problem
from repro.observability import (
    env_trace_out,
    format_phase_table,
    tracing_enabled,
    write_chrome_trace,
)
from repro.parallel.machines import get_machine
from repro.parallel.performance import RegistrationCostModel
from repro.runtime import get_plan_pool, layout_decision_log
from repro.spectral.backends import (
    BackendUnavailableError,
    available_backends,
    registered_backends,
)
from repro.transport.kernels import (
    PLAN_LAYOUT_CHOICES,
    available_backends as available_interp_backends,
    registered_backends as registered_interp_backends,
)
from repro.transport.sources import FIELD_SOURCE_MODES, default_field_source
from repro.utils.logging import set_verbosity


def _add_config_flags(sub: argparse.ArgumentParser) -> None:
    """Execution-configuration flags shared by ``register`` and ``serve``.

    Each flag maps onto one :class:`repro.config.RegistrationConfig` field
    (see :func:`_config_from_args`); leaving a flag unset defers to the
    config/environment defaults.
    """
    sub.add_argument(
        "--fft-backend",
        choices=registered_backends(),
        default=None,
        help=(
            "FFT engine for the spectral kernels (default: $REPRO_FFT_BACKEND "
            f"or 'numpy'; available here: {', '.join(available_backends())})"
        ),
    )
    sub.add_argument(
        "--interp-backend",
        choices=registered_interp_backends(),
        default=None,
        help=(
            "gather engine for the semi-Lagrangian interpolation (default: "
            "$REPRO_INTERP_BACKEND or 'scipy'; available here: "
            f"{', '.join(available_interp_backends())})"
        ),
    )
    sub.add_argument(
        "--plan-layout",
        choices=PLAN_LAYOUT_CHOICES,
        default=None,
        help=(
            "stencil-plan storage layout: 'auto' (budget-aware: streaming "
            "when a plan's projected lean bytes exceed a fraction of the "
            "pool budget, lean otherwise), 'lean' (36 B/point), 'fat' "
            "(192 B/point), or 'streaming' (chunk-resident, for out-of-core "
            "grids; default: $REPRO_PLAN_LAYOUT or 'auto'); all layouts are "
            "bitwise identical"
        ),
    )
    sub.add_argument(
        "--plan-pool-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help=(
            "memory budget of the shared execution-plan pool (default: "
            "$REPRO_PLAN_POOL_BYTES or 512 MiB; 0 disables plan caching)"
        ),
    )
    sub.add_argument(
        "--auto-fraction",
        type=float,
        default=None,
        metavar="F",
        help=(
            "threshold fraction of the budget-aware 'auto' plan layout "
            "(default: $REPRO_PLAN_AUTO_FRACTION or 0.5)"
        ),
    )
    sub.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "shared worker count for threaded kernels (default: $REPRO_WORKERS; "
            "per-subsystem $REPRO_FFT_WORKERS / $REPRO_INTERP_WORKERS / "
            "$REPRO_SERVICE_WORKERS / $REPRO_IO_WORKERS override it)"
        ),
    )
    sub.add_argument(
        "--field-source",
        choices=FIELD_SOURCE_MODES,
        default=None,
        help=(
            "field-source mode: 'resident' gathers in-memory stacks, "
            "'memmap' runs every gather through a memory-mapped on-disk "
            "source with overlapped tile prefetch (bitwise identical; "
            "default: $REPRO_FIELD_SOURCE or 'resident')"
        ),
    )
    sub.add_argument(
        "--trace",
        action="store_true",
        default=None,
        help=(
            "record structured tracing spans for every solver/runtime phase "
            "(default: $REPRO_TRACE; results are bitwise unchanged)"
        ),
    )
    sub.add_argument(
        "--trace-out",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "write the recorded spans as Chrome trace-event JSON to PATH "
            "(loadable in Perfetto / chrome://tracing; implies --trace; "
            "default: $REPRO_TRACE_OUT)"
        ),
    )


def _config_from_args(
    args: argparse.Namespace, base: Optional[RegistrationConfig] = None
) -> RegistrationConfig:
    """Layer the CLI's configuration flags over *base* (flags win)."""
    base = base if base is not None else RegistrationConfig()
    overrides = {
        "fft_backend": args.fft_backend,
        "interp_backend": args.interp_backend,
        "plan_layout": args.plan_layout,
        "plan_pool_bytes": args.plan_pool_bytes,
        "auto_fraction": args.auto_fraction,
        "workers": args.workers,
        "field_source": args.field_source,
        "trace": args.trace,
        "trace_out": args.trace_out,
    }
    return base.replace(**{name: value for name, value in overrides.items() if value is not None})


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-register",
        description="Large-deformation diffeomorphic 3D image registration (SC16 reproduction)",
    )
    parser.add_argument("--verbose", action="store_true", help="print per-iteration progress")
    subparsers = parser.add_subparsers(dest="command", required=True)

    reg = subparsers.add_parser("register", help="run a registration")
    source = reg.add_mutually_exclusive_group(required=True)
    source.add_argument("--input", type=str, help=".npz file with 'reference' and 'template'")
    source.add_argument(
        "--synthetic", type=int, metavar="N", help="use the paper's synthetic problem at N^3"
    )
    source.add_argument(
        "--brain", type=int, metavar="N", help="use the brain-phantom pair at base resolution N"
    )
    reg.add_argument("--output", type=str, default=None, help="output .npz path")
    reg.add_argument("--beta", type=float, default=1e-2, help="regularization weight")
    reg.add_argument(
        "--regularization", choices=("h1", "h2", "h3"), default="h1", help="Sobolev seminorm"
    )
    reg.add_argument("--incompressible", action="store_true", help="enforce div v = 0")
    reg.add_argument("--nt", type=int, default=4, help="semi-Lagrangian time steps")
    reg.add_argument("--gtol", type=float, default=1e-2, help="relative gradient tolerance")
    reg.add_argument("--max-newton", type=int, default=20, help="maximum Newton iterations")
    reg.add_argument("--max-krylov", type=int, default=50, help="maximum PCG iterations per step")
    reg.add_argument(
        "--optimizer",
        choices=("gauss_newton", "gradient_descent"),
        default="gauss_newton",
        help="outer optimizer",
    )
    _add_config_flags(reg)

    serve = subparsers.add_parser(
        "serve",
        help="run an atlas (population) workload through the job service",
        description=(
            "Queue one registration job per subject image against a fixed "
            "atlas/reference, execute them on a worker pool sharing the "
            "process-wide plan pool, and report population-level results "
            "plus service statistics."
        ),
    )
    # SUPPRESS: only set when present, so the top-level --verbose survives
    serve.add_argument(
        "--verbose",
        action="store_true",
        default=argparse.SUPPRESS,
        help="print per-iteration progress",
    )
    # not required: --http mode serves submissions instead of a population
    serve_source = serve.add_mutually_exclusive_group(required=False)
    serve_source.add_argument(
        "--input",
        type=str,
        default=None,
        help=".npz file with 'reference' (N1,N2,N3) and 'subjects' (K,N1,N2,N3)",
    )
    serve_source.add_argument(
        "--synthetic",
        type=int,
        default=None,
        metavar="N",
        help="use a synthetic population at N^3 (see --subjects)",
    )
    serve.add_argument(
        "--subjects", type=int, default=4, metavar="K", help="synthetic population size"
    )
    serve.add_argument("--output", type=str, default=None, help="output .npz path")
    serve.add_argument("--beta", type=float, default=1e-2, help="regularization weight")
    serve.add_argument(
        "--regularization", choices=("h1", "h2", "h3"), default="h1", help="Sobolev seminorm"
    )
    serve.add_argument("--incompressible", action="store_true", help="enforce div v = 0")
    serve.add_argument("--nt", type=int, default=4, help="semi-Lagrangian time steps")
    serve.add_argument("--gtol", type=float, default=1e-2, help="relative gradient tolerance")
    serve.add_argument("--max-newton", type=int, default=20, help="maximum Newton iterations")
    serve.add_argument(
        "--max-krylov", type=int, default=50, help="maximum PCG iterations per step"
    )
    serve.add_argument(
        "--num-workers",
        type=int,
        default=None,
        metavar="N",
        help="service worker threads (default: $REPRO_SERVICE_WORKERS or one per core)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=4,
        metavar="B",
        help="micro-batch size cap for compatible transport jobs (1 disables batching)",
    )
    serve.add_argument(
        "--artifacts-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="journal every finished job to DIR/job-<id>.json",
    )
    serve.add_argument(
        "--journal",
        type=str,
        default=None,
        metavar="DIR",
        help=(
            "durable job journal directory (default: $REPRO_SERVICE_JOURNAL); "
            "submissions are fsync'd before they are acknowledged and a "
            "restarted service re-queues unfinished jobs"
        ),
    )
    serve.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve submissions over HTTP on PORT instead of running an atlas "
            "workload (default: $REPRO_HTTP_PORT; 0 binds any free port)"
        ),
    )
    serve.add_argument(
        "--http-host",
        type=str,
        default="127.0.0.1",
        metavar="HOST",
        help="bind address of the HTTP front (default: 127.0.0.1)",
    )
    _add_config_flags(serve)

    scal = subparsers.add_parser("scaling", help="print paper-vs-model scaling tables")
    scal.add_argument("--table", choices=("I", "II", "III", "IV"), default=None)
    scal.add_argument("--grid", type=int, default=None, help="grid points per dimension")
    scal.add_argument("--tasks", type=int, default=None, help="number of MPI tasks")
    scal.add_argument(
        "--machine",
        choices=("maverick", "maverick-2tpn", "stampede"),
        default="maverick",
    )
    scal.add_argument("--matvecs", type=int, default=2, help="Hessian mat-vecs to assume")
    scal.add_argument("--newton", type=int, default=2, help="Newton iterations to assume")
    return parser


def _export_trace(config: RegistrationConfig) -> Optional[str]:
    """Write the Chrome trace file when tracing is on and a path is set."""
    if not tracing_enabled():
        return None
    path = config.trace_out if config.trace_out is not None else env_trace_out()
    if not path:
        return None
    write_chrome_trace(path)
    return path


def _load_pair(args: argparse.Namespace):
    if args.input:
        if default_field_source() == "memmap":
            # out-of-core mode: map the volumes in place (uncompressed .npz
            # only) instead of materializing them; compressed archives fall
            # back to resident loading (the gathers themselves still run
            # through memory-mapped spools under this mode)
            try:
                data = open_problem(args.input, mmap=True)
            except ValueError as exc:
                print(f"warning: {exc}; loading resident instead", file=sys.stderr)
                data = load_problem(args.input)
        else:
            data = load_problem(args.input)
        return data["reference"], data["template"], data["grid"]
    if args.synthetic:
        problem = synthetic_registration_problem(
            args.synthetic, incompressible=args.incompressible
        )
        return problem.reference, problem.template, problem.grid
    pair = brain_registration_pair(base_resolution=args.brain)
    return pair.reference, pair.template, pair.grid


def _run_register(
    args: argparse.Namespace, base_config: Optional[RegistrationConfig] = None
) -> int:
    try:
        # construct, validate and apply every knob (flag or environment)
        # early, for a clean error message before any data is loaded
        config = _config_from_args(args, base_config).apply()
    except (BackendUnavailableError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    reference, template, grid = _load_pair(args)
    options = SolverOptions(
        gradient_tolerance=args.gtol,
        max_newton_iterations=args.max_newton,
        max_krylov_iterations=args.max_krylov,
        verbose=args.verbose,
    )
    solver = RegistrationSolver(
        beta=args.beta,
        regularization=args.regularization,
        incompressible=args.incompressible,
        num_time_steps=args.nt,
        optimizer=args.optimizer,
        options=options,
        config=config,
    )
    result = solver.run(template, reference, grid=grid)
    print(format_rows([result.summary()], title="Registration summary"))
    if args.verbose:
        # the same versioned document the service journals per job
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        pool = get_plan_pool()
        stats = pool.stats
        print(
            f"plan pool: {stats.hits} hits, {stats.misses} misses, "
            f"{stats.evictions} evictions, {stats.current_bytes} bytes resident "
            f"(peak {stats.peak_bytes})"
        )
        for tag, tag_stats in pool.stats_by_tag().items():
            print(
                f"  {tag}: {tag_stats.hits} hits, {tag_stats.misses} misses, "
                f"{tag_stats.entries} entries, {tag_stats.current_bytes} bytes"
            )
        if result.field_sources is not None:
            sources = result.field_sources
            print(
                f"field sources: {sources.loads} tile loads "
                f"({sources.planes_loaded} planes, {sources.bytes_loaded} bytes, "
                f"peak tile {sources.peak_tile_bytes} bytes), "
                f"tile cache {sources.tile_cache_hits} hits / "
                f"{sources.tile_cache_misses} misses, "
                f"prefetch {sources.prefetch_issued} issued / "
                f"{sources.prefetch_hits} hits"
            )
        decisions = layout_decision_log()
        if decisions.total:
            counts = ", ".join(
                f"{layout}: {count}" for layout, count in decisions.counts().items()
            )
            print(f"auto plan layout: {decisions.total} decisions ({counts})")
            last = decisions.recent()[-1]
            print(
                f"  last: {last.layout} for {last.num_points} points "
                f"({last.reason})"
            )
        cache_decisions = gradient_cache_decision_log()
        if cache_decisions.total:
            counts = ", ".join(
                f"{mode}: {count}"
                for mode, count in cache_decisions.counts().items()
            )
            print(
                f"gradient cache: {cache_decisions.total} decisions ({counts})"
            )
            last = cache_decisions.recent()[-1]
            print(
                f"  last: {last.mode} for {last.num_levels} levels "
                f"({last.reason})"
            )
        phase_table = format_phase_table()
        if phase_table:
            print("phase timings (traced spans):")
            print(phase_table)
    trace_path = _export_trace(config)
    if trace_path:
        print(f"trace written to {trace_path}")
    if args.output:
        np.savez_compressed(
            args.output,
            velocity=result.velocity,
            deformed_template=result.deformed_template,
            determinant=result.deformation.determinant(),
            residual_before=result.residual_before,
            residual_after=result.residual_after,
        )
        print(f"result written to {args.output}")
    return 0 if result.relative_residual < 1.0 else 1


def _load_population(args: argparse.Namespace):
    if args.input:
        with np.load(args.input) as data:
            if "reference" not in data or "subjects" not in data:
                raise ValueError(
                    f"{args.input} must contain 'reference' (N1,N2,N3) and "
                    "'subjects' (K,N1,N2,N3) arrays"
                )
            if default_field_source() != "memmap":
                return np.asarray(data["reference"]), list(np.asarray(data["subjects"]))
        # out-of-core mode: map both members in place — the K subject
        # volumes are row views of one mapping, paged in as each job runs
        reference = memmap_npz_member(args.input, "reference")
        subjects = memmap_npz_member(args.input, "subjects")
        return reference, [subjects[k] for k in range(subjects.shape[0])]
    population = synthetic_population(
        args.synthetic,
        num_subjects=args.subjects,
        num_time_steps=args.nt,
        incompressible=args.incompressible,
    )
    return population.atlas, population.subjects


def _run_http_service(
    args: argparse.Namespace, config: RegistrationConfig, port: int
) -> int:
    """Long-lived server mode: submissions arrive over HTTP, not argv."""
    import threading

    from repro.service import RegistrationService
    from repro.service.http import serve_http

    with RegistrationService(
        config=config,
        num_workers=args.num_workers,
        max_batch=args.max_batch,
        artifacts_dir=args.artifacts_dir,
        journal_dir=args.journal,
    ) as service:
        if service.recovered_jobs:
            print(f"journal: re-queued {len(service.recovered_jobs)} unfinished job(s)")
        server = serve_http(service, port, host=args.http_host)
        print(f"service listening on http://{args.http_host}:{server.port}", flush=True)
        try:
            # serve_forever runs on the daemon thread; park this one
            threading.Event().wait()
        except KeyboardInterrupt:
            print("shutting down", file=sys.stderr)
        finally:
            server.shutdown()
    return 0


def _run_serve(
    args: argparse.Namespace, base_config: Optional[RegistrationConfig] = None
) -> int:
    # imported here: the service pulls in the whole parallel stack, which the
    # plain register/scaling paths never need
    from repro.service import RegistrationService, run_atlas

    try:
        http_port = args.http if args.http is not None else env_http_port()
        if http_port is not None and not 0 <= http_port <= 65535:
            raise ValueError(f"--http port must lie in [0, 65535], got {http_port}")
        config = _config_from_args(args, base_config).apply()
        if http_port is not None:
            if args.input is not None or args.synthetic is not None:
                raise ValueError("--http serves submissions; drop --input/--synthetic")
            return _run_http_service(args, config, http_port)
        if args.input is None and args.synthetic is None:
            raise ValueError("one of --input, --synthetic or --http is required")
        reference, subjects = _load_population(args)
    except (BackendUnavailableError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    options = SolverOptions(
        gradient_tolerance=args.gtol,
        max_newton_iterations=args.max_newton,
        max_krylov_iterations=args.max_krylov,
        verbose=args.verbose,
    )
    with RegistrationService(
        config=config,
        num_workers=args.num_workers,
        max_batch=args.max_batch,
        artifacts_dir=args.artifacts_dir,
        journal_dir=args.journal,
    ) as service:
        atlas = run_atlas(
            reference,
            subjects,
            service=service,
            raise_on_error=False,
            beta=args.beta,
            regularization=args.regularization,
            incompressible=args.incompressible,
            num_time_steps=args.nt,
            options=options,
        )
        stats = service.service_stats()
    print(format_rows([atlas.summary()], title="Atlas registration summary"))
    print(
        f"service: {stats['jobs_submitted']} jobs on {stats['num_workers']} workers, "
        f"{stats['batches_executed']} batches ({stats['batched_jobs']} jobs batched)"
    )
    pool = stats["plan_pool"]
    print(
        f"plan pool: {pool['hits']} hits, {pool['misses']} misses "
        f"(hit rate {stats['plan_pool_hit_rate']:.0%}), "
        f"{pool['current_bytes']} bytes resident"
    )
    for job in atlas.jobs:
        if job.record.error is not None:
            print(f"job {job.job_id} failed: {job.record.error}", file=sys.stderr)
    trace_path = _export_trace(config)
    if trace_path:
        print(f"trace written to {trace_path}")
    if args.artifacts_dir:
        print(f"per-job artifacts written to {args.artifacts_dir}")
    if args.output and atlas.mean_deformed is not None:
        np.savez_compressed(
            args.output,
            mean_deformed=atlas.mean_deformed,
            relative_residuals=np.array(
                [
                    result.relative_residual if result is not None else np.nan
                    for result in atlas.results
                ]
            ),
        )
        print(f"atlas estimate written to {args.output}")
    return 0 if atlas.num_failed == 0 else 1


def _run_scaling(args: argparse.Namespace) -> int:
    if args.table:
        entries = reproduce_scaling_table(
            args.table,
            num_newton_iterations=args.newton,
            num_hessian_matvecs=args.matvecs,
        )
        print(
            format_breakdown_table(
                entries, title=f"Table {args.table}: paper rows vs model projections"
            )
        )
        return 0
    if args.grid is None or args.tasks is None:
        print("either --table or both --grid and --tasks are required", file=sys.stderr)
        return 2
    model = RegistrationCostModel(
        grid_shape=(args.grid,) * 3,
        num_tasks=args.tasks,
        machine=get_machine(args.machine),
        num_newton_iterations=args.newton,
        num_hessian_matvecs=args.matvecs,
    )
    breakdown = model.breakdown().as_dict()
    breakdown.update({"grid": f"{args.grid}^3", "machine": args.machine})
    print(format_rows([breakdown], title="Modeled cost"))
    return 0


def main(
    argv: Optional[Sequence[str]] = None,
    config: Optional[RegistrationConfig] = None,
) -> int:
    """Entry point of the ``repro-register`` console script.

    *config* is an optional base :class:`repro.config.RegistrationConfig`
    for embedding callers; the command-line flags are layered on top of it
    (flags win field by field).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        set_verbosity("info")
    if args.command == "register":
        return _run_register(args, config)
    if args.command == "serve":
        return _run_serve(args, config)
    return _run_scaling(args)


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-serve`` console script (= ``serve``)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    return main(["serve", *argv])


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
