"""Out-of-core field sources: memmap loading, tile prefetch, tile caching.

PR 5's :class:`~repro.transport.kernels.FieldSource` seam made the gather
executor source-agnostic; this module supplies the sources that make it
genuinely out-of-core:

* :class:`MemmapFieldSource` — fields living in ``.npy``/``.npz`` files
  (the formats :mod:`repro.data.io` writes), memory-mapped so opening a
  512^3 volume costs nothing and each executor chunk pages in only its
  plane tile;
* :class:`Hdf5FieldSource` — the same over an HDF5 dataset (optional
  ``h5py`` extra, cleanly gated);
* :class:`PrefetchingFieldSource` — overlapped I/O: the stencil plan fully
  determines the tile schedule ahead of execution
  (:func:`~repro.transport.kernels.chunk_plane_schedule`), so while chunk
  ``k`` gathers, chunk ``k+1``'s tile loads on the dedicated ``io`` worker
  pool (``REPRO_IO_WORKERS``), hiding disk latency inside the tap loop;
* :class:`TileCachingFieldSource` — an LRU of recent plane tiles accounted
  through the plan pool under the ``field-tile`` tag, so tile bytes
  compete with plan bytes under the one ``REPRO_PLAN_POOL_BYTES`` budget
  and warm re-gathers (line-search trials, Hessian matvecs over the same
  fields) hit memory instead of disk.

The executor composes the wrappers automatically
(:func:`plan_scoped_source`): any disk-backed source handed to
``execute_stencil_plan`` — and therefore to every frontend above it —
gathers prefetched and cached, bitwise identical to the resident path.

``REPRO_FIELD_SOURCE`` (or ``--field-source`` / ``RegistrationConfig``)
selects the process-wide mode: ``resident`` (default) keeps ndarray
stacks in memory; ``memmap`` forces every frontend gather through a
disk-backed source (:class:`SpooledMemmapFieldSource`) — the CI leg that
proves the out-of-core pipeline runs the whole suite bit-for-bit.
"""

from __future__ import annotations

import os
import tempfile
import threading
from concurrent.futures import Future
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.data.io import memmap_npz_member
from repro.observability.trace import trace_span
from repro.runtime.plan_pool import get_plan_pool
from repro.runtime.workers import get_subsystem_executor
from repro.spectral.backends import BackendUnavailableError
from repro.transport.kernels import (
    FieldSource,
    FieldSourceBase,
    chunk_plane_schedule,
    field_source_log,
    is_field_source,
)

__all__ = [
    "FIELD_SOURCE_ENV_VAR",
    "FIELD_SOURCE_MODES",
    "DEFAULT_FIELD_SOURCE",
    "default_field_source",
    "set_default_field_source",
    "MemmapFieldSource",
    "Hdf5FieldSource",
    "SpooledMemmapFieldSource",
    "PrefetchingFieldSource",
    "TileCachingFieldSource",
    "plan_scoped_source",
]

#: Environment variable selecting the process-wide field-source mode.
FIELD_SOURCE_ENV_VAR = "REPRO_FIELD_SOURCE"

#: Valid modes: ``resident`` gathers ndarray stacks in memory (the classic
#: path); ``memmap`` spools every frontend stack to a temporary ``.npy``
#: and gathers it memory-mapped (bitwise identical — float64 round-trips
#: ``.npy`` exactly — so the whole test tier can run out-of-core).
FIELD_SOURCE_MODES = ("resident", "memmap")

DEFAULT_FIELD_SOURCE = "resident"

_process_field_source: Optional[str] = None


def set_default_field_source(mode: Optional[str]) -> None:
    """Set the process-wide field-source mode (``None`` clears the override).

    The programmatic twin of ``REPRO_FIELD_SOURCE`` used by the CLI
    ``--field-source`` flag and :class:`repro.config.RegistrationConfig`;
    the environment itself is never mutated.
    """
    global _process_field_source
    if mode is None:
        _process_field_source = None
        return
    mode = str(mode).lower()
    if mode not in FIELD_SOURCE_MODES:
        raise ValueError(
            f"unknown field-source mode {mode!r}; valid modes: {FIELD_SOURCE_MODES}"
        )
    _process_field_source = mode


def default_field_source() -> str:
    """Active field-source mode.

    Resolution order: process-wide override (:func:`set_default_field_source`),
    then ``REPRO_FIELD_SOURCE``, then ``resident``.
    """
    if _process_field_source is not None:
        return _process_field_source
    value = os.environ.get(FIELD_SOURCE_ENV_VAR, "").strip().lower()
    if not value:
        return DEFAULT_FIELD_SOURCE
    if value not in FIELD_SOURCE_MODES:
        raise ValueError(
            f"{FIELD_SOURCE_ENV_VAR} must be one of {FIELD_SOURCE_MODES}, got {value!r}"
        )
    return value


# --------------------------------------------------------------------------- #
# disk-backed leaf sources
# --------------------------------------------------------------------------- #
def _file_identity(path: "str | Path", *extra) -> Tuple:
    """Content identity of a file for tile-cache keys.

    ``(path, mtime_ns, size)`` — stable across re-opens of the same file,
    so a solver that re-opens a volume (line search, Hessian matvecs) warms
    the same cache entries, and invalidated the moment the file changes.
    """
    path = Path(path)
    stat = path.stat()
    return ("file", str(path.resolve()), stat.st_mtime_ns, stat.st_size, *extra)


class MemmapFieldSource(FieldSourceBase):
    """Memory-mapped :class:`FieldSource` over ``.npy``/``.npz`` files.

    Wraps a read-only memmap (or any array-like kept out of core by its
    owner) of shape ``(B, N1, N2, N3)`` — a single ``(N1, N2, N3)`` volume
    is promoted to a one-field batch.  ``load_planes`` materializes exactly
    the requested plane tile as a float64 copy (the resident executor's
    upcast), so only tile-sized slices of the file are ever paged in and
    tiled gathers stay bitwise identical to resident ones.

    Build from the files :mod:`repro.data.io` writes with :meth:`from_npy`
    / :meth:`from_npz` (uncompressed archives only — see
    ``save_problem(..., compress=False)``); those carry a file-content
    :attr:`fingerprint`, which lets the pool-budgeted tile cache recognize
    the same volume across re-opens.
    """

    #: Disk-backed: the executor wraps this source with prefetch (and,
    #: given a durable fingerprint, the tile cache) — see
    #: :func:`plan_scoped_source`.
    out_of_core = True

    def __init__(self, fields, fingerprint: Optional[Tuple] = None) -> None:
        super().__init__()
        fields = np.asanyarray(fields)
        if fields.ndim == 3:
            fields = fields[None]
        if fields.ndim != 4:
            raise ValueError(
                f"fields must be stacked as (B, N1, N2, N3) or a single "
                f"(N1, N2, N3) field, got shape {fields.shape}"
            )
        if fields.dtype.hasobject or fields.dtype.kind not in "fiu":
            raise ValueError(
                f"field stacks must have a real numeric dtype, got {fields.dtype}"
            )
        self._fields = fields
        self._file_fingerprint = tuple(fingerprint) if fingerprint is not None else None

    @classmethod
    def from_npy(cls, path: "str | Path") -> "MemmapFieldSource":
        """Open a ``.npy`` stack memory-mapped (``np.load(..., mmap_mode="r")``)."""
        path = Path(path)
        return cls(np.load(path, mmap_mode="r"), fingerprint=_file_identity(path))

    @classmethod
    def from_npz(cls, path: "str | Path", key: str) -> "MemmapFieldSource":
        """Map one member of an *uncompressed* ``.npz`` archive in place.

        Uses :func:`repro.data.io.memmap_npz_member`, so compressed members
        fail with a clear pointer at ``save_problem(..., compress=False)``.
        """
        return cls(
            memmap_npz_member(path, key), fingerprint=_file_identity(path, key)
        )

    @property
    def fingerprint(self) -> Tuple:
        if self._file_fingerprint is not None:
            return self._file_fingerprint
        return ("memory", self._memory_token)

    @property
    def has_durable_fingerprint(self) -> bool:
        """True when tiles of this source are worth caching across gathers."""
        return self._file_fingerprint is not None

    @property
    def shape(self) -> Tuple[int, int, int]:
        return self._fields.shape[1:]

    @property
    def num_fields(self) -> int:
        return self._fields.shape[0]

    def load_planes(self, planes: np.ndarray) -> np.ndarray:
        planes = np.asarray(planes)
        tile = np.ascontiguousarray(self._fields[:, planes], dtype=np.float64)
        self._record_load(len(planes), tile.nbytes)
        return tile

    def load_all(self) -> np.ndarray:
        return np.ascontiguousarray(self._fields, dtype=np.float64)


class SpooledMemmapFieldSource(MemmapFieldSource):
    """A resident stack spooled to a temporary ``.npy`` and re-opened mapped.

    The forcing device of ``REPRO_FIELD_SOURCE=memmap``: every frontend
    gather writes its stack once, drops the resident copy, and gathers
    through the disk path — float64 round-trips ``.npy`` bit for bit, so
    the entire test tier doubles as an out-of-core conformance sweep.  The
    temporary file is unlinked immediately (the mapping keeps the inode
    alive on POSIX), so spools can never accumulate.

    Each spool is single-use with a process-unique fingerprint, so
    :func:`plan_scoped_source` adds prefetch but skips the tile cache —
    caching tiles that can never be re-keyed would only evict useful plans.
    """

    def __init__(self, fields: np.ndarray) -> None:
        stack = np.ascontiguousarray(fields, dtype=np.float64)
        if stack.ndim == 3:
            stack = stack[None]
        handle, name = tempfile.mkstemp(suffix=".npy", prefix="repro-spool-")
        try:
            with os.fdopen(handle, "wb") as spool:
                np.save(spool, stack)
            mapped = np.load(name, mmap_mode="r")
        finally:
            os.unlink(name)
        super().__init__(mapped)


class Hdf5FieldSource(FieldSourceBase):
    """:class:`FieldSource` over an HDF5 dataset (optional ``h5py`` extra).

    Serves plane tiles straight from a ``(B, N1, N2, N3)`` or ``(N1, N2,
    N3)`` dataset without ever materializing it; chunked/compressed HDF5
    layouts work transparently (h5py decompresses per tile).  Raises
    :class:`~repro.spectral.backends.BackendUnavailableError` when h5py is
    not installed — the ``.npz`` path (:class:`MemmapFieldSource`) needs no
    optional dependency.
    """

    out_of_core = True

    def __init__(self, path: "str | Path", dataset: str = "fields") -> None:
        try:
            import h5py
        except ImportError as exc:  # pragma: no cover - exercised via monkeypatch
            raise BackendUnavailableError(
                "h5py is not installed; install the 'hdf5' extra to read HDF5 "
                "volumes, or use the dependency-free .npz path "
                "(MemmapFieldSource / save_problem(..., compress=False))"
            ) from exc
        super().__init__()
        path = Path(path)
        self._file = h5py.File(path, "r")
        try:
            data = self._file[dataset]
        except KeyError as exc:
            names = sorted(self._file.keys())
            self._file.close()
            raise KeyError(f"{path} has no dataset {dataset!r}; available: {names}") from exc
        if data.ndim not in (3, 4):
            self._file.close()
            raise ValueError(
                f"dataset {dataset!r} must be (B, N1, N2, N3) or (N1, N2, N3), "
                f"got shape {data.shape}"
            )
        self._data = data
        self._batched = data.ndim == 4
        self._file_fingerprint = _file_identity(path, dataset)

    @property
    def fingerprint(self) -> Tuple:
        return self._file_fingerprint

    @property
    def has_durable_fingerprint(self) -> bool:
        return True

    @property
    def shape(self) -> Tuple[int, int, int]:
        return tuple(self._data.shape[-3:])

    @property
    def num_fields(self) -> int:
        return self._data.shape[0] if self._batched else 1

    def load_planes(self, planes: np.ndarray) -> np.ndarray:
        selection = [int(p) for p in np.asarray(planes)]
        if self._batched:
            tile = self._data[:, selection]
        else:
            tile = self._data[selection][None]
        tile = np.ascontiguousarray(tile, dtype=np.float64)
        self._record_load(len(selection), tile.nbytes)
        return tile

    def load_all(self) -> np.ndarray:
        stack = self._data[()]
        if not self._batched:
            stack = stack[None]
        return np.ascontiguousarray(stack, dtype=np.float64)

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "Hdf5FieldSource":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# wrapper sources (prefetch / tile cache)
# --------------------------------------------------------------------------- #
class _DelegatingSource(FieldSourceBase):
    """Shared delegation of the wrapper sources (shape/identity pass through)."""

    def __init__(self, source: FieldSource) -> None:
        super().__init__()
        if not is_field_source(source):
            raise TypeError(
                f"expected a FieldSource to wrap, got {type(source).__name__}"
            )
        self._source = source

    @property
    def source(self) -> FieldSource:
        """The wrapped source."""
        return self._source

    @property
    def fingerprint(self) -> Tuple:
        inner = getattr(self._source, "fingerprint", None)
        if inner is not None:
            return inner
        return ("memory", self._memory_token)

    @property
    def has_durable_fingerprint(self) -> bool:
        return bool(getattr(self._source, "has_durable_fingerprint", False))

    @property
    def shape(self) -> Tuple[int, int, int]:
        return self._source.shape

    @property
    def num_fields(self) -> int:
        return self._source.num_fields

    def load_all(self) -> np.ndarray:
        return self._source.load_all()


class TileCachingFieldSource(_DelegatingSource):
    """Pool-budgeted LRU of plane tiles in front of any source.

    Tiles are cached in the process-wide plan pool under the ``field-tile``
    tag, keyed by ``(source fingerprint, plane tuple)``: tile bytes and
    plan bytes compete under the single ``REPRO_PLAN_POOL_BYTES`` budget
    (``stats_by_tag()`` keeps them separately visible), eviction is LRU
    across both kinds, and a zero budget disables caching entirely — every
    semantics the plan entries already have.  Because file-backed
    fingerprints are content identities, a solver that re-opens the same
    volume (line-search trials, Hessian matvecs) hits the warm tiles of the
    previous gather instead of the disk.

    Concurrent misses of one tile are single-flight (the pool's guarantee):
    exactly one thread loads from the wrapped source, the others wait and
    are counted as hits.
    """

    def __init__(self, source: FieldSource) -> None:
        super().__init__(source)
        self.tile_cache_hits = 0
        self.tile_cache_misses = 0

    def reset_stats(self) -> None:
        super().reset_stats()
        with self._stats_lock:
            self.tile_cache_hits = 0
            self.tile_cache_misses = 0

    def stats(self) -> Dict[str, int]:
        out = super().stats()
        with self._stats_lock:
            out["tile_cache_hits"] = self.tile_cache_hits
            out["tile_cache_misses"] = self.tile_cache_misses
        return out

    def load_planes(self, planes: np.ndarray) -> np.ndarray:
        planes = np.asarray(planes)
        key = ("field-tile", self.fingerprint, tuple(int(p) for p in planes))
        built = []

        def build() -> np.ndarray:
            built.append(True)
            return self._source.load_planes(planes)

        tile = get_plan_pool().get(key, build, nbytes=lambda t: int(t.nbytes))
        hit = not built
        with self._stats_lock:
            if hit:
                self.tile_cache_hits += 1
            else:
                self.tile_cache_misses += 1
        field_source_log().record_cache(hit)
        return tile


class PrefetchingFieldSource(_DelegatingSource):
    """Overlapped tile loading driven by the executor's chunk schedule.

    The stencil plan fully determines which planes each chunk touches
    (:func:`~repro.transport.kernels.chunk_plane_schedule`), so the whole
    tile schedule is known before the first gather.  While the executor
    gathers chunk ``k``, this wrapper has chunk ``k+1``'s ``load_planes``
    already running on the dedicated ``io`` worker pool
    (``REPRO_IO_WORKERS`` — :func:`~repro.runtime.workers.
    get_subsystem_executor`, deliberately *not* the width-shared executor
    the chunk tasks themselves run on, which a prefetch future would
    deadlock behind), hiding disk latency inside the tap loop.

    Pending futures are keyed by **schedule index**, not plane tuple —
    consecutive chunks of a narrow plane band legitimately request
    identical tuples.  Requests are matched to the next unconsumed schedule
    entry; out-of-order requests (the threaded executor completes chunks in
    any order) and unscheduled ones degrade gracefully to a synchronous
    load, never to a wrong tile.  The first request is a deliberate miss:
    issuing ahead only *after* a request arrives keeps a fully-warm tile
    cache above this wrapper from triggering a single disk read.

    Counters (all also aggregated in :func:`~repro.transport.kernels.
    field_source_log`): ``prefetch_issued`` / ``prefetch_hits`` /
    ``prefetch_misses``, and ``issued_ahead`` — loads submitted while a
    previous chunk was still being served, i.e. the instrumented proof that
    chunk ``k+1``'s I/O started before chunk ``k`` completed.
    """

    def __init__(
        self,
        source: FieldSource,
        schedule: Optional[Sequence] = None,
        *,
        plan=None,
        chunk: Optional[int] = None,
    ) -> None:
        super().__init__(source)
        if schedule is None:
            if plan is None:
                raise ValueError("PrefetchingFieldSource needs a schedule or a stencil plan")
            schedule = chunk_plane_schedule(source.shape, plan, chunk)
        self._schedule = tuple(self._normalize(entry) for entry in schedule)
        self._pending: Dict[int, Future] = {}
        self._consumed: set = set()
        self._cursor = 0
        self._schedule_lock = threading.Lock()
        self.prefetch_issued = 0
        self.prefetch_hits = 0
        self.prefetch_misses = 0
        self.issued_ahead = 0

    @staticmethod
    def _normalize(entry) -> Tuple[int, ...]:
        # accept chunk_plane_schedule entries ((lo, hi), planes) or bare
        # plane tuples
        if len(entry) == 2 and isinstance(entry[0], tuple) and len(entry[0]) == 2:
            entry = entry[1]
        return tuple(int(p) for p in entry)

    @property
    def schedule(self) -> Tuple[Tuple[int, ...], ...]:
        """The plane tuple expected for each executor chunk, in order."""
        return self._schedule

    def reset_stats(self) -> None:
        super().reset_stats()
        with self._stats_lock:
            self.prefetch_issued = 0
            self.prefetch_hits = 0
            self.prefetch_misses = 0
            self.issued_ahead = 0

    def stats(self) -> Dict[str, int]:
        out = super().stats()
        with self._stats_lock:
            out["prefetch_issued"] = self.prefetch_issued
            out["prefetch_hits"] = self.prefetch_hits
            out["prefetch_misses"] = self.prefetch_misses
            out["issued_ahead"] = self.issued_ahead
        return out

    def _claim(self, key: Tuple[int, ...]) -> Optional[int]:
        """Match a request to the next unconsumed schedule entry (locked)."""
        for pos in range(self._cursor, len(self._schedule)):
            if pos not in self._consumed and self._schedule[pos] == key:
                return pos
        for pos in range(self._cursor):
            if pos not in self._consumed and self._schedule[pos] == key:
                return pos
        return None

    def _issue(self, pos: int, ahead: bool) -> None:
        """Submit the load of schedule entry *pos* to the io pool (locked)."""
        if pos >= len(self._schedule) or pos in self._consumed or pos in self._pending:
            return
        planes = np.asarray(self._schedule[pos], dtype=np.intp)

        def load_traced() -> np.ndarray:
            # runs on the io pool: the span lands on the worker thread,
            # showing the read overlapping the gather in the trace
            with trace_span("tile.prefetch", planes=int(planes.size)):
                return self._source.load_planes(planes)

        self._pending[pos] = get_subsystem_executor("io").submit(load_traced)
        with self._stats_lock:
            self.prefetch_issued += 1
            if ahead:
                self.issued_ahead += 1
        field_source_log().record_prefetch(issued=1)

    def load_planes(self, planes: np.ndarray) -> np.ndarray:
        key = tuple(int(p) for p in np.asarray(planes))
        with self._schedule_lock:
            pos = self._claim(key)
            future = None
            if pos is not None:
                self._consumed.add(pos)
                self._cursor = max(self._cursor, pos + 1)
                future = self._pending.pop(pos, None)
                # overlap: chunk pos is about to gather — start chunk
                # pos+1's read now, before this request even returns
                self._issue(pos + 1, ahead=True)
        if future is not None:
            with trace_span("tile.load", planes=len(key), prefetch="hit"):
                tile = future.result()
            with self._stats_lock:
                self.prefetch_hits += 1
            field_source_log().record_prefetch(hits=1)
            return tile
        with trace_span("tile.load", planes=len(key), prefetch="miss"):
            tile = self._source.load_planes(np.asarray(key, dtype=np.intp))
        with self._stats_lock:
            self.prefetch_misses += 1
        field_source_log().record_prefetch(misses=1)
        return tile


# --------------------------------------------------------------------------- #
# executor-side composition
# --------------------------------------------------------------------------- #
def plan_scoped_source(
    source: FieldSource, plan, chunk: Optional[int] = None
) -> FieldSource:
    """Wrap a disk-backed source with the out-of-core pipeline for one plan.

    Called by the tiled executors on every gather: sources flagged
    ``out_of_core`` (memmap, HDF5, spooled) get an overlapped prefetcher
    keyed on this plan's chunk schedule, and — when their fingerprint is a
    durable file identity — the pool-budgeted tile cache on top, so warm
    re-gathers of the same volume skip the disk entirely.  Resident
    :class:`~repro.transport.kernels.ArrayFieldSource` stacks and already-
    wrapped sources pass through untouched, which keeps the in-memory path
    (and its pool accounting) exactly as before.
    """
    if not getattr(source, "out_of_core", False):
        return source
    schedule = chunk_plane_schedule(source.shape, plan, chunk)
    wrapped: FieldSource = PrefetchingFieldSource(source, schedule=schedule)
    if getattr(source, "has_durable_fingerprint", False):
        wrapped = TileCachingFieldSource(wrapped)
    return wrapped
