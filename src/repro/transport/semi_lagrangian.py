"""Semi-Lagrangian characteristic tracing and single-step update.

Implements the scheme of Sec. III-B2 (Eqs. 6 and 7 of the paper):

1. For every regular grid point ``x`` the departure point ``X`` is found with
   a two-stage (RK2 / explicit midpoint) backward trace::

       X* = x - dt * v(x)
       X  = x - dt/2 * (v(x) + v(X*))

   ``v(X*)`` is interpolated because ``X*`` is off the grid.

2. The transported scalar ``nu`` with source ``f`` is then updated with the
   Heun (explicit trapezoidal) rule along the characteristic::

       nu0(X)       = interp(nu(., 0), X)
       f0(X)        = interp(f(., 0), X)
       nu*(x)       = nu0(X) + dt * f0(X)
       f*(x)        = f evaluated at the new time on the grid
       nu(x, dt)    = nu0(X) + dt/2 * (f0(X) + f*(x))

   For a pure advection (``f = 0``) this collapses to one interpolation.

The departure points depend only on the (stationary) velocity and the time
step, so they are computed once per velocity and re-used for every time step
and every transported field — the "interpolation planner"/scatter phase of
Sec. III-C2.  The stepper goes one step further and caches the full
**gather plan** (base indices + per-axis kernel weights, see
:mod:`repro.transport.kernels`) for its departure points, so repeated steps
never re-derive the interpolation stencil; fields that are interpolated
together (the transported quantity and its source, the three velocity
components of the RK2 trace) move through one batched gather pass.  The
same machinery handles the adjoint equations after the time reversal
``tau = 1 - t`` by passing ``-v``.

Since PR 3 the departure points and their gather plan live in the shared
**plan pool** (:mod:`repro.runtime.plan_pool`), keyed by the *content* of
``(grid, velocity, dt, kernel, backend)``: any stepper built for a velocity
the pool has already planned — the line-search trial that the next
``linearize`` revisits, a ``beta``-continuation warm start, the deformation
map of a just-solved registration — reuses the warm plan instead of
re-tracing and re-planning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.runtime.plan_pool import array_fingerprint, get_plan_pool
from repro.spectral.grid import Grid
from repro.transport.interpolation import PeriodicInterpolator
from repro.transport.kernels import (
    FieldSource,
    GatherPlan,
    is_field_source,
    plan_layout_cache_token,
)
from repro.utils.validation import check_velocity_shape


def compute_departure_points(
    grid: Grid,
    velocity: np.ndarray,
    dt: float,
    interpolator: Optional[PeriodicInterpolator] = None,
) -> np.ndarray:
    """Backward-traced departure points ``X`` for every grid point (Eq. 6).

    Parameters
    ----------
    grid:
        Regular grid whose nodes are the arrival points ``x``.
    velocity:
        Stationary velocity field ``v`` stacked as ``(3, N1, N2, N3)``.
    dt:
        Time-step size.
    interpolator:
        Interpolator used for ``v(X*)``; a tricubic B-spline interpolator is
        created if not supplied.

    Returns
    -------
    numpy.ndarray
        Departure coordinates of shape ``(3, N1, N2, N3)``.  They are *not*
        wrapped into the periodic box; the interpolators wrap internally.
    """
    velocity = check_velocity_shape(velocity, grid.shape)
    if dt < 0:
        raise ValueError(f"dt must be non-negative, got {dt}")
    interpolator = interpolator or PeriodicInterpolator(grid)
    x = grid.coordinate_stack()
    x_star = x - dt * velocity
    v_at_star = interpolator.interpolate_vector(velocity, x_star)
    return x - 0.5 * dt * (velocity + v_at_star)


@dataclass
class DeparturePlanData:
    """Pooled per-velocity planning data: departure points + gather plan.

    The unit the plan pool stores and accounts for: the backward-traced
    departure points of one ``(velocity, dt)`` pair and the gather plan
    (wrapped coordinates + cached stencil) of one interpolation kernel /
    backend at those points.
    """

    points: np.ndarray
    plan: GatherPlan

    @property
    def nbytes(self) -> int:
        """Exact array payload in bytes (plan-pool accounting)."""
        return self.points.nbytes + self.plan.nbytes


@dataclass
class SemiLagrangianStepper:
    """One semi-Lagrangian time step for a scalar transport equation.

    The stepper is bound to a fixed velocity and time step; the departure
    points are computed once at construction (the paper's "scatter"/planning
    phase) and shared by every call to :meth:`step`.

    Parameters
    ----------
    grid:
        Computational grid.
    velocity:
        Stationary velocity of the transport equation
        ``d nu/dt + velocity . grad nu = f``.
    dt:
        Time-step size.
    interpolator:
        Off-grid interpolation kernel (tricubic by default).
    departure_points, departure_plan:
        Precomputed planning data (both must be given together); when
        omitted the stepper fetches them from the shared plan pool —
        building them only if no prior stepper planned the same
        ``(grid, velocity, dt, kernel, backend)`` content.
    use_plan_pool:
        Set to ``False`` to bypass the pool entirely (always rebuild).
    """

    grid: Grid
    velocity: np.ndarray
    dt: float
    interpolator: Optional[PeriodicInterpolator] = None
    departure_points: Optional[np.ndarray] = None
    departure_plan: Optional[GatherPlan] = None
    use_plan_pool: bool = True

    def __post_init__(self) -> None:
        self.velocity = check_velocity_shape(self.velocity, self.grid.shape)
        if self.interpolator is None:
            self.interpolator = PeriodicInterpolator(self.grid)
        if (self.departure_points is None) != (self.departure_plan is None):
            raise ValueError(
                "departure_points and departure_plan must be provided together "
                "(one without the other would silently be rebuilt and ignored)"
            )
        if self.departure_points is None:
            if self.use_plan_pool:
                data = get_plan_pool().get(self._pool_key(), self._build_departure_data)
            else:
                data = self._build_departure_data()
            self.departure_points = data.points
            self.departure_plan = data.plan

    # ------------------------------------------------------------------ #
    def _pool_key(self) -> Tuple:
        """Content key of this stepper's planning data in the shared pool.

        The stencil-plan layout policy is part of the content: a pooled lean
        plan must never satisfy a lookup made under
        ``REPRO_PLAN_LAYOUT=streaming`` (they gather identically, but their
        memory accounting differs).  Under the ``auto`` policy the token
        carries the decision inputs (pool budget, threshold fraction), so a
        budget change re-keys the plans whose auto decision could flip.
        """
        return (
            "semi-lagrangian-departure",
            self.grid,
            float(self.dt),
            self.interpolator.method,
            self.interpolator.backend_name,
            plan_layout_cache_token(),
            array_fingerprint(self.velocity),
        )

    def _build_departure_data(self) -> DeparturePlanData:
        """Trace the characteristics and plan the gather (the pool's miss path)."""
        points = compute_departure_points(self.grid, self.velocity, self.dt, self.interpolator)
        # the paper's planning phase: the gather stencil of the departure
        # points is computed once and reused by every step of every field
        plan = self.interpolator.plan(points)
        # pooled entries are shared across steppers; guard them against
        # accidental in-place mutation by any consumer
        points.setflags(write=False)
        plan.coordinates.setflags(write=False)
        return DeparturePlanData(points=points, plan=plan)

    # ------------------------------------------------------------------ #
    def interpolate_at_departure(self, field: np.ndarray) -> np.ndarray:
        """Interpolate a grid field at the cached departure points."""
        return self.interpolator.interpolate_planned(field, self.departure_plan)

    def interpolate_many_at_departure(
        self, fields: "np.ndarray | FieldSource"
    ) -> np.ndarray:
        """Batched interpolation of a ``(B, N1, N2, N3)`` stack at the plan.

        A :class:`~repro.transport.kernels.FieldSource` runs the gather in
        tiled (out-of-core) mode with bitwise-identical values — the entry
        point for fields too large to hold resident.
        """
        return self.interpolator.interpolate_many_planned(fields, self.departure_plan)

    def step(
        self,
        nu: np.ndarray,
        source_old: Optional[np.ndarray] = None,
        source_new: Optional[Callable[[np.ndarray], np.ndarray] | np.ndarray] = None,
    ) -> np.ndarray:
        """Advance ``nu`` by one time step.

        Parameters
        ----------
        nu:
            Field at the current time level, on the grid.
        source_old:
            Source field ``f(., t_n)`` on the grid (or None for pure
            advection).
        source_new:
            Either the source field ``f(., t_{n+1})`` on the grid, a callable
            mapping the predictor ``nu*`` to the source (for sources that
            depend on the transported quantity itself, e.g. ``f = nu div v``),
            or None.  Ignored when *source_old* is None and *source_new* is
            None.

        Returns
        -------
        numpy.ndarray
            ``nu`` at the next time level on the grid.
        """
        nu = np.asarray(nu)
        if nu.shape != self.grid.shape:
            raise ValueError(f"field has shape {nu.shape}, expected {self.grid.shape}")

        if source_old is None and source_new is None:
            # pure advection: nu(x, t+dt) = nu(X, t)
            return self.interpolate_at_departure(nu)

        if source_old is None:
            nu_dep = self.interpolate_at_departure(nu)
            f_dep = np.zeros_like(nu_dep)
        else:
            # one batched gather for the transported field and its source
            nu_dep, f_dep = self.interpolate_many_at_departure(
                np.stack([nu, np.asarray(source_old)], axis=0)
            )

        predictor = nu_dep + self.dt * f_dep

        if source_new is None:
            f_new = np.zeros_like(predictor)
        elif callable(source_new):
            f_new = np.asarray(source_new(predictor))
        else:
            f_new = np.asarray(source_new)
        if f_new.shape != self.grid.shape:
            raise ValueError(
                f"source has shape {f_new.shape}, expected {self.grid.shape}"
            )
        return nu_dep + 0.5 * self.dt * (f_dep + f_new)

    def step_many(
        self,
        fields: np.ndarray,
        sources_old: Optional[np.ndarray] = None,
        sources_new: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Advance a ``(B, N1, N2, N3)`` stack of fields by one time step.

        The batched counterpart of :meth:`step` for sources given as grid
        arrays: the fields and their old-time sources are interpolated at
        the shared departure points in a *single* gather pass through the
        cached plan (e.g. the three displacement components and the three
        velocity components of the deformation-map transport).

        For a pure advection (no sources) *fields* may also be a
        :class:`~repro.transport.kernels.FieldSource`: the step then runs a
        tiled gather (the out-of-core path) with bitwise-identical values.
        """
        if is_field_source(fields):
            if sources_old is not None or sources_new is not None:
                raise ValueError(
                    "tiled step_many only supports pure advection "
                    "(sources must be None when fields is a FieldSource)"
                )
            return self.interpolate_many_at_departure(fields)
        fields = np.asarray(fields)
        if sources_old is None and sources_new is None:
            return self.interpolate_many_at_departure(fields)

        batch = fields.shape[0]
        if sources_old is None:
            dep = self.interpolate_many_at_departure(fields)
            nu_dep, f_dep = dep, np.zeros_like(dep)
        else:
            sources_old = np.asarray(sources_old)
            if sources_old.shape != fields.shape:
                raise ValueError(
                    f"sources have shape {sources_old.shape}, expected {fields.shape}"
                )
            dep = self.interpolate_many_at_departure(
                np.concatenate([fields, sources_old], axis=0)
            )
            nu_dep, f_dep = dep[:batch], dep[batch:]

        if sources_new is None:
            f_new = np.zeros_like(nu_dep)
        else:
            f_new = np.asarray(sources_new)
            if f_new.shape != fields.shape:
                raise ValueError(
                    f"sources have shape {f_new.shape}, expected {fields.shape}"
                )
        return nu_dep + 0.5 * self.dt * (f_dep + f_new)

    # ------------------------------------------------------------------ #
    def cfl_number(self) -> float:
        """CFL number ``max |v_j| dt / h_j`` of this stepper.

        The semi-Lagrangian scheme is unconditionally stable, so this is a
        diagnostic only; the paper relates the accuracy (choice of ``nt``) to
        the CFL number (Sec. IV-A3).
        """
        h = np.asarray(self.grid.spacing)
        vmax = np.max(np.abs(self.velocity.reshape(3, -1)), axis=1)
        return float(np.max(vmax * self.dt / h))
