"""Semi-Lagrangian transport in (pseudo-)time.

The forward (state), backward (adjoint), incremental state and incremental
adjoint transport equations of the optimality system (Eqs. 2b, 3, 5a, 5c) are
all solved with the unconditionally stable semi-Lagrangian scheme of
Sec. III-B2: a second-order Runge-Kutta backward characteristic trace followed
by a Heun (explicit trapezoidal) update of the source term, with tricubic
interpolation at the off-grid departure points.
"""

from repro.transport.interpolation import PeriodicInterpolator
from repro.transport.semi_lagrangian import (
    SemiLagrangianStepper,
    compute_departure_points,
)
from repro.transport.solvers import TransportSolver
from repro.transport.deformation import DeformationMap, deformation_gradient_determinant

__all__ = [
    "PeriodicInterpolator",
    "SemiLagrangianStepper",
    "compute_departure_points",
    "TransportSolver",
    "DeformationMap",
    "deformation_gradient_determinant",
]
