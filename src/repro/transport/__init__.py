"""Semi-Lagrangian transport in (pseudo-)time.

The forward (state), backward (adjoint), incremental state and incremental
adjoint transport equations of the optimality system (Eqs. 2b, 3, 5a, 5c) are
all solved with the unconditionally stable semi-Lagrangian scheme of
Sec. III-B2: a second-order Runge-Kutta backward characteristic trace followed
by a Heun (explicit trapezoidal) update of the source term, with tricubic
interpolation at the off-grid departure points.

The interpolation kernel itself is a pluggable subsystem
(:mod:`repro.transport.kernels`): gather engines (``scipy``, ``numpy``,
``numba``) live behind a registry, and the stencil of a fixed set of
departure points is precomputed once per velocity as a :class:`GatherPlan`
and reused by every transported field.
"""

from repro.transport.interpolation import PeriodicInterpolator
from repro.transport.kernels import (
    ArrayFieldSource,
    FieldSource,
    GatherPlan,
    InterpolationBackend,
    available_backends as available_interpolation_backends,
    get_backend as get_interpolation_backend,
    register_backend as register_interpolation_backend,
    registered_backends as registered_interpolation_backends,
)
from repro.transport.sources import (
    FIELD_SOURCE_ENV_VAR,
    FIELD_SOURCE_MODES,
    Hdf5FieldSource,
    MemmapFieldSource,
    PrefetchingFieldSource,
    SpooledMemmapFieldSource,
    TileCachingFieldSource,
    default_field_source,
    set_default_field_source,
)
from repro.transport.semi_lagrangian import (
    SemiLagrangianStepper,
    compute_departure_points,
)
from repro.transport.solvers import TransportPlan, TransportSolver
from repro.transport.deformation import DeformationMap, deformation_gradient_determinant

__all__ = [
    "PeriodicInterpolator",
    "ArrayFieldSource",
    "FieldSource",
    "GatherPlan",
    "InterpolationBackend",
    "available_interpolation_backends",
    "get_interpolation_backend",
    "register_interpolation_backend",
    "registered_interpolation_backends",
    "FIELD_SOURCE_ENV_VAR",
    "FIELD_SOURCE_MODES",
    "MemmapFieldSource",
    "Hdf5FieldSource",
    "SpooledMemmapFieldSource",
    "PrefetchingFieldSource",
    "TileCachingFieldSource",
    "default_field_source",
    "set_default_field_source",
    "SemiLagrangianStepper",
    "compute_departure_points",
    "TransportPlan",
    "TransportSolver",
    "DeformationMap",
    "deformation_gradient_determinant",
]
