"""Transport solvers for the optimality system.

This module couples the semi-Lagrangian stepper with the spectral operators
to solve the four transport problems of the reduced-space Newton method
(Sec. II-B and III of the paper):

========================  ==================================================
state (Eq. 2b)            ``d rho/dt + v . grad rho = 0``, forward in time
adjoint (Eq. 3)           ``-d lam/dt - div(v lam) = 0``, backward in time
incremental state (5a)    ``d rho~/dt + v . grad rho~ = - v~ . grad rho``
incremental adjoint (5c)  ``-d lam~/dt - div(lam~ v + lam v~) = 0``
========================  ==================================================

All four are advection equations with (possibly field-dependent) sources, so
after the time reversal ``tau = 1 - t`` the backward equations reduce to the
same semi-Lagrangian kernel with velocity ``-v``.

Because the paper stores every time level in memory (``n_t`` is kept small —
the motivation for the unconditionally stable semi-Lagrangian scheme), the
solvers here return full space-time histories as arrays of shape
``(nt + 1, N1, N2, N3)``, indexed such that entry ``j`` is the field at
``t_j = j / nt``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.observability.trace import trace_span
from repro.spectral.grid import Grid
from repro.spectral.operators import SpectralOperators
from repro.transport.interpolation import PeriodicInterpolator
from repro.transport.semi_lagrangian import SemiLagrangianStepper
from repro.utils.validation import check_positive_int, check_velocity_shape


@dataclass
class TransportPlan:
    """Pre-computed data shared by every transport solve for one velocity.

    Mirrors the paper's "interpolation planner": the semi-Lagrangian
    departure points are computed once per velocity for the forward
    characteristics (velocity ``v``) and once for the backward
    characteristics (velocity ``-v``), then re-used by the state, adjoint and
    both incremental equations of every Hessian matvec (Sec. III-C2).  Each
    stepper additionally caches the gather plan (base indices + per-axis
    interpolation weights, :mod:`repro.transport.kernels`) of its departure
    points, so the Hessian mat-vecs never re-derive stencils they already
    have.
    """

    velocity: np.ndarray
    dt: float
    num_time_steps: int
    forward_stepper: SemiLagrangianStepper
    backward_stepper: SemiLagrangianStepper
    divergence: np.ndarray
    is_divergence_free: bool

    @property
    def forward_gather_plan(self):
        """Cached gather plan of the forward characteristics."""
        return self.forward_stepper.departure_plan

    @property
    def backward_gather_plan(self):
        """Cached gather plan of the backward characteristics."""
        return self.backward_stepper.departure_plan

    @property
    def nbytes(self) -> int:
        """Byte size of the per-velocity planning data this plan holds.

        Counts the departure points and gather plans of both steppers (the
        quantities the shared plan pool stores and budgets) plus the cached
        divergence field.
        """
        return (
            self.forward_stepper.departure_points.nbytes
            + self.forward_gather_plan.nbytes
            + self.backward_stepper.departure_points.nbytes
            + self.backward_gather_plan.nbytes
            + self.divergence.nbytes
        )


@dataclass
class TransportSolver:
    """Semi-Lagrangian solver for the state/adjoint/incremental equations.

    Parameters
    ----------
    grid:
        Computational grid.
    num_time_steps:
        Number of pseudo-time steps ``nt`` (the paper uses ``nt = 4``).
    interpolation:
        Interpolation kernel passed to :class:`PeriodicInterpolator`.
    operators:
        Spectral operators; constructed on demand when not provided.
    fft_backend:
        FFT engine name or instance used when *operators* is constructed on
        demand (``None`` selects the environment default); ignored when
        *operators* is provided.
    interp_backend:
        Interpolation engine name or instance (``"scipy"``, ``"numpy"``,
        ``"numba"``, or ``None`` for the ``REPRO_INTERP_BACKEND`` / scipy
        default) used by the semi-Lagrangian gathers.
    """

    grid: Grid
    num_time_steps: int = 4
    interpolation: str = "cubic_bspline"
    operators: Optional[SpectralOperators] = None
    fft_backend: Optional[object] = None
    interp_backend: Optional[object] = None
    divergence_tolerance: float = 1e-8
    _interpolator: PeriodicInterpolator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive_int(self.num_time_steps, "num_time_steps")
        if self.operators is None:
            self.operators = SpectralOperators(self.grid, fft_backend=self.fft_backend)
        self._interpolator = PeriodicInterpolator(
            self.grid, self.interpolation, backend=self.interp_backend
        )

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    @property
    def dt(self) -> float:
        """Pseudo-time step ``1 / nt`` (the time horizon is always [0, 1])."""
        return 1.0 / self.num_time_steps

    @property
    def interpolator(self) -> PeriodicInterpolator:
        return self._interpolator

    def plan(self, velocity: np.ndarray) -> TransportPlan:
        """Build the forward/backward semi-Lagrangian plans for *velocity*.

        The expensive planning data (departure points + gather stencils of
        both characteristic directions) comes from the shared plan pool
        (:mod:`repro.runtime.plan_pool`): velocities the pool has already
        planned — the accepted line-search trial, a continuation warm
        start — are warm hits and skip the trace/plan work entirely.
        """
        velocity = check_velocity_shape(velocity, self.grid.shape)
        forward = SemiLagrangianStepper(
            self.grid, velocity, self.dt, interpolator=self._interpolator
        )
        backward = SemiLagrangianStepper(
            self.grid, -velocity, self.dt, interpolator=self._interpolator
        )
        div_v = self.operators.divergence(velocity)
        vel_scale = max(self.grid.norm(velocity), 1e-30)
        div_free = self.grid.norm(div_v) <= self.divergence_tolerance * vel_scale
        return TransportPlan(
            velocity=velocity,
            dt=self.dt,
            num_time_steps=self.num_time_steps,
            forward_stepper=forward,
            backward_stepper=backward,
            divergence=div_v,
            is_divergence_free=div_free,
        )

    # ------------------------------------------------------------------ #
    # state equation (Eq. 2b)
    # ------------------------------------------------------------------ #
    def solve_state(self, plan: TransportPlan, rho0: np.ndarray) -> np.ndarray:
        """Transport the template image forward in time.

        Returns the full history ``rho[j] = rho(., t_j)`` with
        ``rho[0] = rho0`` and ``rho[nt] = rho(., 1)`` (the deformed template).
        """
        rho0 = np.asarray(rho0, dtype=self.grid.dtype)
        if rho0.shape != self.grid.shape:
            raise ValueError(f"rho0 has shape {rho0.shape}, expected {self.grid.shape}")
        nt = plan.num_time_steps
        history = np.empty((nt + 1, *self.grid.shape), dtype=self.grid.dtype)
        history[0] = rho0
        with trace_span("transport.state", nt=nt):
            for j in range(nt):
                history[j + 1] = plan.forward_stepper.step(history[j])
        return history

    def solve_state_final(self, plan: TransportPlan, rho0: np.ndarray) -> np.ndarray:
        """Transport the template forward, keeping only the final state.

        The objective evaluation (and the CLI's deformed template) only
        need ``rho(., 1)``, not the ``(nt + 1)``-level history — at 256^3
        the history is 0.7 GB of dead weight per trial velocity of the line
        search.  This runs the identical steps on a two-level rotation
        (interpolation counters and bits match ``solve_state(...)[nt]``
        exactly), bounding the state memory at one field regardless of
        ``nt``.
        """
        rho0 = np.asarray(rho0, dtype=self.grid.dtype)
        if rho0.shape != self.grid.shape:
            raise ValueError(f"rho0 has shape {rho0.shape}, expected {self.grid.shape}")
        nu = rho0
        with trace_span("transport.state", nt=plan.num_time_steps, final_only=True):
            for _ in range(plan.num_time_steps):
                nu = plan.forward_stepper.step(nu)
        return nu

    # ------------------------------------------------------------------ #
    # adjoint equation (Eq. 3)
    # ------------------------------------------------------------------ #
    def solve_adjoint(self, plan: TransportPlan, terminal: np.ndarray) -> np.ndarray:
        """Transport the adjoint variable backward in time.

        Solves ``-d lam/dt - div(v lam) = 0`` with ``lam(., 1) = terminal``
        (the image mismatch ``rho_R - rho(., 1)``).  After the time reversal
        ``tau = 1 - t`` this is an advection with velocity ``-v`` and source
        ``lam * div v``; the source vanishes for divergence-free velocities.

        Returns the history indexed by *t* (``history[nt] = terminal``,
        ``history[0] = lam(., 0)``).
        """
        terminal = np.asarray(terminal, dtype=self.grid.dtype)
        if terminal.shape != self.grid.shape:
            raise ValueError(
                f"terminal condition has shape {terminal.shape}, expected {self.grid.shape}"
            )
        nt = plan.num_time_steps
        history = np.empty((nt + 1, *self.grid.shape), dtype=self.grid.dtype)
        history[nt] = terminal
        div_v = plan.divergence
        with trace_span("transport.adjoint", nt=nt):
            for j in range(nt, 0, -1):
                lam = history[j]
                if plan.is_divergence_free:
                    history[j - 1] = plan.backward_stepper.step(lam)
                else:
                    history[j - 1] = plan.backward_stepper.step(
                        lam,
                        source_old=lam * div_v,
                        source_new=lambda predictor, d=div_v: predictor * d,
                    )
        return history

    # ------------------------------------------------------------------ #
    # incremental state equation (Eq. 5a)
    # ------------------------------------------------------------------ #
    def solve_incremental_state(
        self,
        plan: TransportPlan,
        perturbation: np.ndarray,
        state_history: np.ndarray,
        state_gradients: Optional[object] = None,
    ) -> np.ndarray:
        """Solve the incremental (linearized) state equation.

        ``d rho~/dt + v . grad rho~ = - v~ . grad rho(t)`` with
        ``rho~(., 0) = 0``.  The right-hand side needs the gradient of the
        stored state history at the old and new time levels (four FFTs and
        two interpolations per time step, cf. Algorithm 2 of the paper);
        passing the iterate's shared gradient source (*state_gradients*, any
        object with a ``level(j)`` method — see
        :class:`repro.core.gradients.StateGradients`; duck-typed to keep the
        transport layer below the core) serves them from the per-iterate
        cache — zero gradient FFTs on the Hessian mat-vec hot path.
        """
        perturbation = check_velocity_shape(perturbation, self.grid.shape)
        nt = plan.num_time_steps
        if state_history.shape != (nt + 1, *self.grid.shape):
            raise ValueError(
                f"state history has shape {state_history.shape}, "
                f"expected {(nt + 1, *self.grid.shape)}"
            )
        ops = self.operators

        def rhs(j: int) -> np.ndarray:
            if state_gradients is not None:
                grad_rho = state_gradients.level(j)
            else:
                grad_rho = ops.gradient(state_history[j])
            return -(
                perturbation[0] * grad_rho[0]
                + perturbation[1] * grad_rho[1]
                + perturbation[2] * grad_rho[2]
            )

        history = np.zeros((nt + 1, *self.grid.shape), dtype=self.grid.dtype)
        with trace_span("transport.incremental_state", nt=nt):
            rhs_old = rhs(0)
            for j in range(nt):
                rhs_new = rhs(j + 1)
                history[j + 1] = plan.forward_stepper.step(
                    history[j], source_old=rhs_old, source_new=rhs_new
                )
                rhs_old = rhs_new
        return history

    # ------------------------------------------------------------------ #
    # incremental adjoint equation (Eq. 5c)
    # ------------------------------------------------------------------ #
    def solve_incremental_adjoint(
        self,
        plan: TransportPlan,
        terminal: np.ndarray,
        perturbation: Optional[np.ndarray] = None,
        adjoint_history: Optional[np.ndarray] = None,
        gauss_newton: bool = True,
    ) -> np.ndarray:
        """Solve the incremental adjoint equation backward in time.

        Full Newton solves ``-d lam~/dt - div(lam~ v + lam v~) = 0``; the
        Gauss-Newton approximation drops the term involving the adjoint
        ``lam`` (Sec. II-B).  The terminal condition is
        ``lam~(., 1) = -rho~(., 1)`` (Eq. 5d).

        Parameters
        ----------
        plan:
            Transport plan of the outer velocity ``v``.
        terminal:
            Terminal condition at ``t = 1``.
        perturbation:
            The Hessian direction ``v~``; required for the full Newton term.
        adjoint_history:
            History of the first-order adjoint ``lam``; required for the full
            Newton term.
        gauss_newton:
            Drop the ``lam``-dependent source (default, as in the paper's
            experiments).
        """
        terminal = np.asarray(terminal, dtype=self.grid.dtype)
        if terminal.shape != self.grid.shape:
            raise ValueError(
                f"terminal condition has shape {terminal.shape}, expected {self.grid.shape}"
            )
        nt = plan.num_time_steps
        ops = self.operators
        div_v = plan.divergence

        newton_sources: Optional[np.ndarray] = None
        if not gauss_newton:
            if perturbation is None or adjoint_history is None:
                raise ValueError(
                    "full Newton requires both the perturbation and the adjoint history"
                )
            perturbation = check_velocity_shape(perturbation, self.grid.shape)
            if adjoint_history.shape != (nt + 1, *self.grid.shape):
                raise ValueError(
                    f"adjoint history has shape {adjoint_history.shape}, "
                    f"expected {(nt + 1, *self.grid.shape)}"
                )
            # div(lam(t) v~) for every time level, computed spectrally with
            # the whole time axis fused into one batched transform pair
            newton_sources = ops.divergence_many(
                adjoint_history[:, None] * perturbation[None]
            )

        history = np.empty((nt + 1, *self.grid.shape), dtype=self.grid.dtype)
        history[nt] = terminal
        with trace_span("transport.incremental_adjoint", nt=nt, gauss_newton=gauss_newton):
            for j in range(nt, 0, -1):
                lam_tilde = history[j]
                source_old = np.zeros_like(lam_tilde)
                if not plan.is_divergence_free:
                    source_old = lam_tilde * div_v
                if newton_sources is not None:
                    source_old = source_old + newton_sources[j]

                extra_new = newton_sources[j - 1] if newton_sources is not None else 0.0

                if plan.is_divergence_free and newton_sources is None:
                    history[j - 1] = plan.backward_stepper.step(lam_tilde)
                else:
                    def source_new(predictor: np.ndarray) -> np.ndarray:
                        value = np.zeros_like(predictor)
                        if not plan.is_divergence_free:
                            value = predictor * div_v
                        return value + extra_new

                    history[j - 1] = plan.backward_stepper.step(
                        lam_tilde, source_old=source_old, source_new=source_new
                    )
        return history

    # ------------------------------------------------------------------ #
    # time quadrature
    # ------------------------------------------------------------------ #
    def time_integral(self, integrand_history: np.ndarray) -> np.ndarray:
        """Trapezoidal quadrature of a time history over ``t in [0, 1]``.

        Used for the body force ``b = int_0^1 lam grad rho dt`` of the
        reduced gradient (Eq. 4) and its incremental counterpart (Eq. 5).
        """
        integrand_history = np.asarray(integrand_history)
        nt = integrand_history.shape[0] - 1
        if nt < 1:
            raise ValueError("history must contain at least two time levels")
        weights = np.full(nt + 1, 1.0, dtype=np.float64)
        weights[0] = 0.5
        weights[-1] = 0.5
        weights /= nt
        return np.tensordot(weights, integrand_history, axes=(0, 0))
