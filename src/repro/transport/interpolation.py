"""Periodic interpolation at off-grid (semi-Lagrangian) points.

The semi-Lagrangian scheme needs the value of grid fields at irregularly
spaced departure points, which "cannot be done using a FFT, since the
interpolation points can be spaced irregularly between grid points"
(Sec. III-B2).  The paper uses tricubic interpolation because linear
interpolation accumulates too much error over the time steps.

Three interpolation kernels are provided:

``"cubic_bspline"`` (default)
    Interpolating tricubic B-spline via :func:`scipy.ndimage.map_coordinates`
    with a periodic (``grid-wrap``) boundary.  This is the fastest option in
    pure Python and is 4th-order accurate for smooth fields.
``"catmull_rom"``
    Hand-written, fully vectorized tricubic convolution (Catmull-Rom kernel,
    the classical "tricubic interpolation" of the paper, 64 coefficients per
    point).  This is the kernel re-used verbatim by the distributed
    interpolation in :mod:`repro.parallel`, where each rank evaluates it on
    its local ghosted block.
``"linear"``
    Trilinear interpolation, provided as the ablation baseline
    (``benchmarks/bench_ablation_interpolation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import ndimage

from repro.spectral.grid import Grid

_SUPPORTED_METHODS = ("cubic_bspline", "catmull_rom", "linear")

#: Number of floating point operations per interpolated point for the
#: tricubic kernel; the paper estimates "roughly 10 x 64" flops per point
#: (Sec. III-C2).  Used by the performance model.
TRICUBIC_FLOPS_PER_POINT = 640


def catmull_rom_weights(t: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Catmull-Rom convolution weights for samples at offsets ``-1, 0, 1, 2``.

    Parameters
    ----------
    t:
        Fractional coordinate in ``[0, 1)`` relative to the base grid point.
    """
    t2 = t * t
    t3 = t2 * t
    w0 = -0.5 * t3 + t2 - 0.5 * t
    w1 = 1.5 * t3 - 2.5 * t2 + 1.0
    w2 = -1.5 * t3 + 2.0 * t2 + 0.5 * t
    w3 = 0.5 * t3 - 0.5 * t2
    return w0, w1, w2, w3


def linear_weights(t: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Linear interpolation weights for samples at offsets ``0, 1``."""
    return 1.0 - t, t


@dataclass
class PeriodicInterpolator:
    """Interpolate scalar grid fields at arbitrary points with periodic wrap.

    Parameters
    ----------
    grid:
        Grid on which the interpolated fields are defined.
    method:
        One of ``"cubic_bspline"``, ``"catmull_rom"`` or ``"linear"``.
    """

    grid: Grid
    method: str = "cubic_bspline"

    def __post_init__(self) -> None:
        if self.method not in _SUPPORTED_METHODS:
            raise ValueError(
                f"unknown interpolation method {self.method!r}; "
                f"expected one of {_SUPPORTED_METHODS}"
            )
        self._spacing = np.asarray(self.grid.spacing, dtype=np.float64)
        self.points_interpolated = 0

    # ------------------------------------------------------------------ #
    # coordinate handling
    # ------------------------------------------------------------------ #
    def to_index_coordinates(self, points: np.ndarray) -> np.ndarray:
        """Convert physical coordinates to (fractional, periodic) grid indices."""
        points = np.asarray(points, dtype=np.float64)
        if points.shape[0] != 3:
            raise ValueError(
                f"points must be stacked as (3, ...), got leading dimension {points.shape[0]}"
            )
        flat = points.reshape(3, -1)
        q = flat / self._spacing[:, None]
        shape = np.asarray(self.grid.shape, dtype=np.float64)[:, None]
        return np.mod(q, shape)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def __call__(self, field: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Interpolate *field* at *points*.

        Parameters
        ----------
        field:
            Scalar field of shape ``grid.shape``.
        points:
            Physical coordinates stacked as ``(3, ...)``; any trailing shape
            is allowed and preserved in the output.
        """
        field = np.asarray(field)
        if field.shape != self.grid.shape:
            raise ValueError(
                f"field has shape {field.shape}, expected {self.grid.shape}"
            )
        points = np.asarray(points, dtype=np.float64)
        out_shape = points.shape[1:]
        q = self.to_index_coordinates(points)
        self.points_interpolated += q.shape[1]
        if self.method == "cubic_bspline":
            values = ndimage.map_coordinates(field, q, order=3, mode="grid-wrap")
        elif self.method == "linear":
            values = ndimage.map_coordinates(field, q, order=1, mode="grid-wrap")
        else:  # catmull_rom
            values = self._catmull_rom(field, q)
        return values.reshape(out_shape).astype(self.grid.dtype, copy=False)

    def interpolate_vector(self, vector_field: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Component-wise interpolation of a ``(3, N1, N2, N3)`` field."""
        vector_field = np.asarray(vector_field)
        if vector_field.shape != (3, *self.grid.shape):
            raise ValueError(
                f"vector field has shape {vector_field.shape}, "
                f"expected {(3, *self.grid.shape)}"
            )
        return np.stack([self(vector_field[i], points) for i in range(3)], axis=0)

    # ------------------------------------------------------------------ #
    # kernels
    # ------------------------------------------------------------------ #
    def _catmull_rom(self, field: np.ndarray, q: np.ndarray) -> np.ndarray:
        """Vectorized tricubic (Catmull-Rom) convolution on periodic data."""
        n1, n2, n3 = self.grid.shape
        base = np.floor(q).astype(np.intp)
        frac = q - base

        weights = [catmull_rom_weights(frac[d]) for d in range(3)]
        idx = []
        for d, n in enumerate((n1, n2, n3)):
            idx.append([(base[d] + offset - 1) % n for offset in range(4)])

        values = np.zeros(q.shape[1], dtype=np.float64)
        for a in range(4):
            ia = idx[0][a]
            wa = weights[0][a]
            for b in range(4):
                ib = idx[1][b]
                wab = wa * weights[1][b]
                for c in range(4):
                    values += wab * weights[2][c] * field[ia, ib, idx[2][c]]
        return values

    def flops(self) -> int:
        """Estimated floating point work of all interpolations so far."""
        if self.method == "linear":
            per_point = 24
        else:
            per_point = TRICUBIC_FLOPS_PER_POINT
        return per_point * self.points_interpolated
