"""Periodic interpolation at off-grid (semi-Lagrangian) points.

The semi-Lagrangian scheme needs the value of grid fields at irregularly
spaced departure points, which "cannot be done using a FFT, since the
interpolation points can be spaced irregularly between grid points"
(Sec. III-B2).  The paper uses tricubic interpolation because linear
interpolation accumulates too much error over the time steps.

Three interpolation kernels are provided:

``"cubic_bspline"`` (default)
    Interpolating tricubic B-spline (prefilter + basis gather), 4th-order
    accurate for smooth fields.
``"catmull_rom"``
    Tricubic convolution (Catmull-Rom kernel, the classical "tricubic
    interpolation" of the paper, 64 coefficients per point).  This is the
    kernel re-used verbatim by the distributed interpolation in
    :mod:`repro.parallel`, where each rank evaluates it on its local
    ghosted block.
``"linear"``
    Trilinear interpolation, provided as the ablation baseline
    (``benchmarks/bench_ablation_interpolation.py``).

The *engine* evaluating a kernel is pluggable (``scipy``, ``numpy``,
``numba`` — see :mod:`repro.transport.kernels`), selected per constructor,
via ``REPRO_INTERP_BACKEND``, or the ``--interp-backend`` CLI flag.  This
frontend owns validation, coordinate wrapping, **gather plans** (the cached
64-weight/index stencils reused across every field interpolated at one set
of departure points) and the interpolation counters; counting never happens
in the backends, so the counters — which the test-suite checks against the
paper's ``4*nt`` sweeps-per-matvec complexity model — are exactly identical
no matter which engine gathers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.observability.metrics import get_metrics_registry
from repro.observability.trace import trace_span
from repro.spectral.grid import Grid
from repro.transport.kernels import (
    SUPPORTED_METHODS,
    FieldSource,
    GatherPlan,
    InterpolationBackend,
    catmull_rom_weights,
    get_backend,
    is_field_source,
    linear_weights,
)

__all__ = [
    "PeriodicInterpolator",
    "TRICUBIC_FLOPS_PER_POINT",
    "catmull_rom_weights",
    "linear_weights",
]

_SUPPORTED_METHODS = SUPPORTED_METHODS

#: Number of floating point operations per interpolated point for the
#: tricubic kernel; the paper estimates "roughly 10 x 64" flops per point
#: (Sec. III-C2).  Used by the performance model.
TRICUBIC_FLOPS_PER_POINT = 640

_INTERP_SWEEPS = get_metrics_registry().counter(
    "interp.sweeps", "whole-field interpolation sweeps (one field x one point set)"
).labels()
_INTERP_POINTS = get_metrics_registry().counter(
    "interp.points", "total points interpolated"
).labels()


@dataclass
class PeriodicInterpolator:
    """Interpolate scalar grid fields at arbitrary points with periodic wrap.

    Parameters
    ----------
    grid:
        Grid on which the interpolated fields are defined.
    method:
        One of ``"cubic_bspline"``, ``"catmull_rom"`` or ``"linear"``.
    backend:
        Gather engine: a registered backend name (``"scipy"``, ``"numpy"``,
        ``"numba"``), a backend instance, or ``None`` for the
        ``REPRO_INTERP_BACKEND`` / ``"scipy"`` default (see
        :func:`repro.transport.kernels.get_backend`).
    """

    grid: Grid
    method: str = "cubic_bspline"
    backend: "str | InterpolationBackend | None" = None

    def __post_init__(self) -> None:
        if self.method not in _SUPPORTED_METHODS:
            raise ValueError(
                f"unknown interpolation method {self.method!r}; "
                f"expected one of {_SUPPORTED_METHODS}"
            )
        self.backend = get_backend(self.backend)
        self._spacing = np.asarray(self.grid.spacing, dtype=np.float64)
        self.points_interpolated = 0

    @property
    def backend_name(self) -> str:
        """Name of the active gather engine."""
        return self.backend.name

    # ------------------------------------------------------------------ #
    # coordinate handling
    # ------------------------------------------------------------------ #
    def to_index_coordinates(self, points: np.ndarray) -> np.ndarray:
        """Convert physical coordinates to (fractional, periodic) grid indices."""
        points = np.asarray(points, dtype=np.float64)
        if points.shape[0] != 3:
            raise ValueError(
                f"points must be stacked as (3, ...), got leading dimension {points.shape[0]}"
            )
        flat = points.reshape(3, -1)
        q = flat / self._spacing[:, None]
        shape = np.asarray(self.grid.shape, dtype=np.float64)[:, None]
        return np.mod(q, shape)

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def plan(self, points: np.ndarray) -> GatherPlan:
        """Precompute a gather plan for *points* (the paper's planner phase).

        The plan caches the wrapped coordinates and — for engines with an
        explicit stencil — the base indices and per-axis kernel weights, so
        every field interpolated at the same points skips that work.  The
        planned path is bitwise identical to the unplanned one.
        """
        points = np.asarray(points, dtype=np.float64)
        coordinates = self.to_index_coordinates(points)
        payload = None
        if self.backend.supports_plan(self.method):
            payload = self.backend.build_plan(self.grid.shape, coordinates, self.method)
        return GatherPlan(
            method=self.method,
            backend_name=self.backend.name,
            grid_shape=self.grid.shape,
            output_shape=points.shape[1:],
            coordinates=coordinates,
            payload=payload,
        )

    def _check_plan(self, plan: GatherPlan) -> None:
        if plan.grid_shape != self.grid.shape:
            raise ValueError(
                f"gather plan was built for grid {plan.grid_shape}, "
                f"but this interpolator is bound to {self.grid.shape}"
            )
        if plan.method != self.method:
            raise ValueError(
                f"gather plan was built for method {plan.method!r}, "
                f"but this interpolator uses {self.method!r}"
            )

    # ------------------------------------------------------------------ #
    # gathering (counting lives here, never in the backends)
    # ------------------------------------------------------------------ #
    def _gather(self, fields: "np.ndarray | FieldSource", plan: GatherPlan) -> np.ndarray:
        batch = fields.num_fields if is_field_source(fields) else fields.shape[0]
        self.points_interpolated += batch * plan.num_points
        _INTERP_SWEEPS.inc(batch)
        _INTERP_POINTS.inc(batch * plan.num_points)
        if not is_field_source(fields):
            # forced out-of-core mode (REPRO_FIELD_SOURCE=memmap /
            # --field-source memmap): spool the resident stack to a
            # temporary .npy and gather it memory-mapped.  float64
            # round-trips .npy bit for bit, so results are unchanged —
            # imported lazily to keep the module graph acyclic.
            from repro.transport.sources import SpooledMemmapFieldSource, default_field_source

            if default_field_source() == "memmap":
                fields = SpooledMemmapFieldSource(fields)
        with trace_span(
            "interp.gather",
            count=batch,
            points=batch * plan.num_points,
            method=self.method,
        ):
            return self.backend.gather(fields, plan.coordinates, plan.payload, self.method)

    def _check_stack(self, fields: "np.ndarray | FieldSource") -> "np.ndarray | FieldSource":
        if is_field_source(fields):
            if tuple(fields.shape) != self.grid.shape:
                raise ValueError(
                    f"field source serves shape {tuple(fields.shape)}, "
                    f"expected {self.grid.shape}"
                )
            return fields
        fields = np.asarray(fields)
        if fields.ndim != 4 or fields.shape[1:] != self.grid.shape:
            raise ValueError(
                f"stacked fields have shape {fields.shape}, "
                f"expected (B, {', '.join(map(str, self.grid.shape))})"
            )
        return fields

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def __call__(self, field: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Interpolate *field* at *points*.

        Parameters
        ----------
        field:
            Scalar field of shape ``grid.shape``.
        points:
            Physical coordinates stacked as ``(3, ...)``; any trailing shape
            is allowed and preserved in the output.
        """
        field = np.asarray(field)
        if field.shape != self.grid.shape:
            raise ValueError(
                f"field has shape {field.shape}, expected {self.grid.shape}"
            )
        plan = self.plan(points)
        values = self._gather(field[None], plan)[0]
        return values.reshape(plan.output_shape).astype(self.grid.dtype, copy=False)

    def interpolate_planned(self, field: np.ndarray, plan: GatherPlan) -> np.ndarray:
        """Interpolate *field* at the points of a precomputed *plan*."""
        field = np.asarray(field)
        if field.shape != self.grid.shape:
            raise ValueError(
                f"field has shape {field.shape}, expected {self.grid.shape}"
            )
        self._check_plan(plan)
        values = self._gather(field[None], plan)[0]
        return values.reshape(plan.output_shape).astype(self.grid.dtype, copy=False)

    def interpolate_many(
        self, fields: "np.ndarray | FieldSource", points: np.ndarray
    ) -> np.ndarray:
        """Interpolate a ``(B, N1, N2, N3)`` stack at *points* in one gather.

        All fields share the index computation of one gather pass (and, on
        planned paths, the cached stencil), which is the batching the paper
        exploits for the velocity components of the RK2 trace and the
        state/adjoint histories.

        *fields* may also be a :class:`~repro.transport.kernels.FieldSource`
        (e.g. :class:`~repro.transport.kernels.ArrayFieldSource`): the
        gather then runs **tiled** — the executor loads only the plane tile
        each point chunk touches instead of requiring the flattened stack
        resident — with bitwise-identical values.  Counting is unchanged
        (it lives here, never in the backends), so the ``4*nt`` sweep pins
        hold for tiled gathers too.
        """
        fields = self._check_stack(fields)
        plan = self.plan(points)
        values = self._gather(fields, plan)
        out_shape = (values.shape[0], *plan.output_shape)
        return values.reshape(out_shape).astype(self.grid.dtype, copy=False)

    def interpolate_many_planned(
        self, fields: "np.ndarray | FieldSource", plan: GatherPlan
    ) -> np.ndarray:
        """Batched interpolation of a field stack at the points of *plan*.

        Accepts a :class:`~repro.transport.kernels.FieldSource` for tiled
        (out-of-core) gathers, exactly like :meth:`interpolate_many`.
        """
        fields = self._check_stack(fields)
        self._check_plan(plan)
        values = self._gather(fields, plan)
        out_shape = (values.shape[0], *plan.output_shape)
        return values.reshape(out_shape).astype(self.grid.dtype, copy=False)

    def interpolate_vector(self, vector_field: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Component-wise interpolation of a ``(3, N1, N2, N3)`` field."""
        vector_field = np.asarray(vector_field)
        if vector_field.shape != (3, *self.grid.shape):
            raise ValueError(
                f"vector field has shape {vector_field.shape}, "
                f"expected {(3, *self.grid.shape)}"
            )
        return self.interpolate_many(vector_field, points)

    # ------------------------------------------------------------------ #
    def flops(self) -> int:
        """Estimated floating point work of all interpolations so far."""
        if self.method == "linear":
            per_point = 24
        else:
            per_point = TRICUBIC_FLOPS_PER_POINT
        return per_point * self.points_interpolated
