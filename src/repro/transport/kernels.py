"""Pluggable interpolation-kernel backends and cached gather plans.

The paper's per-iteration cost has two dominant kernels: spectral transforms
and the off-grid tricubic interpolation of the semi-Lagrangian scheme
(roughly ``10 x 64`` flops per point, ``4*nt`` sweeps per Hessian mat-vec,
Sec. III-C2/C4).  This module applies the architecture of
:mod:`repro.spectral.backends` to that second kernel: a small registry of
interchangeable gather engines behind one protocol, plus a precomputed
**gather plan** that caches the 64-weight/index stencil of a fixed point set
so that every field interpolated at the same departure points (state,
adjoint, both incremental equations, all time steps of one velocity) reuses
it — the paper's "interpolation planner".

Backends
--------
``"scipy"`` (default)
    :func:`scipy.ndimage.map_coordinates` for the ``cubic_bspline`` and
    ``linear`` kernels (the seed implementation, bit-for-bit) and the shared
    vectorized stencil executor for ``catmull_rom``.
``"numpy"``
    Fully vectorized stencil gather for every kernel.  ``cubic_bspline``
    uses an exact periodic B-spline prefilter (a diagonal Fourier-space
    solve) followed by the cached-stencil gather, so the *whole* tricubic
    pipeline becomes plannable; ``catmull_rom`` and ``linear`` gather
    directly.  The executor is cache-blocked over point chunks, which is
    what makes the planned path faster than per-call C interpolation.
``"numba"``
    JIT-compiled stencil executor (auto-detected; cleanly reported as
    unavailable when :mod:`numba` is not installed — install the
    ``[numba]`` extra).  Shares the plan layout and the prefilter with the
    ``numpy`` backend.

Selection precedence (first match wins), mirroring the FFT registry:

1. an explicit backend instance or name passed to the consumer
   (e.g. ``PeriodicInterpolator(grid, backend="numpy")`` or the CLI flag
   ``--interp-backend``),
2. the ``REPRO_INTERP_BACKEND`` environment variable,
3. the ``"scipy"`` default.

Backends only gather; interpolation *counting* stays in
:class:`repro.transport.interpolation.PeriodicInterpolator`, which
guarantees exact counter parity across backends — the paper's ``4*nt``
sweep verification is backend independent by construction.

Since PR 3 the cached stencil defaults to the **memory-lean layout**
(:class:`LeanStencilPlan`: int32 base indices + fractional offsets, 36
bytes per point instead of 192) and the chunked executor is thread-pooled
through the shared runtime (:mod:`repro.runtime.workers`,
``REPRO_INTERP_WORKERS`` / ``REPRO_WORKERS``); both the layout and the
worker count leave every gather bitwise unchanged.

PR 4 adds the **streaming layout** (:class:`StreamingStencilPlan`,
``REPRO_PLAN_LAYOUT=streaming``): no ``base``/``frac`` arrays are
materialized at all — a generator backed only by the (borrowed) departure
coordinates produces them one cache-sized chunk at a time, capping the
resident stencil memory at one chunk regardless of the grid size.  All
three layouts feed the executor through one uniform chunk protocol
(:meth:`iter_chunks` + :meth:`chunk_stencil`) and gather bitwise
identically, so out-of-core grids (>512^3 single node) only change the
memory profile, never the numerics.

PR 5 completes the out-of-core story for the *fields*: the executor can run
in a **tiled** mode where the flattened field stack is never required
resident — a :class:`FieldSource` (ndarray-backed today, memory-mapped for
on-disk volumes later) serves axis-0 plane tiles per executor chunk, so the
resident field bytes are bounded by the tile a chunk touches, not the grid
size.  Tiled and resident gathers run the same tap-loop arithmetic on the
same float64 values and are bitwise identical on every backend and layout.
The stencil layout itself now also defaults to **budget-aware auto
selection** (``REPRO_PLAN_LAYOUT=auto``, :mod:`repro.runtime.layout`):
``auto`` projects the lean layout's bytes per plan and degrades to
streaming when they exceed a fraction of the plan-pool budget; explicit
layout values opt out.
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import dataclass
from dataclasses import replace as dataclass_replace
from typing import Callable, Dict, Optional, Protocol, Tuple, Type, Union, runtime_checkable

import numpy as np

from repro.observability.metrics import get_metrics_registry
from repro.observability.trace import trace_span
from repro.runtime.workers import get_executor, resolve_workers
from repro.spectral.backends import BackendUnavailableError

#: Environment variable selecting the default interpolation backend.
BACKEND_ENV_VAR = "REPRO_INTERP_BACKEND"

DEFAULT_BACKEND = "scipy"

#: Environment variable selecting the stencil-plan storage layout
#: (``"auto"`` — the budget-aware default —, ``"lean"``, ``"fat"``, or the
#: chunk-resident ``"streaming"``).
PLAN_LAYOUT_ENV_VAR = "REPRO_PLAN_LAYOUT"

#: The budget-aware layout policy (see :mod:`repro.runtime.layout`): pick
#: ``streaming`` when the projected lean bytes of the plan about to be
#: built exceed a fraction of the plan-pool budget, ``lean`` otherwise.
AUTO_PLAN_LAYOUT = "auto"

DEFAULT_PLAN_LAYOUT = AUTO_PLAN_LAYOUT

#: Concrete stencil-plan storage layouts (see :func:`build_stencil_plan`).
PLAN_LAYOUTS = ("lean", "fat", "streaming")

#: Everything ``REPRO_PLAN_LAYOUT`` / ``--plan-layout`` accepts: a concrete
#: layout, or ``auto`` for the budget-aware policy.
PLAN_LAYOUT_CHOICES = (AUTO_PLAN_LAYOUT,) + PLAN_LAYOUTS

#: Interpolation kernels every backend understands.
SUPPORTED_METHODS = ("cubic_bspline", "catmull_rom", "linear")

#: Point-chunk size of the cache-blocked stencil executor.  Chosen so that
#: every per-chunk scratch array (indices, weights, gathered values) stays
#: resident in L1/L2 cache; the tap loop then streams only the field and the
#: plan arrays through memory once per chunk.
STENCIL_CHUNK = 8192


# --------------------------------------------------------------------------- #
# per-axis kernel weights
# --------------------------------------------------------------------------- #
def catmull_rom_weights(t: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Catmull-Rom convolution weights for samples at offsets ``-1, 0, 1, 2``.

    Parameters
    ----------
    t:
        Fractional coordinate in ``[0, 1)`` relative to the base grid point.
    """
    t2 = t * t
    t3 = t2 * t
    w0 = -0.5 * t3 + t2 - 0.5 * t
    w1 = 1.5 * t3 - 2.5 * t2 + 1.0
    w2 = -1.5 * t3 + 2.0 * t2 + 0.5 * t
    w3 = 0.5 * t3 - 0.5 * t2
    return w0, w1, w2, w3


def bspline_weights(t: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Uniform cubic B-spline basis weights for samples at offsets ``-1, 0, 1, 2``.

    Evaluating these weights on *prefiltered* coefficients (see
    :func:`periodic_bspline_prefilter`) reproduces the interpolating tricubic
    B-spline of :func:`scipy.ndimage.map_coordinates` with ``order=3`` on
    periodic data.
    """
    t2 = t * t
    t3 = t2 * t
    one_minus = 1.0 - t
    w0 = one_minus * one_minus * one_minus / 6.0
    w1 = (3.0 * t3 - 6.0 * t2 + 4.0) / 6.0
    w2 = (-3.0 * t3 + 3.0 * t2 + 3.0 * t + 1.0) / 6.0
    w3 = t3 / 6.0
    return w0, w1, w2, w3


def linear_weights(t: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Linear interpolation weights for samples at offsets ``0, 1``."""
    return 1.0 - t, t


#: kernel name -> (per-axis weight function, leading stencil offset)
_METHOD_STENCILS: Dict[str, Tuple[Callable, int]] = {
    "cubic_bspline": (bspline_weights, -1),
    "catmull_rom": (catmull_rom_weights, -1),
    "linear": (linear_weights, 0),
}


def periodic_bspline_prefilter(fields: np.ndarray) -> np.ndarray:
    """Exact periodic cubic B-spline prefilter of a ``(..., N1, N2, N3)`` stack.

    The interpolating B-spline coefficients ``c`` solve the separable
    convolution ``c * [1/6, 4/6, 1/6] = f`` along each axis; on a periodic
    grid that convolution is diagonal in Fourier space with per-axis symbol
    ``(4 + 2 cos(2 pi k / N)) / 6``, so the solve is one real-to-complex
    transform, a division by the separable (outer-product) symbol, and the
    inverse transform.  Matches :func:`scipy.ndimage.spline_filter` with
    ``mode="grid-wrap"`` to machine precision.
    """
    fields = np.asarray(fields, dtype=np.float64)
    n1, n2, n3 = fields.shape[-3:]

    def axis_symbol(n: int) -> np.ndarray:
        return (4.0 + 2.0 * np.cos(2.0 * np.pi * np.arange(n) / n)) / 6.0

    symbol = (
        axis_symbol(n1)[:, None, None]
        * axis_symbol(n2)[None, :, None]
        * axis_symbol(n3)[None, None, : n3 // 2 + 1]
    )
    spectrum = np.fft.rfftn(fields, axes=(-3, -2, -1)) / symbol
    return np.fft.irfftn(spectrum, s=(n1, n2, n3), axes=(-3, -2, -1))


# --------------------------------------------------------------------------- #
# stencil plans (the cached part of a gather plan)
# --------------------------------------------------------------------------- #
def _chunk_spans(num_points: int, chunk: int) -> Tuple[Tuple[int, int], ...]:
    """Disjoint, ascending ``[lo, hi)`` spans covering ``[0, num_points)``."""
    return tuple((lo, min(lo + chunk, num_points)) for lo in range(0, num_points, chunk))


def _derive_chunk_stencil(
    method: str,
    taps: int,
    shape: Tuple[int, int, int],
    periodic: bool,
    base: np.ndarray,
    frac: np.ndarray,
):
    """Materialize flat index parts and axis weights from ``(3, m)`` base/frac.

    This is *the* stencil arithmetic: the fat build, the lean per-chunk
    rebuild and the streaming generator all run these exact operations, which
    is what makes every layout gather bitwise identically.
    """
    weight_fn, lead = _METHOD_STENCILS[method]
    strides = (shape[1] * shape[2], shape[2], 1)
    index_parts = []
    weights = []
    for d in range(3):
        w = np.stack(weight_fn(frac[d]), axis=0)
        offsets = [base[d] + (offset + lead) for offset in range(taps)]
        if periodic:
            offsets = [idx % shape[d] for idx in offsets]
        index_parts.append(np.stack(offsets, axis=0) * strides[d])
        weights.append(w)
    return tuple(index_parts), tuple(weights)


@dataclass
class StencilPlan:
    """Fully materialized ("fat") stencil: flat index parts + axis weights.

    ``index_parts[d]`` has shape ``(taps, M)`` and already contains the
    *flattened* index contribution of axis ``d`` (wrapped index times the
    axis stride), so the flat gather index of tap ``(a, b, c)`` is simply
    ``index_parts[0][a] + index_parts[1][b] + index_parts[2][c]``.
    ``weights[d]`` holds the matching per-axis kernel weights.

    At ``2 * taps`` stored values per axis (12 index parts + 12 weights)
    this weighs 24 doubles per point for the tricubic kernels (~400 MB per
    plan at 128^3); the memory-lean :class:`LeanStencilPlan` is the default
    layout since PR 3.
    """

    method: str
    taps: int
    index_parts: Tuple[np.ndarray, np.ndarray, np.ndarray]
    weights: Tuple[np.ndarray, np.ndarray, np.ndarray]

    @property
    def num_points(self) -> int:
        return self.index_parts[0].shape[1]

    @property
    def nbytes(self) -> int:
        """Exact array payload in bytes (plan-pool accounting)."""
        return sum(part.nbytes for part in self.index_parts) + sum(
            w.nbytes for w in self.weights
        )

    def iter_chunks(self, chunk: Optional[int] = None) -> Tuple[Tuple[int, int], ...]:
        """The executor's chunk protocol: spans to feed :meth:`chunk_stencil`."""
        return _chunk_spans(self.num_points, chunk or STENCIL_CHUNK)

    def chunk_stencil(self, lo: int, hi: int):
        """Index-part / weight views of the points ``[lo, hi)``."""
        return (
            tuple(part[:, lo:hi] for part in self.index_parts),
            tuple(w[:, lo:hi] for w in self.weights),
        )


@dataclass
class LeanStencilPlan:
    """Memory-lean stencil: int32 base indices + float64 fractional offsets.

    Stores only what the tensor-product stencil is *derived from* — the
    per-axis base grid index (int32) and the fractional coordinate
    (float64), 36 bytes per point instead of the 192 bytes of the
    materialized :class:`StencilPlan` (a ~5x cut; ~75 MB instead of ~400 MB
    at 128^3).  The executor re-derives each chunk's index parts and axis
    weights inside its cache-blocked loop (:meth:`chunk_stencil`), applying
    bit-for-bit the same arithmetic as the fat build, so lean and fat plans
    produce bitwise-identical gathers; the per-chunk rebuild is ``O(3
    taps)`` work per point against the ``O(taps^3)`` gather it feeds, and
    its operands stay L1/L2-resident.
    """

    method: str
    taps: int
    shape: Tuple[int, int, int]
    periodic: bool
    base: np.ndarray
    frac: np.ndarray

    @property
    def num_points(self) -> int:
        return self.base.shape[1]

    @property
    def nbytes(self) -> int:
        """Exact array payload in bytes (plan-pool accounting)."""
        return self.base.nbytes + self.frac.nbytes

    def iter_chunks(self, chunk: Optional[int] = None) -> Tuple[Tuple[int, int], ...]:
        """The executor's chunk protocol: spans to feed :meth:`chunk_stencil`."""
        return _chunk_spans(self.num_points, chunk or STENCIL_CHUNK)

    def chunk_stencil(self, lo: int, hi: int):
        """Materialize index parts and weights of the points ``[lo, hi)``.

        Exactly the arithmetic of the fat build in
        :func:`build_stencil_plan`, applied to one chunk.
        """
        return _derive_chunk_stencil(
            self.method,
            self.taps,
            self.shape,
            self.periodic,
            self.base[:, lo:hi].astype(np.intp),
            self.frac[:, lo:hi],
        )


@dataclass
class StreamingStencilPlan:
    """Chunk-resident stencil: ``base``/``frac`` are never materialized.

    The plan stores nothing but a *borrowed* reference to the fractional
    departure coordinates (which the wrapping :class:`GatherPlan` or scatter
    plan owns and accounts for anyway); a generator derives each chunk's
    ``base``/``frac`` — and from them the index parts and weights — inside
    the executor's cache-blocked loop.  Resident stencil memory is therefore
    capped at **one chunk** regardless of the grid size, which is what makes
    >512^3 single-node (out-of-core) runs feasible: a 512^3 lean plan weighs
    ~4.8 GB, the streaming plan a few hundred kB of per-chunk scratch.

    Deriving ``base = floor(c)`` and ``frac = c - base`` per chunk applies
    bit-for-bit the arithmetic of the lean build, and the shared
    :func:`_derive_chunk_stencil` does the rest, so streaming gathers are
    bitwise identical to the lean and fat layouts (pinned by the property
    suite across layouts, chunk sizes and worker counts).  Unlike the lean
    layout it also needs no int32 range guard — indices are derived straight
    into the native ``intp`` width.
    """

    method: str
    taps: int
    shape: Tuple[int, int, int]
    periodic: bool
    coordinates: np.ndarray
    chunk: int = STENCIL_CHUNK

    @property
    def num_points(self) -> int:
        return self.coordinates.shape[1]

    @property
    def nbytes(self) -> int:
        """Resident plan bytes: the one-chunk ``base``/``frac`` scratch cap.

        The coordinates are borrowed, not owned — the :class:`GatherPlan`
        (or the scatter-plan entry) that hands them to this plan accounts
        for them, so the pool never double counts the shared buffer.
        """
        m = min(self.num_points, self.chunk)
        return 3 * m * (np.dtype(np.intp).itemsize + np.dtype(np.float64).itemsize)

    def iter_chunks(self, chunk: Optional[int] = None) -> Tuple[Tuple[int, int], ...]:
        """The executor's chunk protocol: spans to feed :meth:`chunk_stencil`."""
        return _chunk_spans(self.num_points, chunk or self.chunk)

    def chunk_stencil(self, lo: int, hi: int):
        """Generate index parts and weights of the points ``[lo, hi)`` lazily.

        Pure function of the borrowed coordinates — chunks can run in any
        order and concurrently (the threaded executor) with bitwise
        deterministic results.
        """
        c = self.coordinates[:, lo:hi]
        base = np.floor(c).astype(np.intp)
        return _derive_chunk_stencil(
            self.method, self.taps, self.shape, self.periodic, base, c - base
        )


#: Any stencil-plan layout; all execute through the same chunked loop.
StencilPlanLike = Union[StencilPlan, LeanStencilPlan, StreamingStencilPlan]


#: Process-wide layout override (the CLI's ``--plan-layout`` path); takes
#: precedence over ``REPRO_PLAN_LAYOUT``, mirrors ``set_default_workers``.
_process_plan_layout: Optional[str] = None


def default_plan_layout() -> str:
    """Active layout setting: process override, then ``REPRO_PLAN_LAYOUT``, then auto.

    A malformed environment value is rejected here with the valid choices —
    a typo must never silently fall through to some other layout (or, worse,
    only surface deep inside a plan build).
    """
    if _process_plan_layout is not None:
        return _process_plan_layout
    raw = os.environ.get(PLAN_LAYOUT_ENV_VAR, DEFAULT_PLAN_LAYOUT)
    layout = raw.strip().lower() or DEFAULT_PLAN_LAYOUT
    if layout not in PLAN_LAYOUT_CHOICES:
        raise ValueError(
            f"{PLAN_LAYOUT_ENV_VAR}={raw!r} is not a valid stencil-plan layout; "
            f"valid choices: {PLAN_LAYOUT_CHOICES}"
        )
    return layout


def set_default_plan_layout(layout: Optional[str]) -> None:
    """Set the process-wide default stencil-plan layout (the CLI path).

    ``None`` clears a previous override (falling back to the environment /
    built-in default — the same contract as
    :func:`repro.runtime.workers.set_default_workers`); anything else must
    be one of :data:`PLAN_LAYOUT_CHOICES` and becomes the default for every
    subsequently built plan.  The environment is never mutated, so child
    processes are unaffected.
    """
    global _process_plan_layout
    if layout is None:
        _process_plan_layout = None
        return
    layout = layout.strip().lower()
    if layout not in PLAN_LAYOUT_CHOICES:
        raise ValueError(
            f"unknown stencil-plan layout {layout!r}; expected one of {PLAN_LAYOUT_CHOICES}"
        )
    _process_plan_layout = layout


def _method_taps(method: str) -> int:
    """Per-axis tap count of *method* (4 for the cubics, 2 for linear)."""
    weight_fn, _ = _METHOD_STENCILS[method]
    return len(weight_fn(np.zeros(1)))


def projected_stencil_nbytes(num_points: int, method: str, layout: str) -> int:
    """Projected payload bytes of a stencil plan *before* building it.

    Exactly the ``nbytes`` the corresponding plan class will report — the
    accounting the auto-layout policy (:mod:`repro.runtime.layout`) decides
    from, and the pool-sizing numbers of the README's memory table.
    """
    if layout not in PLAN_LAYOUTS:
        raise ValueError(
            f"unknown stencil-plan layout {layout!r}; expected one of {PLAN_LAYOUTS}"
        )
    num_points = int(num_points)
    if layout == "fat":
        taps = _method_taps(method)
        return (
            3 * taps * (np.dtype(np.intp).itemsize + np.dtype(np.float64).itemsize) * num_points
        )
    if layout == "lean":
        return 3 * (np.dtype(np.int32).itemsize + np.dtype(np.float64).itemsize) * num_points
    m = min(num_points, STENCIL_CHUNK)
    return 3 * m * (np.dtype(np.intp).itemsize + np.dtype(np.float64).itemsize)


def resolve_plan_layout(
    num_points: int,
    layout: Optional[str] = None,
    method: str = "catmull_rom",
    record: bool = True,
) -> str:
    """Resolve a layout setting to a concrete storage layout for one plan.

    Explicit concrete layouts pass through untouched; ``None`` reads the
    active default; ``"auto"`` asks the budget-aware policy
    (:func:`repro.runtime.layout.select_layout`) with this plan's projected
    lean bytes against the shared plan pool's budget, and records the
    decision in the process-wide decision log.
    """
    if layout is None:
        layout = default_plan_layout()
    if layout not in PLAN_LAYOUT_CHOICES:
        raise ValueError(
            f"unknown stencil-plan layout {layout!r}; expected one of {PLAN_LAYOUT_CHOICES}"
        )
    if layout != AUTO_PLAN_LAYOUT:
        return layout
    from repro.runtime.layout import select_layout
    from repro.runtime.plan_pool import get_plan_pool

    decision = select_layout(
        num_points=num_points,
        projected_lean_bytes=projected_stencil_nbytes(num_points, method, "lean"),
        budget_bytes=get_plan_pool().max_bytes,
        record=record,
    )
    return decision.layout


def plan_layout_cache_token() -> "str | Tuple":
    """Pool-key element identifying the active layout policy.

    Concrete layout settings are their own token.  Under ``auto`` the token
    carries the decision inputs (pool budget, threshold fraction) instead of
    a single resolved layout: different plans of one run may legitimately
    resolve differently (per-owner scatter stencils have different point
    counts), and a pooled plan built under one budget must never satisfy a
    lookup whose auto decision could differ.
    """
    layout = default_plan_layout()
    if layout != AUTO_PLAN_LAYOUT:
        return layout
    from repro.runtime.layout import auto_streaming_fraction
    from repro.runtime.plan_pool import get_plan_pool

    return (AUTO_PLAN_LAYOUT, get_plan_pool().max_bytes, auto_streaming_fraction())


def build_stencil_plan(
    shape: Tuple[int, int, int],
    coordinates: np.ndarray,
    method: str,
    periodic: bool = True,
    layout: Optional[str] = None,
) -> StencilPlanLike:
    """Precompute the gather stencil for fractional index *coordinates*.

    Parameters
    ----------
    shape:
        Shape of the (possibly ghost-extended) array the gather will read.
    coordinates:
        Fractional indices of shape ``(3, M)``.  With ``periodic=True`` they
        must lie in ``[0, N_d)`` per axis and the stencil wraps; with
        ``periodic=False`` the caller guarantees the full stencil lies inside
        the array (the ghosted blocks of :mod:`repro.parallel.scatter`).
    method:
        One of :data:`SUPPORTED_METHODS`.
    layout:
        ``"lean"`` (int32 base + fractional offsets), ``"fat"``
        (materialized index parts and weights), ``"streaming"``
        (chunk-resident: nothing materialized, ``base``/``frac`` generated
        per chunk from the coordinates), ``"auto"`` (budget-aware: lean
        unless this plan's projected lean bytes exceed a fraction of the
        plan-pool budget, see :mod:`repro.runtime.layout`), or ``None``
        for the ``REPRO_PLAN_LAYOUT`` default (itself ``auto`` unless
        overridden).  All layouts gather bitwise identically.
    """
    coordinates = np.asarray(coordinates)
    layout = resolve_plan_layout(coordinates.shape[1], layout, method)
    weight_fn, lead = _METHOD_STENCILS[method]
    taps = len(weight_fn(np.zeros(1)))
    shape = tuple(int(n) for n in shape)
    if layout == "streaming":
        return StreamingStencilPlan(
            method=method,
            taps=taps,
            shape=shape,
            periodic=periodic,
            coordinates=np.ascontiguousarray(coordinates, dtype=np.float64),
        )
    base = np.floor(coordinates).astype(np.intp)
    frac = coordinates - base
    if layout == "lean" and max(shape) <= np.iinfo(np.int32).max:
        return LeanStencilPlan(
            method=method,
            taps=taps,
            shape=shape,
            periodic=periodic,
            base=base.astype(np.int32),
            frac=np.ascontiguousarray(frac),
        )
    index_parts, weights = _derive_chunk_stencil(method, taps, shape, periodic, base, frac)
    return StencilPlan(
        method=method,
        taps=taps,
        index_parts=index_parts,
        weights=weights,
    )


def _as_flat_float64(fields: np.ndarray) -> np.ndarray:
    """Flatten a ``(B, N1, N2, N3)`` stack to the executor's gather layout.

    The stencil executor accumulates in float64 scratch buffers, so lower
    precision inputs are upcast here (the seed kernel did the same).
    """
    return np.ascontiguousarray(fields.reshape(fields.shape[0], -1), dtype=np.float64)


# --------------------------------------------------------------------------- #
# field sources (the tiled/out-of-core side of a gather)
# --------------------------------------------------------------------------- #
@runtime_checkable
class FieldSource(Protocol):
    """Tile provider for out-of-core gathers (the field-side chunk protocol).

    A field source serves the *field bytes* of a gather the way the stencil
    plans serve the stencil bytes: on demand, one executor chunk at a time.
    The unit of loading is an **axis-0 plane tile** — the set of
    ``(N2, N3)`` planes one chunk's stencil touches — because grid-ordered
    departure points (the semi-Lagrangian access pattern) keep consecutive
    chunks inside a narrow plane band, so the resident field bytes are
    bounded by the tile a chunk needs, never the grid size.

    Implementations: :class:`ArrayFieldSource` wraps an in-memory stack
    (the executor then only ever *copies* a tile-sized view at a time); a
    memory-mapped source for on-disk >512^3 volumes plugs in through the
    same three members without touching the executor.
    """

    @property
    def shape(self) -> Tuple[int, int, int]:
        """Shape of the (possibly ghost-extended) array being gathered from."""
        ...

    @property
    def num_fields(self) -> int:
        """Batch size ``B`` of the stacked fields this source serves."""
        ...

    def load_planes(self, planes: np.ndarray) -> np.ndarray:
        """Materialize the axis-0 planes *planes* as a ``(B, P, N2, N3)`` tile.

        ``planes`` is sorted and unique; the returned tile must be float64
        (matching the resident executor's upcast) and contiguous.
        """
        ...

    def load_all(self) -> np.ndarray:
        """Materialize the whole ``(B, N1, N2, N3)`` stack (fallback paths).

        Engines that cannot gather from tiles (``map_coordinates``, the
        global B-spline prefilter) fall back to this; tiled executions never
        call it.
        """
        ...


@dataclass(frozen=True)
class SourceStats:
    """Snapshot of field-source traffic (supports ``-`` for per-run deltas).

    ``loads``/``planes_loaded``/``bytes_loaded`` count tile materializations
    by the *leaf* sources (array, memmap, HDF5, spooled) — the traffic that
    would hit the disk for an out-of-core source.  The cache/prefetch
    counters are contributed by the wrapper sources of
    :mod:`repro.transport.sources`.  ``peak_tile_bytes`` is a gauge (the
    largest single tile seen), so — like the plan pool's gauges — it is not
    differenced by subtraction.
    """

    loads: int = 0
    planes_loaded: int = 0
    bytes_loaded: int = 0
    peak_tile_bytes: int = 0
    tile_cache_hits: int = 0
    tile_cache_misses: int = 0
    prefetch_issued: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0

    def __sub__(self, other: "SourceStats") -> "SourceStats":
        return SourceStats(
            loads=self.loads - other.loads,
            planes_loaded=self.planes_loaded - other.planes_loaded,
            bytes_loaded=self.bytes_loaded - other.bytes_loaded,
            peak_tile_bytes=self.peak_tile_bytes,
            tile_cache_hits=self.tile_cache_hits - other.tile_cache_hits,
            tile_cache_misses=self.tile_cache_misses - other.tile_cache_misses,
            prefetch_issued=self.prefetch_issued - other.prefetch_issued,
            prefetch_hits=self.prefetch_hits - other.prefetch_hits,
            prefetch_misses=self.prefetch_misses - other.prefetch_misses,
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "loads": self.loads,
            "planes_loaded": self.planes_loaded,
            "bytes_loaded": self.bytes_loaded,
            "peak_tile_bytes": self.peak_tile_bytes,
            "tile_cache_hits": self.tile_cache_hits,
            "tile_cache_misses": self.tile_cache_misses,
            "prefetch_issued": self.prefetch_issued,
            "prefetch_hits": self.prefetch_hits,
            "prefetch_misses": self.prefetch_misses,
        }


class FieldSourceLog:
    """Process-wide aggregator of field-source traffic.

    Every :class:`FieldSourceBase` source reports its tile loads here (and
    the cache/prefetch wrappers their hit/miss counters), so per-run source
    statistics can be surfaced — in :class:`~repro.core.registration.
    RegistrationResult`, the verbose CLI report and the service artifacts —
    without plumbing source objects through the solver stack.  The same
    pattern as :class:`repro.runtime.layout.LayoutDecisionLog`; snapshot
    deltas (``log.snapshot() - before``) give per-run numbers.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats = SourceStats()

    def record_load(self, num_planes: int, nbytes: int) -> None:
        with self._lock:
            s = self._stats
            self._stats = dataclass_replace(
                s,
                loads=s.loads + 1,
                planes_loaded=s.planes_loaded + int(num_planes),
                bytes_loaded=s.bytes_loaded + int(nbytes),
                peak_tile_bytes=max(s.peak_tile_bytes, int(nbytes)),
            )

    def record_cache(self, hit: bool) -> None:
        with self._lock:
            s = self._stats
            if hit:
                self._stats = dataclass_replace(s, tile_cache_hits=s.tile_cache_hits + 1)
            else:
                self._stats = dataclass_replace(s, tile_cache_misses=s.tile_cache_misses + 1)

    def record_prefetch(self, issued: int = 0, hits: int = 0, misses: int = 0) -> None:
        with self._lock:
            s = self._stats
            self._stats = dataclass_replace(
                s,
                prefetch_issued=s.prefetch_issued + int(issued),
                prefetch_hits=s.prefetch_hits + int(hits),
                prefetch_misses=s.prefetch_misses + int(misses),
            )

    def snapshot(self) -> SourceStats:
        with self._lock:
            return self._stats

    @property
    def total_loads(self) -> int:
        with self._lock:
            return self._stats.loads

    def reset(self) -> None:
        with self._lock:
            self._stats = SourceStats()


_field_source_log = FieldSourceLog()


def field_source_log() -> FieldSourceLog:
    """The process-wide field-source traffic log."""
    return _field_source_log


def _collect_field_source_metrics() -> Dict[str, Dict[str, int]]:
    """Pull collector publishing the field-source log into the registry."""
    stats = _field_source_log.snapshot().as_dict()
    return {f"field_source.{key}": {"": value} for key, value in stats.items()}


get_metrics_registry().register_collector(
    "field_sources", _collect_field_source_metrics
)


#: Monotonic identity tokens for in-memory sources.  Deliberately not
#: ``id()``: object ids are reused after garbage collection, and a reused id
#: inside a tile-cache key would serve another array's stale tiles.
_SOURCE_TOKENS = itertools.count(1)


class FieldSourceBase:
    """Shared accounting base of the concrete :class:`FieldSource` classes.

    Owns the traffic counters every source reports (``loads``,
    ``planes_loaded``, ``bytes_loaded``, ``peak_tile_bytes``), their
    thread-safe recording (the threaded executor loads tiles concurrently),
    :meth:`reset_stats`, and the :attr:`fingerprint` identity that keys this
    source's tiles in the pool-budgeted tile cache.  In-memory sources get a
    process-unique monotonic token; file-backed sources override
    :attr:`fingerprint` with ``(path, mtime, size)`` content identity so
    that re-opening the same file warms the same cache entries.
    """

    def __init__(self) -> None:
        self._stats_lock = threading.Lock()
        self._memory_token = next(_SOURCE_TOKENS)
        self.loads = 0
        self.planes_loaded = 0
        self.bytes_loaded = 0
        self.peak_tile_bytes = 0

    @property
    def fingerprint(self) -> Tuple:
        """Identity of this source's tiles in the shared tile cache."""
        return ("memory", self._memory_token)

    def reset_stats(self) -> None:
        """Zero the traffic counters (the per-run measurement idiom)."""
        with self._stats_lock:
            self.loads = 0
            self.planes_loaded = 0
            self.bytes_loaded = 0
            self.peak_tile_bytes = 0

    def stats(self) -> Dict[str, int]:
        """Current counters as a plain dictionary (JSON-ready)."""
        with self._stats_lock:
            return {
                "loads": self.loads,
                "planes_loaded": self.planes_loaded,
                "bytes_loaded": self.bytes_loaded,
                "peak_tile_bytes": self.peak_tile_bytes,
            }

    def _record_load(self, num_planes: int, nbytes: int) -> None:
        with self._stats_lock:
            self.loads += 1
            self.planes_loaded += int(num_planes)
            self.bytes_loaded += int(nbytes)
            if nbytes > self.peak_tile_bytes:
                self.peak_tile_bytes = int(nbytes)
        _field_source_log.record_load(num_planes, nbytes)


class ArrayFieldSource(FieldSourceBase):
    """ndarray-backed :class:`FieldSource` with tile accounting.

    Wraps a ``(B, N1, N2, N3)`` stack (a single ``(N1, N2, N3)`` field is
    promoted to a one-field batch) and serves plane tiles as float64 copies
    — exactly the values the resident executor's upcast produces, which is
    what keeps tiled gathers bitwise identical to resident ones.

    The source counts its traffic (``loads``, ``planes_loaded``,
    ``bytes_loaded``, ``peak_tile_bytes``): for an in-memory array the
    backing stack is of course resident anyway, but ``peak_tile_bytes`` is
    precisely the working set a memory-mapped source would keep in RAM, so
    the out-of-core memory pins assert on it.  :meth:`reset_stats` zeroes
    the counters between measurements.
    """

    def __init__(self, fields: np.ndarray) -> None:
        super().__init__()
        fields = np.asarray(fields)
        if fields.ndim == 3:
            fields = fields[None]
        if fields.ndim != 4:
            raise ValueError(
                f"fields must be stacked as (B, N1, N2, N3) or a single "
                f"(N1, N2, N3) field, got shape {fields.shape}"
            )
        self._fields = fields

    @property
    def shape(self) -> Tuple[int, int, int]:
        return self._fields.shape[1:]

    @property
    def num_fields(self) -> int:
        return self._fields.shape[0]

    def load_planes(self, planes: np.ndarray) -> np.ndarray:
        tile = np.ascontiguousarray(self._fields[:, planes], dtype=np.float64)
        self._record_load(len(planes), tile.nbytes)
        return tile

    def load_all(self) -> np.ndarray:
        return np.ascontiguousarray(self._fields, dtype=np.float64)


def is_field_source(fields) -> bool:
    """True when *fields* implements :class:`FieldSource` (tiled dispatch).

    The single source of truth for the tiled/resident dispatch rule used by
    the executor and every frontend: an ndarray (whose ``shape`` attribute
    would satisfy a naive protocol check) is always the resident path.
    """
    return isinstance(fields, FieldSource) and not isinstance(fields, np.ndarray)


def as_field_source(fields: "np.ndarray | FieldSource") -> FieldSource:
    """Wrap an ndarray stack in an :class:`ArrayFieldSource` (sources pass through)."""
    if is_field_source(fields):
        return fields
    return ArrayFieldSource(fields)


def _run_tap_loop(flat_fields, index_parts, weights, taps: int, acc: np.ndarray) -> None:
    """The tap loop of one point chunk, accumulating into ``acc``.

    This is *the* gather arithmetic: the resident and the tiled executor
    both run exactly this sequence of operations (tiling only remaps the
    axis-0 index parts into tile coordinates before calling it), which is
    what makes tiled gathers bitwise identical to resident ones.
    """
    i0, i1, i2 = index_parts
    w0, w1, w2 = weights
    num_fields = flat_fields.shape[0]
    m = acc.shape[1]
    ib = np.empty(m, dtype=np.intp)
    gi = np.empty(m, dtype=np.intp)
    wb = np.empty(m)
    wt = np.empty(m)
    gb = np.empty(m)
    tb = np.empty(m)
    for a in range(taps):
        ia = i0[a]
        wa = w0[a]
        for b in range(taps):
            np.add(ia, i1[b], out=ib)
            np.multiply(wa, w1[b], out=wb)
            for c in range(taps):
                np.add(ib, i2[c], out=gi)
                np.multiply(wb, w2[c], out=wt)
                for f in range(num_fields):
                    np.take(flat_fields[f], gi, out=gb)
                    np.multiply(wt, gb, out=tb)
                    acc[f] += tb


def _execute_stencil_chunk(
    flat_fields: np.ndarray, plan: StencilPlanLike, lo: int, hi: int, out: np.ndarray
) -> None:
    """Run the tap loop of one point chunk, accumulating into ``out[:, lo:hi]``.

    All scratch arrays of the chunk stay in cache while the tap loop runs;
    chunks write disjoint output slices, so any number of chunks can execute
    concurrently (and in any order) with bitwise-deterministic results.
    """
    index_parts, weights = plan.chunk_stencil(lo, hi)
    _run_tap_loop(flat_fields, index_parts, weights, plan.taps, out[:, lo:hi])


def _chunk_planes(i0: np.ndarray, stride0: int) -> Tuple[np.ndarray, np.ndarray]:
    """Plane ids and their sorted-unique set for one chunk's axis-0 parts.

    The single source of truth for "which planes does this chunk touch":
    :func:`_load_chunk_tile` loads exactly these planes, and
    :func:`chunk_plane_schedule` precomputes them per chunk for the
    prefetcher — the two must agree bit for bit or a prefetched tile would
    never match the executor's request.
    """
    plane_ids = np.asarray(i0) // stride0
    return plane_ids, np.unique(plane_ids)


def chunk_plane_schedule(
    shape: Tuple[int, int, int], plan: StencilPlanLike, chunk: Optional[int] = None
) -> Tuple[Tuple[Tuple[int, int], Tuple[int, ...]], ...]:
    """The tiled executor's plane requests, computed ahead of execution.

    Returns one ``((lo, hi), planes)`` entry per executor chunk, where
    ``planes`` is exactly the (sorted, unique) axis-0 plane tuple
    :func:`_load_chunk_tile` will pass to ``source.load_planes`` for that
    chunk — the stencil plan fully determines the access pattern, so the
    whole tile schedule is known before the first gather.  This is what the
    overlapped prefetcher (:class:`repro.transport.sources.
    PrefetchingFieldSource`) keys its lookahead on.
    """
    stride0 = int(shape[1]) * int(shape[2])
    schedule = []
    for lo, hi in plan.iter_chunks(chunk):
        (i0, _, _), _ = plan.chunk_stencil(lo, hi)
        _, planes = _chunk_planes(i0, stride0)
        schedule.append(((lo, hi), tuple(int(p) for p in planes)))
    return tuple(schedule)


def _load_chunk_tile(source: FieldSource, plan: StencilPlanLike, lo: int, hi: int):
    """Load one chunk's plane tile and remap its stencil into tile coordinates.

    The axis-0 index parts already carry the flattened contribution
    ``plane * N2 * N3``; the planes a chunk touches are their unique
    quotients (:func:`_chunk_planes`), the tile is those planes loaded from
    the source, and the remap replaces each plane id by its position in the
    tile (the tile's inner strides equal the field's, so axes 1/2 need no
    remapping).  The weights and the gathered float64 values are untouched,
    so the tap loop runs bit-for-bit the resident arithmetic.
    """
    (i0, i1, i2), weights = plan.chunk_stencil(lo, hi)
    stride0 = source.shape[1] * source.shape[2]
    plane_ids, planes = _chunk_planes(i0, stride0)
    tile = source.load_planes(planes)
    flat_tile = tile.reshape(tile.shape[0], -1)
    i0_tile = np.searchsorted(planes, plane_ids) * stride0
    return flat_tile, (i0_tile, i1, i2), weights


def _execute_tiled_chunk(
    source: FieldSource, plan: StencilPlanLike, lo: int, hi: int, out: np.ndarray
) -> None:
    """Tiled twin of :func:`_execute_stencil_chunk`: load the tile, then gather."""
    flat_tile, index_parts, weights = _load_chunk_tile(source, plan, lo, hi)
    _run_tap_loop(flat_tile, index_parts, weights, plan.taps, out[:, lo:hi])


def execute_stencil_plan(
    flat_fields: "np.ndarray | FieldSource",
    plan: StencilPlanLike,
    chunk: Optional[int] = None,
    workers: Optional[int] = None,
) -> np.ndarray:
    """Gather a ``(B, num_grid_points)`` stack through a stencil plan.

    Cache-blocked over point chunks: all scratch arrays of one chunk stay in
    cache while the tap loop runs, so each batched gather streams the plan
    arrays exactly once and reads the field with the locality of the
    (grid-ordered) departure points.  One index computation serves every
    field of the batch — the batching win of ``interpolate_many``.

    Every plan layout feeds this loop through the same chunk protocol —
    ``plan.iter_chunks(chunk)`` yields the spans, ``plan.chunk_stencil(lo,
    hi)`` hands back that chunk's index parts and weights: fat plans return
    views, lean plans re-derive from their stored ``base``/``frac``, and
    streaming plans generate ``base``/``frac`` on the fly from the departure
    coordinates.  All three run the fat build's exact arithmetic, so every
    layout gathers bitwise identically.

    Passing a :class:`FieldSource` instead of a flattened stack runs the
    executor in **tiled** mode: the field is never required resident — each
    chunk loads only the axis-0 plane tile its stencil touches
    (:func:`_load_chunk_tile`) and gathers from it with remapped indices.
    Resident field bytes are then bounded by the tile/chunk sizes instead
    of the grid size (the out-of-core story for the fields, matching what
    the streaming layout does for the stencils), and the gathered bits are
    identical to the resident path on every layout.

    The chunks are embarrassingly parallel (disjoint output slices) and are
    dispatched to the shared runtime thread pool when *workers* — resolved
    through :func:`repro.runtime.workers.resolve_workers` under the
    ``REPRO_INTERP_WORKERS`` / ``REPRO_WORKERS`` policy — exceeds one.  The
    result is bitwise independent of the worker count, the chunk size and
    the tiled/resident mode.
    """
    tiled = is_field_source(flat_fields)
    if tiled:
        # disk-backed sources gather through the out-of-core pipeline
        # (overlapped prefetch + pool-budgeted tile cache); resident and
        # already-wrapped sources pass through untouched.  Imported lazily:
        # sources.py builds on this module.
        from repro.transport.sources import plan_scoped_source

        flat_fields = plan_scoped_source(flat_fields, plan, chunk)
    num_fields = flat_fields.num_fields if tiled else flat_fields.shape[0]
    run_chunk = _execute_tiled_chunk if tiled else _execute_stencil_chunk
    out = np.zeros((num_fields, plan.num_points))
    spans = plan.iter_chunks(chunk)
    if workers is None:
        workers = resolve_workers("interp")
    # one aggregated span per plan execution — never per chunk, which
    # would swamp the recorder at thousands of chunks per gather
    with trace_span(
        "stencil.execute",
        num_points=plan.num_points,
        fields=num_fields,
        chunks=len(spans),
        workers=workers,
        tiled=tiled,
    ):
        if workers > 1 and len(spans) > 1:
            executor = get_executor(workers)
            list(
                executor.map(
                    lambda span: run_chunk(flat_fields, plan, span[0], span[1], out),
                    spans,
                )
            )
        else:
            for lo, hi in spans:
                run_chunk(flat_fields, plan, lo, hi, out)
    return out


# --------------------------------------------------------------------------- #
# gather plans (frontend-facing)
# --------------------------------------------------------------------------- #
@dataclass
class GatherPlan:
    """Cached interpolation data for one fixed set of off-grid points.

    Built once per point set (per velocity, in the semi-Lagrangian scheme)
    by :meth:`repro.transport.interpolation.PeriodicInterpolator.plan` and
    reused by every field interpolated at those points.  ``payload`` is the
    backend-specific stencil (``None`` for engines that cannot cache one,
    e.g. ``map_coordinates``; those still reuse the wrapped coordinates).
    """

    method: str
    backend_name: str
    grid_shape: Tuple[int, int, int]
    output_shape: Tuple[int, ...]
    coordinates: np.ndarray
    payload: Optional[StencilPlanLike]

    @property
    def num_points(self) -> int:
        return self.coordinates.shape[1]

    @property
    def is_cached(self) -> bool:
        """True when the stencil (indices + weights) is precomputed."""
        return self.payload is not None

    @property
    def nbytes(self) -> int:
        """Exact array payload in bytes (plan-pool accounting).

        A streaming payload normally borrows this plan's own coordinate
        buffer (zero copy); if a build ever had to copy (non-contiguous or
        non-float64 input), the copy is accounted here too.
        """
        payload_bytes = self.payload.nbytes if self.payload is not None else 0
        if (
            isinstance(self.payload, StreamingStencilPlan)
            and self.payload.coordinates is not self.coordinates
        ):
            payload_bytes += self.payload.coordinates.nbytes
        return self.coordinates.nbytes + payload_bytes


# --------------------------------------------------------------------------- #
# backends
# --------------------------------------------------------------------------- #
@runtime_checkable
class InterpolationBackend(Protocol):
    """Minimal gather interface every interpolation backend implements.

    ``fields`` is always a stacked ``(B, N1, N2, N3)`` batch so that engines
    which can amortize index computation across fields (the stencil
    executors) receive the whole batch in one call.
    """

    name: str

    def supports_plan(self, method: str) -> bool:
        """True when :meth:`build_plan` caches a stencil for *method*."""
        ...

    def build_plan(
        self, grid_shape: Tuple[int, int, int], coordinates: np.ndarray, method: str
    ) -> Optional[StencilPlanLike]:
        """Precompute the reusable stencil payload (or ``None``)."""
        ...

    def gather(
        self,
        fields: np.ndarray,
        coordinates: np.ndarray,
        payload: Optional[StencilPlanLike],
        method: str,
    ) -> np.ndarray:
        """Interpolate a ``(B, N1, N2, N3)`` stack; returns ``(B, M)``."""
        ...


class ScipyInterpolationBackend:
    """:func:`scipy.ndimage.map_coordinates` engine (the seed implementation).

    ``cubic_bspline`` and ``linear`` call ``map_coordinates`` per field
    (bit-for-bit the seed numerics; no stencil can be cached because the
    spline prefilter and the weight evaluation live inside the C call), so a
    plan only reuses the wrapped coordinates.  ``catmull_rom`` — which scipy
    has no native kernel for — runs through the shared stencil executor and
    is fully plannable.
    """

    name = "scipy"

    _ORDERS = {"cubic_bspline": 3, "linear": 1}

    def __init__(self) -> None:
        if not self.is_available():  # pragma: no cover - scipy is a hard dep
            raise BackendUnavailableError("scipy is not installed")
        from scipy import ndimage

        self._ndimage = ndimage

    @classmethod
    def is_available(cls) -> bool:
        try:
            from scipy import ndimage  # noqa: F401
        except ImportError:  # pragma: no cover - scipy is a hard dep
            return False
        return True

    def supports_plan(self, method: str) -> bool:
        return method == "catmull_rom"

    def build_plan(
        self, grid_shape: Tuple[int, int, int], coordinates: np.ndarray, method: str
    ) -> Optional[StencilPlanLike]:
        if method == "catmull_rom":
            return build_stencil_plan(grid_shape, coordinates, method)
        return None

    def gather(
        self,
        fields: "np.ndarray | FieldSource",
        coordinates: np.ndarray,
        payload: Optional[StencilPlanLike],
        method: str,
    ) -> np.ndarray:
        if method == "catmull_rom":
            if isinstance(fields, np.ndarray):
                plan = payload or build_stencil_plan(fields.shape[-3:], coordinates, method)
                return execute_stencil_plan(_as_flat_float64(fields), plan)
            # tiled mode: gather straight from the source's plane tiles
            plan = payload or build_stencil_plan(fields.shape, coordinates, method)
            return execute_stencil_plan(fields, plan)
        if not isinstance(fields, np.ndarray):
            # map_coordinates evaluates prefilter + weights inside one C
            # call and cannot gather from tiles; materialize the stack
            fields = fields.load_all()
        order = self._ORDERS[method]
        return np.stack(
            [
                self._ndimage.map_coordinates(field, coordinates, order=order, mode="grid-wrap")
                for field in fields
            ],
            axis=0,
        )


class NumpyInterpolationBackend:
    """Vectorized stencil gather engine; every kernel is plannable.

    ``catmull_rom`` and ``linear`` gather the raw field values directly.
    ``cubic_bspline`` first runs the exact periodic prefilter of
    :func:`periodic_bspline_prefilter` (a per-field cost no plan can avoid —
    the coefficients depend on the field) and then gathers with the
    B-spline basis weights, agreeing with the scipy engine to machine
    precision while reusing the cached stencil across fields.
    """

    name = "numpy"

    @classmethod
    def is_available(cls) -> bool:
        return True

    def supports_plan(self, method: str) -> bool:
        return method in SUPPORTED_METHODS

    def build_plan(
        self, grid_shape: Tuple[int, int, int], coordinates: np.ndarray, method: str
    ) -> Optional[StencilPlanLike]:
        return build_stencil_plan(grid_shape, coordinates, method)

    def _prepare(self, fields: np.ndarray, method: str) -> np.ndarray:
        if method == "cubic_bspline":
            fields = periodic_bspline_prefilter(fields)
        return _as_flat_float64(fields)

    def _prepare_source(self, fields: "np.ndarray | FieldSource", method: str):
        """Executor input for *fields*: flat stack (resident) or source (tiled).

        ``cubic_bspline`` gathers from *prefiltered coefficients*, and the
        prefilter is a global Fourier solve — the coefficient stack must be
        materialized once per batch regardless of tiling (the per-field cost
        no plan can avoid).  The gather itself still runs tiled over the
        coefficient source, so the executor-side working set stays
        tile-bounded; fully out-of-core transport uses ``catmull_rom``
        (the paper's distributed kernel), which needs no prefilter.
        """
        if isinstance(fields, np.ndarray):
            return self._prepare(fields, method)
        if method == "cubic_bspline":
            return ArrayFieldSource(periodic_bspline_prefilter(fields.load_all()))
        return fields

    def gather(
        self,
        fields: "np.ndarray | FieldSource",
        coordinates: np.ndarray,
        payload: Optional[StencilPlanLike],
        method: str,
    ) -> np.ndarray:
        shape = fields.shape[-3:] if isinstance(fields, np.ndarray) else fields.shape
        plan = payload or build_stencil_plan(shape, coordinates, method)
        return execute_stencil_plan(self._prepare_source(fields, method), plan)


class NumbaInterpolationBackend(NumpyInterpolationBackend):
    """JIT-compiled stencil executor (auto-detected ``numba`` engine).

    Shares the plan layout and the B-spline prefilter with the ``numpy``
    backend; only the tap loop is replaced by a compiled per-point kernel,
    which removes the remaining array-temporary traffic entirely.
    """

    name = "numba"

    def __init__(self) -> None:
        if not self.is_available():
            raise BackendUnavailableError(
                "numba is not installed; install the 'numba' extra "
                "(pip install repro-sc16-registration[numba]) to enable this backend"
            )
        import numba

        @numba.njit(parallel=True)
        def _gather(flat_fields, i0, i1, i2, w0, w1, w2, out):
            taps = w0.shape[0]
            num_fields = flat_fields.shape[0]
            num_points = i0.shape[1]
            for m in numba.prange(num_points):
                for a in range(taps):
                    for b in range(taps):
                        iab = i0[a, m] + i1[b, m]
                        wab = w0[a, m] * w1[b, m]
                        for c in range(taps):
                            idx = iab + i2[c, m]
                            w = wab * w2[c, m]
                            for f in range(num_fields):
                                out[f, m] += w * flat_fields[f, idx]

        self._kernel = _gather

    @classmethod
    def is_available(cls) -> bool:
        try:
            import numba  # noqa: F401
        except ImportError:
            return False
        return True

    def gather(
        self,
        fields: "np.ndarray | FieldSource",
        coordinates: np.ndarray,
        payload: Optional[StencilPlanLike],
        method: str,
    ) -> np.ndarray:
        shape = fields.shape[-3:] if isinstance(fields, np.ndarray) else fields.shape
        plan = payload or build_stencil_plan(shape, coordinates, method)
        prepared = self._prepare_source(fields, method)
        if not isinstance(prepared, np.ndarray):
            # tiled mode: per chunk, load the plane tile and hand the
            # remapped stencil to the JIT kernel (disjoint output slices);
            # the per-point tap arithmetic is identical to the resident
            # path, so tiled numba gathers are bitwise unchanged too
            from repro.transport.sources import plan_scoped_source

            prepared = plan_scoped_source(prepared, plan)
            out = np.zeros((prepared.num_fields, plan.num_points))
            for lo, hi in plan.iter_chunks():
                flat_tile, (i0, i1, i2), (w0, w1, w2) = _load_chunk_tile(
                    prepared, plan, lo, hi
                )
                self._kernel(flat_tile, i0, i1, i2, w0, w1, w2, out[:, lo:hi])
            return out
        flat = prepared
        out = np.zeros((flat.shape[0], plan.num_points))
        if isinstance(plan, StencilPlan):
            i0, i1, i2 = plan.index_parts
            w0, w1, w2 = plan.weights
            self._kernel(flat, i0, i1, i2, w0, w1, w2, out)
        else:
            # lean/streaming path: materialize one cache-sized chunk at a
            # time and hand it to the JIT kernel (disjoint output slices)
            for lo, hi in plan.iter_chunks():
                (i0, i1, i2), (w0, w1, w2) = plan.chunk_stencil(lo, hi)
                self._kernel(flat, i0, i1, i2, w0, w1, w2, out[:, lo:hi])
        return out


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
_REGISTRY: Dict[str, Type] = {}
_INSTANCES: Dict[str, InterpolationBackend] = {}


def register_backend(name: str, cls: Type) -> Type:
    """Register a backend class under *name* (overwrites a prior entry).

    Later PRs (GPU gathers, distributed plan reuse) plug in through this
    hook, exactly like :func:`repro.spectral.backends.register_backend`.
    """
    _REGISTRY[name.lower()] = cls
    _INSTANCES.pop(name.lower(), None)
    return cls


register_backend("scipy", ScipyInterpolationBackend)
register_backend("numpy", NumpyInterpolationBackend)
register_backend("numba", NumbaInterpolationBackend)


def registered_backends() -> Tuple[str, ...]:
    """Names of all registered interpolation backends, available or not."""
    return tuple(sorted(_REGISTRY))


def available_backends() -> Tuple[str, ...]:
    """Names of the registered backends that can run in this environment."""
    return tuple(name for name in registered_backends() if _REGISTRY[name].is_available())


def default_backend_name() -> str:
    """Backend selected by ``REPRO_INTERP_BACKEND`` or the ``"scipy"`` default.

    A name the registry does not know is rejected here with the valid
    choices and the variable that carried it — an environment typo must
    produce a clear error, never silently select something else.
    """
    raw = os.environ.get(BACKEND_ENV_VAR, DEFAULT_BACKEND)
    name = raw.strip().lower() or DEFAULT_BACKEND
    if name not in _REGISTRY:
        raise ValueError(
            f"{BACKEND_ENV_VAR}={raw!r} is not a registered interpolation "
            f"backend; valid choices: {registered_backends()}"
        )
    return name


def get_backend(spec: "str | InterpolationBackend | None" = None) -> InterpolationBackend:
    """Resolve *spec* to an interpolation backend instance.

    Parameters
    ----------
    spec:
        ``None`` (environment variable or the ``"scipy"`` default), a
        registered backend name, or an already-constructed backend instance
        (returned unchanged, enabling custom engines without registration).
    """
    if spec is None:
        spec = default_backend_name()
    if not isinstance(spec, str):
        if not isinstance(spec, InterpolationBackend):
            raise TypeError(
                f"interpolation backend must be a registered name or an object "
                f"implementing the InterpolationBackend protocol, got {type(spec).__name__}"
            )
        return spec
    name = spec.strip().lower()
    if name in _INSTANCES:
        return _INSTANCES[name]
    try:
        cls = _REGISTRY[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown interpolation backend {spec!r}; "
            f"registered backends: {registered_backends()}"
        ) from exc
    if not cls.is_available():
        raise BackendUnavailableError(
            f"interpolation backend {name!r} is registered but not available in "
            f"this environment; available backends: {available_backends()}"
        )
    instance = cls()
    _INSTANCES[name] = instance
    return instance
