"""Structured tracing spans with a near-zero-cost disabled path.

``trace_span(name, **attrs)`` is the single instrumentation primitive used
throughout the codebase.  When tracing is disabled (the default) it checks
one module-level boolean and returns a shared no-op context manager —
no span object is allocated and the recorder is never touched, so the hot
kernels (FFT transforms, interpolation gathers, PCG matvecs) pay only a
function call and a branch.  When enabled, each span records:

``name``
    Dotted phase name (``"fft.forward"``, ``"interp.gather"``,
    ``"newton.iteration"``, ...).
``start`` / ``duration``
    Seconds on the monotonic clock (:func:`time.perf_counter`), relative
    to the recorder epoch.
``thread_id`` / ``span_id`` / ``parent_id``
    Nesting is tracked per thread so concurrent worker-pool spans nest
    correctly under their own thread's stack.
``count``
    How many logical operations the span covers (default 1).  Batched
    frontends (``FourierTransform.forward_batch``, the interpolation
    gather) set ``count`` to the batch size so span counts cross-check
    the existing work counters exactly: the sum of ``fft.forward`` span
    counts equals ``FFTCounters.forward``, and the sum of
    ``interp.gather`` counts equals the 4·nt sweep counter.
``attrs``
    Free-form JSON-safe attributes (grid shape, batch points, tag, ...).

Spans land in a thread-safe process-wide :class:`TraceRecorder` and can be
exported as Chrome trace-event JSON (:func:`write_chrome_trace`), loadable
in Perfetto / ``chrome://tracing``.

This module imports only the standard library so every layer of the
codebase can use it without import cycles.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "TRACE_ENV_VAR",
    "TRACE_OUT_ENV_VAR",
    "TraceSpan",
    "TraceRecorder",
    "trace_span",
    "tracing_enabled",
    "enable_tracing",
    "disable_tracing",
    "get_trace_recorder",
    "env_trace_enabled",
    "env_trace_out",
    "chrome_trace_document",
    "write_chrome_trace",
]

TRACE_ENV_VAR = "REPRO_TRACE"
TRACE_OUT_ENV_VAR = "REPRO_TRACE_OUT"

_TRUE_VALUES = frozenset({"1", "true", "yes", "on"})
_FALSE_VALUES = frozenset({"0", "false", "no", "off", ""})


@dataclass(frozen=True)
class TraceSpan:
    """One finished span."""

    name: str
    start: float
    duration: float
    thread_id: int
    span_id: int
    parent_id: Optional[int]
    count: int = 1
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "thread_id": self.thread_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "count": self.count,
            "attrs": dict(self.attrs),
        }


class TraceRecorder:
    """Thread-safe sink for finished spans.

    One recorder exists per process (:func:`get_trace_recorder`); tests may
    construct private instances.  ``start`` values are relative to the
    recorder's epoch, taken when the recorder is created or cleared.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: List[TraceSpan] = []
        self._epoch = time.perf_counter()
        self._ids = itertools.count(1)

    @property
    def epoch(self) -> float:
        return self._epoch

    def next_span_id(self) -> int:
        return next(self._ids)

    def record(self, span: TraceSpan) -> None:
        with self._lock:
            self._spans.append(span)

    def spans(self) -> List[TraceSpan]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._epoch = time.perf_counter()
            self._ids = itertools.count(1)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # -- aggregation ---------------------------------------------------

    def span_counts(self) -> Dict[str, int]:
        """Total logical operation count per span name.

        Sums each span's ``count`` field, so batched spans contribute
        their batch size and the totals line up with the existing work
        counters (FFT transforms, interpolation sweeps).
        """
        counts: Dict[str, int] = {}
        for span in self.spans():
            counts[span.name] = counts.get(span.name, 0) + span.count
        return counts

    def span_durations(self) -> Dict[str, float]:
        """Total wall-clock seconds per span name (self time not removed)."""
        durations: Dict[str, float] = {}
        for span in self.spans():
            durations[span.name] = durations.get(span.name, 0.0) + span.duration
        return durations

    def summary(self) -> List[Dict[str, Any]]:
        """Per-name aggregate rows sorted by descending total duration."""
        rows: Dict[str, Dict[str, Any]] = {}
        for span in self.spans():
            row = rows.get(span.name)
            if row is None:
                rows[span.name] = {
                    "name": span.name,
                    "spans": 1,
                    "count": span.count,
                    "total_seconds": span.duration,
                    "max_seconds": span.duration,
                }
            else:
                row["spans"] += 1
                row["count"] += span.count
                row["total_seconds"] += span.duration
                row["max_seconds"] = max(row["max_seconds"], span.duration)
        return sorted(rows.values(), key=lambda r: -r["total_seconds"])


_recorder = TraceRecorder()
_enabled = False
_stacks = threading.local()


def get_trace_recorder() -> TraceRecorder:
    """Return the process-wide span recorder."""
    return _recorder


def tracing_enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _enabled


def enable_tracing() -> None:
    """Start recording spans into the process-wide recorder."""
    global _enabled
    _enabled = True


def disable_tracing() -> None:
    """Stop recording spans (already-recorded spans are kept)."""
    global _enabled
    _enabled = False


def env_trace_enabled(environ: Optional[Dict[str, str]] = None) -> Optional[bool]:
    """Strictly parse ``REPRO_TRACE``.

    Returns ``None`` when unset, ``True``/``False`` for recognised values,
    and raises :class:`ValueError` naming the variable otherwise — the
    same clean-error contract as the backend/worker env vars.
    """
    env = os.environ if environ is None else environ
    raw = env.get(TRACE_ENV_VAR)
    if raw is None:
        return None
    value = raw.strip().lower()
    if value in _TRUE_VALUES:
        return True
    if value in _FALSE_VALUES:
        return False
    raise ValueError(
        f"{TRACE_ENV_VAR} must be a boolean flag (1/0/true/false/yes/no/on/off), "
        f"got {raw!r}"
    )


def env_trace_out(environ: Optional[Dict[str, str]] = None) -> Optional[str]:
    """Return the ``REPRO_TRACE_OUT`` path, or ``None`` when unset/empty."""
    env = os.environ if environ is None else environ
    raw = env.get(TRACE_OUT_ENV_VAR)
    if raw is None or not raw.strip():
        return None
    return raw.strip()


class _NullSpan:
    """Shared no-op context manager returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set_attr(self, key: str, value: Any) -> None:
        return None

    def set_count(self, count: int) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager recording one span on exit."""

    __slots__ = ("name", "count", "attrs", "_start", "_span_id", "_parent_id")

    def __init__(self, name: str, count: int, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.count = count
        self.attrs = attrs
        self._start = 0.0
        self._span_id = 0
        self._parent_id: Optional[int] = None

    def set_attr(self, key: str, value: Any) -> None:
        """Attach an attribute discovered mid-span."""
        self.attrs[key] = value

    def set_count(self, count: int) -> None:
        """Set the logical operation count discovered mid-span."""
        self.count = count

    def __enter__(self) -> "_ActiveSpan":
        stack = getattr(_stacks, "stack", None)
        if stack is None:
            stack = []
            _stacks.stack = stack
        self._parent_id = stack[-1] if stack else None
        self._span_id = _recorder.next_span_id()
        stack.append(self._span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end = time.perf_counter()
        stack = _stacks.stack
        if stack and stack[-1] == self._span_id:
            stack.pop()
        elif self._span_id in stack:  # pragma: no cover - defensive
            stack.remove(self._span_id)
        _recorder.record(
            TraceSpan(
                name=self.name,
                start=self._start - _recorder.epoch,
                duration=end - self._start,
                thread_id=threading.get_ident(),
                span_id=self._span_id,
                parent_id=self._parent_id,
                count=self.count,
                attrs=self.attrs,
            )
        )


def trace_span(name: str, count: int = 1, **attrs: Any):
    """Open a tracing span around a code region.

    Usage::

        with trace_span("fft.forward", shape=field.shape):
            ...

    Returns a shared no-op context manager when tracing is disabled, so
    the call costs one boolean check on hot paths.  ``count`` declares how
    many logical operations the span covers (batch size for batched
    frontends); it may also be set from inside the region via
    ``span.set_count(...)`` when only known mid-flight.
    """
    if not _enabled:
        return _NULL_SPAN
    return _ActiveSpan(name, count, attrs)


# -- Chrome trace-event export -----------------------------------------


def chrome_trace_events(
    recorder: Optional[TraceRecorder] = None,
) -> List[Dict[str, Any]]:
    """Render recorded spans as Chrome trace-event dicts (``ph: "X"``)."""
    rec = recorder if recorder is not None else _recorder
    pid = os.getpid()
    events: List[Dict[str, Any]] = []
    for span in rec.spans():
        args: Dict[str, Any] = dict(span.attrs)
        if span.count != 1:
            args["count"] = span.count
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": pid,
                "tid": span.thread_id,
                "args": args,
            }
        )
    return events


def chrome_trace_document(
    recorder: Optional[TraceRecorder] = None,
) -> Dict[str, Any]:
    """Full Chrome trace JSON document (Perfetto-loadable)."""
    return {
        "traceEvents": chrome_trace_events(recorder),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.observability"},
    }


def write_chrome_trace(
    path: str, recorder: Optional[TraceRecorder] = None
) -> Dict[str, Any]:
    """Write the Chrome trace document to ``path`` and return it."""
    document = chrome_trace_document(recorder)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def _configure_from_env() -> None:
    raw = os.environ.get(TRACE_ENV_VAR)
    if raw is not None and raw.strip().lower() in _TRUE_VALUES:
        enable_tracing()


_configure_from_env()
