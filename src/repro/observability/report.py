"""Text rendering of observability data for the verbose CLI report."""

from __future__ import annotations

from typing import List, Optional

from repro.observability.trace import TraceRecorder, get_trace_recorder

__all__ = ["format_phase_table"]


def format_phase_table(recorder: Optional[TraceRecorder] = None) -> str:
    """Compact per-phase timing table from recorded spans.

    One row per span name, sorted by descending total time::

        phase                       spans     count   total_s     max_s
        registration.solve              1         1    0.4812    0.4812
        fft.forward                   152       166    0.1033    0.0041
        ...

    Returns an empty string when no spans were recorded (tracing off), so
    callers can print it unconditionally.
    """
    rec = recorder if recorder is not None else get_trace_recorder()
    rows = rec.summary()
    if not rows:
        return ""
    name_width = max(len("phase"), max(len(row["name"]) for row in rows))
    lines: List[str] = [
        f"{'phase':<{name_width}}  {'spans':>8}  {'count':>8}  {'total_s':>9}  {'max_s':>9}"
    ]
    for row in rows:
        lines.append(
            f"{row['name']:<{name_width}}  {row['spans']:>8d}  {row['count']:>8d}  "
            f"{row['total_seconds']:>9.4f}  {row['max_seconds']:>9.4f}"
        )
    return "\n".join(lines)
