"""The versioned ``repro.observability-snapshot`` document.

:func:`snapshot` unifies the process's observability state — the metrics
registry, plan-pool statistics (pool-wide and per tag), field-source
traffic, auto-layout decisions, and the tracing summary — into one
JSON-safe document:

.. code-block:: python

    {
        "schema": "repro.observability-snapshot",
        "schema_version": 1,
        "metrics": {"fft.transforms": {"direction=forward": 42.0, ...}, ...},
        "plan_pool": {"hits": ..., "misses": ..., ...},
        "plan_pool_by_tag": {"scatter-plan": {...}, ...},
        "field_sources": {"loads": ..., "planes_loaded": ..., ...},
        "layout_decisions": {"total": ..., "counts": {"lean": ..., ...}},
        "trace": {"enabled": ..., "spans": ..., "span_counts": {...},
                  "span_durations_seconds": {...}},
    }

The document is embedded in ``RegistrationResult.to_dict()``, per-job
service artifacts, and ``RegistrationService.service_stats()``; the CI
``observability-smoke`` job validates emitted snapshots with
:func:`validate_snapshot`.

Schema evolution: additive fields bump ``SNAPSHOT_SCHEMA_VERSION`` only on
breaking changes, mirroring the other versioned documents
(``repro.registration-result``, ``repro.service-job``).

Unlike the stdlib-only :mod:`trace`/:mod:`metrics` leaves, this module
reads the stat mechanisms across the codebase — imports happen lazily
inside :func:`snapshot` to stay cycle-free.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = [
    "SNAPSHOT_SCHEMA",
    "SNAPSHOT_SCHEMA_VERSION",
    "snapshot",
    "validate_snapshot",
    "validate_chrome_trace",
]

SNAPSHOT_SCHEMA = "repro.observability-snapshot"
SNAPSHOT_SCHEMA_VERSION = 1


def snapshot() -> Dict[str, Any]:
    """Collect the process-wide observability snapshot document."""
    from repro.observability.metrics import get_metrics_registry
    from repro.observability.trace import get_trace_recorder, tracing_enabled
    from repro.runtime.layout import layout_decision_log
    from repro.runtime.plan_pool import get_plan_pool
    from repro.transport.kernels import field_source_log

    pool = get_plan_pool()
    layout_log = layout_decision_log()
    recorder = get_trace_recorder()
    return {
        "schema": SNAPSHOT_SCHEMA,
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "metrics": get_metrics_registry().collect(),
        "plan_pool": pool.stats.as_dict(),
        "plan_pool_by_tag": {
            tag: stats.as_dict() for tag, stats in sorted(pool.stats_by_tag().items())
        },
        "field_sources": field_source_log().snapshot().as_dict(),
        "layout_decisions": {
            "total": layout_log.total,
            "counts": layout_log.counts(),
        },
        "trace": {
            "enabled": tracing_enabled(),
            "spans": len(recorder),
            "span_counts": dict(sorted(recorder.span_counts().items())),
            "span_durations_seconds": dict(
                sorted(recorder.span_durations().items())
            ),
        },
    }


def validate_snapshot(document: Any, *, path: str = "snapshot") -> None:
    """Structurally validate a snapshot document; raise ``ValueError`` if bad.

    A lightweight hand-rolled check (no jsonschema dependency) used by the
    CI smoke job and the test suite.
    """

    def fail(message: str) -> None:
        raise ValueError(f"{path}: {message}")

    if not isinstance(document, dict):
        fail(f"expected a dict, got {type(document).__name__}")
    if document.get("schema") != SNAPSHOT_SCHEMA:
        fail(f"schema must be {SNAPSHOT_SCHEMA!r}, got {document.get('schema')!r}")
    if document.get("schema_version") != SNAPSHOT_SCHEMA_VERSION:
        fail(
            f"schema_version must be {SNAPSHOT_SCHEMA_VERSION}, "
            f"got {document.get('schema_version')!r}"
        )
    for key in (
        "metrics",
        "plan_pool",
        "plan_pool_by_tag",
        "field_sources",
        "layout_decisions",
        "trace",
    ):
        if key not in document:
            fail(f"missing required block {key!r}")
        if not isinstance(document[key], dict):
            fail(f"block {key!r} must be a dict")
    metrics = document["metrics"]
    for name, series in metrics.items():
        if not isinstance(series, dict):
            fail(f"metrics[{name!r}] must map label keys to values")
    for block in ("plan_pool", "field_sources"):
        for key, value in document[block].items():
            if not isinstance(value, int):
                fail(f"{block}[{key!r}] must be an integer, got {value!r}")
    layout = document["layout_decisions"]
    if not isinstance(layout.get("total"), int):
        fail("layout_decisions.total must be an integer")
    if not isinstance(layout.get("counts"), dict):
        fail("layout_decisions.counts must be a dict")
    trace = document["trace"]
    if not isinstance(trace.get("enabled"), bool):
        fail("trace.enabled must be a boolean")
    if not isinstance(trace.get("spans"), int):
        fail("trace.spans must be an integer")
    for key in ("span_counts", "span_durations_seconds"):
        if not isinstance(trace.get(key), dict):
            fail(f"trace.{key} must be a dict")


def validate_chrome_trace(document: Any, *, path: str = "trace") -> None:
    """Structurally validate a Chrome trace-event JSON document."""

    def fail(message: str) -> None:
        raise ValueError(f"{path}: {message}")

    if not isinstance(document, dict):
        fail(f"expected a dict, got {type(document).__name__}")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents must be a list")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"traceEvents[{index}] must be a dict")
        for key, kinds in (
            ("name", str),
            ("ph", str),
            ("ts", (int, float)),
            ("pid", int),
            ("tid", int),
        ):
            if not isinstance(event.get(key), kinds):
                fail(f"traceEvents[{index}].{key} missing or mistyped")
        if event["ph"] == "X" and not isinstance(event.get("dur"), (int, float)):
            fail(f"traceEvents[{index}].dur missing for complete event")
