"""Unified observability layer: tracing spans, metrics, snapshot, exporters.

The paper's headline evidence is its per-kernel cost breakdown — FFT vs
interpolation vs communication time per matvec and per Newton iteration
(Tables I-IV) — and :mod:`repro.parallel.performance` *models* those costs
analytically, but until this subsystem the running code could not *measure*
them: timing, counter and traffic data were scattered across six ad-hoc
mechanisms (FFT counters, interpolation sweep counters, plan-pool
statistics, the communication ledger, field-source traffic, the layout
decision log) with no shared schema and no timing for solver phases.

Three pieces, deliberately layered so the hot kernels stay untouched when
observability is off:

:mod:`repro.observability.trace`
    Structured tracing: :func:`trace_span` wraps a code region in a nested
    span (monotonic start/duration, thread id, attributes) recorded into a
    process-wide :class:`TraceRecorder`.  Disabled by default; the
    disabled path is one module-level boolean check returning a shared
    no-op context manager — no span objects, no recorder traffic.  Enabled
    via ``REPRO_TRACE=1``, the ``--trace`` CLI flag, or
    ``RegistrationConfig(trace=True)``.  Exports Chrome trace-event JSON
    (``--trace-out run.trace.json``), loadable in Perfetto.

:mod:`repro.observability.metrics`
    A process-wide registry of :class:`Counter`/:class:`Gauge`/
    :class:`Histogram` metrics with label sets, plus pull *collectors* so
    the existing stat mechanisms publish into one place without changing
    their own APIs.

:mod:`repro.observability.snapshot`
    One versioned ``repro.observability-snapshot`` v1 document
    (:func:`snapshot`) unifying all of it: the registry, plan-pool stats
    (pool-wide and per tag), field-source traffic, layout decisions, and
    the trace summary.  Embedded in ``RegistrationResult.to_dict()``,
    per-job service artifacts, and ``RegistrationService.service_stats()``.

The tracing/metrics modules import only the standard library, so every
kernel frontend (spectral, transport, runtime, parallel) can instrument
itself without import cycles; :func:`snapshot` reaches into the stat
mechanisms lazily.
"""

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics_registry,
)
from repro.observability.report import format_phase_table
from repro.observability.snapshot import (
    SNAPSHOT_SCHEMA,
    SNAPSHOT_SCHEMA_VERSION,
    snapshot,
    validate_chrome_trace,
    validate_snapshot,
)
from repro.observability.trace import (
    TRACE_ENV_VAR,
    TRACE_OUT_ENV_VAR,
    TraceRecorder,
    TraceSpan,
    chrome_trace_document,
    disable_tracing,
    enable_tracing,
    env_trace_enabled,
    env_trace_out,
    get_trace_recorder,
    trace_span,
    tracing_enabled,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics_registry",
    "format_phase_table",
    "SNAPSHOT_SCHEMA",
    "SNAPSHOT_SCHEMA_VERSION",
    "snapshot",
    "validate_chrome_trace",
    "validate_snapshot",
    "TRACE_ENV_VAR",
    "TRACE_OUT_ENV_VAR",
    "TraceRecorder",
    "TraceSpan",
    "chrome_trace_document",
    "disable_tracing",
    "enable_tracing",
    "env_trace_enabled",
    "env_trace_out",
    "get_trace_recorder",
    "trace_span",
    "tracing_enabled",
    "write_chrome_trace",
]
