"""Process-wide metrics registry: counters, gauges, histograms, collectors.

Two publication styles coexist so the six pre-existing stat mechanisms can
feed one registry *without changing their own APIs*:

**Push metrics** — hot frontends bind a labelled child once at import time
and increment it inline::

    _FORWARD = get_metrics_registry().counter(
        "fft.transforms", "FFT executions by direction"
    ).labels(direction="forward")
    ...
    _FORWARD.inc()

A bound child holds a plain float cell guarded by a lock; ``inc`` does no
dict allocation, so the cost on kernel paths is one lock round-trip.

**Pull collectors** — mechanisms that already keep their own state
(``PlanPool.stats``, the field-source log, the layout decision log)
register a zero-argument callable; :meth:`MetricsRegistry.collect`
invokes it at snapshot time and merges the returned
``{metric_name: {label_key: value}}`` mapping.  The owning object keeps
its API and its state; the registry only reads.

Label sets are modelled Prometheus-style: a metric name owns a family of
children keyed by sorted ``(key, value)`` tuples.

Stdlib-only: importable from every layer without cycles.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics_registry",
    "reset_metrics_registry",
]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_label_key(key: LabelKey) -> str:
    """Render a label key as ``k1=v1,k2=v2`` (empty string for no labels)."""
    return ",".join(f"{k}={v}" for k, v in key)


class _BoundCounter:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _BoundGauge:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _BoundHistogram:
    __slots__ = ("_lock", "_count", "_sum", "_min", "_max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def value(self) -> Dict[str, float]:
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._min is not None else 0.0,
                "max": self._max if self._max is not None else 0.0,
            }


class _MetricFamily:
    """Common labelled-children machinery for the three metric kinds."""

    kind = "metric"
    _child_type: type = _BoundCounter

    def __init__(self, name: str, description: str) -> None:
        self.name = name
        self.description = description
        self._lock = threading.Lock()
        self._children: Dict[LabelKey, Any] = {}

    def labels(self, **labels: Any):
        """Return the bound child for this label set (created on demand)."""
        key = _label_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._child_type()
                self._children[key] = child
            return child

    def collect(self) -> Dict[str, Any]:
        with self._lock:
            items = list(self._children.items())
        return {format_label_key(key): child.value for key, child in items}


class Counter(_MetricFamily):
    """Monotonically increasing value per label set."""

    kind = "counter"
    _child_type = _BoundCounter

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        self.labels(**labels).inc(amount)


class Gauge(_MetricFamily):
    """Point-in-time value per label set."""

    kind = "gauge"
    _child_type = _BoundGauge

    def set(self, value: float, **labels: Any) -> None:
        self.labels(**labels).set(value)


class Histogram(_MetricFamily):
    """count/sum/min/max aggregate per label set."""

    kind = "histogram"
    _child_type = _BoundHistogram

    def observe(self, value: float, **labels: Any) -> None:
        self.labels(**labels).observe(value)


class MetricsRegistry:
    """Create-or-get metric families plus pull collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _MetricFamily] = {}
        self._collectors: List[Tuple[str, Callable[[], Dict[str, Any]]]] = []

    def _get_or_create(
        self, name: str, description: str, factory: type
    ) -> _MetricFamily:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory(name, description)
                self._metrics[name] = metric
            elif not isinstance(metric, factory):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"cannot re-register as {factory.kind}"
                )
            return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(name, description, Counter)  # type: ignore[return-value]

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(name, description, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str, description: str = "") -> Histogram:
        return self._get_or_create(name, description, Histogram)  # type: ignore[return-value]

    def register_collector(
        self, name: str, collector: Callable[[], Dict[str, Any]]
    ) -> None:
        """Register a pull collector.

        ``collector`` is a zero-argument callable returning
        ``{metric_name: {label_key: value}}``; it runs at
        :meth:`collect` time.  Re-registering under the same name
        replaces the previous collector (supports module reloads and
        test fixtures).
        """
        with self._lock:
            self._collectors = [
                (n, fn) for n, fn in self._collectors if n != name
            ]
            self._collectors.append((name, collector))

    def collector_names(self) -> List[str]:
        with self._lock:
            return [name for name, _ in self._collectors]

    def collect(self) -> Dict[str, Dict[str, Any]]:
        """Gather every metric family and pull collector into one mapping.

        Returns ``{metric_name: {label_key: value}}`` where ``label_key``
        is the ``k=v,...`` rendering (empty string for unlabelled).
        """
        with self._lock:
            metrics = list(self._metrics.values())
            collectors = list(self._collectors)
        merged: Dict[str, Dict[str, Any]] = {}
        for metric in metrics:
            values = metric.collect()
            if values:
                merged.setdefault(metric.name, {}).update(values)
        for _, collector in collectors:
            for name, values in collector().items():
                merged.setdefault(name, {}).update(values)
        return merged

    def describe(self) -> Dict[str, Dict[str, str]]:
        """``{metric_name: {"kind": ..., "description": ...}}`` for metadata."""
        with self._lock:
            return {
                m.name: {"kind": m.kind, "description": m.description}
                for m in self._metrics.values()
            }


_registry = MetricsRegistry()


def get_metrics_registry() -> MetricsRegistry:
    """Return the process-wide metrics registry."""
    return _registry


def reset_metrics_registry() -> MetricsRegistry:
    """Replace the process-wide registry with a fresh one (tests only).

    Note: modules that bound labelled children at import time keep
    incrementing their old children; prefer reading deltas in tests
    instead of resetting when exact totals matter.
    """
    global _registry
    _registry = MetricsRegistry()
    return _registry
