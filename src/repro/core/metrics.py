"""Registration quality metrics.

These are the scalar diagnostics the paper reports alongside its figures:
the (relative) residual between the reference and the (deformed) template
(Figs. 1, 5, 6, 7), and statistics of the determinant of the deformation
gradient (Fig. 7).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.spectral.grid import Grid
from repro.utils.validation import check_same_shape


def residual_norm(reference: np.ndarray, deformed_template: np.ndarray, grid: Grid) -> float:
    """L2 norm of the image mismatch ``||rho_R - rho_T(y1)||``."""
    reference = np.asarray(reference)
    deformed_template = np.asarray(deformed_template)
    check_same_shape(reference, deformed_template, "images")
    return grid.norm(reference - deformed_template)


def relative_residual(
    reference: np.ndarray,
    template: np.ndarray,
    deformed_template: np.ndarray,
    grid: Grid,
) -> float:
    """Residual after registration relative to the residual before.

    Values well below 1 indicate a successful registration; the
    rigid-vs-deformable comparison of Fig. 1 and the before/after panels of
    Figs. 5-7 are exactly this quantity shown as an image.
    """
    before = residual_norm(reference, template, grid)
    after = residual_norm(reference, deformed_template, grid)
    return after / max(before, 1e-300)


def mismatch_reduction(
    reference: np.ndarray,
    template: np.ndarray,
    deformed_template: np.ndarray,
    grid: Grid,
) -> float:
    """Fractional reduction of the mismatch, ``1 - relative_residual``."""
    return 1.0 - relative_residual(reference, template, deformed_template, grid)


def max_pointwise_residual(reference: np.ndarray, deformed_template: np.ndarray) -> float:
    """Maximum absolute point-wise residual (the dark spots of the figures)."""
    reference = np.asarray(reference)
    deformed_template = np.asarray(deformed_template)
    check_same_shape(reference, deformed_template, "images")
    return float(np.max(np.abs(reference - deformed_template)))


def determinant_summary(det: np.ndarray) -> Dict[str, float]:
    """Summary statistics of ``det(grad y1)`` as reported with Fig. 7."""
    det = np.asarray(det)
    return {
        "min": float(det.min()),
        "max": float(det.max()),
        "mean": float(det.mean()),
        "std": float(det.std()),
        "fraction_nonpositive": float(np.mean(det <= 0.0)),
    }


def dice_overlap(mask_a: np.ndarray, mask_b: np.ndarray) -> float:
    """Dice overlap of two binary masks (a standard registration metric).

    Not reported in the paper's tables but routinely used to validate
    registration quality on labeled data; exposed for the brain-phantom
    example.
    """
    mask_a = np.asarray(mask_a, dtype=bool)
    mask_b = np.asarray(mask_b, dtype=bool)
    check_same_shape(mask_a, mask_b, "masks")
    intersection = np.logical_and(mask_a, mask_b).sum()
    total = mask_a.sum() + mask_b.sum()
    if total == 0:
        return 1.0
    return float(2.0 * intersection / total)
