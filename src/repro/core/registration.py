"""High-level registration front end.

:func:`register` is the public entry point a downstream user calls: it takes
two images (numpy arrays), pre-processes them the way the paper does
(intensity normalization and spectral Gaussian smoothing), builds the
discretized optimal-control problem, runs the preconditioned inexact
Gauss-Newton-Krylov solver (optionally with ``beta``-continuation), and
packages the outputs the paper visualizes: the velocity, the deformation
map, the deformed template, the residual before/after, and the determinant
of the deformation gradient.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.config import RegistrationConfig
from repro.core.metrics import determinant_summary, relative_residual, residual_norm
from repro.core.optim.gauss_newton import (
    GaussNewtonKrylov,
    OptimizationResult,
    SolverOptions,
)
from repro.core.optim.gradient_descent import GradientDescent
from repro.core.problem import RegistrationProblem
from repro.data.preprocessing import normalize_intensity, smooth_image
from repro.observability.snapshot import snapshot as observability_snapshot
from repro.observability.trace import trace_span
from repro.runtime.plan_pool import PoolStats, get_plan_pool
from repro.spectral.grid import Grid
from repro.transport.deformation import DeformationMap
from repro.transport.kernels import SourceStats, field_source_log
from repro.utils.logging import get_logger

LOGGER = get_logger("core.registration")

#: Name and version of the JSON document :meth:`RegistrationResult.to_dict`
#: emits.  The CLI's verbose report and the job service's per-job artifacts
#: share this one schema; bump the version on any breaking field change.
#: v2: adds the embedded ``observability`` snapshot block
#: (``repro.observability-snapshot`` v1).
RESULT_SCHEMA = "repro.registration-result"
RESULT_SCHEMA_VERSION = 2

_legacy_kwargs_warned = False


def _warn_legacy_backend_kwargs() -> None:
    """One-per-process deprecation warning for the pre-config kwargs."""
    global _legacy_kwargs_warned
    if _legacy_kwargs_warned:
        return
    _legacy_kwargs_warned = True
    warnings.warn(
        "passing fft_backend/interp_backend to register() directly is "
        "deprecated; bundle them in a repro.RegistrationConfig "
        "(register(..., config=RegistrationConfig(fft_backend=...)))",
        DeprecationWarning,
        stacklevel=3,
    )


def _jsonable(value):
    """Coerce numpy scalars (and nested containers) to plain JSON types."""
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (np.bool_, bool)):
        return bool(value)
    if isinstance(value, (np.integer, int)):
        return int(value)
    if isinstance(value, (np.floating, float)):
        return float(value)
    return value


@dataclass
class RegistrationResult:
    """Everything the paper reports for a single registration run."""

    velocity: np.ndarray
    deformed_template: np.ndarray
    deformation: DeformationMap
    optimization: OptimizationResult
    residual_before: float
    residual_after: float
    relative_residual: float
    det_grad_stats: Dict[str, float]
    elapsed_seconds: float
    plan_pool: Optional[PoolStats] = None
    field_sources: Optional[SourceStats] = None
    problem: RegistrationProblem = field(repr=False, default=None)

    @property
    def converged(self) -> bool:
        return self.optimization.converged

    @property
    def num_newton_iterations(self) -> int:
        return self.optimization.num_iterations

    @property
    def num_hessian_matvecs(self) -> int:
        return self.optimization.total_hessian_matvecs

    @property
    def is_diffeomorphic(self) -> bool:
        """True when ``det(grad y1) > 0`` everywhere (Fig. 7 criterion)."""
        return self.det_grad_stats["min"] > 0.0

    def summary(self) -> Dict[str, object]:
        """Compact dictionary used by the examples and the bench harness."""
        return {
            "converged": self.converged,
            "newton_iterations": self.num_newton_iterations,
            "hessian_matvecs": self.num_hessian_matvecs,
            "residual_before": self.residual_before,
            "residual_after": self.residual_after,
            "relative_residual": self.relative_residual,
            "det_grad_min": self.det_grad_stats["min"],
            "det_grad_max": self.det_grad_stats["max"],
            "diffeomorphic": self.is_diffeomorphic,
            "time_to_solution": self.elapsed_seconds,
            "fft_backend": (
                self.problem.operators.fft.backend_name if self.problem is not None else "?"
            ),
            "interp_backend": (
                self.problem.transport.interpolator.backend_name
                if self.problem is not None
                else "?"
            ),
            "plan_pool_hits": self.plan_pool.hits if self.plan_pool is not None else 0,
            "plan_pool_misses": self.plan_pool.misses if self.plan_pool is not None else 0,
            "field_source_loads": (
                self.field_sources.loads if self.field_sources is not None else 0
            ),
            "field_source_peak_tile_bytes": (
                self.field_sources.peak_tile_bytes if self.field_sources is not None else 0
            ),
        }

    def to_dict(self) -> Dict[str, object]:
        """Versioned, JSON-serializable report of this registration.

        One schema (:data:`RESULT_SCHEMA` v. :data:`RESULT_SCHEMA_VERSION`)
        shared by every consumer — the CLI's ``--verbose`` report prints it,
        the job service embeds it in the per-job artifacts — so downstream
        tooling parses a single document shape.  Array payloads (velocity,
        deformed template) are deliberately excluded; they travel as
        ``.npz`` files.
        """
        opt = self.optimization
        return {
            "schema": RESULT_SCHEMA,
            "schema_version": RESULT_SCHEMA_VERSION,
            "summary": _jsonable(self.summary()),
            "optimization": {
                "converged": bool(opt.converged),
                "num_iterations": int(opt.num_iterations),
                "total_hessian_matvecs": int(opt.total_hessian_matvecs),
            },
            "det_grad": _jsonable(self.det_grad_stats),
            "plan_pool": (
                _jsonable(self.plan_pool.as_dict()) if self.plan_pool is not None else None
            ),
            "field_sources": (
                _jsonable(self.field_sources.as_dict())
                if self.field_sources is not None
                else None
            ),
            "observability": _jsonable(observability_snapshot()),
            "elapsed_seconds": float(self.elapsed_seconds),
        }


@dataclass
class RegistrationSolver:
    """Configurable registration pipeline (pre-processing + optimization).

    Parameters mirror the experimental setup of Sec. IV-A3 of the paper.

    Parameters
    ----------
    beta:
        Regularization weight.
    regularization:
        ``"h1"`` (paper's Eq. 2a), ``"h2"`` or ``"h3"``.
    incompressible:
        Enforce ``div v = 0`` (volume-preserving / "mass preserving" maps).
    num_time_steps:
        Semi-Lagrangian time steps ``nt`` (paper default 4).
    gauss_newton:
        Gauss-Newton (True, paper default) or full Newton Hessian.
    optimizer:
        ``"gauss_newton"`` or ``"gradient_descent"`` (baseline).
    smooth_sigma:
        Standard deviation of the spectral Gaussian pre-smoothing in units of
        grid cells (paper: one grid cell).  ``0`` disables smoothing.
    normalize:
        Rescale both images to ``[0, 1]`` before registration.
    options:
        Solver options (tolerances, iteration caps, preconditioner variant).
    interpolation:
        Off-grid interpolation kernel for the semi-Lagrangian scheme.
    fft_backend:
        FFT engine for every spectral operation of the pipeline
        (``"numpy"``, ``"scipy"``, ``"pyfftw"``, a backend instance, or
        ``None`` for the ``REPRO_FFT_BACKEND`` / numpy default).
    interp_backend:
        Interpolation engine for every semi-Lagrangian gather of the
        pipeline (``"scipy"``, ``"numpy"``, ``"numba"``, a backend
        instance, or ``None`` for the ``REPRO_INTERP_BACKEND`` / scipy
        default).
    config:
        Consolidated execution configuration
        (:class:`repro.config.RegistrationConfig`).  When provided it is
        applied process-wide (plan layout, worker default, pool budget,
        auto fraction) and supplies the FFT/interpolation engines unless
        the explicit ``fft_backend``/``interp_backend`` arguments override
        them.
    """

    beta: float = 1e-2
    regularization: str = "h1"
    incompressible: bool = False
    num_time_steps: int = 4
    gauss_newton: bool = True
    optimizer: str = "gauss_newton"
    smooth_sigma: float = 1.0
    normalize: bool = True
    options: SolverOptions = field(default_factory=SolverOptions)
    interpolation: str = "cubic_bspline"
    fft_backend: Optional[object] = None
    interp_backend: Optional[object] = None
    config: Optional[RegistrationConfig] = None

    def __post_init__(self) -> None:
        if self.config is None:
            return
        self.config.apply()
        if self.fft_backend is None:
            self.fft_backend = self.config.fft_backend
        if self.interp_backend is None:
            self.interp_backend = self.config.interp_backend

    def build_problem(
        self,
        template: np.ndarray,
        reference: np.ndarray,
        grid: Optional[Grid] = None,
    ) -> RegistrationProblem:
        """Pre-process the images and assemble the discretized problem."""
        template = np.asarray(template, dtype=np.float64)
        reference = np.asarray(reference, dtype=np.float64)
        if template.shape != reference.shape:
            raise ValueError(
                f"template and reference must share a shape, got {template.shape} "
                f"and {reference.shape}"
            )
        grid = grid or Grid(template.shape)
        if grid.shape != template.shape:
            raise ValueError(
                f"grid shape {grid.shape} does not match the image shape {template.shape}"
            )

        if self.normalize:
            template = normalize_intensity(template)
            reference = normalize_intensity(reference)
        if self.smooth_sigma > 0:
            template = smooth_image(
                template, grid, sigma_cells=self.smooth_sigma, backend=self.fft_backend
            )
            reference = smooth_image(
                reference, grid, sigma_cells=self.smooth_sigma, backend=self.fft_backend
            )

        return RegistrationProblem(
            grid=grid,
            reference=reference,
            template=template,
            beta=self.beta,
            regularization=self.regularization,
            incompressible=self.incompressible,
            num_time_steps=self.num_time_steps,
            gauss_newton=self.gauss_newton,
            interpolation=self.interpolation,
            fft_backend=self.fft_backend,
            interp_backend=self.interp_backend,
        )

    def run(
        self,
        template: np.ndarray,
        reference: np.ndarray,
        grid: Optional[Grid] = None,
        initial_velocity: Optional[np.ndarray] = None,
    ) -> RegistrationResult:
        """Register *template* to *reference* and collect the diagnostics."""
        start = time.perf_counter()
        pool_before = get_plan_pool().stats
        sources_before = field_source_log().snapshot()
        with trace_span(
            "registration.solve",
            optimizer=self.optimizer,
            nt=self.num_time_steps,
        ) as root_span:
            problem = self.build_problem(template, reference, grid)
            root_span.set_attr("shape", list(problem.grid.shape))

            if self.optimizer == "gauss_newton":
                driver = GaussNewtonKrylov(problem, self.options)
            elif self.optimizer == "gradient_descent":
                driver = GradientDescent(problem, self.options)
            else:
                raise ValueError(
                    f"unknown optimizer {self.optimizer!r}; expected 'gauss_newton' or "
                    "'gradient_descent'"
                )
            optimization = driver.solve(initial_velocity)

            deformation = DeformationMap(
                problem.grid,
                optimization.velocity,
                num_time_steps=self.num_time_steps,
                interpolation=self.interpolation,
                operators=problem.operators,
                interp_backend=self.interp_backend,
            )
            deformed_template = optimization.final_iterate.deformed_template
            res_before = residual_norm(problem.reference, problem.template, problem.grid)
            res_after = residual_norm(problem.reference, deformed_template, problem.grid)
            det_stats = determinant_summary(deformation.determinant())
        elapsed = time.perf_counter() - start

        LOGGER.info(
            "registration finished: residual %.3e -> %.3e, det(grad y) in [%.3f, %.3f]",
            res_before,
            res_after,
            det_stats["min"],
            det_stats["max"],
        )
        return RegistrationResult(
            velocity=optimization.velocity,
            deformed_template=deformed_template,
            deformation=deformation,
            optimization=optimization,
            residual_before=res_before,
            residual_after=res_after,
            relative_residual=relative_residual(
                problem.reference, problem.template, deformed_template, problem.grid
            ),
            det_grad_stats=det_stats,
            elapsed_seconds=elapsed,
            plan_pool=get_plan_pool().stats - pool_before,
            field_sources=field_source_log().snapshot() - sources_before,
            problem=problem,
        )


def register(
    template: np.ndarray,
    reference: np.ndarray,
    beta: float = 1e-2,
    regularization: str = "h1",
    incompressible: bool = False,
    num_time_steps: int = 4,
    gauss_newton: bool = True,
    optimizer: str = "gauss_newton",
    options: Optional[SolverOptions] = None,
    grid: Optional[Grid] = None,
    smooth_sigma: float = 1.0,
    normalize: bool = True,
    interpolation: str = "cubic_bspline",
    fft_backend: Optional[object] = None,
    interp_backend: Optional[object] = None,
    config: Optional[RegistrationConfig] = None,
) -> RegistrationResult:
    """Register *template* onto *reference* (functional convenience wrapper).

    See :class:`RegistrationSolver` for the meaning of every parameter.
    Execution knobs (backends, plan layout, workers, pool budget) belong in
    *config* (:class:`repro.config.RegistrationConfig`); the bare
    ``fft_backend``/``interp_backend`` keywords are the legacy spelling and
    warn (once per process) when used.

    Examples
    --------
    >>> from repro.data.synthetic import synthetic_registration_problem
    >>> problem = synthetic_registration_problem(16)
    >>> result = register(problem.template, problem.reference, beta=1e-2)
    >>> result.relative_residual < 1.0
    True
    """
    if fft_backend is not None or interp_backend is not None:
        _warn_legacy_backend_kwargs()
    solver = RegistrationSolver(
        beta=beta,
        regularization=regularization,
        incompressible=incompressible,
        num_time_steps=num_time_steps,
        gauss_newton=gauss_newton,
        optimizer=optimizer,
        options=options or SolverOptions(),
        smooth_sigma=smooth_sigma,
        normalize=normalize,
        interpolation=interpolation,
        fft_backend=fft_backend,
        interp_backend=interp_backend,
        config=config,
    )
    return solver.run(template, reference, grid=grid)
