"""Regularization functionals for the velocity field.

The paper's formulation (Eq. 2a) penalizes ``beta/2 ||grad v||^2`` — an
H1-seminorm — and the spectral discretization "enables flexibility in the
choice of regularization operators" (Sec. I); the abstract explicitly
mentions biharmonic operators (the H2 choice used for the incompressible /
volume-preserving runs in the companion papers).  We therefore provide a
small hierarchy of Sobolev-seminorm regularization operators:

=========  ===========================  =========================
name       energy                       first variation (operator)
=========  ===========================  =========================
``"h1"``   ``beta/2 ||grad v||^2``      ``-beta lap v``
``"h2"``   ``beta/2 ||lap v||^2``       ``beta lap^2 v``  (biharmonic)
``"h3"``   ``beta/2 ||grad lap v||^2``  ``-beta lap^3 v``
=========  ===========================  =========================

All are diagonal in Fourier space with symbol ``beta * |k|^(2p)``, which is
what makes the preconditioner ("the inverse of the regularization operator,
applied at the cost of a spectral diagonal scaling") essentially free.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.spectral.grid import Grid
from repro.spectral.operators import SpectralOperators
from repro.spectral.symbols import get_symbols
from repro.utils.validation import check_positive, check_velocity_shape


@dataclass
class _SobolevSeminormRegularization:
    """Common implementation of the ``beta/2 <A v, v>`` regularization.

    ``A`` is the Fourier multiplier ``|k|^(2 * order)``; ``order = 1`` gives
    the H1-seminorm (negative Laplacian), ``order = 2`` the H2-seminorm
    (biharmonic), etc.

    Parameters
    ----------
    operators:
        Spectral operators bound to the computational grid.
    beta:
        Regularization weight ``beta > 0``.
    """

    operators: SpectralOperators
    beta: float
    order: int = 1
    name: str = "h1"

    def __post_init__(self) -> None:
        self.beta = check_positive(self.beta, "beta")
        if self.order < 1:
            raise ValueError(f"order must be >= 1, got {self.order}")

    # ------------------------------------------------------------------ #
    @property
    def grid(self) -> Grid:
        return self.operators.grid

    @cached_property
    def symbol(self) -> np.ndarray:
        """Spectral symbol of the (unweighted) operator ``A = (-lap)^order``.

        Shared across instances through the per-grid symbol store, so the
        ``beta``-continuation (which rebuilds the regularization per level)
        never recomputes the array.
        """
        return get_symbols(self.grid).sobolev(self.order)

    @cached_property
    def inverse_symbol(self) -> np.ndarray:
        """Pseudo-inverse symbol ``A^+`` (zero on the constant mode)."""
        return get_symbols(self.grid).inverse_sobolev(self.order)

    # ------------------------------------------------------------------ #
    def with_beta(self, beta: float) -> "_SobolevSeminormRegularization":
        """A copy of this regularization with a different weight.

        Used by the ``beta``-continuation scheme (Sec. III-A).
        """
        return type(self)(self.operators, beta, order=self.order, name=self.name)

    def energy(self, velocity: np.ndarray) -> float:
        """Regularization energy ``beta/2 <A v, v>`` (a scalar >= 0)."""
        velocity = check_velocity_shape(velocity, self.grid.shape)
        av = self.apply_operator(velocity)
        return 0.5 * self.beta * self.grid.inner(av, velocity)

    def apply_operator(self, velocity: np.ndarray) -> np.ndarray:
        """Unweighted operator ``A v`` applied component-wise."""
        return self.operators.apply_vector_symbol(velocity, self.symbol)

    def gradient(self, velocity: np.ndarray) -> np.ndarray:
        """First variation ``beta A v`` of the regularization energy."""
        return self.beta * self.apply_operator(velocity)

    def hessian_matvec(self, direction: np.ndarray) -> np.ndarray:
        """Second variation ``beta A v~`` (the regularization is quadratic)."""
        return self.beta * self.apply_operator(direction)

    def apply_inverse(self, field: np.ndarray, include_beta: bool = True) -> np.ndarray:
        """Apply ``(beta A)^+`` (or ``A^+``), the paper's preconditioner core.

        The constant mode, which lies in the null space of the seminorm, is
        passed through unchanged so the preconditioner remains symmetric
        positive definite.
        """
        field = check_velocity_shape(field, self.grid.shape)
        scale = self.beta if include_beta else 1.0
        symbol = self.inverse_symbol / scale
        # identity on the null space (the constant / zero-frequency mode)
        symbol = symbol.copy()
        symbol[self.symbol == 0.0] = 1.0
        return self.operators.apply_vector_symbol(field, symbol)


class H1Regularization(_SobolevSeminormRegularization):
    """H1-seminorm ``beta/2 ||grad v||^2`` (Eq. 2a of the paper)."""

    def __init__(self, operators: SpectralOperators, beta: float, order: int = 1, name: str = "h1") -> None:
        super().__init__(operators, beta, order=1, name="h1")


class H2Regularization(_SobolevSeminormRegularization):
    """H2-seminorm ``beta/2 ||lap v||^2`` (biharmonic first variation)."""

    def __init__(self, operators: SpectralOperators, beta: float, order: int = 2, name: str = "h2") -> None:
        super().__init__(operators, beta, order=2, name="h2")


class H3Regularization(_SobolevSeminormRegularization):
    """H3-seminorm ``beta/2 ||grad lap v||^2`` (triharmonic first variation)."""

    def __init__(self, operators: SpectralOperators, beta: float, order: int = 3, name: str = "h3") -> None:
        super().__init__(operators, beta, order=3, name="h3")


_REGISTRY = {
    "h1": H1Regularization,
    "h2": H2Regularization,
    "h3": H3Regularization,
}


def make_regularization(
    name: str,
    operators: SpectralOperators,
    beta: float,
) -> _SobolevSeminormRegularization:
    """Factory for regularization operators by name (``"h1"``, ``"h2"``, ``"h3"``)."""
    try:
        cls = _REGISTRY[name.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown regularization {name!r}; expected one of {sorted(_REGISTRY)}"
        ) from exc
    return cls(operators, beta)
