"""Spectral preconditioner for the reduced Hessian.

The paper preconditions the inner Krylov (PCG) solve with the inverse of the
regularization operator, "applied in nearly linear time using FFTs"
(Sec. III-A).  Because the reduced Hessian has the structure

    H = beta A  +  Q,

with ``A`` the (SPD on non-constant modes) regularization operator and ``Q``
the compact data-mismatch term, preconditioning with ``(beta A)^+`` clusters
the spectrum around ``1 + (beta A)^+ Q``: the number of PCG iterations is
then independent of the mesh size, but it degrades as ``beta`` is reduced —
exactly the behaviour the paper reports in Table V.

Two variants are provided:

``"inverse_regularization"``
    ``M^{-1} = (beta A)^+`` with the identity on the (null-space) constant
    mode — the paper's choice.
``"shifted"``
    ``M^{-1} = (beta A + I)^{-1}`` — a slightly more conservative variant
    that avoids amplifying the lowest frequencies for very small ``beta``.
``"none"``
    The identity (used by the ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.regularization import _SobolevSeminormRegularization

_VARIANTS = ("inverse_regularization", "shifted", "none")


@dataclass
class SpectralPreconditioner:
    """Fourier-diagonal preconditioner built from a regularization operator.

    Parameters
    ----------
    regularizer:
        The Sobolev-seminorm regularization of the problem; provides the
        spectral symbol ``beta * a(k)``.
    variant:
        One of ``"inverse_regularization"`` (paper default), ``"shifted"``,
        ``"none"``.
    """

    regularizer: _SobolevSeminormRegularization
    variant: str = "inverse_regularization"

    def __post_init__(self) -> None:
        if self.variant not in _VARIANTS:
            raise ValueError(
                f"unknown preconditioner variant {self.variant!r}; expected one of {_VARIANTS}"
            )

    @cached_property
    def _symbol(self) -> np.ndarray | None:
        """Spectral symbol of ``M^{-1}`` (None for the identity)."""
        if self.variant == "none":
            return None
        beta = self.regularizer.beta
        a = self.regularizer.symbol
        if self.variant == "shifted":
            return 1.0 / (beta * a + 1.0)
        # inverse_regularization: pseudo-inverse with identity on the null
        # space; the unweighted pseudo-inverse comes pre-computed from the
        # per-grid symbol store via the regularizer.
        symbol = self.regularizer.inverse_symbol / beta
        symbol[a == 0.0] = 1.0
        return symbol

    def __call__(self, residual: np.ndarray) -> np.ndarray:
        """Apply ``M^{-1}`` to a (vector-field) residual."""
        if self._symbol is None:
            return residual.copy()
        return self.regularizer.operators.apply_vector_symbol(residual, self._symbol)

    def rebuild(self, regularizer: _SobolevSeminormRegularization) -> "SpectralPreconditioner":
        """New preconditioner for an updated regularization weight."""
        return SpectralPreconditioner(regularizer, self.variant)
