"""Core library: the paper's primary contribution.

This package implements the PDE-constrained optimal-control formulation of
large-deformation diffeomorphic registration (Sec. II-B) and the
preconditioned, inexact Gauss-Newton-Krylov solver used to minimize it
(Sec. III-A):

* :mod:`repro.core.regularization` — H1/H2/H3 Sobolev (semi-)norm
  regularization operators and their spectral inverses,
* :mod:`repro.core.problem` — the registration problem: objective, reduced
  gradient (Eq. 4), Gauss-Newton and full Newton Hessian mat-vecs (Eq. 5),
* :mod:`repro.core.preconditioner` — the spectral preconditioner (inverse of
  the regularization operator),
* :mod:`repro.core.optim` — PCG, Armijo line search, the inexact
  Gauss-Newton-Krylov driver, the gradient-descent baseline and the
  ``beta``-continuation scheme,
* :mod:`repro.core.registration` — the high-level :func:`register` front end
  producing a :class:`RegistrationResult`.
"""

from repro.core.regularization import (
    H1Regularization,
    H2Regularization,
    H3Regularization,
    make_regularization,
)
from repro.core.problem import RegistrationProblem, OuterIterate
from repro.core.preconditioner import SpectralPreconditioner
from repro.core.registration import RegistrationResult, RegistrationSolver, register
from repro.core.metrics import (
    relative_residual,
    residual_norm,
    mismatch_reduction,
)

__all__ = [
    "H1Regularization",
    "H2Regularization",
    "H3Regularization",
    "make_regularization",
    "RegistrationProblem",
    "OuterIterate",
    "SpectralPreconditioner",
    "RegistrationResult",
    "RegistrationSolver",
    "register",
    "relative_residual",
    "residual_norm",
    "mismatch_reduction",
]
