"""Parameter continuation in the regularization weight ``beta``.

"Since the problem is highly nonlinear we use parameter continuation on
beta.  The target value for beta is application dependent and ... determined
by various metrics defined on grad y1" (Sec. III-A of the paper).  The
continuation solves a sequence of registration problems with geometrically
decreasing ``beta``, warm-starting each solve from the previous velocity,
and stops when either the target ``beta`` is reached or a bound on the
deformation regularity (minimum of ``det(grad y1)``) would be violated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.optim.gauss_newton import GaussNewtonKrylov, OptimizationResult, SolverOptions
from repro.core.problem import RegistrationProblem
from repro.runtime.plan_pool import PoolStats, get_plan_pool
from repro.transport.deformation import DeformationMap
from repro.utils.logging import get_logger
from repro.utils.validation import check_positive

LOGGER = get_logger("core.optim.continuation")


@dataclass
class ContinuationStep:
    """Record of one continuation level."""

    beta: float
    result: OptimizationResult
    det_grad_min: float
    accepted: bool


@dataclass
class ContinuationResult:
    """Outcome of a ``beta``-continuation run."""

    velocity: np.ndarray
    final_beta: float
    steps: List[ContinuationStep]
    elapsed_seconds: float
    plan_pool: Optional[PoolStats] = None

    @property
    def num_levels(self) -> int:
        return len(self.steps)

    @property
    def total_hessian_matvecs(self) -> int:
        return sum(step.result.total_hessian_matvecs for step in self.steps)


@dataclass
class BetaContinuation:
    """Geometric continuation ``beta_k = beta_0 * reduction^k``.

    Parameters
    ----------
    problem:
        Registration problem; its ``beta`` is overwritten level by level.
    options:
        Solver options shared by every level.
    initial_beta:
        Starting (large) regularization weight.
    target_beta:
        Smallest weight to attempt.
    reduction:
        Geometric reduction factor per level (e.g. 0.1).
    det_grad_bound:
        Lower bound on ``min det(grad y1)``; if a level produces a map whose
        Jacobian determinant falls below the bound, that level is rejected
        and the previous (regular enough) velocity is returned.  This is the
        paper's admissibility control on the deformation.
    max_levels:
        Safety cap on the number of levels.
    """

    problem: RegistrationProblem
    options: SolverOptions = field(default_factory=SolverOptions)
    initial_beta: float = 1.0
    target_beta: float = 1e-4
    reduction: float = 0.1
    det_grad_bound: float = 0.1
    max_levels: int = 10

    def __post_init__(self) -> None:
        check_positive(self.initial_beta, "initial_beta")
        check_positive(self.target_beta, "target_beta")
        if self.target_beta > self.initial_beta:
            raise ValueError("target_beta must not exceed initial_beta")
        if not 0.0 < self.reduction < 1.0:
            raise ValueError(f"reduction must lie in (0, 1), got {self.reduction}")
        if self.max_levels < 1:
            raise ValueError("max_levels must be >= 1")

    def run(self, initial_velocity: Optional[np.ndarray] = None) -> ContinuationResult:
        """Run the continuation and return the last accepted velocity.

        Successive levels revisit velocities (each level warm-starts from
        the previous optimum, whose transport plan the previous solve just
        built, and the admissibility check transports the same velocity
        again), so the shared plan pool turns those re-plans into warm
        hits; the per-run delta is reported in the result.
        """
        start = time.perf_counter()
        pool_before = get_plan_pool().stats
        problem = self.problem
        steps: List[ContinuationStep] = []

        beta = self.initial_beta
        velocity = (
            problem.zero_velocity() if initial_velocity is None else np.array(initial_velocity)
        )
        accepted_velocity = velocity
        accepted_beta = beta

        for level in range(self.max_levels):
            problem.set_beta(beta)
            solver = GaussNewtonKrylov(problem, self.options)
            result = solver.solve(velocity)

            deformation = DeformationMap(
                problem.grid,
                result.velocity,
                num_time_steps=problem.num_time_steps,
                interpolation=problem.interpolation,
                operators=problem.operators,
            )
            det_min = float(deformation.determinant().min())
            accepted = det_min >= self.det_grad_bound
            steps.append(
                ContinuationStep(beta=beta, result=result, det_grad_min=det_min, accepted=accepted)
            )
            LOGGER.info(
                "continuation level %d: beta=%.2e, det(grad y) min=%.3f, accepted=%s",
                level,
                beta,
                det_min,
                accepted,
            )
            if not accepted:
                break
            accepted_velocity = result.velocity
            accepted_beta = beta
            velocity = result.velocity
            if beta <= self.target_beta * (1.0 + 1e-12):
                break
            beta = max(beta * self.reduction, self.target_beta)

        pool_delta = get_plan_pool().stats - pool_before
        LOGGER.info(
            "plan pool over %d continuation levels: %d hits, %d misses, %d evictions",
            len(steps),
            pool_delta.hits,
            pool_delta.misses,
            pool_delta.evictions,
        )
        return ContinuationResult(
            velocity=accepted_velocity,
            final_beta=accepted_beta,
            steps=steps,
            elapsed_seconds=time.perf_counter() - start,
            plan_pool=pool_delta,
        )
