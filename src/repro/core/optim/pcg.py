"""Matrix-free preconditioned conjugate gradients (PCG).

The Newton step is computed by solving ``H(v) v~ = -g(v)`` with PCG
(Sec. III-A).  The operator is only available as a mat-vec (two transport
solves per application), so a fully matrix-free implementation working on
velocity-shaped ``(3, N1, N2, N3)`` arrays is required.  The solve is
*inexact*: the relative tolerance is the Eisenstat-Walker forcing term chosen
by the outer Newton iteration.

Safeguards follow standard Newton-Krylov practice (e.g. Nocedal & Wright):
if a direction of negative curvature is encountered the iteration stops and
returns the current iterate (or the preconditioned steepest-descent direction
if that happens on the very first iteration), which keeps the Gauss-Newton
step a descent direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.observability.trace import trace_span
from repro.runtime.cancellation import check_cancelled
from repro.spectral.grid import Grid
from repro.utils.logging import get_logger

LOGGER = get_logger("core.optim.pcg")

MatVec = Callable[[np.ndarray], np.ndarray]


@dataclass
class PCGResult:
    """Outcome of a PCG solve."""

    solution: np.ndarray
    iterations: int
    residual_norms: List[float] = field(default_factory=list)
    converged: bool = False
    negative_curvature: bool = False

    @property
    def final_relative_residual(self) -> float:
        if not self.residual_norms:
            return float("nan")
        return self.residual_norms[-1] / max(self.residual_norms[0], 1e-300)


def pcg(
    matvec: MatVec,
    rhs: np.ndarray,
    grid: Grid,
    preconditioner: Optional[MatVec] = None,
    rel_tol: float = 1e-2,
    abs_tol: float = 0.0,
    max_iterations: int = 100,
    x0: Optional[np.ndarray] = None,
    cancel_token: Optional[object] = None,
) -> PCGResult:
    """Solve ``H x = rhs`` with preconditioned conjugate gradients.

    Parameters
    ----------
    matvec:
        Callable applying the SPD operator ``H`` to a velocity-shaped array.
    rhs:
        Right-hand side (``-g`` for the Newton system).
    grid:
        Grid defining the inner product (mesh-weighted L2).
    preconditioner:
        Callable applying ``M^{-1}``; identity when omitted.
    rel_tol:
        Relative residual tolerance (the forcing term of the inexact Newton
        method).
    abs_tol:
        Absolute residual tolerance.
    max_iterations:
        Hard cap on the number of mat-vecs.
    x0:
        Optional initial guess (zero by default, the usual choice for
        Newton systems).
    cancel_token:
        Optional cooperative cancellation token
        (:class:`repro.runtime.cancellation.CancelToken`).  Polled before
        every mat-vec — a Krylov solve runs up to ``max_iterations``
        Hessian applications (seconds to minutes at production grids), far
        too long to defer cancellation to the outer Newton loop.  When set,
        :class:`~repro.runtime.cancellation.SolveCancelled` is raised
        between iterations, never mid-mat-vec.

    Returns
    -------
    PCGResult
        Solution, iteration count, residual history and status flags.
    """
    if rel_tol < 0 or abs_tol < 0:
        raise ValueError("tolerances must be non-negative")
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
    rhs = np.asarray(rhs)

    apply_prec = preconditioner if preconditioner is not None else (lambda r: r)

    x = np.zeros_like(rhs) if x0 is None else np.array(x0, copy=True)
    r = rhs - matvec(x) if x0 is not None and np.any(x0) else rhs.copy()
    z = apply_prec(r)
    p = z.copy()
    rz = grid.inner(r, z)

    r_norm = grid.norm(r)
    residual_norms = [r_norm]
    # the relative tolerance is measured against ||rhs|| (scipy convention),
    # so a warm start that already satisfies the system converges immediately
    target = max(rel_tol * grid.norm(rhs), abs_tol)

    if r_norm <= target:
        return PCGResult(solution=x, iterations=0, residual_norms=residual_norms, converged=True)

    negative_curvature = False
    converged = False
    iterations = 0
    for iteration in range(max_iterations):
        # cooperative cancellation: the safe point between Krylov
        # iterations — x/r/p are consistent, no mat-vec is in flight
        check_cancelled(cancel_token, "pcg solve")
        with trace_span("pcg.matvec", iteration=iteration):
            hp = matvec(p)
        curvature = grid.inner(p, hp)
        iterations = iteration + 1
        if curvature <= 0.0:
            # Negative (or zero) curvature: fall back to the best iterate so
            # far; on the first iteration use the preconditioned gradient so
            # the Newton step is still a descent direction.
            negative_curvature = True
            if iteration == 0:
                x = z.copy()
            LOGGER.debug("PCG detected non-positive curvature at iteration %d", iteration)
            break
        alpha = rz / curvature
        x += alpha * p
        r -= alpha * hp
        r_norm = grid.norm(r)
        residual_norms.append(r_norm)
        if r_norm <= target:
            converged = True
            break
        z = apply_prec(r)
        rz_new = grid.inner(r, z)
        p = z + (rz_new / rz) * p
        rz = rz_new

    return PCGResult(
        solution=x,
        iterations=iterations,
        residual_norms=residual_norms,
        converged=converged,
        negative_curvature=negative_curvature,
    )
