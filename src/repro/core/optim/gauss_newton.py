"""Inexact, preconditioned Gauss-Newton-Krylov solver.

This is the optimization driver of the paper (Sec. III-A):

* outer iteration: Newton's method globalized with an Armijo line search,
* inner iteration: matrix-free PCG on the (Gauss-)Newton system
  ``H(v) v~ = -g(v)``, preconditioned with the spectral inverse of the
  regularization operator,
* inexactness: the PCG relative tolerance is chosen from the current
  gradient norm (Eisenstat-Walker forcing; the paper uses "an inexact
  Newton method with quadratic forcing", Sec. IV-A3),
* termination: relative reduction of the gradient norm by ``gtol``
  (``1e-2`` in the paper) or a maximum number of outer iterations.

The paper's C++ implementation delegates this loop to PETSc/TAO; here the
loop is written out explicitly, with the same control parameters exposed
(PCG tolerance selection and nonlinear termination criteria).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.optim.line_search import ArmijoLineSearch
from repro.core.optim.pcg import pcg
from repro.core.preconditioner import SpectralPreconditioner
from repro.core.problem import OuterIterate, RegistrationProblem
from repro.observability.trace import trace_span
from repro.runtime.cancellation import check_cancelled
from repro.utils.logging import get_logger

LOGGER = get_logger("core.optim.gauss_newton")


@dataclass
class SolverOptions:
    """Control parameters of the Gauss-Newton-Krylov solver.

    Parameters
    ----------
    gradient_tolerance:
        Relative gradient-norm reduction ``||g|| <= gtol * ||g0||`` used for
        termination (the paper's ``gtol = 1e-2``).
    absolute_gradient_tolerance:
        Absolute gradient-norm floor (termination when reached).
    max_newton_iterations:
        Maximum number of outer (Newton) iterations (the paper caps at 50
        for the brain runs, and at 2 for the pure scalability runs).
    max_krylov_iterations:
        Cap on PCG iterations (Hessian mat-vecs) per Newton step.
    forcing:
        Eisenstat-Walker forcing sequence: ``"quadratic"`` (paper default),
        ``"linear"``, or ``"constant"``.
    forcing_max:
        Upper bound on the forcing term (PCG relative tolerance).
    constant_forcing:
        Tolerance used when ``forcing == "constant"``.
    preconditioner:
        Variant passed to :class:`SpectralPreconditioner` (``"none"``
        disables preconditioning; used by the ablation bench).
    line_search:
        Armijo line-search parameters.
    max_wall_clock_seconds:
        Optional wall-clock budget; the solver returns the best iterate when
        exceeded.
    verbose:
        Emit one log line per Newton iteration.
    cancel_token:
        Optional cooperative cancellation token
        (:class:`repro.runtime.cancellation.CancelToken`).  Polled between
        outer iterations *and* between the Krylov iterations of every inner
        PCG solve; when set, the solver raises
        :class:`~repro.runtime.cancellation.SolveCancelled` instead of
        starting the next Newton step or Hessian mat-vec.  Never serialized
        with the options.
    """

    gradient_tolerance: float = 1e-2
    absolute_gradient_tolerance: float = 1e-12
    max_newton_iterations: int = 50
    max_krylov_iterations: int = 100
    forcing: str = "quadratic"
    forcing_max: float = 0.5
    constant_forcing: float = 1e-1
    preconditioner: str = "inverse_regularization"
    line_search: ArmijoLineSearch = field(default_factory=ArmijoLineSearch)
    max_wall_clock_seconds: Optional[float] = None
    verbose: bool = False
    cancel_token: Optional[object] = None

    def forcing_term(self, gradient_norm: float, initial_gradient_norm: float) -> float:
        """Relative PCG tolerance for the current Newton iteration."""
        if self.forcing == "constant":
            return min(self.forcing_max, self.constant_forcing)
        ratio = gradient_norm / max(initial_gradient_norm, 1e-300)
        if self.forcing == "quadratic":
            value = np.sqrt(ratio)
        elif self.forcing == "linear":
            value = ratio
        else:
            raise ValueError(
                f"unknown forcing {self.forcing!r}; expected 'quadratic', 'linear' or 'constant'"
            )
        return float(min(self.forcing_max, max(value, 1e-12)))


@dataclass
class NewtonIterationRecord:
    """Convergence history entry for one outer iteration."""

    iteration: int
    objective: float
    distance: float
    regularization: float
    gradient_norm: float
    relative_gradient_norm: float
    forcing_term: float
    pcg_iterations: int
    hessian_matvecs: int
    step_length: float
    line_search_evaluations: int
    elapsed_seconds: float


@dataclass
class OptimizationResult:
    """Outcome of a Gauss-Newton-Krylov (or gradient-descent) solve."""

    velocity: np.ndarray
    converged: bool
    termination_reason: str
    iterations: List[NewtonIterationRecord]
    final_iterate: OuterIterate
    total_hessian_matvecs: int
    total_pcg_iterations: int
    elapsed_seconds: float

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def final_objective(self) -> float:
        return self.final_iterate.objective.total

    @property
    def final_gradient_norm(self) -> float:
        return self.final_iterate.gradient_norm

    def convergence_table(self) -> List[dict]:
        """The convergence history as a list of plain dictionaries."""
        return [vars(record).copy() for record in self.iterations]


@dataclass
class GaussNewtonKrylov:
    """Inexact preconditioned Gauss-Newton-Krylov driver.

    Parameters
    ----------
    problem:
        The discretized registration problem (provides objective, gradient
        and Hessian mat-vec).
    options:
        Solver control parameters.
    """

    problem: RegistrationProblem
    options: SolverOptions = field(default_factory=SolverOptions)

    def solve(self, initial_velocity: Optional[np.ndarray] = None) -> OptimizationResult:
        """Run the outer Newton loop starting from *initial_velocity* (or 0)."""
        problem = self.problem
        options = self.options
        grid = problem.grid
        start = time.perf_counter()

        velocity = (
            problem.zero_velocity()
            if initial_velocity is None
            else problem.project(np.array(initial_velocity, dtype=grid.dtype, copy=True))
        )

        preconditioner = SpectralPreconditioner(problem.regularizer, options.preconditioner)
        iterate = problem.linearize(velocity)
        initial_gradient_norm = max(iterate.gradient_norm, 1e-300)

        records: List[NewtonIterationRecord] = []
        total_matvecs = 0
        total_pcg = 0
        converged = False
        reason = "max_iterations"

        def objective_of(trial_velocity: np.ndarray) -> float:
            return problem.evaluate_objective(trial_velocity).total

        for iteration in range(options.max_newton_iterations):
            # cooperative cancellation: the safe point between Newton
            # iterations — the current iterate is fully consistent here
            check_cancelled(options.cancel_token, "registration solve")
            rel_gnorm = iterate.gradient_norm / initial_gradient_norm
            if options.verbose:
                LOGGER.info(
                    "it %2d  J=%.6e  dist=%.6e  |g|=%.3e (rel %.3e)",
                    iteration,
                    iterate.objective.total,
                    iterate.objective.distance,
                    iterate.gradient_norm,
                    rel_gnorm,
                )
            if (
                iterate.gradient_norm <= options.absolute_gradient_tolerance
                or rel_gnorm <= options.gradient_tolerance
            ):
                converged = True
                reason = "gradient_tolerance"
                break
            if (
                options.max_wall_clock_seconds is not None
                and time.perf_counter() - start > options.max_wall_clock_seconds
            ):
                reason = "wall_clock_budget"
                break

            forcing = options.forcing_term(iterate.gradient_norm, initial_gradient_norm)
            matvec_count_before = problem.hessian_matvec_count
            with trace_span("newton.iteration", iteration=iteration) as iteration_span:
                with trace_span("newton.pcg", forcing=forcing):
                    pcg_result = pcg(
                        matvec=problem.hessian_operator(iterate),
                        rhs=-iterate.gradient,
                        grid=grid,
                        preconditioner=preconditioner,
                        rel_tol=forcing,
                        max_iterations=options.max_krylov_iterations,
                        cancel_token=options.cancel_token,
                    )
                matvecs_this_iteration = problem.hessian_matvec_count - matvec_count_before
                total_matvecs += matvecs_this_iteration
                total_pcg += pcg_result.iterations
                iteration_span.set_attr("hessian_matvecs", matvecs_this_iteration)

                direction = pcg_result.solution
                if not np.any(direction):
                    # PCG returned a zero step (e.g. immediate negative
                    # curvature); fall back to preconditioned steepest descent.
                    direction = preconditioner(-iterate.gradient)

                with trace_span("newton.line_search"):
                    ls = options.line_search.search(
                        objective=objective_of,
                        grid=grid,
                        current_point=iterate.velocity,
                        current_objective=iterate.objective.total,
                        gradient=iterate.gradient,
                        direction=direction,
                    )
                if not ls.success:
                    # Retry along the preconditioned negative gradient before
                    # declaring failure.
                    direction = preconditioner(-iterate.gradient)
                    with trace_span("newton.line_search", retry=True):
                        ls = options.line_search.search(
                            objective=objective_of,
                            grid=grid,
                            current_point=iterate.velocity,
                            current_objective=iterate.objective.total,
                            gradient=iterate.gradient,
                            direction=direction,
                        )
                    if not ls.success:
                        reason = "line_search_failure"
                        records.append(
                            self._record(
                                iteration,
                                iterate,
                                rel_gnorm,
                                forcing,
                                pcg_result.iterations,
                                matvecs_this_iteration,
                                0.0,
                                ls.evaluations,
                                start,
                            )
                        )
                        break

                velocity = iterate.velocity + ls.step_length * direction
                velocity = problem.project(velocity)
                with trace_span("newton.linearize"):
                    iterate = problem.linearize(velocity)

            records.append(
                self._record(
                    iteration,
                    iterate,
                    iterate.gradient_norm / initial_gradient_norm,
                    forcing,
                    pcg_result.iterations,
                    matvecs_this_iteration,
                    ls.step_length,
                    ls.evaluations,
                    start,
                )
            )

        elapsed = time.perf_counter() - start
        return OptimizationResult(
            velocity=iterate.velocity,
            converged=converged,
            termination_reason=reason,
            iterations=records,
            final_iterate=iterate,
            total_hessian_matvecs=total_matvecs,
            total_pcg_iterations=total_pcg,
            elapsed_seconds=elapsed,
        )

    def _record(
        self,
        iteration: int,
        iterate: OuterIterate,
        rel_gnorm: float,
        forcing: float,
        pcg_iterations: int,
        matvecs: int,
        step_length: float,
        ls_evaluations: int,
        start: float,
    ) -> NewtonIterationRecord:
        return NewtonIterationRecord(
            iteration=iteration,
            objective=iterate.objective.total,
            distance=iterate.objective.distance,
            regularization=iterate.objective.regularization,
            gradient_norm=iterate.gradient_norm,
            relative_gradient_norm=rel_gnorm,
            forcing_term=forcing,
            pcg_iterations=pcg_iterations,
            hessian_matvecs=matvecs,
            step_length=step_length,
            line_search_evaluations=ls_evaluations,
            elapsed_seconds=time.perf_counter() - start,
        )
