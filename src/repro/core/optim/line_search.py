"""Armijo backtracking line search.

The paper globalizes the Newton iteration with an Armijo line search
(Sec. III-A: "a line-search globalized, inexact, preconditioned
Gauss-Newton-Krylov scheme").  The implementation below backtracks from a
unit step, accepting the first step length that satisfies the sufficient
decrease condition

    J(v + alpha d)  <=  J(v) + c1 * alpha * <g, d>.

The objective evaluation is supplied as a callable, because for the
registration problem each evaluation requires a forward transport solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.observability.trace import trace_span
from repro.spectral.grid import Grid
from repro.utils.logging import get_logger
from repro.utils.validation import check_positive

LOGGER = get_logger("core.optim.line_search")


@dataclass
class LineSearchResult:
    """Outcome of one Armijo backtracking search."""

    step_length: float
    objective: float
    evaluations: int
    success: bool


@dataclass
class ArmijoLineSearch:
    """Backtracking line search with the Armijo sufficient-decrease rule.

    Parameters
    ----------
    c1:
        Sufficient-decrease parameter (default ``1e-4``, the standard
        choice).
    contraction:
        Multiplicative backtracking factor applied to the step length.
    max_evaluations:
        Maximum number of trial objective evaluations before giving up.
    initial_step:
        First trial step (1 for Newton-type directions).
    """

    c1: float = 1e-4
    contraction: float = 0.5
    max_evaluations: int = 20
    initial_step: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.c1, "c1")
        if not 0.0 < self.contraction < 1.0:
            raise ValueError(f"contraction must lie in (0, 1), got {self.contraction}")
        if self.max_evaluations < 1:
            raise ValueError("max_evaluations must be >= 1")
        check_positive(self.initial_step, "initial_step")

    def search(
        self,
        objective: Callable[[np.ndarray], float],
        grid: Grid,
        current_point: np.ndarray,
        current_objective: float,
        gradient: np.ndarray,
        direction: np.ndarray,
    ) -> LineSearchResult:
        """Find an Armijo-acceptable step along *direction*.

        Parameters
        ----------
        objective:
            Callable evaluating ``J`` at a trial velocity.
        grid:
            Grid defining the inner product for the directional derivative.
        current_point:
            Current velocity ``v``.
        current_objective:
            ``J(v)`` (already computed by the outer iteration).
        gradient:
            Reduced gradient ``g(v)``.
        direction:
            Search direction ``d`` (the Newton/PCG step).
        """
        directional_derivative = grid.inner(gradient, direction)
        sign = 1.0
        if directional_derivative >= 0.0:
            # The (inexact) Newton direction is not a descent direction;
            # search along the reflected direction instead.  The returned
            # step length is signed so that callers always update with
            # ``v + step * direction`` using the *original* direction.
            LOGGER.debug(
                "direction is not a descent direction (g.d = %.3e); reflecting",
                directional_derivative,
            )
            sign = -1.0
            directional_derivative = -directional_derivative

        step = self.initial_step
        evaluations = 0
        while evaluations < self.max_evaluations:
            trial = current_point + sign * step * direction
            with trace_span("line_search.trial", step=sign * step):
                value = objective(trial)
            evaluations += 1
            sufficient = current_objective + self.c1 * step * directional_derivative
            if np.isfinite(value) and value <= sufficient:
                return LineSearchResult(
                    step_length=sign * step,
                    objective=value,
                    evaluations=evaluations,
                    success=True,
                )
            step *= self.contraction
        return LineSearchResult(
            step_length=0.0,
            objective=current_objective,
            evaluations=evaluations,
            success=False,
        )
