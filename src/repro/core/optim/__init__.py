"""Numerical optimization: the paper's Newton-Krylov machinery.

* :mod:`repro.core.optim.pcg` — matrix-free preconditioned conjugate
  gradients for the Newton system ``H(v) v~ = -g(v)``.
* :mod:`repro.core.optim.line_search` — Armijo backtracking globalization.
* :mod:`repro.core.optim.gauss_newton` — the inexact (Eisenstat-Walker
  forcing), preconditioned Gauss-Newton-Krylov driver.
* :mod:`repro.core.optim.gradient_descent` — the (preconditioned) steepest
  descent baseline used by most registration packages, kept for the
  convergence-rate comparison the paper motivates.
* :mod:`repro.core.optim.continuation` — parameter continuation in ``beta``.
"""

from repro.core.optim.pcg import PCGResult, pcg
from repro.core.optim.line_search import ArmijoLineSearch, LineSearchResult
from repro.core.optim.gauss_newton import (
    GaussNewtonKrylov,
    NewtonIterationRecord,
    OptimizationResult,
    SolverOptions,
)
from repro.core.optim.gradient_descent import GradientDescent
from repro.core.optim.continuation import BetaContinuation, ContinuationResult
from repro.core.optim.multilevel import MultilevelRegistration, MultilevelResult

__all__ = [
    "PCGResult",
    "pcg",
    "ArmijoLineSearch",
    "LineSearchResult",
    "GaussNewtonKrylov",
    "NewtonIterationRecord",
    "OptimizationResult",
    "SolverOptions",
    "GradientDescent",
    "BetaContinuation",
    "ContinuationResult",
    "MultilevelRegistration",
    "MultilevelResult",
]
