"""Coarse-to-fine (grid continuation) registration.

The paper lists grid continuation / multilevel schemes among the techniques
that address the missing ``beta``-robust preconditioner ("There are several
techniques for doing so, e.g., grid continuation and multilevel
preconditioning ... Here we focus on the single-level solver", Sec. I,
Limitations).  This module implements the straightforward variant as an
extension: the registration problem is solved on a hierarchy of spectrally
coarsened grids, and the velocity of each level warm-starts the next finer
level.  Because the spectral restriction/prolongation operators are exact
for resolved modes, the coarse solution is an excellent initial guess and
the expensive fine-level solve needs only a few Newton iterations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.optim.gauss_newton import GaussNewtonKrylov, OptimizationResult, SolverOptions
from repro.core.problem import RegistrationProblem
from repro.runtime.plan_pool import PoolStats, get_plan_pool
from repro.spectral.filters import prolong, restrict
from repro.spectral.grid import Grid
from repro.utils.logging import get_logger
from repro.utils.validation import check_positive_int

LOGGER = get_logger("core.optim.multilevel")


@dataclass
class MultilevelLevelRecord:
    """Outcome of one level of the coarse-to-fine hierarchy."""

    level: int
    grid_shape: Tuple[int, int, int]
    result: OptimizationResult
    elapsed_seconds: float


@dataclass
class MultilevelResult:
    """Outcome of a multilevel registration."""

    velocity: np.ndarray
    levels: List[MultilevelLevelRecord]
    elapsed_seconds: float
    plan_pool: Optional[PoolStats] = None

    @property
    def fine_result(self) -> OptimizationResult:
        return self.levels[-1].result

    @property
    def total_hessian_matvecs(self) -> int:
        return sum(record.result.total_hessian_matvecs for record in self.levels)


@dataclass
class MultilevelRegistration:
    """Grid-continuation driver around the Gauss-Newton-Krylov solver.

    Parameters
    ----------
    grid:
        Fine-level grid of the input images.
    reference, template:
        Images on the fine grid (already pre-processed).
    num_levels:
        Number of levels; level ``k`` uses the grid coarsened by ``2**k``
        (coarsest level first).
    beta, regularization, incompressible, num_time_steps, gauss_newton:
        Problem parameters, identical on every level.
    options:
        Solver options; the coarse levels reuse them with the same iteration
        caps (coarse iterations are cheap).
    fft_backend:
        FFT engine name or instance used by every level's spectral operators
        (``None`` selects the environment default).
    interpolation:
        Semi-Lagrangian interpolation kernel used on every level.
    interp_backend:
        Interpolation engine name or instance used by every level's
        transport solver (``None`` selects the environment default); each
        level plans its own gather stencils on its own grid.
    """

    grid: Grid
    reference: np.ndarray
    template: np.ndarray
    num_levels: int = 2
    beta: float = 1e-2
    regularization: str = "h1"
    incompressible: bool = False
    num_time_steps: int = 4
    gauss_newton: bool = True
    options: SolverOptions = field(default_factory=SolverOptions)
    fft_backend: Optional[object] = None
    interpolation: str = "cubic_bspline"
    interp_backend: Optional[object] = None

    def __post_init__(self) -> None:
        check_positive_int(self.num_levels, "num_levels")
        self.reference = np.asarray(self.reference, dtype=self.grid.dtype)
        self.template = np.asarray(self.template, dtype=self.grid.dtype)
        for name, image in (("reference", self.reference), ("template", self.template)):
            if image.shape != self.grid.shape:
                raise ValueError(f"{name} has shape {image.shape}, expected {self.grid.shape}")
        # every level must keep at least 4 points per dimension
        max_levels = 1
        while max_levels < self.num_levels and all(
            n // 2 ** max_levels >= 4 for n in self.grid.shape
        ):
            max_levels += 1
        self.num_levels = min(self.num_levels, max_levels)

    # ------------------------------------------------------------------ #
    def level_grid(self, level: int) -> Grid:
        """Grid of hierarchy level *level* (0 = coarsest)."""
        coarsening = 2 ** (self.num_levels - 1 - level)
        return self.grid.coarsen(coarsening) if coarsening > 1 else self.grid

    def _problem_on(self, grid: Grid) -> RegistrationProblem:
        if grid.shape == self.grid.shape:
            reference, template = self.reference, self.template
        else:
            reference = restrict(self.reference, self.grid, grid)
            template = restrict(self.template, self.grid, grid)
        return RegistrationProblem(
            grid=grid,
            reference=reference,
            template=template,
            beta=self.beta,
            regularization=self.regularization,
            incompressible=self.incompressible,
            num_time_steps=self.num_time_steps,
            gauss_newton=self.gauss_newton,
            fft_backend=self.fft_backend,
            interpolation=self.interpolation,
            interp_backend=self.interp_backend,
        )

    @staticmethod
    def _prolong_velocity(velocity: np.ndarray, coarse: Grid, fine: Grid) -> np.ndarray:
        return np.stack(
            [prolong(velocity[axis], coarse, fine) for axis in range(3)], axis=0
        ).astype(fine.dtype)

    # ------------------------------------------------------------------ #
    def run(self, initial_velocity: Optional[np.ndarray] = None) -> MultilevelResult:
        """Solve coarse-to-fine and return the fine-level velocity.

        Per-velocity transport plans flow through the shared plan pool:
        each ``(grid, velocity)`` pair is planned at most once per level
        (the line search and the subsequent ``linearize`` share warm plans)
        and the per-run hit/miss delta is reported in the result.
        """
        start = time.perf_counter()
        pool_before = get_plan_pool().stats
        records: List[MultilevelLevelRecord] = []
        velocity = initial_velocity
        previous_grid: Optional[Grid] = None

        for level in range(self.num_levels):
            grid = self.level_grid(level)
            problem = self._problem_on(grid)
            if velocity is not None and previous_grid is not None and previous_grid.shape != grid.shape:
                velocity = self._prolong_velocity(velocity, previous_grid, grid)
            level_start = time.perf_counter()
            result = GaussNewtonKrylov(problem, self.options).solve(velocity)
            elapsed = time.perf_counter() - level_start
            LOGGER.info(
                "level %d (%s): %d Newton iterations, %d mat-vecs, J=%.3e",
                level,
                grid.shape,
                result.num_iterations,
                result.total_hessian_matvecs,
                result.final_objective,
            )
            records.append(
                MultilevelLevelRecord(
                    level=level, grid_shape=grid.shape, result=result, elapsed_seconds=elapsed
                )
            )
            velocity = result.velocity
            previous_grid = grid

        pool_delta = get_plan_pool().stats - pool_before
        LOGGER.info(
            "plan pool over %d levels: %d hits, %d misses, %d evictions",
            len(records),
            pool_delta.hits,
            pool_delta.misses,
            pool_delta.evictions,
        )
        return MultilevelResult(
            velocity=velocity,
            levels=records,
            elapsed_seconds=time.perf_counter() - start,
            plan_pool=pool_delta,
        )
