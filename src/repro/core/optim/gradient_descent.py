"""(Preconditioned) gradient descent — the baseline optimizer.

The paper argues that "most registration packages use steepest descent
(first order) methods ... However, steepest descent methods only have a
linear convergence rate" (Sec. II-B) and motivates the Gauss-Newton-Krylov
scheme by its superior convergence.  This module implements that baseline so
the claim can be reproduced quantitatively
(``benchmarks/bench_ablation_optimizer_baseline.py``): preconditioned
steepest descent with the same Armijo globalization, preconditioner, and
termination criteria as the Newton driver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.optim.gauss_newton import (
    NewtonIterationRecord,
    OptimizationResult,
    SolverOptions,
)
from repro.core.preconditioner import SpectralPreconditioner
from repro.core.problem import RegistrationProblem
from repro.runtime.cancellation import check_cancelled
from repro.utils.logging import get_logger

LOGGER = get_logger("core.optim.gradient_descent")


@dataclass
class GradientDescent:
    """Preconditioned steepest-descent solver with Armijo line search.

    Shares :class:`SolverOptions` with the Newton driver; the Krylov-related
    options are simply ignored.  The descent direction is
    ``d = -M^{-1} g(v)`` where ``M^{-1}`` is the spectral preconditioner
    (this matches the "preconditioned gradient descent" schemes cited in the
    related-work section, e.g. for GPU LDDMM codes).
    """

    problem: RegistrationProblem
    options: SolverOptions = field(default_factory=SolverOptions)

    def solve(self, initial_velocity: Optional[np.ndarray] = None) -> OptimizationResult:
        problem = self.problem
        options = self.options
        grid = problem.grid
        start = time.perf_counter()

        velocity = (
            problem.zero_velocity()
            if initial_velocity is None
            else problem.project(np.array(initial_velocity, dtype=grid.dtype, copy=True))
        )
        preconditioner = SpectralPreconditioner(problem.regularizer, options.preconditioner)
        iterate = problem.linearize(velocity)
        initial_gradient_norm = max(iterate.gradient_norm, 1e-300)

        records: List[NewtonIterationRecord] = []
        converged = False
        reason = "max_iterations"

        def objective_of(trial_velocity: np.ndarray) -> float:
            return problem.evaluate_objective(trial_velocity).total

        for iteration in range(options.max_newton_iterations):
            # same safe point as the Newton driver: between outer iterations
            check_cancelled(options.cancel_token, "registration solve")
            rel_gnorm = iterate.gradient_norm / initial_gradient_norm
            if options.verbose:
                LOGGER.info(
                    "gd it %3d  J=%.6e  |g|=%.3e (rel %.3e)",
                    iteration,
                    iterate.objective.total,
                    iterate.gradient_norm,
                    rel_gnorm,
                )
            if (
                iterate.gradient_norm <= options.absolute_gradient_tolerance
                or rel_gnorm <= options.gradient_tolerance
            ):
                converged = True
                reason = "gradient_tolerance"
                break
            if (
                options.max_wall_clock_seconds is not None
                and time.perf_counter() - start > options.max_wall_clock_seconds
            ):
                reason = "wall_clock_budget"
                break

            direction = preconditioner(-iterate.gradient)
            ls = options.line_search.search(
                objective=objective_of,
                grid=grid,
                current_point=iterate.velocity,
                current_objective=iterate.objective.total,
                gradient=iterate.gradient,
                direction=direction,
            )
            if not ls.success:
                reason = "line_search_failure"
                break

            velocity = problem.project(iterate.velocity + ls.step_length * direction)
            iterate = problem.linearize(velocity)
            records.append(
                NewtonIterationRecord(
                    iteration=iteration,
                    objective=iterate.objective.total,
                    distance=iterate.objective.distance,
                    regularization=iterate.objective.regularization,
                    gradient_norm=iterate.gradient_norm,
                    relative_gradient_norm=iterate.gradient_norm / initial_gradient_norm,
                    forcing_term=0.0,
                    pcg_iterations=0,
                    hessian_matvecs=0,
                    step_length=ls.step_length,
                    line_search_evaluations=ls.evaluations,
                    elapsed_seconds=time.perf_counter() - start,
                )
            )

        elapsed = time.perf_counter() - start
        return OptimizationResult(
            velocity=iterate.velocity,
            converged=converged,
            termination_reason=reason,
            iterations=records,
            final_iterate=iterate,
            total_hessian_matvecs=0,
            total_pcg_iterations=0,
            elapsed_seconds=elapsed,
        )
