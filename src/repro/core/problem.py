"""The registration problem: objective, reduced gradient, Hessian mat-vec.

This module implements the reduced-space quantities of the PDE-constrained
optimization problem (Sec. II-B of the paper):

* the objective ``J[v] = 1/2 ||rho(., 1) - rho_R||^2 + beta/2 <A v, v>``
  (Eq. 2a), where ``rho(., 1)`` is obtained by transporting the template
  with the state equation (Eq. 2b),
* the reduced gradient ``g(v) = beta A v + P int_0^1 lam grad rho dt``
  (Eq. 4), where ``lam`` solves the adjoint equation (Eq. 3) and ``P`` is
  the Leray projection (identity when the incompressibility constraint is
  not enforced),
* the Gauss-Newton / full Newton Hessian mat-vec (Eq. 5)
  ``H(v) v~ = beta A v~ + P int_0^1 (lam~ grad rho [+ lam grad rho~]) dt``.

Every evaluation follows the optimize-then-discretize strategy of the paper:
the continuous optimality conditions are discretized with the spectral /
semi-Lagrangian kernels of :mod:`repro.spectral` and :mod:`repro.transport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.gradients import (
    CachedStateGradients,
    StateGradients,
    accumulate_weighted_products,
    gradient_levels_of,
    plan_state_gradients,
    trapezoid_weights,
)
from repro.core.regularization import make_regularization
from repro.observability.trace import trace_span
from repro.spectral.grid import Grid
from repro.spectral.operators import SpectralOperators
from repro.transport.kernels import default_plan_layout, resolve_plan_layout
from repro.transport.solvers import TransportPlan, TransportSolver
from repro.utils.validation import check_positive_int, check_velocity_shape


@dataclass
class ObjectiveParts:
    """Decomposition of the objective into data fidelity and regularization."""

    distance: float
    regularization: float

    @property
    def total(self) -> float:
        return self.distance + self.regularization


@dataclass
class OuterIterate:
    """All quantities linearized around one outer (Newton) iterate ``v``.

    The Gauss-Newton-Krylov solver evaluates the state and adjoint once per
    outer iteration and then re-uses them for every Hessian mat-vec of the
    inner PCG solve, exactly as in the paper (the state/adjoint time
    histories are stored in memory, Sec. III-B2).
    """

    velocity: np.ndarray
    plan: TransportPlan
    state_history: np.ndarray
    adjoint_history: np.ndarray
    objective: ObjectiveParts
    gradient: np.ndarray
    gradient_norm: float
    residual: np.ndarray
    #: Iterate-scoped source of the state-history gradients (cached stack or
    #: lazy recomputation, :mod:`repro.core.gradients`).  ``None`` on
    #: hand-built iterates — every consumer then degrades to the lazy path.
    state_gradients: Optional[StateGradients] = None

    @property
    def deformed_template(self) -> np.ndarray:
        """The transported template ``rho(., 1)``."""
        return self.state_history[-1]


@dataclass
class KernelWorkCounters:
    """Snapshot of the kernel work executed so far (FFTs, interpolations).

    The paper's complexity model (Sec. III-C4) predicts ``8 nt`` FFTs and
    ``4 nt`` interpolation sweeps per Hessian mat-vec; these counters let the
    test-suite and the benchmark harness check the prediction against the
    implementation.  Both counts live in the respective frontends
    (:class:`repro.spectral.fft.FourierTransform`,
    :class:`repro.transport.interpolation.PeriodicInterpolator`), never in
    the pluggable backends, so they are identical for every engine.
    """

    fft_transforms: int = 0
    interpolated_points: int = 0

    def __sub__(self, other: "KernelWorkCounters") -> "KernelWorkCounters":
        return KernelWorkCounters(
            fft_transforms=self.fft_transforms - other.fft_transforms,
            interpolated_points=self.interpolated_points - other.interpolated_points,
        )

    def interpolation_sweeps(self, num_grid_points: int) -> float:
        """Interpolated points expressed in grid sweeps (the paper's unit).

        One "interpolation" of the complexity model is a sweep over all grid
        points, so ``4*nt`` sweeps per Hessian mat-vec corresponds to
        ``4*nt*N1*N2*N3`` interpolated points.
        """
        return self.interpolated_points / num_grid_points


@dataclass
class RegistrationProblem:
    """Discretized optimal-control registration problem.

    Parameters
    ----------
    grid:
        Computational grid shared by the images and the velocity.
    reference:
        Reference image ``rho_R`` (fixed image).
    template:
        Template image ``rho_T`` (moving image, transported by the state
        equation).
    beta:
        Regularization weight.
    regularization:
        Name of the Sobolev-seminorm regularization (``"h1"`` per Eq. 2a,
        ``"h2"`` biharmonic, ``"h3"``).
    incompressible:
        Enforce ``div v = 0`` (volume-preserving diffeomorphism) by Leray
        projection of the gradient and the Hessian mat-vec.
    num_time_steps:
        Pseudo-time steps ``nt`` of the semi-Lagrangian scheme.
    gauss_newton:
        Use the Gauss-Newton approximation of the Hessian (the paper's
        default for all reported experiments).
    interpolation:
        Off-grid interpolation kernel.
    fft_backend:
        FFT engine name or instance (``"numpy"``, ``"scipy"``, ``"pyfftw"``,
        or ``None`` for the ``REPRO_FFT_BACKEND`` / numpy default) used when
        the spectral operators are constructed on demand.
    interp_backend:
        Interpolation engine name or instance (``"scipy"``, ``"numpy"``,
        ``"numba"``, or ``None`` for the ``REPRO_INTERP_BACKEND`` / scipy
        default) used when the transport solver is constructed on demand.
    """

    grid: Grid
    reference: np.ndarray
    template: np.ndarray
    beta: float = 1e-2
    regularization: str = "h1"
    incompressible: bool = False
    num_time_steps: int = 4
    gauss_newton: bool = True
    interpolation: str = "cubic_bspline"
    fft_backend: Optional[object] = None
    interp_backend: Optional[object] = None
    operators: Optional[SpectralOperators] = None
    transport: Optional[TransportSolver] = None
    hessian_matvec_count: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        check_positive_int(self.num_time_steps, "num_time_steps")
        self.reference = np.asarray(self.reference, dtype=self.grid.dtype)
        self.template = np.asarray(self.template, dtype=self.grid.dtype)
        if self.reference.shape != self.grid.shape:
            raise ValueError(
                f"reference image has shape {self.reference.shape}, expected {self.grid.shape}"
            )
        if self.template.shape != self.grid.shape:
            raise ValueError(
                f"template image has shape {self.template.shape}, expected {self.grid.shape}"
            )
        if self.operators is None:
            self.operators = SpectralOperators(self.grid, fft_backend=self.fft_backend)
        if self.transport is None:
            self.transport = TransportSolver(
                self.grid,
                num_time_steps=self.num_time_steps,
                interpolation=self.interpolation,
                operators=self.operators,
                interp_backend=self.interp_backend,
            )
        self.regularizer = make_regularization(self.regularization, self.operators, self.beta)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def zero_velocity(self) -> np.ndarray:
        """Initial guess ``v = 0`` (the paper's initialization)."""
        return self.grid.zeros_vector()

    def set_beta(self, beta: float) -> None:
        """Change the regularization weight (used by the continuation)."""
        self.beta = float(beta)
        self.regularizer = self.regularizer.with_beta(beta)

    def project(self, vector_field: np.ndarray) -> np.ndarray:
        """Apply the Leray projection if the problem is incompressible."""
        if self.incompressible:
            return self.operators.leray_project(vector_field)
        return vector_field

    def work_counters(self) -> KernelWorkCounters:
        """Current snapshot of FFT / interpolation work."""
        return KernelWorkCounters(
            fft_transforms=self.operators.fft.counters.total,
            interpolated_points=self.transport.interpolator.points_interpolated,
        )

    # ------------------------------------------------------------------ #
    # objective
    # ------------------------------------------------------------------ #
    def distance(self, deformed_template: np.ndarray) -> float:
        """Squared-L2 image mismatch ``1/2 ||rho(., 1) - rho_R||^2``."""
        diff = deformed_template - self.reference
        return 0.5 * self.grid.inner(diff, diff)

    def evaluate_objective(self, velocity: np.ndarray) -> ObjectiveParts:
        """Evaluate ``J[v]`` (one forward transport solve).

        Only the final state enters the distance term, so this rides
        :meth:`~repro.transport.solvers.TransportSolver.solve_state_final`
        — same steps, same interpolation counters, no ``(nt + 1)``-level
        history allocation (the line search evaluates this once per trial).
        """
        velocity = check_velocity_shape(velocity, self.grid.shape)
        plan = self.transport.plan(velocity)
        deformed = self.transport.solve_state_final(plan, self.template)
        return ObjectiveParts(
            distance=self.distance(deformed),
            regularization=self.regularizer.energy(velocity),
        )

    # ------------------------------------------------------------------ #
    # reduced gradient (Eq. 4)
    # ------------------------------------------------------------------ #
    def linearize(self, velocity: np.ndarray) -> OuterIterate:
        """Evaluate objective, state, adjoint, and reduced gradient at ``v``."""
        velocity = check_velocity_shape(velocity, self.grid.shape)
        plan = self.transport.plan(velocity)
        state_history = self.transport.solve_state(plan, self.template)
        deformed = state_history[-1]
        residual = self.reference - deformed
        adjoint_history = self.transport.solve_adjoint(plan, residual)

        # Materialize (or lazily alias) the state-history gradients once for
        # the whole iterate: the body force below, every Hessian mat-vec of
        # the inner PCG solve, and the incremental-state right-hand sides
        # all consume the same nt + 1 gradient fields.
        state_gradients = plan_state_gradients(self.operators, state_history)
        body_force = self._body_force(state_history, adjoint_history, state_gradients)
        gradient = self.regularizer.gradient(velocity) + self.project(body_force)
        if self.incompressible:
            # keep the full gradient in the divergence-free subspace
            gradient = self.operators.leray_project(gradient)

        objective = ObjectiveParts(
            distance=self.distance(deformed),
            regularization=self.regularizer.energy(velocity),
        )
        return OuterIterate(
            velocity=velocity,
            plan=plan,
            state_history=state_history,
            adjoint_history=adjoint_history,
            objective=objective,
            gradient=gradient,
            gradient_norm=self.grid.norm(gradient),
            residual=residual,
            state_gradients=state_gradients,
        )

    #: Trapezoidal quadrature weights on ``nt + 1`` uniform time levels
    #: (kept as a static method for the existing call sites and tests).
    _trapezoid_weights = staticmethod(trapezoid_weights)

    def _body_force(
        self,
        state_history: np.ndarray,
        adjoint_history: np.ndarray,
        state_gradients: Optional[StateGradients] = None,
    ) -> np.ndarray:
        """Time integral ``b = int_0^1 lam grad rho dt`` (vector field).

        Accumulated level by level to avoid storing the full space-time
        integrand (which would double the memory footprint of the stored
        state/adjoint histories); the gradients come from the iterate's
        shared source when one is supplied.
        """
        nt = state_history.shape[0] - 1
        gradients = gradient_levels_of(self.operators, state_history, state_gradients)
        with trace_span("problem.body_force", nt=nt, cached=gradients.cached):
            return accumulate_weighted_products(
                trapezoid_weights(nt),
                [(adjoint_history, gradients)],
                out=self.grid.zeros_vector(),
            )

    # ------------------------------------------------------------------ #
    # Hessian mat-vec (Eq. 5)
    # ------------------------------------------------------------------ #
    def hessian_matvec(self, iterate: OuterIterate, direction: np.ndarray) -> np.ndarray:
        """Apply the (Gauss-)Newton Hessian at *iterate* to *direction*.

        Requires two transport solves (incremental state forward,
        incremental adjoint backward); with the iterate's state gradients
        cached (:mod:`repro.core.gradients`) a Gauss-Newton mat-vec performs
        **zero** spectral-gradient FFTs — only the regularizer's ``6``
        transforms remain of the paper's ``8 nt`` figure (Sec. III-C4),
        which stays the cost of the uncached fallback.  The interpolation
        cost (``4 nt`` sweeps) is unchanged either way.
        """
        direction = check_velocity_shape(direction, self.grid.shape)
        direction = self.project(direction)
        self.hessian_matvec_count += 1

        state_gradients = gradient_levels_of(
            self.operators, iterate.state_history, iterate.state_gradients
        )
        rho_tilde = self.transport.solve_incremental_state(
            iterate.plan, direction, iterate.state_history, state_gradients
        )
        lam_tilde = self.transport.solve_incremental_adjoint(
            iterate.plan,
            terminal=-rho_tilde[-1],
            perturbation=direction,
            adjoint_history=iterate.adjoint_history,
            gauss_newton=self.gauss_newton,
        )

        nt = iterate.plan.num_time_steps
        pairs = [(lam_tilde, state_gradients)]
        if not self.gauss_newton:
            # full Newton adds int lam grad rho~ dt; rho~ changes with every
            # direction, so its gradients are computed fresh — fused over the
            # time axis into one batched transform pair
            rho_tilde_gradients = CachedStateGradients(
                self.operators.gradient_many(rho_tilde)
            )
            pairs.append((iterate.adjoint_history, rho_tilde_gradients))
        with trace_span(
            "problem.body_force_tilde", nt=nt, cached=state_gradients.cached
        ):
            body_force_tilde = accumulate_weighted_products(
                trapezoid_weights(nt), pairs, out=self.grid.zeros_vector()
            )

        matvec = self.regularizer.hessian_matvec(direction) + self.project(body_force_tilde)
        if self.incompressible:
            matvec = self.operators.leray_project(matvec)
        return matvec

    def hessian_operator(self, iterate: OuterIterate):
        """Return a closure ``v~ -> H(v) v~`` bound to *iterate* (for PCG)."""

        def apply(direction: np.ndarray) -> np.ndarray:
            return self.hessian_matvec(iterate, direction)

        return apply

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, object]:
        """Human-readable description of the discretized problem."""
        return {
            "grid": self.grid.shape,
            "num_unknowns_velocity": 3 * self.grid.num_points,
            "beta": self.beta,
            "regularization": self.regularization,
            "incompressible": self.incompressible,
            "num_time_steps": self.num_time_steps,
            "gauss_newton": self.gauss_newton,
            "interpolation": self.interpolation,
            "fft_backend": self.operators.fft.backend_name,
            "interp_backend": self.transport.interpolator.backend_name,
            "plan_layout": default_plan_layout(),
            "plan_layout_resolved": resolve_plan_layout(
                self.grid.num_points, method=self.interpolation, record=False
            ),
        }
