"""Per-iterate cache of the state history's spectral gradients.

The paper's cost model (Sec. III-C4) prices one Gauss-Newton Hessian
mat-vec at ``8 nt`` FFTs — and almost all of those transforms are spectral
gradients of the *state history* ``grad rho(., t_j)``, which is **fixed for
the whole Newton iterate**: the incremental-state right-hand side and the
body-force quadrature of every PCG iteration re-derive the exact same
``nt + 1`` gradient fields, and the reduced-gradient evaluation derives
them once more.  With 5-50 Krylov iterations per Newton step that is the
single largest pile of redundant FLOPs in the solver.

This module materializes those gradients **once per outer iterate**:

* :func:`plan_state_gradients` decides — per state history, against the
  shared plan pool's byte budget — whether to cache.  A cached stack is
  ``(nt + 1, 3, N1, N2, N3)`` doubles (~3x the state history itself), so it
  participates in the ``REPRO_PLAN_POOL_BYTES`` accounting under the
  ``grad-cache`` tag and **degrades to the uncached per-level path** when it
  does not fit (or when ``REPRO_GRADIENT_CACHE=0`` opts out).  Every
  decision is recorded in a process-wide log
  (:func:`gradient_cache_decision_log`, the twin of
  :func:`repro.runtime.layout.layout_decision_log`).
* The cached stack is built level by level with the *identical*
  :meth:`~repro.spectral.operators.SpectralOperators.gradient` calls the
  uncached path performs, so consuming a cached level is bitwise identical
  to recomputing it — same FFT outputs, reused — on every backend.
* :func:`accumulate_weighted_products` is the fused body-force quadrature
  shared by the reduced gradient and the Hessian mat-vec: the trapezoid
  weights are applied through two pre-allocated scratch buffers instead of
  the two fresh temporaries per time level the old accumulation loops
  allocated, with arithmetic order-identical to the historical loop.

Keys are content fingerprints of the state history, so a continuation step
or multilevel revisit that linearizes the same velocity again is a warm
pool hit and performs **zero** spectral-gradient FFTs even for the
reduced-gradient evaluation.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.observability.metrics import get_metrics_registry
from repro.observability.trace import trace_span
from repro.runtime.plan_pool import PlanPool, array_fingerprint, get_plan_pool
from repro.spectral.operators import SpectralOperators

__all__ = [
    "GRADIENT_CACHE_ENV_VAR",
    "GRAD_CACHE_TAG",
    "CachedStateGradients",
    "GradientCacheDecision",
    "GradientCacheDecisionLog",
    "LazyStateGradients",
    "StateGradients",
    "accumulate_weighted_products",
    "env_gradient_cache_enabled",
    "gradient_cache_decision_log",
    "gradient_cache_enabled",
    "plan_state_gradients",
    "projected_gradient_cache_nbytes",
    "set_gradient_cache_enabled",
    "trapezoid_weights",
]

#: Opt-out knob: ``REPRO_GRADIENT_CACHE=0`` forces the uncached per-level
#: path everywhere (the paper's original ``8 nt`` FFT cost model).
GRADIENT_CACHE_ENV_VAR = "REPRO_GRADIENT_CACHE"

#: Plan-pool tag of the cached gradient stacks (visible in
#: :meth:`repro.runtime.plan_pool.PlanPool.stats_by_tag`).
GRAD_CACHE_TAG = "grad-cache"

_TRUE_VALUES = frozenset({"1", "true", "yes", "on"})
_FALSE_VALUES = frozenset({"0", "false", "no", "off"})

_process_override: Optional[bool] = None


def env_gradient_cache_enabled() -> Optional[bool]:
    """Strictly parse ``REPRO_GRADIENT_CACHE``.

    Returns ``None`` when unset, ``True``/``False`` for recognised values,
    and raises :class:`ValueError` naming the variable otherwise — the same
    clean-error contract as the backend/worker env vars.
    """
    raw = os.environ.get(GRADIENT_CACHE_ENV_VAR)
    if raw is None:
        return None
    value = raw.strip().lower()
    if value in _TRUE_VALUES:
        return True
    if value in _FALSE_VALUES or value == "":
        return False if value else None
    raise ValueError(
        f"{GRADIENT_CACHE_ENV_VAR} must be one of "
        f"{sorted(_TRUE_VALUES | _FALSE_VALUES)}, got {raw!r}"
    )


def set_gradient_cache_enabled(enabled: Optional[bool]) -> None:
    """Process-wide override of the gradient-cache policy.

    The programmatic twin of ``REPRO_GRADIENT_CACHE`` (the
    :class:`repro.config.RegistrationConfig` path); ``None`` clears a
    previous override, falling back to the environment / built-in default
    (enabled).  The environment is never mutated.
    """
    global _process_override
    _process_override = None if enabled is None else bool(enabled)


def gradient_cache_enabled() -> bool:
    """Active gradient-cache policy (override > environment > on)."""
    if _process_override is not None:
        return _process_override
    env = env_gradient_cache_enabled()
    return True if env is None else env


# --------------------------------------------------------------------------- #
# decision log (the twin of repro.runtime.layout.LayoutDecisionLog)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GradientCacheDecision:
    """One cache/degrade decision with the inputs that produced it."""

    cached: bool
    num_levels: int
    num_points: int
    projected_bytes: int
    budget_bytes: int
    reason: str

    @property
    def mode(self) -> str:
        return "cached" if self.cached else "uncached"


class GradientCacheDecisionLog:
    """Process-wide record of gradient-cache decisions (counts + recent).

    Answers "did the iterate-scoped gradient cache actually engage this
    run, and if not, why" next to the plan pool's hit/miss statistics —
    the same observability contract the auto-layout policy established.
    """

    def __init__(self, recent: int = 8) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        self._recent: Deque[GradientCacheDecision] = deque(maxlen=recent)

    def record(self, decision: GradientCacheDecision) -> None:
        with self._lock:
            self._counts[decision.mode] = self._counts.get(decision.mode, 0) + 1
            self._recent.append(decision)

    @property
    def total(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def counts(self) -> Dict[str, int]:
        """Decisions per mode, e.g. ``{"cached": 4, "uncached": 1}``."""
        with self._lock:
            return dict(sorted(self._counts.items()))

    def recent(self) -> Tuple[GradientCacheDecision, ...]:
        """The most recent decisions, oldest first."""
        with self._lock:
            return tuple(self._recent)

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self._recent.clear()


_decision_log = GradientCacheDecisionLog()


def gradient_cache_decision_log() -> GradientCacheDecisionLog:
    """The shared process-wide gradient-cache decision log."""
    return _decision_log


def _collect_gradient_cache_metrics() -> Dict[str, Dict[str, int]]:
    """Pull collector publishing cache decisions to the metrics registry."""
    counts = _decision_log.counts()
    if not counts:
        return {}
    return {
        "gradient_cache.decisions": {
            f"mode={mode}": count for mode, count in counts.items()
        }
    }


get_metrics_registry().register_collector(
    "gradient_cache_decisions", _collect_gradient_cache_metrics
)


# --------------------------------------------------------------------------- #
# time quadrature weights
# --------------------------------------------------------------------------- #
def trapezoid_weights(nt: int) -> np.ndarray:
    """Trapezoidal quadrature weights on ``nt + 1`` uniform time levels."""
    weights = np.full(nt + 1, 1.0 / nt)
    weights[0] *= 0.5
    weights[-1] *= 0.5
    return weights


# --------------------------------------------------------------------------- #
# gradient sources
# --------------------------------------------------------------------------- #
class StateGradients:
    """Per-level access to ``grad rho(., t_j)`` of one stored state history.

    Two concrete shapes share this interface: the cached stack (gradients
    materialized once, every access free) and the lazy source (every access
    recomputes, the historical cost profile).  Consumers only ever call
    :meth:`level`, so the choice is invisible to the numerics — the cached
    levels are built with the identical spectral calls the lazy path
    performs, making the two bitwise interchangeable.
    """

    #: True when :meth:`level` is a stored-array read (zero FFTs).
    cached: bool = False

    @property
    def num_levels(self) -> int:  # pragma: no cover - interface default
        raise NotImplementedError

    def level(self, j: int) -> np.ndarray:  # pragma: no cover - interface default
        """The gradient ``(3, N1, N2, N3)`` of time level *j*."""
        raise NotImplementedError


class CachedStateGradients(StateGradients):
    """Gradient levels served from a materialized ``(nt+1, 3, ...)`` stack."""

    cached = True

    def __init__(self, stack: np.ndarray) -> None:
        if stack.ndim != 5 or stack.shape[1] != 3:
            raise ValueError(
                f"gradient stack must have shape (nt+1, 3, N1, N2, N3), got {stack.shape}"
            )
        self._stack = stack

    @property
    def num_levels(self) -> int:
        return self._stack.shape[0]

    @property
    def nbytes(self) -> int:
        return self._stack.nbytes

    def level(self, j: int) -> np.ndarray:
        return self._stack[j]

    def stack(self) -> np.ndarray:
        """The whole (read-only) gradient stack."""
        return self._stack


class LazyStateGradients(StateGradients):
    """Gradient levels recomputed on demand (the uncached fallback).

    Exactly the historical per-level cost: one forward and three (batched)
    inverse transforms per access, never more than one ``(3, N1, N2, N3)``
    field resident at a time.
    """

    cached = False

    def __init__(self, operators: SpectralOperators, state_history: np.ndarray) -> None:
        self._operators = operators
        self._state_history = state_history

    @property
    def num_levels(self) -> int:
        return self._state_history.shape[0]

    def level(self, j: int) -> np.ndarray:
        return self._operators.gradient(self._state_history[j])


def projected_gradient_cache_nbytes(state_history: np.ndarray) -> int:
    """Byte size the cached gradient stack of *state_history* would occupy."""
    return 3 * int(np.asarray(state_history).nbytes)


def build_gradient_stack(
    operators: SpectralOperators, state_history: np.ndarray
) -> np.ndarray:
    """Materialize ``grad rho`` for every time level into one stack.

    Built level by level with the same
    :meth:`~repro.spectral.operators.SpectralOperators.gradient` calls the
    lazy path performs — the stored levels are bitwise identical to fresh
    recomputations on every FFT backend, which is what makes cached and
    uncached solves interchangeable.  The stack is marked read-only: it is
    shared through the plan pool, so no consumer may scribble on it.
    """
    num_levels = state_history.shape[0]
    stack = np.empty((num_levels, 3, *state_history.shape[1:]), dtype=state_history.dtype)
    with trace_span("gradients.build", levels=num_levels, count=num_levels):
        for j in range(num_levels):
            stack[j] = operators.gradient(state_history[j])
    stack.flags.writeable = False
    return stack


def plan_state_gradients(
    operators: SpectralOperators,
    state_history: np.ndarray,
    pool: Optional[PlanPool] = None,
) -> StateGradients:
    """Cache-or-degrade policy for one iterate's state-gradient levels.

    Caches (through the shared plan pool, tag ``grad-cache``) when the
    policy is enabled and the projected stack fits the pool's byte budget;
    otherwise returns the lazy per-level source.  Every decision is
    recorded in :func:`gradient_cache_decision_log`.

    The pool key is a content fingerprint of the state history (plus the
    grid geometry and FFT engine), so two linearizations of the same
    velocity — a continuation warm start, a multilevel revisit — share one
    stack and the second one performs zero spectral-gradient FFTs.
    """
    state_history = np.asarray(state_history)
    num_levels = state_history.shape[0]
    num_points = int(np.prod(state_history.shape[1:], dtype=int))
    projected = projected_gradient_cache_nbytes(state_history)
    if pool is None:
        pool = get_plan_pool()
    budget = pool.max_bytes

    if not gradient_cache_enabled():
        reason = f"disabled ({GRADIENT_CACHE_ENV_VAR}=0 or config opt-out)"
        cached = False
    elif budget <= 0:
        reason = "plan pool disabled (budget 0); nothing to budget the stack against"
        cached = False
    elif projected > budget:
        reason = (
            f"projected stack ({projected} B) exceeds the plan-pool budget "
            f"({budget} B); degrading to per-level recomputation"
        )
        cached = False
    else:
        reason = f"projected stack ({projected} B) fits the plan-pool budget ({budget} B)"
        cached = True

    _decision_log.record(
        GradientCacheDecision(
            cached=cached,
            num_levels=num_levels,
            num_points=num_points,
            projected_bytes=projected,
            budget_bytes=budget,
            reason=reason,
        )
    )
    if not cached:
        return LazyStateGradients(operators, state_history)

    key = (
        GRAD_CACHE_TAG,
        operators.grid.shape,
        operators.grid.spacing,
        operators.fft.backend_name,
        array_fingerprint(state_history),
    )
    stack = pool.get(key, lambda: build_gradient_stack(operators, state_history))
    return CachedStateGradients(stack)


# --------------------------------------------------------------------------- #
# fused body-force quadrature
# --------------------------------------------------------------------------- #
def accumulate_weighted_products(
    weights: np.ndarray,
    pairs: Sequence[Tuple[np.ndarray, StateGradients]],
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Fused quadrature ``sum_j w_j * scalar_j * grad_j`` over time levels.

    Each pair is ``(scalar_history, gradients)`` with ``scalar_history`` of
    shape ``(nt+1, N1, N2, N3)``; the result is the accumulated
    ``(3, N1, N2, N3)`` vector field (the body force of Eq. 4, or its
    incremental counterpart of Eq. 5).  The weight application and the
    per-level products run through two pre-allocated scratch buffers — no
    fresh temporaries per level — in exactly the historical arithmetic
    order (``(w_j * scalar_j) * grad_j``, accumulated in time order), so
    the fused path is bitwise identical to the loop it replaced.
    """
    if not pairs:
        raise ValueError("at least one (scalar_history, gradients) pair is required")
    num_levels = len(weights)
    for scalars, gradients in pairs:
        if scalars.shape[0] != num_levels or gradients.num_levels != num_levels:
            raise ValueError(
                f"histories must carry {num_levels} time levels, got "
                f"{scalars.shape[0]} scalars / {gradients.num_levels} gradients"
            )
    shape = pairs[0][0].shape[1:]
    dtype = pairs[0][0].dtype
    if out is None:
        out = np.zeros((3, *shape), dtype=dtype)
    weighted_scalar = np.empty(shape, dtype=dtype)
    term = np.empty_like(out)
    for j in range(num_levels):
        for scalars, gradients in pairs:
            np.multiply(weights[j], scalars[j], out=weighted_scalar)
            np.multiply(weighted_scalar[None], gradients.level(j), out=term)
            out += term
    return out


def gradient_levels_of(
    operators: SpectralOperators,
    state_history: np.ndarray,
    gradients: Optional[StateGradients] = None,
) -> StateGradients:
    """Return *gradients* or a lazy per-level source over *state_history*.

    The normalization every consumer performs: callers that were handed an
    iterate-scoped source (cached or lazy) thread it through; callers
    without one (direct transport-solver use, hand-built iterates in tests)
    get the historical per-level behavior.
    """
    if gradients is not None:
        return gradients
    return LazyStateGradients(operators, state_history)


def iter_levels(gradients: StateGradients) -> Iterable[np.ndarray]:
    """Iterate the gradient levels in time order (diagnostic helper)."""
    for j in range(gradients.num_levels):
        yield gradients.level(j)
