"""Ablation — choice of regularization functional (H1 vs H2 vs H3).

The spectral discretization "enables flexibility in the choice of
regularization operators for the deformation map" (Sec. I).  This ablation
registers the same synthetic pair under the three Sobolev-seminorm
regularizations and compares mismatch reduction and deformation regularity.
"""

from repro.analysis.reporting import format_rows
from repro.core.optim.gauss_newton import SolverOptions
from repro.core.registration import RegistrationSolver
from repro.data.synthetic import synthetic_registration_problem


def _run(regularization: str, beta: float):
    problem = synthetic_registration_problem(16)
    options = SolverOptions(
        gradient_tolerance=1e-2, max_newton_iterations=6, max_krylov_iterations=30
    )
    solver = RegistrationSolver(beta=beta, regularization=regularization, options=options)
    result = solver.run(problem.template, problem.reference, grid=problem.grid)
    return {
        "regularization": regularization,
        "beta": beta,
        "relative_residual": result.relative_residual,
        "det_grad_min": result.det_grad_stats["min"],
        "det_grad_max": result.det_grad_stats["max"],
        "hessian_matvecs": result.num_hessian_matvecs,
    }


def test_ablation_regularization(benchmark, record_text, record_json):
    rows = benchmark.pedantic(
        lambda: [_run("h1", 1e-2), _run("h2", 1e-3), _run("h3", 1e-4)],
        rounds=1,
        iterations=1,
    )
    record_text(
        "ablation_regularization",
        format_rows(rows, title="Ablation: H1 vs H2 vs H3 regularization"),
    )
    record_json("ablation_regularization", {"rows": rows})
    for row in rows:
        # every variant reduces the mismatch and keeps the map diffeomorphic
        assert row["relative_residual"] < 1.0
        assert row["det_grad_min"] > 0.0
