"""Fig. 5 — the synthetic registration problem (template, reference, residual).

The figure shows the template ``rho_T``, the reference ``rho_R`` obtained by
transporting the template with the analytic velocity ``v*``, and the initial
residual.  The reproduced claims: the construction produces a non-trivial
initial mismatch, and the solver removes most of it while keeping the map
diffeomorphic.
"""

import numpy as np

from repro.analysis.experiments import reproduce_synthetic_problem
from repro.analysis.reporting import format_rows
from repro.data.synthetic import synthetic_registration_problem


def test_fig5_problem_construction(benchmark, record_text, record_json):
    problem = benchmark.pedantic(
        lambda: synthetic_registration_problem(32), rounds=1, iterations=1
    )
    stats = {
        "grid": "x".join(map(str, problem.grid.shape)),
        "template_min": float(problem.template.min()),
        "template_max": float(problem.template.max()),
        "initial_residual": problem.initial_residual,
        "max_pointwise_mismatch": float(np.max(np.abs(problem.reference - problem.template))),
    }
    record_text("fig5_problem_construction", format_rows([stats], title="Fig. 5 problem"))
    record_json("fig5_problem_construction", {"stats": stats})
    # the template is (sin^2+sin^2+sin^2)/3, so it spans [0, 1]
    assert 0.0 <= stats["template_min"] < 0.05
    assert 0.95 < stats["template_max"] <= 1.0
    assert stats["initial_residual"] > 0.1


def test_fig5_registration_removes_residual(benchmark, record_text, record_json):
    summary = benchmark.pedantic(
        lambda: reproduce_synthetic_problem(resolution=32, beta=1e-2),
        rounds=1,
        iterations=1,
    )
    record_text(
        "fig5_synthetic_registration",
        format_rows([summary], title="Fig. 5 synthetic registration (measured)"),
    )
    record_json("fig5_synthetic_registration", {"summary": summary})
    # dark-to-white residual panels of Fig. 5: most of the mismatch disappears
    assert summary["relative_residual"] < 0.5
    assert summary["diffeomorphic"]
