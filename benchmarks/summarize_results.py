#!/usr/bin/env python
"""Roll ``benchmarks/results/*.json`` up into one ``summary.json``.

Every ``bench_*`` module writes a machine-readable artifact wrapped in the
``repro.bench-result`` envelope (see ``benchmarks/conftest.py``).  CI uploads
the whole results directory, but diffing a PR's perf trajectory against the
previous run means opening dozens of documents.  This script condenses them
into a single ``summary.json``: one entry per bench with its headline numeric
fields (scalars at the top two levels of the payload; tables are reduced to
their row counts).  Stdlib only — it must run in the leanest CI leg.

Usage::

    python benchmarks/summarize_results.py            # writes results/summary.json
    python benchmarks/summarize_results.py --check    # exit 1 on malformed envelopes
"""

from __future__ import annotations

import argparse
import json
import numbers
import sys
from datetime import datetime, timezone
from pathlib import Path

SUMMARY_SCHEMA = "repro.bench-summary"
SUMMARY_SCHEMA_VERSION = 1

#: Envelope of the per-bench documents this script consumes.
RESULT_SCHEMA = "repro.bench-result"

ENVELOPE_KEYS = frozenset({"schema", "schema_version", "bench", "timestamp"})


def headline_numbers(payload: dict) -> dict:
    """Numeric scalars from the top two payload levels, dotted-key flattened.

    Lists (the row-oriented tables most benches emit) are reduced to a
    ``<key>.rows`` count so the summary stays one line per number instead of
    duplicating the table.
    """
    headline: dict = {}
    for key, value in payload.items():
        if key in ENVELOPE_KEYS:
            continue
        if isinstance(value, bool) or isinstance(value, numbers.Number):
            headline[key] = value
        elif isinstance(value, list):
            headline[f"{key}.rows"] = len(value)
        elif isinstance(value, dict):
            for sub_key, sub_value in value.items():
                if isinstance(sub_value, bool) or isinstance(sub_value, numbers.Number):
                    headline[f"{key}.{sub_key}"] = sub_value
                elif isinstance(sub_value, list):
                    headline[f"{key}.{sub_key}.rows"] = len(sub_value)
    return headline


def summarize(results_dir: Path) -> tuple[dict, list[str]]:
    """Build the summary document; returns ``(summary, problems)``."""
    benches: dict = {}
    problems: list[str] = []
    for path in sorted(results_dir.glob("*.json")):
        if path.name == "summary.json":
            continue
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            problems.append(f"{path.name}: invalid JSON ({error})")
            continue
        if not isinstance(document, dict) or document.get("schema") != RESULT_SCHEMA:
            problems.append(
                f"{path.name}: missing the {RESULT_SCHEMA!r} envelope; skipped"
            )
            continue
        bench = document.get("bench", path.stem)
        benches[bench] = {
            "file": path.name,
            "schema_version": document.get("schema_version"),
            "timestamp": document.get("timestamp"),
            "headline": headline_numbers(document),
        }
    summary = {
        "schema": SUMMARY_SCHEMA,
        "schema_version": SUMMARY_SCHEMA_VERSION,
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "num_benches": len(benches),
        "benches": benches,
    }
    return summary, problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        type=Path,
        default=Path(__file__).parent / "results",
        help="directory holding the per-bench *.json artifacts",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="summary path (default: <results-dir>/summary.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if any artifact is malformed",
    )
    args = parser.parse_args(argv)

    if not args.results_dir.is_dir():
        print(f"results directory {args.results_dir} does not exist", file=sys.stderr)
        return 1
    summary, problems = summarize(args.results_dir)
    output = args.output or args.results_dir / "summary.json"
    output.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"{summary['num_benches']} bench artifacts rolled up into {output}")
    for problem in problems:
        print(f"warning: {problem}", file=sys.stderr)
    if problems and args.check:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
