"""Table V — sensitivity of the solver to the regularization weight beta.

The paper fixes four Newton iterations on the brain pair and reports the
number of Hessian mat-vecs and the time to solution for
beta in {1e-1, 1e-3, 1e-5}: 43 -> 217 -> 1689 mat-vecs, a 35x increase in
time.  This exposes the beta-dependence of the spectral preconditioner
(which is mesh independent but *not* beta independent).

Reproduced here on the brain phantom (NIREP substitute) at reduced
resolution in two forms:

* the **conditioning experiment** (asserted): PCG iterations needed to solve
  the first Newton system to a fixed relative tolerance grow monotonically
  as beta decreases — the mechanism behind Table V;
* the **full-solve table** (reported): four Newton iterations with the
  paper's inexact forcing, printed next to the paper's reference numbers.
  At this tiny resolution the absolute counts are far from the paper's, and
  the Eisenstat-Walker forcing partially masks the conditioning, so this
  part is recorded for comparison rather than asserted.
"""

from repro.analysis.experiments import reproduce_beta_sensitivity
from repro.analysis.reporting import format_rows
from repro.core.optim.pcg import pcg
from repro.core.preconditioner import SpectralPreconditioner
from repro.core.problem import RegistrationProblem
from repro.data.brain import brain_registration_pair

BETAS = (1e-1, 1e-3, 1e-5)


def _pcg_iterations_for_beta(pair, beta: float) -> int:
    """PCG iterations for the first Newton system at fixed relative tolerance."""
    problem = RegistrationProblem(
        grid=pair.grid, reference=pair.reference, template=pair.template, beta=beta
    )
    iterate = problem.linearize(problem.zero_velocity())
    preconditioner = SpectralPreconditioner(problem.regularizer)
    result = pcg(
        problem.hessian_operator(iterate),
        -iterate.gradient,
        problem.grid,
        preconditioner,
        rel_tol=1e-2,
        max_iterations=300,
    )
    return result.iterations


def test_table5_preconditioner_beta_dependence(benchmark, record_text, record_json):
    pair = brain_registration_pair(base_resolution=16, seed=42)
    iterations = benchmark.pedantic(
        lambda: {beta: _pcg_iterations_for_beta(pair, beta) for beta in BETAS},
        rounds=1,
        iterations=1,
    )
    rows = [
        {"beta": beta, "pcg_iterations_first_newton_system": its}
        for beta, its in iterations.items()
    ]
    record_text(
        "table5_preconditioner_beta_dependence",
        format_rows(
            rows,
            title=(
                "Table V mechanism: PCG iterations (fixed 1e-2 tolerance) vs beta "
                "(brain phantom, first Newton system)"
            ),
        ),
    )
    record_json("table5_preconditioner_beta_dependence", {"rows": rows})
    its = [iterations[beta] for beta in BETAS]
    # the Krylov work grows monotonically as beta decreases (paper: 43 -> 1689)
    assert its[0] < its[1] < its[2]
    assert its[2] >= 2 * its[0]


def test_table5_full_solve_report(benchmark, record_text, record_json):
    rows = benchmark.pedantic(
        lambda: reproduce_beta_sensitivity(
            resolution=16,
            betas=BETAS,
            num_newton_iterations=4,
            max_krylov_iterations=60,
        ),
        rounds=1,
        iterations=1,
    )
    record_text(
        "table5_beta_sensitivity",
        format_rows(
            rows,
            title=(
                "Table V: full solves, 4 Newton iterations, measured on the brain "
                "phantom (paper reference columns attached)"
            ),
        ),
    )
    record_json("table5_beta_sensitivity", {"rows": rows})
    for row in rows:
        assert row["hessian_matvecs"] > 0
        assert row["relative_residual"] < 1.0
