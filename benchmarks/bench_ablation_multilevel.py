"""Ablation — grid continuation (coarse-to-fine) vs single-level solve.

The paper's limitations section points to grid continuation / multilevel
schemes as the remedy for the beta-dependence of the single-level solver.
This ablation compares the implemented coarse-to-fine extension
(:class:`repro.core.optim.multilevel.MultilevelRegistration`) against the
single-level solver under the same fine-level iteration budget: the
multilevel warm start must reach an objective at least as good while doing
most of its Krylov work on the (8x cheaper) coarse grid.
"""

from repro.analysis.reporting import format_rows
from repro.core.optim.gauss_newton import SolverOptions
from repro.core.optim.multilevel import MultilevelRegistration
from repro.data.synthetic import synthetic_registration_problem


def _run(num_levels: int):
    problem = synthetic_registration_problem(24)
    options = SolverOptions(
        gradient_tolerance=1e-3, max_newton_iterations=3, max_krylov_iterations=10
    )
    driver = MultilevelRegistration(
        grid=problem.grid,
        reference=problem.reference,
        template=problem.template,
        num_levels=num_levels,
        beta=1e-2,
        options=options,
    )
    result = driver.run()
    fine = result.fine_result
    fine_matvecs = result.levels[-1].result.total_hessian_matvecs
    return {
        "levels": num_levels,
        "final_objective": fine.final_objective,
        "final_distance": fine.final_iterate.objective.distance,
        "total_matvecs": result.total_hessian_matvecs,
        "fine_level_matvecs": fine_matvecs,
        "time": result.elapsed_seconds,
    }


def test_ablation_multilevel(benchmark, record_text, record_json):
    rows = benchmark.pedantic(lambda: [_run(1), _run(2)], rounds=1, iterations=1)
    record_text(
        "ablation_multilevel",
        format_rows(rows, title="Ablation: single-level vs coarse-to-fine (grid continuation)"),
    )
    record_json("ablation_multilevel", {"rows": rows})
    single, multilevel = rows
    # the multilevel solve reaches an objective at least as good ...
    assert multilevel["final_objective"] <= single["final_objective"] * 1.05
    # ... without doing more fine-level Krylov work
    assert multilevel["fine_level_matvecs"] <= single["fine_level_matvecs"] + 1
