"""Table II — large-scale synthetic runs on Stampede (runs #14-#19).

512^3 and 1024^3 grids on 512-2048 tasks (2 tasks/node).  Reproduced with
the calibrated performance model; the reproduced claims are (i) the time to
solution keeps decreasing up to 2048 tasks for both grid sizes and (ii) the
execution remains interpolation dominated.
"""

from repro.analysis.experiments import reproduce_scaling_table
from repro.analysis.paper_tables import TABLE_II
from repro.analysis.reporting import format_breakdown_table
from repro.parallel.machines import STAMPEDE
from repro.parallel.performance import RegistrationCostModel


def test_table2_rows(benchmark, record_text, record_json, measured_synthetic_counts):
    counts = measured_synthetic_counts

    def build():
        return reproduce_scaling_table(
            "II",
            num_newton_iterations=counts["newton_iterations"],
            num_hessian_matvecs=max(counts["hessian_matvecs"], 1),
        )

    entries = benchmark.pedantic(build, rounds=1, iterations=1)
    record_text(
        "table2_stampede_synthetic",
        format_breakdown_table(
            entries, title="Table II (synthetic, Stampede): paper rows vs model projections"
        ),
    )
    record_json("table2_stampede_synthetic", {"entries": entries})
    assert len(entries) == 2 * len(TABLE_II)


def test_table2_time_decreases_with_tasks(benchmark, measured_synthetic_counts):
    counts = measured_synthetic_counts

    def build():
        out = {}
        for grid in ((512, 512, 512), (1024, 1024, 1024)):
            out[grid] = [
                RegistrationCostModel(
                    grid,
                    tasks,
                    STAMPEDE,
                    num_newton_iterations=counts["newton_iterations"],
                    num_hessian_matvecs=max(counts["hessian_matvecs"], 1),
                ).breakdown()
                for tasks in (512, 1024, 2048)
            ]
        return out

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    for grid, breakdowns in results.items():
        times = [b.time_to_solution for b in breakdowns]
        assert times[0] > times[1] > times[2]
        # interpolation-dominated execution, as in the paper
        assert all(b.interp_execution > b.fft_execution for b in breakdowns)
