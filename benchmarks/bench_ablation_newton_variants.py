"""Ablation — Gauss-Newton vs full Newton Hessian.

The paper opts for the Gauss-Newton approximation "since the problem is
non-convex and we are not interested in high-accuracy solutions"
(Sec. IV-A3).  This ablation runs both variants on the same problem and
compares the mismatch reduction and cost; the reproduced claim is that the
cheaper Gauss-Newton approximation is not worse in this regime.
"""

from repro.analysis.reporting import format_rows
from repro.core.optim.gauss_newton import SolverOptions
from repro.core.registration import RegistrationSolver
from repro.data.synthetic import synthetic_registration_problem


def _run(gauss_newton: bool):
    problem = synthetic_registration_problem(16)
    options = SolverOptions(
        gradient_tolerance=1e-2, max_newton_iterations=6, max_krylov_iterations=30
    )
    solver = RegistrationSolver(beta=1e-2, gauss_newton=gauss_newton, options=options)
    result = solver.run(problem.template, problem.reference, grid=problem.grid)
    return {
        "hessian": "gauss_newton" if gauss_newton else "full_newton",
        "relative_residual": result.relative_residual,
        "hessian_matvecs": result.num_hessian_matvecs,
        "newton_iterations": result.num_newton_iterations,
        "det_grad_min": result.det_grad_stats["min"],
        "time": result.elapsed_seconds,
    }


def test_ablation_newton_variants(benchmark, record_text, record_json):
    rows = benchmark.pedantic(lambda: [_run(True), _run(False)], rounds=1, iterations=1)
    record_text(
        "ablation_newton_variants",
        format_rows(rows, title="Ablation: Gauss-Newton vs full Newton Hessian"),
    )
    record_json("ablation_newton_variants", {"rows": rows})
    gauss_newton, full_newton = rows
    assert gauss_newton["relative_residual"] < 1.0
    assert full_newton["relative_residual"] < 1.0
    # Gauss-Newton reaches a comparable mismatch (within 25%) at no extra cost
    assert gauss_newton["relative_residual"] <= full_newton["relative_residual"] * 1.25
