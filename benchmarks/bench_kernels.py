"""Micro-benchmarks of the computational kernels (Sec. III-C of the paper).

These are conventional pytest-benchmark timings (multiple rounds) of the
building blocks whose costs the paper's complexity model is built from: the
3D FFT, the spectral gradient/Laplacian/Leray operators, the tricubic
interpolation, one semi-Lagrangian step, a full transport solve, the reduced
gradient and one Hessian mat-vec.  They document where the time goes in this
Python implementation (interpolation and FFTs, as in the paper).
"""

import numpy as np
import pytest

from repro.core.problem import RegistrationProblem
from repro.data.synthetic import synthetic_registration_problem, synthetic_velocity
from repro.spectral.grid import Grid
from repro.spectral.operators import SpectralOperators
from repro.transport.interpolation import PeriodicInterpolator
from repro.transport.semi_lagrangian import SemiLagrangianStepper
from repro.transport.solvers import TransportSolver

N = 32


@pytest.fixture(scope="module")
def grid():
    return Grid((N, N, N))


@pytest.fixture(scope="module")
def ops(grid):
    return SpectralOperators(grid)


@pytest.fixture(scope="module")
def field(grid):
    return np.random.default_rng(0).standard_normal(grid.shape)


@pytest.fixture(scope="module")
def velocity(grid):
    return synthetic_velocity(grid)


def test_bench_fft_roundtrip(benchmark, ops, field):
    benchmark(lambda: ops.fft.backward(ops.fft.forward(field)))


def test_bench_gradient(benchmark, ops, field):
    benchmark(lambda: ops.gradient(field))


def test_bench_laplacian(benchmark, ops, field):
    benchmark(lambda: ops.laplacian(field))


def test_bench_leray_projection(benchmark, ops, velocity):
    benchmark(lambda: ops.leray_project(velocity))


@pytest.mark.parametrize("method", ["cubic_bspline", "catmull_rom", "linear"])
def test_bench_interpolation(benchmark, grid, field, method):
    interp = PeriodicInterpolator(grid, method)
    points = np.random.default_rng(1).uniform(0, 2 * np.pi, size=(3, grid.num_points))
    benchmark(lambda: interp(field, points))


def test_bench_semi_lagrangian_step(benchmark, grid, field, velocity):
    stepper = SemiLagrangianStepper(grid, velocity, dt=0.25)
    benchmark(lambda: stepper.step(field))


def test_bench_state_transport(benchmark, grid, field, velocity):
    solver = TransportSolver(grid, num_time_steps=4)
    plan = solver.plan(velocity)
    benchmark(lambda: solver.solve_state(plan, field))


@pytest.fixture(scope="module")
def problem():
    synthetic = synthetic_registration_problem(N)
    return RegistrationProblem(
        grid=synthetic.grid,
        reference=synthetic.reference,
        template=synthetic.template,
        beta=1e-2,
    )


def test_bench_objective(benchmark, problem, velocity):
    benchmark(lambda: problem.evaluate_objective(0.3 * velocity))


def test_bench_reduced_gradient(benchmark, problem, velocity):
    benchmark(lambda: problem.linearize(0.3 * velocity))


def test_bench_hessian_matvec(benchmark, problem, velocity):
    iterate = problem.linearize(0.3 * velocity)
    direction = 0.1 * velocity
    benchmark(lambda: problem.hessian_matvec(iterate, direction))
