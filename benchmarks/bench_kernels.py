"""Micro-benchmarks of the computational kernels (Sec. III-C of the paper).

These are conventional pytest-benchmark timings (multiple rounds) of the
building blocks whose costs the paper's complexity model is built from: the
3D FFT, the spectral gradient/Laplacian/Leray operators, the tricubic
interpolation, one semi-Lagrangian step, a full transport solve, the reduced
gradient and one Hessian mat-vec.  They document where the time goes in this
Python implementation (interpolation and FFTs, as in the paper).

``test_bench_fft_backend_comparison`` additionally times the batched
vector-field FFT of every available backend at 128^3 and writes the
comparison table to ``benchmarks/results/fft_backend_comparison.txt``;
``test_bench_interp_backend_comparison`` does the same for the
interpolation subsystem (scalar vs batched, plan-cached vs uncached, per
gather engine) and writes ``benchmarks/results/interp_backend_comparison.txt``;
``test_bench_plan_memory`` compares the fat and memory-lean stencil-plan
layouts (bytes, build time, execute time) at 128^3 and pins the ISSUE's
<= 30% memory criterion.  All three also emit machine-readable twins
(``benchmarks/results/*.json``) so the perf trajectory can be tracked
across PRs.  (They time directly instead of using the ``benchmark``
fixture so all backends land in one table; run them with
``--benchmark-disable`` or a plain pytest invocation.)
"""

import os
import time

import numpy as np
import pytest

from repro.core.problem import RegistrationProblem
from repro.data.synthetic import synthetic_registration_problem, synthetic_velocity
from repro.spectral.backends import available_backends
from repro.spectral.fft import FourierTransform
from repro.spectral.grid import Grid
from repro.spectral.operators import SpectralOperators
from repro.transport.interpolation import PeriodicInterpolator
from repro.transport.kernels import (
    available_backends as available_interp_backends,
    build_stencil_plan,
    execute_stencil_plan,
)
from repro.transport.semi_lagrangian import SemiLagrangianStepper
from repro.transport.solvers import TransportSolver

N = 32

#: Resolution of the per-backend batched vector FFT comparison.
BACKEND_COMPARISON_N = 128

#: Resolution of the per-backend interpolation comparison (the ISSUE's
#: acceptance benchmark runs at 128^3; override with REPRO_BENCH_INTERP_N
#: for quick local iterations).
INTERP_COMPARISON_N = int(os.environ.get("REPRO_BENCH_INTERP_N", "128"))

#: Resolution of the stencil-plan memory comparison (fat vs lean layout).
PLAN_MEMORY_N = int(os.environ.get("REPRO_BENCH_PLAN_N", "128"))


@pytest.fixture(scope="module")
def grid():
    return Grid((N, N, N))


@pytest.fixture(scope="module")
def ops(grid):
    return SpectralOperators(grid)


@pytest.fixture(scope="module")
def field(grid):
    return np.random.default_rng(0).standard_normal(grid.shape)


@pytest.fixture(scope="module")
def velocity(grid):
    return synthetic_velocity(grid)


def test_bench_fft_roundtrip(benchmark, ops, field):
    benchmark(lambda: ops.fft.backward(ops.fft.forward(field)))


def test_bench_gradient(benchmark, ops, field):
    benchmark(lambda: ops.gradient(field))


def test_bench_laplacian(benchmark, ops, field):
    benchmark(lambda: ops.laplacian(field))


def test_bench_leray_projection(benchmark, ops, velocity):
    benchmark(lambda: ops.leray_project(velocity))


@pytest.mark.parametrize("method", ["cubic_bspline", "catmull_rom", "linear"])
def test_bench_interpolation(benchmark, grid, field, method):
    interp = PeriodicInterpolator(grid, method)
    points = np.random.default_rng(1).uniform(0, 2 * np.pi, size=(3, grid.num_points))
    benchmark(lambda: interp(field, points))


def test_bench_semi_lagrangian_step(benchmark, grid, field, velocity):
    stepper = SemiLagrangianStepper(grid, velocity, dt=0.25)
    benchmark(lambda: stepper.step(field))


def test_bench_state_transport(benchmark, grid, field, velocity):
    solver = TransportSolver(grid, num_time_steps=4)
    plan = solver.plan(velocity)
    benchmark(lambda: solver.solve_state(plan, field))


@pytest.fixture(scope="module")
def problem():
    synthetic = synthetic_registration_problem(N)
    return RegistrationProblem(
        grid=synthetic.grid,
        reference=synthetic.reference,
        template=synthetic.template,
        beta=1e-2,
    )


def test_bench_objective(benchmark, problem, velocity):
    benchmark(lambda: problem.evaluate_objective(0.3 * velocity))


def test_bench_reduced_gradient(benchmark, problem, velocity):
    benchmark(lambda: problem.linearize(0.3 * velocity))


def test_bench_hessian_matvec(benchmark, problem, velocity):
    iterate = problem.linearize(0.3 * velocity)
    direction = 0.1 * velocity
    benchmark(lambda: problem.hessian_matvec(iterate, direction))


# --------------------------------------------------------------------------- #
# per-backend batched vector FFT comparison (written to benchmarks/results/)
# --------------------------------------------------------------------------- #
def _best_of(fn, repeats: int = 5) -> float:
    fn()  # warm up plan caches / thread pools outside the timed region
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_fft_backend_comparison(record_text, record_json):
    """Batched (3, 128, 128, 128) vector FFT round trip, per backend.

    Produces the comparison table the ISSUE's acceptance criterion asks for
    and asserts that the pooled ``scipy`` backend beats the ``numpy``
    reference on the batched vector transform.
    """
    n = BACKEND_COMPARISON_N
    grid = Grid((n, n, n))
    vector = np.random.default_rng(0).standard_normal((3, n, n, n))

    timings = {}
    for name in available_backends():
        fft = FourierTransform(grid, backend=name)
        spectra = fft.forward_vector(vector)
        forward = _best_of(lambda f=fft: f.forward_vector(vector))
        inverse = _best_of(lambda f=fft, s=spectra: f.inverse_vector(s))
        timings[name] = (forward, inverse)

    base_total = sum(timings["numpy"])
    header = f"{'backend':<10} {'forward [s]':>12} {'inverse [s]':>12} {'total [s]':>12} {'vs numpy':>9}"
    rows = [f"batched vector FFT round trip at {n}^3 (best of 5)", header, "-" * len(header)]
    for name, (forward, inverse) in sorted(timings.items(), key=lambda kv: sum(kv[1])):
        total = forward + inverse
        rows.append(
            f"{name:<10} {forward:>12.4f} {inverse:>12.4f} {total:>12.4f} {base_total / total:>8.2f}x"
        )
    record_text("fft_backend_comparison", "\n".join(rows))
    record_json(
        "fft_backend_comparison",
        {
            "benchmark": "batched vector FFT round trip",
            "grid": [n, n, n],
            "repeats": "best of 5",
            "backends": {
                name: {
                    "forward_seconds": forward,
                    "inverse_seconds": inverse,
                    "total_seconds": forward + inverse,
                    "speedup_vs_numpy": base_total / (forward + inverse),
                }
                for name, (forward, inverse) in timings.items()
            },
        },
    )

    # acceptance criterion; REPRO_BENCH_NONSTRICT=1 downgrades a loss to a
    # skip for noisy shared runners where wall-clock comparisons can flip
    if sum(timings["scipy"]) >= sum(timings["numpy"]):
        message = f"scipy backend did not beat numpy: {timings}"
        if os.environ.get("REPRO_BENCH_NONSTRICT"):
            pytest.skip(message)
        raise AssertionError(message)


# --------------------------------------------------------------------------- #
# per-backend interpolation comparison (written to benchmarks/results/)
# --------------------------------------------------------------------------- #
def test_bench_interp_backend_comparison(record_text, record_json):
    """Semi-Lagrangian interpolation at 128^3, per backend and gather mode.

    Times the production ``PeriodicInterpolator`` paths at realistic
    (grid-ordered, CFL-scale displaced) departure points: scalar vs batched
    and plan-cached vs uncached for every available gather engine, for both
    tricubic kernels.  Produces the comparison table the ISSUE's acceptance
    criterion asks for and asserts that the cached-plan batched path beats
    the seed path (``scipy`` ``cubic_bspline``, scalar, uncached).  The
    JSON twin additionally records plan-build vs execute time and the plan
    bytes of every engine.
    """
    n = INTERP_COMPARISON_N
    grid = Grid((n, n, n))
    rng = np.random.default_rng(0)
    field = rng.standard_normal(grid.shape)
    fields = np.stack([field, rng.standard_normal(grid.shape), rng.standard_normal(grid.shape)])
    # departure-point-like coordinates: every grid point displaced by a few
    # cells, exactly the access pattern of the semi-Lagrangian trace
    points = grid.coordinate_stack().reshape(3, -1) + np.asarray(grid.spacing)[
        :, None
    ] * 3.0 * rng.standard_normal((3, grid.num_points))

    timings = {}
    plan_bytes = {}
    for backend in available_interp_backends():
        for method in ("cubic_bspline", "catmull_rom"):
            interp = PeriodicInterpolator(grid, method, backend=backend)
            plan = interp.plan(points)
            build = _best_of(lambda i=interp: i.plan(points), repeats=3)
            scalar_uncached = _best_of(lambda i=interp: i(field, points), repeats=3)
            scalar_cached = _best_of(
                lambda i=interp, p=plan: i.interpolate_planned(field, p), repeats=3
            )
            batched_cached = (
                _best_of(
                    lambda i=interp, p=plan: i.interpolate_many_planned(fields, p),
                    repeats=3,
                )
                / fields.shape[0]
            )
            timings[(backend, method)] = {
                "build": build,
                "scalar, uncached": scalar_uncached,
                "scalar, plan-cached": scalar_cached,
                "batched(3), plan-cached": batched_cached,
            }
            plan_bytes[(backend, method)] = plan.nbytes

    seed = timings[("scipy", "cubic_bspline")]["scalar, uncached"]
    header = (
        f"{'backend':<8} {'method':<14} {'mode':<24} {'time/field [s]':>14} {'vs seed':>8}"
    )
    rows = [
        f"semi-Lagrangian interpolation at {n}^3 ({grid.num_points} departure points, best of 3)",
        "seed path = scipy cubic_bspline, scalar, uncached (the pre-subsystem default)",
        header,
        "-" * len(header),
    ]
    for (backend, method), modes in timings.items():
        for mode in ("scalar, uncached", "scalar, plan-cached", "batched(3), plan-cached"):
            t = modes[mode]
            rows.append(
                f"{backend:<8} {method:<14} {mode:<24} {t:>14.4f} {seed / t:>7.2f}x"
            )
        rows.append(
            f"{backend:<8} {method:<14} {'plan build (amortized)':<24} {modes['build']:>14.4f}"
        )
    record_text("interp_backend_comparison", "\n".join(rows))
    record_json(
        "interp_backend_comparison",
        {
            "benchmark": "semi-Lagrangian interpolation, per gather engine",
            "grid": [n, n, n],
            "num_points": grid.num_points,
            "repeats": "best of 3",
            "seed_path": "scipy cubic_bspline, scalar, uncached",
            "seed_seconds_per_field": seed,
            "engines": {
                f"{backend}/{method}": {
                    "plan_build_seconds": modes["build"],
                    "plan_nbytes": plan_bytes[(backend, method)],
                    "scalar_uncached_seconds": modes["scalar, uncached"],
                    "scalar_plan_cached_seconds": modes["scalar, plan-cached"],
                    "batched3_plan_cached_seconds_per_field": modes["batched(3), plan-cached"],
                    "speedup_vs_seed": seed / modes["batched(3), plan-cached"],
                }
                for (backend, method), modes in timings.items()
            },
        },
    )

    # acceptance criterion: the cached-plan batched tricubic path must beat
    # the seed scalar path; REPRO_BENCH_NONSTRICT=1 downgrades a loss to a
    # skip for noisy shared runners where wall-clock comparisons can flip
    best_batched = min(
        modes["batched(3), plan-cached"]
        for (backend, method), modes in timings.items()
        if (backend, method) != ("scipy", "cubic_bspline")  # seed engine caches no stencil
    )
    if best_batched >= seed:
        message = (
            f"cached-plan batched path ({best_batched:.4f}s/field) did not beat "
            f"the seed cubic_bspline path ({seed:.4f}s/field)"
        )
        if os.environ.get("REPRO_BENCH_NONSTRICT"):
            pytest.skip(message)
        raise AssertionError(message)


# --------------------------------------------------------------------------- #
# stencil-plan memory: fat vs lean layout (written to benchmarks/results/)
# --------------------------------------------------------------------------- #
def test_bench_plan_memory(record_text, record_json):
    """Fat vs lean vs streaming stencil plans at 128^3: bytes, build, execute.

    Pins the acceptance criteria deterministically (no wall-clock gate):
    the lean tricubic plan must use <= 30% of the fat layout's memory, and
    the streaming plan's resident bytes must not exceed one executor chunk
    (the out-of-core cap: independent of the grid size), while all three
    layouts gather bitwise-identical values.  The JSON twin records plan
    bytes and plan-build vs execute time for every layout, plus the
    analytic per-point memory model for 64^3/128^3/256^3/512^3 (the
    README's pool-sizing table).
    """
    n = PLAN_MEMORY_N
    grid = Grid((n, n, n))
    rng = np.random.default_rng(0)
    field = rng.standard_normal(grid.shape)
    flat = field.reshape(1, -1)
    # departure-point-like coordinates (grid-ordered, CFL-scale displaced),
    # pre-wrapped into [0, N) as the interpolation frontend does
    points = grid.coordinate_stack().reshape(3, -1) + np.asarray(grid.spacing)[
        :, None
    ] * 3.0 * rng.standard_normal((3, grid.num_points))
    coords = np.mod(points / np.asarray(grid.spacing)[:, None], n)

    from repro.transport.kernels import STENCIL_CHUNK

    method = "catmull_rom"
    layouts = {}
    outputs = {}
    for layout in ("fat", "lean", "streaming"):
        plan = build_stencil_plan(grid.shape, coords, method, layout=layout)
        build = _best_of(
            lambda layout=layout: build_stencil_plan(grid.shape, coords, method, layout=layout),
            repeats=3,
        )
        execute = _best_of(lambda p=plan: execute_stencil_plan(flat, p), repeats=3)
        outputs[layout] = execute_stencil_plan(flat, plan)
        layouts[layout] = {
            "plan_nbytes": plan.nbytes,
            "bytes_per_point": plan.nbytes / grid.num_points,
            "plan_build_seconds": build,
            "execute_seconds_per_field": execute,
        }

    np.testing.assert_array_equal(outputs["lean"], outputs["fat"])
    np.testing.assert_array_equal(outputs["streaming"], outputs["fat"])
    ratio = layouts["lean"]["plan_nbytes"] / layouts["fat"]["plan_nbytes"]
    chunk_cap = 3 * STENCIL_CHUNK * (np.dtype(np.intp).itemsize + 8)

    # analytic per-point model (tricubic): fat = 3*(taps*8) index parts +
    # 3*(taps*8) weights; lean = 3*4 (int32 base) + 3*8 (float64 frac);
    # streaming = one chunk of scratch, independent of the point count
    fat_per_point = 2 * 3 * 4 * 8
    lean_per_point = 3 * (4 + 8)
    memory_table = {
        f"{m}^3": {
            "points": m**3,
            "fat_plan_bytes": fat_per_point * m**3,
            "lean_plan_bytes": lean_per_point * m**3,
            "streaming_plan_bytes": min(chunk_cap, 3 * (8 + 8) * m**3),
            "transport_plan_pair_lean_bytes": 2 * (lean_per_point + 24 + 24) * m**3,
        }
        for m in (64, 128, 256, 512)
    }

    header = f"{'layout':<10} {'plan bytes':>14} {'B/point':>9} {'build [s]':>10} {'execute [s]':>12}"
    rows = [
        f"tricubic stencil plan, fat vs lean vs streaming layout at {n}^3 "
        f"({grid.num_points} points)",
        "(streaming bytes = resident stencil scratch, capped at one "
        f"{STENCIL_CHUNK}-point chunk; its coordinates are borrowed)",
        header,
        "-" * len(header),
    ]
    for layout, data in layouts.items():
        rows.append(
            f"{layout:<10} {data['plan_nbytes']:>14d} {data['bytes_per_point']:>9.2f} "
            f"{data['plan_build_seconds']:>10.4f} {data['execute_seconds_per_field']:>12.4f}"
        )
    rows.append(f"lean / fat memory ratio: {ratio:.3f} (acceptance: <= 0.30)")
    rows.append(
        f"streaming resident bytes: {layouts['streaming']['plan_nbytes']} "
        f"(acceptance: <= one chunk = {chunk_cap})"
    )
    record_text("plan_memory", "\n".join(rows))
    record_json(
        "plan_memory",
        {
            "benchmark": "stencil-plan memory, fat vs lean vs streaming layout",
            "grid": [n, n, n],
            "num_points": grid.num_points,
            "method": method,
            "stencil_chunk_points": STENCIL_CHUNK,
            "layouts": layouts,
            "lean_over_fat_memory_ratio": ratio,
            "streaming_chunk_cap_bytes": chunk_cap,
            "bitwise_identical": True,
            "memory_model_tricubic": memory_table,
        },
    )

    assert ratio <= 0.30, f"lean plan uses {ratio:.1%} of the fat layout's memory"
    assert layouts["streaming"]["plan_nbytes"] <= chunk_cap
