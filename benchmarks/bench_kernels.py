"""Micro-benchmarks of the computational kernels (Sec. III-C of the paper).

These are conventional pytest-benchmark timings (multiple rounds) of the
building blocks whose costs the paper's complexity model is built from: the
3D FFT, the spectral gradient/Laplacian/Leray operators, the tricubic
interpolation, one semi-Lagrangian step, a full transport solve, the reduced
gradient and one Hessian mat-vec.  They document where the time goes in this
Python implementation (interpolation and FFTs, as in the paper).

``test_bench_fft_backend_comparison`` additionally times the batched
vector-field FFT of every available backend at 128^3 and writes the
comparison table to ``benchmarks/results/fft_backend_comparison.txt`` (it
times directly instead of using the ``benchmark`` fixture so all backends
land in one table; run it with ``--benchmark-disable`` or a plain pytest
invocation).
"""

import os
import time

import numpy as np
import pytest

from repro.core.problem import RegistrationProblem
from repro.data.synthetic import synthetic_registration_problem, synthetic_velocity
from repro.spectral.backends import available_backends
from repro.spectral.fft import FourierTransform
from repro.spectral.grid import Grid
from repro.spectral.operators import SpectralOperators
from repro.transport.interpolation import PeriodicInterpolator
from repro.transport.semi_lagrangian import SemiLagrangianStepper
from repro.transport.solvers import TransportSolver

N = 32

#: Resolution of the per-backend batched vector FFT comparison.
BACKEND_COMPARISON_N = 128


@pytest.fixture(scope="module")
def grid():
    return Grid((N, N, N))


@pytest.fixture(scope="module")
def ops(grid):
    return SpectralOperators(grid)


@pytest.fixture(scope="module")
def field(grid):
    return np.random.default_rng(0).standard_normal(grid.shape)


@pytest.fixture(scope="module")
def velocity(grid):
    return synthetic_velocity(grid)


def test_bench_fft_roundtrip(benchmark, ops, field):
    benchmark(lambda: ops.fft.backward(ops.fft.forward(field)))


def test_bench_gradient(benchmark, ops, field):
    benchmark(lambda: ops.gradient(field))


def test_bench_laplacian(benchmark, ops, field):
    benchmark(lambda: ops.laplacian(field))


def test_bench_leray_projection(benchmark, ops, velocity):
    benchmark(lambda: ops.leray_project(velocity))


@pytest.mark.parametrize("method", ["cubic_bspline", "catmull_rom", "linear"])
def test_bench_interpolation(benchmark, grid, field, method):
    interp = PeriodicInterpolator(grid, method)
    points = np.random.default_rng(1).uniform(0, 2 * np.pi, size=(3, grid.num_points))
    benchmark(lambda: interp(field, points))


def test_bench_semi_lagrangian_step(benchmark, grid, field, velocity):
    stepper = SemiLagrangianStepper(grid, velocity, dt=0.25)
    benchmark(lambda: stepper.step(field))


def test_bench_state_transport(benchmark, grid, field, velocity):
    solver = TransportSolver(grid, num_time_steps=4)
    plan = solver.plan(velocity)
    benchmark(lambda: solver.solve_state(plan, field))


@pytest.fixture(scope="module")
def problem():
    synthetic = synthetic_registration_problem(N)
    return RegistrationProblem(
        grid=synthetic.grid,
        reference=synthetic.reference,
        template=synthetic.template,
        beta=1e-2,
    )


def test_bench_objective(benchmark, problem, velocity):
    benchmark(lambda: problem.evaluate_objective(0.3 * velocity))


def test_bench_reduced_gradient(benchmark, problem, velocity):
    benchmark(lambda: problem.linearize(0.3 * velocity))


def test_bench_hessian_matvec(benchmark, problem, velocity):
    iterate = problem.linearize(0.3 * velocity)
    direction = 0.1 * velocity
    benchmark(lambda: problem.hessian_matvec(iterate, direction))


# --------------------------------------------------------------------------- #
# per-backend batched vector FFT comparison (written to benchmarks/results/)
# --------------------------------------------------------------------------- #
def _best_of(fn, repeats: int = 5) -> float:
    fn()  # warm up plan caches / thread pools outside the timed region
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_fft_backend_comparison(record_text):
    """Batched (3, 128, 128, 128) vector FFT round trip, per backend.

    Produces the comparison table the ISSUE's acceptance criterion asks for
    and asserts that the pooled ``scipy`` backend beats the ``numpy``
    reference on the batched vector transform.
    """
    n = BACKEND_COMPARISON_N
    grid = Grid((n, n, n))
    vector = np.random.default_rng(0).standard_normal((3, n, n, n))

    timings = {}
    for name in available_backends():
        fft = FourierTransform(grid, backend=name)
        spectra = fft.forward_vector(vector)
        forward = _best_of(lambda f=fft: f.forward_vector(vector))
        inverse = _best_of(lambda f=fft, s=spectra: f.inverse_vector(s))
        timings[name] = (forward, inverse)

    base_total = sum(timings["numpy"])
    header = f"{'backend':<10} {'forward [s]':>12} {'inverse [s]':>12} {'total [s]':>12} {'vs numpy':>9}"
    rows = [f"batched vector FFT round trip at {n}^3 (best of 5)", header, "-" * len(header)]
    for name, (forward, inverse) in sorted(timings.items(), key=lambda kv: sum(kv[1])):
        total = forward + inverse
        rows.append(
            f"{name:<10} {forward:>12.4f} {inverse:>12.4f} {total:>12.4f} {base_total / total:>8.2f}x"
        )
    record_text("fft_backend_comparison", "\n".join(rows))

    # acceptance criterion; REPRO_BENCH_NONSTRICT=1 downgrades a loss to a
    # skip for noisy shared runners where wall-clock comparisons can flip
    if sum(timings["scipy"]) >= sum(timings["numpy"]):
        message = f"scipy backend did not beat numpy: {timings}"
        if os.environ.get("REPRO_BENCH_NONSTRICT"):
            pytest.skip(message)
        raise AssertionError(message)
