"""Ablation — tricubic vs trilinear semi-Lagrangian interpolation.

The paper prefers cubic over linear interpolation "because the interpolation
errors will be accumulated throughout the time stepping" (Sec. III-B2).
This ablation transports the synthetic template forward with the analytic
velocity and back with its negative; the round-trip error isolates the
interpolation error of the semi-Lagrangian scheme.
"""

import numpy as np

from repro.analysis.reporting import format_rows
from repro.data.synthetic import sinusoidal_template, synthetic_velocity
from repro.spectral.grid import Grid
from repro.transport.solvers import TransportSolver


def _round_trip_error(method: str, resolution: int = 32, nt: int = 4) -> float:
    grid = Grid((resolution,) * 3)
    template = sinusoidal_template(grid)
    velocity = synthetic_velocity(grid)
    solver = TransportSolver(grid, num_time_steps=nt, interpolation=method)
    forward = solver.solve_state(solver.plan(velocity), template)[-1]
    back = solver.solve_state(solver.plan(-velocity), forward)[-1]
    return float(grid.norm(back - template) / grid.norm(template))


def test_ablation_interpolation_order(benchmark, record_text, record_json):
    errors = benchmark.pedantic(
        lambda: {
            method: _round_trip_error(method)
            for method in ("cubic_bspline", "catmull_rom", "linear")
        },
        rounds=1,
        iterations=1,
    )
    rows = [{"method": m, "round_trip_error": e} for m, e in errors.items()]
    record_text(
        "ablation_interpolation",
        format_rows(rows, title="Ablation: semi-Lagrangian round-trip error by interpolation kernel"),
    )
    record_json("ablation_interpolation", {"rows": rows})
    # both cubic kernels beat trilinear interpolation by a clear margin
    assert errors["cubic_bspline"] < 0.5 * errors["linear"]
    assert errors["catmull_rom"] < 0.5 * errors["linear"]
    assert np.isfinite(list(errors.values())).all()
