"""Ablation — spectral preconditioner on vs off.

The paper preconditions the PCG solve with the inverse of the regularization
operator and credits it with mesh-independent Krylov convergence
("This preconditioner delivers mesh-independence — but not
beta-independence", Sec. III-A).  The ablation solves the *same* Newton
system (first Gauss-Newton step of the synthetic problem, fixed 1e-2
relative tolerance) with and without the preconditioner across a sweep of
mesh sizes and compares the PCG iteration counts:

* preconditioned counts stay (nearly) constant with the mesh size,
* unpreconditioned counts are larger and grow as the mesh is refined.
"""

from repro.analysis.reporting import format_rows
from repro.core.optim.pcg import pcg
from repro.core.preconditioner import SpectralPreconditioner
from repro.core.problem import RegistrationProblem
from repro.data.synthetic import synthetic_registration_problem

RESOLUTIONS = (8, 12, 16, 24)


def _pcg_iterations(resolution: int, variant: str, beta: float = 1e-2) -> int:
    synthetic = synthetic_registration_problem(resolution)
    problem = RegistrationProblem(
        grid=synthetic.grid,
        reference=synthetic.reference,
        template=synthetic.template,
        beta=beta,
    )
    iterate = problem.linearize(problem.zero_velocity())
    preconditioner = SpectralPreconditioner(problem.regularizer, variant)
    result = pcg(
        problem.hessian_operator(iterate),
        -iterate.gradient,
        problem.grid,
        preconditioner,
        rel_tol=1e-2,
        max_iterations=200,
    )
    return result.iterations


def test_ablation_preconditioner_mesh_independence(benchmark, record_text, record_json):
    def sweep():
        rows = []
        for resolution in RESOLUTIONS:
            rows.append(
                {
                    "resolution": resolution,
                    "pcg_iterations_preconditioned": _pcg_iterations(
                        resolution, "inverse_regularization"
                    ),
                    "pcg_iterations_unpreconditioned": _pcg_iterations(resolution, "none"),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_text(
        "ablation_preconditioner",
        format_rows(
            rows,
            title=(
                "Ablation: PCG iterations for one Newton system, preconditioned vs "
                "unpreconditioned, across mesh sizes"
            ),
        ),
    )
    record_json("ablation_preconditioner", {"rows": rows})
    prec = [r["pcg_iterations_preconditioned"] for r in rows]
    none = [r["pcg_iterations_unpreconditioned"] for r in rows]
    # at every resolution the preconditioner does not lose to the identity
    assert all(p <= n for p, n in zip(prec, none))
    # mesh independence: the preconditioned count varies by at most a few
    # iterations across a 3x mesh refinement ...
    assert max(prec) - min(prec) <= 3
    # ... while the unpreconditioned count grows with the mesh
    assert none[-1] > none[0]
    assert none[-1] > prec[-1]
