"""Table I — synthetic problem, strong/weak scaling on Maverick (runs #1-#13).

The paper's rows (16 to 1024 tasks, 64^3 to 512^3) are regenerated from the
calibrated performance model, driven by the algorithmic work (Newton
iterations / Hessian mat-vecs) measured with the real solver on the same
synthetic problem at reduced resolution.  The reproduced quantities of
interest are the *shape* of the table: strong-scaling efficiency per grid
size, the interpolation-dominated execution profile, and the growing share
of FFT communication at high task counts.
"""

import pytest

from repro.analysis.experiments import reproduce_scaling_table
from repro.analysis.paper_tables import TABLE_I, strong_scaling_groups
from repro.analysis.reporting import format_breakdown_table, format_rows
from repro.parallel.machines import MAVERICK
from repro.parallel.performance import RegistrationCostModel, strong_scaling_efficiency


def _model_breakdowns(grid, tasks_list, counts):
    return [
        RegistrationCostModel(
            grid_shape=grid,
            num_tasks=tasks,
            machine=MAVERICK,
            num_newton_iterations=counts["newton_iterations"],
            num_hessian_matvecs=max(counts["hessian_matvecs"], 1),
        ).breakdown()
        for tasks in tasks_list
    ]


def test_table1_rows(benchmark, record_text, record_json, measured_synthetic_counts):
    counts = measured_synthetic_counts

    def build():
        return reproduce_scaling_table(
            "I",
            num_newton_iterations=counts["newton_iterations"],
            num_hessian_matvecs=max(counts["hessian_matvecs"], 1),
        )

    entries = benchmark.pedantic(build, rounds=1, iterations=1)
    text = format_breakdown_table(
        entries, title="Table I (synthetic, Maverick): paper rows vs model projections"
    )
    text += "\n\nmeasured solver work driving the projection (synthetic, 24^3): " + str(counts)
    record_text("table1_maverick_synthetic", text)
    record_json(
        "table1_maverick_synthetic",
        {"entries": entries, "measured_counts": dict(counts)},
    )
    # sanity: every paper row has a model companion
    assert len(entries) == 2 * len(TABLE_I)


def test_table1_strong_scaling_efficiency(
    benchmark, record_text, record_json, measured_synthetic_counts
):
    """The paper reports 67% efficiency from 32 to 512 tasks and 50% to 1024
    tasks for the 256^3 problem; the model must reproduce the same regime of
    imperfect-but-useful strong scaling (efficiency between 30% and 100%)."""
    counts = measured_synthetic_counts

    def build():
        rows = []
        for grid, paper_rows in strong_scaling_groups(TABLE_I).items():
            tasks = [r.tasks for r in paper_rows]
            breakdowns = _model_breakdowns(grid, tasks, counts)
            model_eff = strong_scaling_efficiency(breakdowns)
            base = paper_rows[0]
            for r, me in zip(paper_rows, model_eff):
                ideal = base.time_to_solution * base.tasks / r.tasks
                rows.append(
                    {
                        "grid": "x".join(map(str, grid)),
                        "tasks": r.tasks,
                        "paper_efficiency": ideal / r.time_to_solution,
                        "model_efficiency": me,
                    }
                )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    record_text(
        "table1_strong_scaling_efficiency",
        format_rows(rows, title="Table I strong-scaling efficiency: paper vs model"),
    )
    record_json("table1_strong_scaling_efficiency", {"rows": rows})
    for row in rows:
        if row["tasks"] > 16:
            assert 0.2 <= row["model_efficiency"] <= 1.1


def test_table1_interpolation_dominates_execution(benchmark, measured_synthetic_counts):
    """Paper: ~60% of the time goes to interpolation at low/moderate task counts."""
    counts = measured_synthetic_counts
    b = benchmark.pedantic(lambda: RegistrationCostModel(
        (128, 128, 128),
        16,
        MAVERICK,
        num_newton_iterations=counts["newton_iterations"],
        num_hessian_matvecs=max(counts["hessian_matvecs"], 1),
    ).breakdown(), rounds=1, iterations=1)
    assert b.interp_execution > b.fft_execution
    assert b.interp_execution > 0.3 * b.time_to_solution


@pytest.mark.parametrize("tasks", [32, 512, 1024])
def test_table1_fft_communication_share_grows(benchmark, measured_synthetic_counts, tasks):
    """At high task counts the FFT communication becomes the dominant kernel
    cost relative to its execution (the paper's central strong-scaling
    observation)."""
    counts = measured_synthetic_counts
    b = benchmark.pedantic(
        lambda: RegistrationCostModel(
            (256, 256, 256),
            tasks,
            MAVERICK,
            num_newton_iterations=counts["newton_iterations"],
            num_hessian_matvecs=max(counts["hessian_matvecs"], 1),
        ).breakdown(),
        rounds=1,
        iterations=1,
    )
    if tasks >= 512:
        assert b.fft_communication > b.fft_execution
