"""Ablation — number of semi-Lagrangian time steps (unconditional stability).

The paper uses only ``nt = 4`` time steps because the semi-Lagrangian scheme
is unconditionally stable; a CFL-limited scheme would need hundreds of steps
(and would make storing the time history impossible).  This ablation checks
that (i) the transported solution changes only mildly when ``nt`` is
increased beyond 4 (so ``nt = 4`` is adequate), and (ii) the CFL number of
the paper's setup is indeed well above the explicit-stability limit, i.e.
the scheme is operated in a regime where CFL-limited stepping would be far
more expensive.
"""

from repro.analysis.reporting import format_rows
from repro.data.synthetic import sinusoidal_template, synthetic_velocity
from repro.spectral.grid import Grid
from repro.transport.semi_lagrangian import SemiLagrangianStepper
from repro.transport.solvers import TransportSolver


def test_ablation_time_steps(benchmark, record_text, record_json):
    grid = Grid((32, 32, 32))
    template = sinusoidal_template(grid)
    velocity = synthetic_velocity(grid)

    def sweep():
        reference_solver = TransportSolver(grid, num_time_steps=32)
        reference = reference_solver.solve_state(reference_solver.plan(velocity), template)[-1]
        rows = []
        for nt in (1, 2, 4, 8, 16):
            solver = TransportSolver(grid, num_time_steps=nt)
            result = solver.solve_state(solver.plan(velocity), template)[-1]
            error = grid.norm(result - reference) / grid.norm(reference)
            cfl = SemiLagrangianStepper(grid, velocity, 1.0 / nt).cfl_number()
            rows.append({"nt": nt, "error_vs_nt32": error, "cfl_number": cfl})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_text(
        "ablation_timestepping",
        format_rows(rows, title="Ablation: semi-Lagrangian accuracy vs number of time steps"),
    )
    record_json("ablation_timestepping", {"rows": rows})
    errors = {row["nt"]: row["error_vs_nt32"] for row in rows}
    cfls = {row["nt"]: row["cfl_number"] for row in rows}
    # the error decreases monotonically with nt and is already small at nt = 4
    assert errors[1] > errors[4] > errors[16]
    assert errors[4] < 0.05
    # the paper's nt = 4 operates far beyond the explicit CFL limit (CFL <= 1)
    assert cfls[4] > 1.0
