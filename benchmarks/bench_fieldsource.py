"""Out-of-core field pipeline benchmark (memmap + prefetch + tile cache).

One deterministic scenario at clinical-ish resolution (96^3 by default): a
semi-Lagrangian-shaped gather (every grid point displaced by a bounded
perturbation) executed three ways —

* **resident** — the flattened stack in memory (the baseline numerics);
* **cold out-of-core** — a :class:`MemmapFieldSource` over an ``.npy`` on
  disk, auto-wrapped by the executor in the overlapped prefetcher and the
  pool-budgeted tile cache;
* **warm out-of-core** — a *fresh* source over the same file, whose tiles
  are already resident in the plan pool from the cold pass.

The asserted results are structural, never wall-clock (the CI smoke job
must not flake): bitwise identity with the resident gather, a peak tile
working set bounded by the plane-band estimate (< 20% of the field), zero
disk tile loads on the warm pass, and prefetch issues recorded ahead of
their consumers (instrumentation counters, not timing).  Wall times are
reported for context only.  Artifacts go to
``benchmarks/results/fieldsource.{txt,json}``.
"""

import math
import os
import tempfile
import time

import numpy as np

from repro.transport.kernels import (
    STENCIL_CHUNK,
    build_stencil_plan,
    chunk_plane_schedule,
    execute_stencil_plan,
    field_source_log,
)
from repro.transport.sources import MemmapFieldSource

#: Grid edge of the out-of-core gather scenario.
N = int(os.environ.get("REPRO_BENCH_FIELDSOURCE_N", "96"))

#: Maximum per-axis displacement (grid cells) of the synthetic departure
#: points; bounds the plane band each point chunk touches.
DISPLACEMENT = 1.5


def _departure_coords(shape, rng):
    """Every grid point displaced by a bounded perturbation (C order)."""
    identity = np.indices(shape, dtype=np.float64).reshape(3, -1)
    return identity + rng.uniform(-DISPLACEMENT, DISPLACEMENT, size=identity.shape)


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


def test_bench_fieldsource(record_text, record_json):
    shape = (N, N, N)
    rng = np.random.default_rng(20160613)
    field = rng.standard_normal(shape)
    coords = _departure_coords(shape, rng)
    plan = build_stencil_plan(shape, coords, "catmull_rom", layout="streaming")
    schedule = chunk_plane_schedule(shape, plan)

    resident, resident_time = _timed(
        lambda: execute_stencil_plan(field.reshape(1, -1), plan)
    )

    with tempfile.TemporaryDirectory(prefix="repro-bench-fieldsource-") as tmp:
        path = os.path.join(tmp, "field.npy")
        np.save(path, field[None])

        log = field_source_log()
        before = log.snapshot()
        cold_source = MemmapFieldSource.from_npy(path)
        cold, cold_time = _timed(lambda: execute_stencil_plan(cold_source, plan))
        cold_stats = log.snapshot() - before

        before = log.snapshot()
        warm_source = MemmapFieldSource.from_npy(path)
        warm, warm_time = _timed(lambda: execute_stencil_plan(warm_source, plan))
        warm_stats = log.snapshot() - before

    # ------------------------------------------------------------------ #
    # structural pins (deterministic; the CI gate)
    # ------------------------------------------------------------------ #
    np.testing.assert_array_equal(cold, resident)
    np.testing.assert_array_equal(warm, resident)

    # plane-band bound: a chunk of STENCIL_CHUNK C-ordered points spans at
    # most ceil(chunk / plane_points) + 1 base planes, widened by the
    # bounded displacement and the 4-tap stencil halo
    plane_bytes = N * N * 8
    max_planes = (
        math.ceil(STENCIL_CHUNK / (N * N))
        + 1
        + 2 * math.ceil(DISPLACEMENT)
        + 4
    )
    tile_bound = max_planes * plane_bytes
    assert cold_source.peak_tile_bytes <= tile_bound
    assert tile_bound < 0.2 * field.nbytes

    # cold pass: every tile came off disk exactly once per distinct plane
    # tuple, and the loader ran ahead of its consumers (instrumented)
    distinct_tuples = len({planes for _, planes in schedule})
    assert cold_source.loads == distinct_tuples
    assert cold_stats.tile_cache_misses == distinct_tuples
    assert cold_stats.prefetch_issued >= 1

    # warm pass: a fresh source over the same bytes gathers entirely from
    # the pool-resident tiles — not a single disk tile load
    assert warm_source.loads == 0
    assert warm_stats.tile_cache_hits == len(schedule)
    assert warm_stats.tile_cache_misses == 0

    # ------------------------------------------------------------------ #
    # artifacts
    # ------------------------------------------------------------------ #
    lines = [
        f"out-of-core gather at {N}^3 ({plan.num_points} points, "
        f"{len(schedule)} chunks, {distinct_tuples} distinct plane tuples)",
        "",
        f"{'path':<22}{'wall [s]':>10}  {'disk tile loads':>16}  {'peak tile bytes':>16}",
        f"{'resident':<22}{resident_time:>10.3f}  {'-':>16}  {field.nbytes:>16}",
        f"{'memmap cold':<22}{cold_time:>10.3f}  {cold_source.loads:>16}  "
        f"{cold_source.peak_tile_bytes:>16}",
        f"{'memmap warm':<22}{warm_time:>10.3f}  {warm_source.loads:>16}  "
        f"{warm_source.peak_tile_bytes:>16}",
        "",
        f"plane-band bound: {tile_bound} bytes "
        f"({tile_bound / field.nbytes:.1%} of the field; pinned < 20%)",
        f"cold prefetch: {cold_stats.prefetch_issued} issued, "
        f"{cold_stats.prefetch_hits} consumed warm",
        f"warm tile cache: {warm_stats.tile_cache_hits} hits / "
        f"{warm_stats.tile_cache_misses} misses",
    ]
    record_text("fieldsource", "\n".join(lines))
    record_json(
        "fieldsource",
        {
            "n": N,
            "num_points": int(plan.num_points),
            "num_chunks": len(schedule),
            "distinct_plane_tuples": distinct_tuples,
            "field_bytes": int(field.nbytes),
            "tile_bound_bytes": int(tile_bound),
            "resident_seconds": resident_time,
            "cold": {
                "seconds": cold_time,
                "disk_tile_loads": int(cold_source.loads),
                "peak_tile_bytes": int(cold_source.peak_tile_bytes),
                **cold_stats.as_dict(),
            },
            "warm": {
                "seconds": warm_time,
                "disk_tile_loads": int(warm_source.loads),
                "peak_tile_bytes": int(warm_source.peak_tile_bytes),
                **warm_stats.as_dict(),
            },
        },
    )
