"""Fig. 7 — slice-wise residuals and the determinant of the deformation gradient.

The figure shows, for three axial slices, the residual before/after
registration and a point-wise map of ``det(grad y1)``; the key quantitative
statement is that "the values for the determinant of the deformation
gradient are strictly positive (i.e., the deformation map is
diffeomorphic)".  Reproduced on the brain phantom: per-slice residual
ratios below one and strictly positive determinants on every slice.
"""

from repro.analysis.experiments import reproduce_brain_registration
from repro.analysis.reporting import format_rows


def test_fig7_slicewise_residual_and_determinant(benchmark, record_text, record_json):
    summary = benchmark.pedantic(
        lambda: reproduce_brain_registration(
            resolution=24, beta=1e-3, max_newton_iterations=15, slices=(0.45, 0.5, 0.6)
        ),
        rounds=1,
        iterations=1,
    )
    slices = summary["slices"]
    record_text(
        "fig7_deformation_map",
        format_rows(slices, title="Fig. 7 per-slice residuals and det(grad y1) (measured)"),
    )
    record_json(
        "fig7_deformation_map",
        {"slices": slices, "det_grad_min": summary["det_grad_min"]},
    )
    assert len(slices) == 3
    for row in slices:
        # the residual panel brightens on every displayed slice
        assert row["residual_ratio"] < 1.0
        # det(grad y1) strictly positive: the map is diffeomorphic
        assert row["det_grad_min"] > 0.0
    # global determinant bounds consistent with the paper's color scale [0, 2]
    assert summary["det_grad_min"] > 0.0
