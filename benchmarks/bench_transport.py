"""Field-transport engine benchmarks: batched exchange + tiled gather (PR 5).

Two scenarios, written to ``benchmarks/results/transport_batching.{txt,json}``
alongside the other machine-readable results:

* **per-field vs batched distributed ghost exchange** — interpolating a
  ``B``-field stack through one `ScatterInterpolationPlan`: the per-field
  path pays a full ghost-exchange round (4 neighbour exchanges) and a
  return ``alltoallv`` per field, the batched ``interpolate_many`` pays
  them once for the whole stack.  The ledger deltas (messages = the
  latency term of the machine model) are the deterministic result; wall
  time on the simulated communicator is reported for context.
* **resident vs tiled gather** — the same streaming-layout plan executed
  from a resident flattened stack and through an `ArrayFieldSource`:
  reports the peak resident tile bytes (the out-of-core working set)
  against the field bytes, plus the wall-time cost of tile loading.

Run with a plain pytest invocation (``pytest benchmarks/bench_transport.py``)
or the bench-smoke CI job; both scenarios assert the structural wins
deterministically (ledger counts, byte bounds, bitwise identity) so no
wall-clock gate can flake.
"""

import os
import time

import numpy as np

from repro.parallel.comm import SimulatedCommunicator
from repro.parallel.pencil import PencilDecomposition
from repro.parallel.scatter import ScatterInterpolationPlan
from repro.spectral.grid import Grid
from repro.transport.kernels import (
    STENCIL_CHUNK,
    ArrayFieldSource,
    build_stencil_plan,
    execute_stencil_plan,
)
from repro.transport.semi_lagrangian import compute_departure_points
from repro.transport.interpolation import PeriodicInterpolator

#: Grid edge of the distributed batching scenario (p = 4 simulated ranks).
DISTRIBUTED_N = int(os.environ.get("REPRO_BENCH_TRANSPORT_N", "32"))

#: Grid edge of the resident-vs-tiled gather scenario.
TILED_N = int(os.environ.get("REPRO_BENCH_TILED_N", "64"))

#: Fields per batch (state + adjoint + two incremental fields, say).
BATCH = 4


def _best_of(fn, repeats: int = 3) -> float:
    fn()  # warm caches / pools outside the timed region
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_transport_batching(record_text, record_json):
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------ #
    # scenario 1: per-field vs batched distributed ghost exchange
    # ------------------------------------------------------------------ #
    n = DISTRIBUTED_N
    grid = Grid((n, n, n))
    deco = PencilDecomposition(grid.shape, 2, 2)
    velocity = 0.5 * np.stack(
        [np.sin(grid.coordinates()[d] + d) for d in range(3)], axis=0
    )
    departure = compute_departure_points(
        grid, velocity, dt=0.25, interpolator=PeriodicInterpolator(grid, "catmull_rom")
    )
    points = [
        departure[(slice(None), *deco.local_slices(rank))].reshape(3, -1)
        for rank in range(deco.num_tasks)
    ]
    fields = np.stack([rng.standard_normal(grid.shape) for _ in range(BATCH)])
    per_field_blocks = [deco.scatter(field) for field in fields]
    stacks = [
        np.stack([blocks[rank] for blocks in per_field_blocks], axis=0)
        for rank in range(deco.num_tasks)
    ]

    comm = SimulatedCommunicator(deco.num_tasks)
    plan = ScatterInterpolationPlan(grid, deco, comm, points)

    comm.ledger.reset()
    per_field_time = _best_of(
        lambda: [plan.interpolate(blocks) for blocks in per_field_blocks]
    )
    per_field_values = [plan.interpolate(blocks) for blocks in per_field_blocks]
    # 4 timed sweeps + 1 value sweep = 5 x BATCH interpolate calls
    per_field_ledger = {
        category: {
            "messages": entry["messages"] // (4 + 1),
            "bytes": entry["bytes"] // (4 + 1),
            "calls": entry["calls"] // (4 + 1),
        }
        for category, entry in comm.ledger.summary().items()
    }

    comm.ledger.reset()
    batched_time = _best_of(lambda: plan.interpolate_many(stacks))
    batched_values = plan.interpolate_many(stacks)
    batched_ledger = {
        category: {
            "messages": entry["messages"] // (4 + 1),
            "bytes": entry["bytes"] // (4 + 1),
            "calls": entry["calls"] // (4 + 1),
        }
        for category, entry in comm.ledger.summary().items()
    }

    for rank in range(deco.num_tasks):
        for b in range(BATCH):
            np.testing.assert_array_equal(
                batched_values[rank][b], per_field_values[b][rank]
            )

    ghost_calls_saved = (
        per_field_ledger["ghost_exchange"]["calls"]
        - batched_ledger["ghost_exchange"]["calls"]
    )
    assert batched_ledger["ghost_exchange"]["calls"] == 4  # one round per batch
    assert per_field_ledger["ghost_exchange"]["calls"] == 4 * BATCH
    assert batched_ledger["interp_return"]["calls"] == 1
    assert batched_ledger["ghost_exchange"]["bytes"] == per_field_ledger[
        "ghost_exchange"
    ]["bytes"]

    # ------------------------------------------------------------------ #
    # scenario 2: resident vs tiled gather (streaming layout)
    # ------------------------------------------------------------------ #
    m = TILED_N
    tgrid = Grid((m, m, m))
    field = rng.standard_normal(tgrid.shape)
    spacing = np.asarray(tgrid.spacing)[:, None]
    tpoints = tgrid.coordinate_stack().reshape(3, -1) + spacing * rng.uniform(
        -3.0, 3.0, size=(3, tgrid.num_points)
    )
    coords = np.mod(tpoints / spacing, m)
    splan = build_stencil_plan(tgrid.shape, coords, "catmull_rom", layout="streaming")

    flat = np.ascontiguousarray(field.reshape(1, -1))
    resident_time = _best_of(lambda: execute_stencil_plan(flat, splan))
    source = ArrayFieldSource(field)
    tiled_time = _best_of(lambda: execute_stencil_plan(source, splan))
    np.testing.assert_array_equal(
        execute_stencil_plan(source, splan), execute_stencil_plan(flat, splan)
    )
    chunk_cap = 3 * STENCIL_CHUNK * (np.dtype(np.intp).itemsize + 8)
    working_set = source.peak_tile_bytes + splan.nbytes
    assert source.peak_tile_bytes < 0.25 * field.nbytes  # tile-bounded, not O(N^3)

    # ------------------------------------------------------------------ #
    # artifacts
    # ------------------------------------------------------------------ #
    rows = [
        f"field-transport engine: batched exchange + tiled gather",
        "",
        f"[1] distributed interpolation of a {BATCH}-field stack at {n}^3, 2x2 ranks",
        f"{'path':<12} {'ghost calls':>12} {'ghost msgs':>11} {'return calls':>13} "
        f"{'bytes':>12} {'time [s]':>10}",
        "-" * 76,
        f"{'per-field':<12} {per_field_ledger['ghost_exchange']['calls']:>12} "
        f"{per_field_ledger['ghost_exchange']['messages']:>11} "
        f"{per_field_ledger['interp_return']['calls']:>13} "
        f"{per_field_ledger['ghost_exchange']['bytes']:>12} {per_field_time:>10.4f}",
        f"{'batched':<12} {batched_ledger['ghost_exchange']['calls']:>12} "
        f"{batched_ledger['ghost_exchange']['messages']:>11} "
        f"{batched_ledger['interp_return']['calls']:>13} "
        f"{batched_ledger['ghost_exchange']['bytes']:>12} {batched_time:>10.4f}",
        f"-> {ghost_calls_saved} ghost-exchange rounds saved per {BATCH}-field batch "
        f"(latency term /{BATCH}); payload bytes unchanged; bitwise identical",
        "",
        f"[2] resident vs tiled gather at {m}^3 (streaming layout, {tgrid.num_points} points)",
        f"{'mode':<12} {'time [s]':>10} {'resident field bytes':>22}",
        "-" * 48,
        f"{'resident':<12} {resident_time:>10.4f} {flat.nbytes:>22}",
        f"{'tiled':<12} {tiled_time:>10.4f} {source.peak_tile_bytes:>22}",
        f"-> peak tile {source.peak_tile_bytes} B + streaming stencil {splan.nbytes} B "
        f"= {working_set} B working set ({working_set / field.nbytes:.1%} of the field); "
        f"stencil scratch cap {chunk_cap} B; bitwise identical",
    ]
    record_text("transport_batching", "\n".join(rows))
    record_json(
        "transport_batching",
        {
            "benchmark": "field-transport engine: batched ghost exchange + tiled gather",
            "distributed": {
                "grid": [n, n, n],
                "tasks": deco.num_tasks,
                "batch": BATCH,
                "per_field": {
                    "ledger": per_field_ledger,
                    "seconds": per_field_time,
                },
                "batched": {
                    "ledger": batched_ledger,
                    "seconds": batched_time,
                },
                "ghost_rounds_saved_per_batch": ghost_calls_saved // 4,
                "bitwise_identical": True,
            },
            "tiled_gather": {
                "grid": [m, m, m],
                "num_points": tgrid.num_points,
                "layout": "streaming",
                "resident_seconds": resident_time,
                "tiled_seconds": tiled_time,
                "field_bytes": int(field.nbytes),
                "peak_tile_bytes": int(source.peak_tile_bytes),
                "streaming_stencil_bytes": int(splan.nbytes),
                "working_set_bytes": int(working_set),
                "working_set_over_field": working_set / field.nbytes,
                "bitwise_identical": True,
            },
        },
    )
