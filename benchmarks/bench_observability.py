"""Observability overhead and span-accounting pins (16^3, nt = 4).

The tracing layer promises two things the evaluation section depends on:

* **zero-cost when off** — the disabled ``trace_span`` path is one module
  boolean check returning a shared no-op context manager, so leaving the
  instrumentation compiled into every hot kernel (FFT, gather, matvec)
  must not move the solver's wall-clock time;
* **honest when on** — every span stands for exactly one unit of counted
  kernel work, so span totals must agree with the independent work
  counters, and recording spans must never change the numerics.

This bench pins both on the deterministic 16^3 / nt = 4 synthetic
registration: the disabled-path per-span cost (microbenchmark), the
enabled/disabled solve-time ratio, bitwise identity of the velocity with
tracing on vs off, the span-count/work-counter cross-checks, and run-to-run
determinism of the full span-count table.  Artifacts go to
``benchmarks/results/observability.{txt,json}``.
"""

import os
import time

import numpy as np
import pytest

from repro.analysis.reporting import format_rows
from repro.core.registration import register
from repro.data.synthetic import synthetic_registration_problem
from repro.observability import (
    disable_tracing,
    enable_tracing,
    get_metrics_registry,
    get_trace_recorder,
    trace_span,
    tracing_enabled,
)

RESOLUTION = 16
NUM_TIME_STEPS = 4

#: Upper bound on the disabled-path cost of one ``trace_span`` call.  The
#: real cost is a boolean check plus one kwargs dict (~1 us); the bound is
#: generous so shared runners do not flip it.
DISABLED_SPAN_BUDGET_US = 10.0

#: Upper bound on the enabled/disabled solve-time ratio.  Tracing records a
#: few thousand spans per 16^3 solve; the bound allows for timer noise at
#: this tiny (sub-second) problem size.
ENABLED_OVERHEAD_RATIO = 1.5


def _solve(problem):
    return register(
        problem.template,
        problem.reference,
        grid=problem.grid,
        num_time_steps=NUM_TIME_STEPS,
    )


def _timed_solve(problem):
    start = time.perf_counter()
    result = _solve(problem)
    return result, time.perf_counter() - start


def _metric_totals():
    collected = get_metrics_registry().collect()
    return {name: sum(series.values()) for name, series in collected.items()}


def _disabled_span_cost_us(iterations: int = 50_000) -> float:
    assert not tracing_enabled()
    start = time.perf_counter()
    for _ in range(iterations):
        with trace_span("bench.noop", index=0):
            pass
    return (time.perf_counter() - start) / iterations * 1e6


def test_observability_overhead(benchmark, record_text, record_json):
    problem = synthetic_registration_problem(RESOLUTION)
    recorder = get_trace_recorder()

    def measure():
        # -- disabled path: microbenchmark + solve timings ------------------
        disable_tracing()
        span_cost_us = _disabled_span_cost_us()
        _solve(problem)  # warm plan pool and backends once
        result_off, time_off = _timed_solve(problem)
        _, time_off_repeat = _timed_solve(problem)

        # -- enabled path: timed solve plus span accounting -----------------
        enable_tracing()
        recorder.clear()
        before = _metric_totals()
        result_on, time_on = _timed_solve(problem)
        counts_first = recorder.span_counts()
        after = _metric_totals()

        # run-to-run determinism of the span-count table
        recorder.clear()
        result_repeat = _solve(problem)
        counts_repeat = recorder.span_counts()
        disable_tracing()
        return {
            "span_cost_us": span_cost_us,
            "time_off": min(time_off, time_off_repeat),
            "time_on": time_on,
            "result_off": result_off,
            "result_on": result_on,
            "result_repeat": result_repeat,
            "counts": counts_first,
            "counts_repeat": counts_repeat,
            "fft_delta": after.get("fft.transforms", 0) - before.get("fft.transforms", 0),
            "sweep_delta": after.get("interp.sweeps", 0) - before.get("interp.sweeps", 0),
        }

    m = benchmark.pedantic(measure, rounds=1, iterations=1)
    counts = m["counts"]
    summary_on = m["result_on"].summary()
    overhead_ratio = m["time_on"] / m["time_off"]
    rows = [
        {
            "grid": f"{RESOLUTION}^3",
            "nt": NUM_TIME_STEPS,
            "disabled_span_cost_us": m["span_cost_us"],
            "solve_disabled_s": m["time_off"],
            "solve_enabled_s": m["time_on"],
            "overhead_ratio": overhead_ratio,
            "spans_recorded": sum(counts.values()),
        }
    ]
    record_text(
        "observability",
        format_rows(rows, title="Observability overhead (16^3 synthetic, nt = 4)")
        + "\n\nspan counts: "
        + str(dict(sorted(counts.items()))),
    )
    record_json(
        "observability",
        {
            "overhead": rows[0],
            "span_counts": dict(sorted(counts.items())),
            "work_counters": {
                "fft_transforms": m["fft_delta"],
                "interpolation_sweeps": m["sweep_delta"],
                "hessian_matvecs": summary_on["hessian_matvecs"],
                "newton_iterations": summary_on["newton_iterations"],
            },
        },
    )

    # tracing never changes the numerics: bitwise identical velocities
    assert np.array_equal(m["result_off"].velocity, m["result_on"].velocity)
    assert np.array_equal(m["result_on"].velocity, m["result_repeat"].velocity)

    # span accounting: every span stands for one unit of counted kernel work
    fft_spans = counts.get("fft.forward", 0) + counts.get("fft.backward", 0)
    assert fft_spans == m["fft_delta"]
    assert counts.get("interp.gather", 0) == m["sweep_delta"]
    assert counts.get("pcg.matvec", 0) == summary_on["hessian_matvecs"]
    assert counts.get("newton.iteration", 0) == summary_on["newton_iterations"]
    assert counts.get("registration.solve", 0) == 1
    # ... and the whole span-count table is deterministic run to run
    assert counts == m["counts_repeat"]

    # wall-clock pins; REPRO_BENCH_NONSTRICT=1 downgrades a loss to a skip
    # for noisy shared runners where timing comparisons can flip
    failures = []
    if m["span_cost_us"] > DISABLED_SPAN_BUDGET_US:
        failures.append(
            f"disabled trace_span cost {m['span_cost_us']:.2f}us exceeds "
            f"{DISABLED_SPAN_BUDGET_US}us"
        )
    if overhead_ratio > ENABLED_OVERHEAD_RATIO:
        failures.append(
            f"enabled tracing overhead ratio {overhead_ratio:.2f} exceeds "
            f"{ENABLED_OVERHEAD_RATIO}"
        )
    if failures:
        message = "; ".join(failures)
        if os.environ.get("REPRO_BENCH_NONSTRICT"):
            pytest.skip(message)
        raise AssertionError(message)
