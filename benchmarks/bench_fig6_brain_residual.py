"""Fig. 6 — brain registration: residual before and after registration.

The figure shows the reference, the template, and the residual before and
after registration for the multi-subject brain pair; the residual panel
becomes much brighter (smaller mismatch) after registration.  Reproduced on
the brain phantom (NIREP substitute): the measured claim is a substantial
reduction of the L2 residual with a strictly positive Jacobian determinant.
"""

from repro.analysis.experiments import reproduce_brain_registration
from repro.analysis.reporting import format_rows


def test_fig6_brain_residual_reduction(benchmark, record_text, record_json):
    summary = benchmark.pedantic(
        lambda: reproduce_brain_registration(
            resolution=24, beta=1e-3, max_newton_iterations=15
        ),
        rounds=1,
        iterations=1,
    )
    top = {k: v for k, v in summary.items() if k != "slices"}
    record_text(
        "fig6_brain_residual",
        format_rows([top], title="Fig. 6 brain registration (measured, phantom pair)"),
    )
    record_json("fig6_brain_residual", {"summary": top})
    assert summary["residual_after"] < 0.8 * summary["residual_before"]
    assert summary["det_grad_min"] > 0.0
