"""Ablation — Gauss-Newton-Krylov vs (preconditioned) gradient descent.

The paper's motivation for a second-order method: "steepest descent methods
only have a linear convergence rate" (Sec. II-B).  This ablation gives both
optimizers the same budget of outer iterations and compares how far they
reduce the image mismatch.
"""

from repro.analysis.reporting import format_rows
from repro.core.optim.gauss_newton import SolverOptions
from repro.core.registration import RegistrationSolver
from repro.data.synthetic import synthetic_registration_problem


def _run(optimizer: str, max_iterations: int):
    problem = synthetic_registration_problem(16)
    options = SolverOptions(
        gradient_tolerance=1e-3,
        max_newton_iterations=max_iterations,
        max_krylov_iterations=20,
    )
    solver = RegistrationSolver(beta=1e-2, optimizer=optimizer, options=options)
    result = solver.run(problem.template, problem.reference, grid=problem.grid)
    return {
        "optimizer": optimizer,
        "outer_iterations": result.num_newton_iterations,
        "hessian_matvecs": result.num_hessian_matvecs,
        "relative_residual": result.relative_residual,
        "final_gradient_norm": result.optimization.final_gradient_norm,
        "time": result.elapsed_seconds,
    }


def test_ablation_optimizer_baseline(benchmark, record_text, record_json):
    rows = benchmark.pedantic(
        lambda: [_run("gauss_newton", 8), _run("gradient_descent", 8)],
        rounds=1,
        iterations=1,
    )
    record_text(
        "ablation_optimizer_baseline",
        format_rows(rows, title="Ablation: Gauss-Newton-Krylov vs gradient-descent baseline"),
    )
    record_json("ablation_optimizer_baseline", {"rows": rows})
    newton, descent = rows
    # with the same number of outer iterations the Newton-Krylov solver
    # reaches a (much) smaller mismatch — the paper's convergence-rate claim
    assert newton["relative_residual"] <= descent["relative_residual"] * 1.05
    assert newton["final_gradient_norm"] <= descent["final_gradient_norm"] * 1.05
