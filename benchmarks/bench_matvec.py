"""Hessian mat-vec cost pins: the per-iterate gradient cache (16^3, nt = 4).

The paper prices one Gauss-Newton Hessian mat-vec at ``8 nt`` FFTs +
``4 nt`` interpolation sweeps (Sec. III-C4).  The per-iterate gradient
cache (:mod:`repro.core.gradients`) amortizes every state-gradient
transform into ``linearize``, so this bench pins — counter-exact, no
timers involved —

* a **warm cached mat-vec performs zero spectral-gradient FFTs** (only the
  regularizer's 6 transforms remain; full Newton keeps the per-direction
  ``rho~`` gradients and drops from ``16(nt+1)+6`` to ``8(nt+1)+6``),
* the **uncached opt-out restores the paper's figure** ``8(nt+1)+6``
  exactly, and building the cache adds zero transforms to ``linearize``,
* results are **bitwise identical cached vs uncached** across every
  available FFT backend x stencil-plan layout (the cache reuses FFT
  outputs, it never changes them), and
* the cache **degrades cleanly (and logs the decision)** when the
  ``REPRO_PLAN_POOL_BYTES`` budget cannot hold the stack.

Cold-vs-warm wall time is reported alongside (and pinned loosely;
``REPRO_BENCH_NONSTRICT=1`` downgrades a timing loss to a skip for noisy
shared runners — the counter pins always stay hard).  Artifacts go to
``benchmarks/results/matvec_gradient_cache.{txt,json}``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.analysis.reporting import format_rows
from repro.core.gradients import (
    gradient_cache_decision_log,
    set_gradient_cache_enabled,
)
from repro.core.problem import RegistrationProblem
from repro.data.synthetic import synthetic_registration_problem, synthetic_velocity
from repro.runtime.plan_pool import configure_plan_pool, get_plan_pool, reset_plan_pool
from repro.spectral.backends import available_backends as available_fft_backends
from repro.transport.kernels import PLAN_LAYOUT_CHOICES, set_default_plan_layout

RESOLUTION = 16
NUM_TIME_STEPS = 4

#: FFT transforms of a warm cached Gauss-Newton mat-vec: the regularizer's
#: batched mat-vec and nothing else — zero spectral-gradient FFTs.
WARM_GN_TRANSFORMS = 6

#: Loose wall-clock pin: a warm cached mat-vec must not be slower than the
#: uncached one beyond timer noise (it does strictly less spectral work).
WARM_SPEEDUP_FLOOR = 0.9


def _uncached_transforms(nt: int, gauss_newton: bool = True) -> int:
    """The paper-mode transform count (one forward/inverse pair = 2)."""
    return (8 if gauss_newton else 16) * (nt + 1) + 6


def _build_problem(fft_backend="numpy", gauss_newton=True) -> RegistrationProblem:
    synthetic = synthetic_registration_problem(
        RESOLUTION, num_time_steps=NUM_TIME_STEPS
    )
    return RegistrationProblem(
        grid=synthetic.grid,
        reference=synthetic.reference,
        template=synthetic.template,
        num_time_steps=NUM_TIME_STEPS,
        gauss_newton=gauss_newton,
        fft_backend=fft_backend,
    )


def _velocity(problem, amplitude=0.3, shift=0):
    """Deterministic smooth velocity; *shift* decorrelates the PCG direction."""
    field = amplitude * synthetic_velocity(problem.grid)
    if shift:
        field = np.roll(field, shift, axis=(1, 2, 3))
    return field


def _measure_mode(cached, fft_backend="numpy", gauss_newton=True):
    """linearize + 2 mat-vecs in one cache mode; counters and wall times."""
    set_gradient_cache_enabled(cached)
    reset_plan_pool()
    problem = _build_problem(fft_backend=fft_backend, gauss_newton=gauss_newton)
    velocity = _velocity(problem)
    direction = _velocity(problem, amplitude=0.1, shift=3)

    before = problem.work_counters()
    iterate = problem.linearize(velocity)
    linearize_transforms = (problem.work_counters() - before).fft_transforms

    timings = []
    deltas = []
    matvec = None
    for _ in range(3):
        before = problem.work_counters()
        start = time.perf_counter()
        matvec = problem.hessian_matvec(iterate, direction)
        timings.append(time.perf_counter() - start)
        deltas.append(problem.work_counters() - before)

    # every mat-vec of one iterate costs the same — the cache is built by
    # linearize, never lazily by the first mat-vec
    assert all(d.fft_transforms == deltas[0].fft_transforms for d in deltas)
    set_gradient_cache_enabled(None)
    return {
        "gradient": iterate.gradient,
        "matvec": matvec,
        "linearize_transforms": linearize_transforms,
        "matvec_transforms": deltas[0].fft_transforms,
        "matvec_sweeps": deltas[0].interpolation_sweeps(problem.grid.num_points),
        "matvec_seconds": min(timings),
    }


def test_matvec_gradient_cache(benchmark, record_text, record_json):
    def measure():
        modes = {
            (cached, gn): _measure_mode(cached, gauss_newton=gn)
            for cached in (True, False)
            for gn in (True, False)
        }

        # bitwise identity across every FFT backend x plan layout
        identity_cells = []
        for backend in available_fft_backends():
            for layout in sorted(PLAN_LAYOUT_CHOICES):
                set_default_plan_layout(layout)
                try:
                    warm = _measure_mode(True, fft_backend=backend)
                    cold = _measure_mode(False, fft_backend=backend)
                finally:
                    set_default_plan_layout(None)
                identity_cells.append(
                    {
                        "fft_backend": backend,
                        "plan_layout": layout,
                        "gradient_identical": bool(
                            np.array_equal(warm["gradient"], cold["gradient"])
                        ),
                        "matvec_identical": bool(
                            np.array_equal(warm["matvec"], cold["matvec"])
                        ),
                        "warm_transforms": warm["matvec_transforms"],
                        "cold_transforms": cold["matvec_transforms"],
                    }
                )

        # budget fallback: a pool too small for the stack degrades (logged)
        gradient_cache_decision_log().reset()
        problem = _build_problem()
        state_nbytes = (NUM_TIME_STEPS + 1) * problem.template.nbytes
        try:
            configure_plan_pool(3 * state_nbytes - 1)
            set_gradient_cache_enabled(True)
            iterate = problem.linearize(_velocity(problem))
            fallback_decision = gradient_cache_decision_log().recent()[-1]
            fallback_cached = iterate.state_gradients.cached
        finally:
            configure_plan_pool(None)
            set_gradient_cache_enabled(None)
            reset_plan_pool()

        # pool accounting of a cached run
        set_gradient_cache_enabled(True)
        reset_plan_pool()
        problem = _build_problem()
        problem.linearize(_velocity(problem))
        grad_cache_stats = get_plan_pool().stats_by_tag()["grad-cache"]
        set_gradient_cache_enabled(None)

        return {
            "modes": modes,
            "identity_cells": identity_cells,
            "fallback_decision": fallback_decision,
            "fallback_cached": fallback_cached,
            "grad_cache_bytes": grad_cache_stats.current_bytes,
            "expected_stack_bytes": 3 * state_nbytes,
        }

    m = benchmark.pedantic(measure, rounds=1, iterations=1)
    modes = m["modes"]
    warm_gn, cold_gn = modes[(True, True)], modes[(False, True)]
    warm_fn, cold_fn = modes[(True, False)], modes[(False, False)]

    rows = [
        {
            "hessian": "gauss-newton" if gn else "full-newton",
            "cache": "warm" if cached else "uncached",
            "matvec_ffts": mode["matvec_transforms"],
            "matvec_sweeps": mode["matvec_sweeps"],
            "linearize_ffts": mode["linearize_transforms"],
            "matvec_seconds": mode["matvec_seconds"],
        }
        for (cached, gn), mode in sorted(modes.items(), reverse=True)
    ]
    speedup = cold_gn["matvec_seconds"] / max(warm_gn["matvec_seconds"], 1e-12)
    record_text(
        "matvec_gradient_cache",
        format_rows(
            rows,
            title=(
                f"Hessian mat-vec cost, gradient cache warm vs uncached "
                f"({RESOLUTION}^3, nt = {NUM_TIME_STEPS})"
            ),
        )
        + f"\n\nwarm/cold GN mat-vec wall-time speedup: {speedup:.2f}x"
        + f"\nfallback decision: {m['fallback_decision'].reason}",
    )
    record_json(
        "matvec_gradient_cache",
        {
            "grid": [RESOLUTION] * 3,
            "num_time_steps": NUM_TIME_STEPS,
            "matvec_cost": rows,
            "warm_speedup": speedup,
            "identity_matrix": m["identity_cells"],
            "fallback": {
                "cached": m["fallback_cached"],
                "reason": m["fallback_decision"].reason,
                "projected_bytes": m["fallback_decision"].projected_bytes,
                "budget_bytes": m["fallback_decision"].budget_bytes,
            },
            "grad_cache_pool_bytes": m["grad_cache_bytes"],
        },
    )

    # --- counter-exact pins (always hard, timer-free) ---------------------- #
    nt = NUM_TIME_STEPS
    # warm GN mat-vec: zero spectral-gradient FFTs, regularizer only
    assert warm_gn["matvec_transforms"] == WARM_GN_TRANSFORMS
    # the paper-mode pin survives via the opt-out
    assert cold_gn["matvec_transforms"] == _uncached_transforms(nt)
    assert warm_fn["matvec_transforms"] == _uncached_transforms(nt)
    assert cold_fn["matvec_transforms"] == _uncached_transforms(nt, gauss_newton=False)
    # the cache build is free: linearize costs the same either way
    assert warm_gn["linearize_transforms"] == cold_gn["linearize_transforms"]
    # interpolation work is untouched by the cache
    assert warm_gn["matvec_sweeps"] == cold_gn["matvec_sweeps"] == 4 * nt

    # --- bitwise identity across backends x layouts ------------------------ #
    for cell in m["identity_cells"]:
        assert cell["gradient_identical"] and cell["matvec_identical"], cell
        assert cell["warm_transforms"] == WARM_GN_TRANSFORMS
        assert cell["cold_transforms"] == _uncached_transforms(nt)

    # --- budget fallback ---------------------------------------------------- #
    assert not m["fallback_cached"]
    assert not m["fallback_decision"].cached
    assert "exceeds the plan-pool budget" in m["fallback_decision"].reason
    # cached runs account the stack exactly under the grad-cache tag
    assert m["grad_cache_bytes"] == m["expected_stack_bytes"]

    # --- wall-clock pin (NONSTRICT downgrades to skip) ---------------------- #
    if speedup < WARM_SPEEDUP_FLOOR:
        message = (
            f"warm cached mat-vec speedup {speedup:.2f}x fell below "
            f"{WARM_SPEEDUP_FLOOR}x over the uncached path"
        )
        if os.environ.get("REPRO_BENCH_NONSTRICT"):
            pytest.skip(message)
        raise AssertionError(message)
