"""Table III — incompressible (volume-preserving) runs, 128^3 (runs #20-#24).

Two reproduced components:

* **measured**: the real solver is run on the incompressible synthetic
  problem (divergence-free generating velocity, Leray-projected solver) at
  reduced resolution; the reproduced claims are that the registration
  converges and that ``det(grad y1) = 1`` up to discretization error.
* **modeled**: the paper's 1-32 task rows on Maverick (2 tasks/node) from
  the calibrated performance model.
"""

from repro.analysis.experiments import reproduce_scaling_table, reproduce_synthetic_problem
from repro.analysis.paper_tables import TABLE_III
from repro.analysis.reporting import format_breakdown_table, format_rows


def test_table3_rows(benchmark, record_text, record_json, measured_incompressible_counts):
    counts = measured_incompressible_counts

    def build():
        return reproduce_scaling_table(
            "III",
            num_newton_iterations=counts["newton_iterations"],
            num_hessian_matvecs=max(counts["hessian_matvecs"], 1),
        )

    entries = benchmark.pedantic(build, rounds=1, iterations=1)
    text = format_breakdown_table(
        entries,
        title="Table III (incompressible, 128^3, Maverick 2 tasks/node): paper vs model",
    )
    text += "\n\nmeasured incompressible solve (24^3): " + str(counts)
    record_text("table3_incompressible", text)
    record_json(
        "table3_incompressible",
        {"entries": entries, "measured_counts": dict(counts)},
    )
    assert len(entries) == 2 * len(TABLE_III)
    # strong scaling: modeled time decreases monotonically from 1 to 32 tasks
    model_times = [e["time_to_solution"] for e in entries if e["source"] == "model"]
    assert all(a > b for a, b in zip(model_times, model_times[1:]))


def test_table3_volume_preservation_measured(benchmark, record_text, record_json):
    """The volume-preserving constraint is the point of Table III: verify it."""
    summary = benchmark.pedantic(
        lambda: reproduce_synthetic_problem(resolution=24, incompressible=True),
        rounds=1,
        iterations=1,
    )
    record_text(
        "table3_volume_preservation",
        format_rows([summary], title="Incompressible synthetic registration (measured)"),
    )
    record_json("table3_volume_preservation", {"summary": summary})
    assert summary["relative_residual"] < 1.0
    # det(grad y) must stay close to one everywhere (volume preserving)
    assert abs(summary["det_grad_min"] - 1.0) < 0.15
    assert abs(summary["det_grad_max"] - 1.0) < 0.15
