"""Service throughput benchmark: N serial solves vs N queued jobs (PR 6).

The scenario the job service exists for: four same-grid requests arrive
together (an atlas normalization pass — apply one population-average
velocity to four subject images, plus a four-subject registration burst).
The benchmark runs each workload twice:

* **serial** — four independent solves through the plain synchronous path,
* **queued** — the same four solves submitted as service jobs, where the
  micro-batcher merges compatible transport jobs into shared
  ``solve_state_many`` stacks and the plan pool serves later batches warm.

The deterministic results (asserted, so no wall-clock gate can flake):

* the queued transport path performs **strictly fewer ghost-exchange
  rounds** than four independent solves (batches share one round per step),
* the plan-pool **hit rate of the queued jobs is >= 50 %** (the first
  batch builds the two scatter plans, every later batch reuses them),
* the queued results are **bitwise equal** to the serial ones.

Wall times are reported for context.  Artifacts go to
``benchmarks/results/service_throughput.{txt,json}``; the ``acceptance``
block in the JSON is what the CI service-smoke job checks.

A second phase (``test_bench_journal_overhead``) prices the durable job
journal: the same submission burst runs against the in-memory queue and
against a journaled service (fsync on commit), and the pin asserts the
journal's end-to-end overhead stays **under 10 %** of the in-memory wall
(``REPRO_BENCH_NONSTRICT=1`` downgrades a wall-clock loss to a skip; the
bitwise-equality and durability checks stay hard).

Run with ``pytest benchmarks/bench_service.py``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.optim.gauss_newton import SolverOptions
from repro.core.registration import register
from repro.data.synthetic import synthetic_population, synthetic_registration_problem
from repro.parallel.comm import SimulatedCommunicator
from repro.parallel.pencil import PencilDecomposition
from repro.parallel.transport import DistributedTransportSolver
from repro.runtime.plan_pool import get_plan_pool, reset_plan_pool
from repro.service import RegistrationService, RegistrationJobSpec, TransportJobSpec
from repro.spectral.grid import Grid

#: Grid edge of both scenarios (p = 4 simulated ranks).
N = int(os.environ.get("REPRO_BENCH_SERVICE_N", "16"))

#: Concurrent same-grid jobs per scenario (the acceptance criterion's N).
NUM_JOBS = 4

#: Micro-batch cap of the queued transport run: 4 jobs -> 2 batches, so the
#: second batch demonstrates warm plan reuse (hit rate exactly 1/2).
MAX_BATCH = 2

NUM_TASKS = 4
NUM_TIME_STEPS = 4


def _hit_rate(stats) -> float:
    total = stats.hits + stats.misses
    return stats.hits / total if total else 0.0


def _transport_workload():
    """One population-average velocity + four subject images."""
    population = synthetic_population(
        N, num_subjects=NUM_JOBS, num_time_steps=NUM_TIME_STEPS
    )
    problem = synthetic_registration_problem(N, num_time_steps=NUM_TIME_STEPS)
    return population.grid, problem.true_velocity, population.subjects


def _serial_transport(grid, velocity, movings):
    deco = PencilDecomposition.from_num_tasks(grid.shape, NUM_TASKS)
    comm = SimulatedCommunicator(deco.num_tasks)
    reset_plan_pool()
    pool_before = get_plan_pool().stats
    start = time.perf_counter()
    results = [
        DistributedTransportSolver(
            grid, deco, num_time_steps=NUM_TIME_STEPS, comm=comm
        ).solve_state(velocity, moving)
        for moving in movings
    ]
    wall = time.perf_counter() - start
    delta = get_plan_pool().stats - pool_before
    return {
        "results": results,
        "wall_seconds": wall,
        "ghost_exchange_calls": comm.ledger.summary()["ghost_exchange"]["calls"],
        "ledger": comm.ledger.summary(),
        "plan_pool": delta.as_dict(),
        "plan_pool_hit_rate": _hit_rate(delta),
    }


def _queued_transport(grid, velocity, movings):
    reset_plan_pool()
    with RegistrationService(num_workers=1, max_batch=MAX_BATCH) as service:
        # a blocker job (different velocity) keeps the single worker busy so
        # all four measured jobs are queued when the claim happens — the
        # deterministic 2+2 batching the acceptance numbers assume
        blocker = service.submit_transport(
            TransportJobSpec(
                velocity=np.roll(velocity, 1, axis=1),
                moving=movings[0],
                num_time_steps=NUM_TIME_STEPS,
                num_tasks=NUM_TASKS,
                grid=grid,
            )
        )
        jobs = [
            service.submit_transport(
                TransportJobSpec(
                    velocity=velocity,
                    moving=moving,
                    num_time_steps=NUM_TIME_STEPS,
                    num_tasks=NUM_TASKS,
                    grid=grid,
                )
            )
            for moving in movings
        ]
        blocker.result(timeout=600)
        pool_after_blocker = get_plan_pool().stats
        start = time.perf_counter()
        results = service.gather(jobs, timeout=600)
        wall = time.perf_counter() - start
    delta = get_plan_pool().stats - pool_after_blocker
    # every job reports its batch's ledger; dividing by the batch size and
    # summing charges each batch exactly once
    ghost_calls = sum(
        job.record.metrics["ghost_exchange_calls"] / job.record.metrics["batch_size"]
        for job in jobs
    )
    return {
        "results": results,
        "wall_seconds": wall,
        "ghost_exchange_calls": int(round(ghost_calls)),
        "batch_sizes": sorted(job.record.batch_size for job in jobs),
        "plan_pool": delta.as_dict(),
        "plan_pool_hit_rate": _hit_rate(delta),
    }


def _registration_workload():
    problem = synthetic_registration_problem(N, num_time_steps=NUM_TIME_STEPS)
    options = SolverOptions(max_newton_iterations=1, max_krylov_iterations=3)
    return problem, options


def _serial_registration(problem, options):
    reset_plan_pool()
    pool_before = get_plan_pool().stats
    start = time.perf_counter()
    results = [
        register(problem.template, problem.reference, options=options)
        for _ in range(NUM_JOBS)
    ]
    wall = time.perf_counter() - start
    delta = get_plan_pool().stats - pool_before
    return {
        "results": results,
        "wall_seconds": wall,
        "plan_pool": delta.as_dict(),
        "plan_pool_hit_rate": _hit_rate(delta),
    }


def _queued_registration(problem, options):
    reset_plan_pool()
    pool_before = get_plan_pool().stats
    start = time.perf_counter()
    with RegistrationService(num_workers=2) as service:
        jobs = [
            service.submit_registration(
                RegistrationJobSpec(
                    template=problem.template,
                    reference=problem.reference,
                    options=options,
                )
            )
            for _ in range(NUM_JOBS)
        ]
        results = service.gather(jobs, timeout=600)
    wall = time.perf_counter() - start
    delta = get_plan_pool().stats - pool_before
    return {
        "results": results,
        "wall_seconds": wall,
        "plan_pool": delta.as_dict(),
        "plan_pool_hit_rate": _hit_rate(delta),
    }


def test_service_throughput(record_text, record_json):
    grid, velocity, movings = _transport_workload()
    assert isinstance(grid, Grid)

    serial_t = _serial_transport(grid, velocity, movings)
    queued_t = _queued_transport(grid, velocity, movings)
    bitwise_equal = all(
        np.array_equal(expected, got)
        for expected, got in zip(serial_t["results"], queued_t["results"])
    )

    problem, options = _registration_workload()
    serial_r = _serial_registration(problem, options)
    queued_r = _queued_registration(problem, options)
    register_bitwise = all(
        np.array_equal(serial_r["results"][0].velocity, result.velocity)
        for result in queued_r["results"]
    )

    acceptance = {
        "num_jobs": NUM_JOBS,
        "plan_pool_hit_rate": queued_t["plan_pool_hit_rate"],
        "hit_rate_ge_50_percent": queued_t["plan_pool_hit_rate"] >= 0.5,
        "queued_ghost_exchange_calls": queued_t["ghost_exchange_calls"],
        "serial_ghost_exchange_calls": serial_t["ghost_exchange_calls"],
        "strictly_fewer_ghost_rounds": (
            queued_t["ghost_exchange_calls"] < serial_t["ghost_exchange_calls"]
        ),
        "bitwise_equal_to_serial": bitwise_equal,
    }

    def _public(section):
        return {key: value for key, value in section.items() if key != "results"}

    payload = {
        "grid": f"{N}^3",
        "num_jobs": NUM_JOBS,
        "num_tasks": NUM_TASKS,
        "num_time_steps": NUM_TIME_STEPS,
        "max_batch": MAX_BATCH,
        "acceptance": acceptance,
        "transport": {
            "serial": _public(serial_t),
            "queued": _public(queued_t),
            "bitwise_equal": bitwise_equal,
        },
        "registration": {
            "serial": _public(serial_r),
            "queued": _public(queued_r),
            "bitwise_equal": register_bitwise,
            "relative_residual": serial_r["results"][0].relative_residual,
        },
    }
    record_json("service_throughput", payload)

    lines = [
        f"service throughput: {NUM_JOBS} same-grid jobs at {N}^3, "
        f"{NUM_TASKS} simulated ranks, nt={NUM_TIME_STEPS}, max_batch={MAX_BATCH}",
        "",
        "transport (atlas normalization pass: one velocity, four subjects)",
        f"  serial : {serial_t['wall_seconds']:8.3f} s, "
        f"{serial_t['ghost_exchange_calls']:3d} ghost-exchange calls",
        f"  queued : {queued_t['wall_seconds']:8.3f} s, "
        f"{queued_t['ghost_exchange_calls']:3d} ghost-exchange calls, "
        f"batches {queued_t['batch_sizes']}, "
        f"pool hit rate {queued_t['plan_pool_hit_rate']:.0%}",
        f"  bitwise equal to serial: {bitwise_equal}",
        "",
        "registration (four-subject burst, 1 Gauss-Newton iteration each)",
        f"  serial : {serial_r['wall_seconds']:8.3f} s, "
        f"pool hit rate {serial_r['plan_pool_hit_rate']:.0%}",
        f"  queued : {queued_r['wall_seconds']:8.3f} s on 2 workers, "
        f"pool hit rate {queued_r['plan_pool_hit_rate']:.0%}",
        f"  velocities bitwise equal across jobs: {register_bitwise}",
    ]
    record_text("service_throughput", "\n".join(lines))

    # the acceptance criteria are structural, not wall-clock, so assert them
    assert acceptance["hit_rate_ge_50_percent"], acceptance
    assert acceptance["strictly_fewer_ghost_rounds"], acceptance
    assert acceptance["bitwise_equal_to_serial"], acceptance


# --------------------------------------------------------------------------- #
# journal-overhead phase (PR 9): pricing durability on the submit path
# --------------------------------------------------------------------------- #

#: Time steps of the journal-overhead phase.  The journal charges a fixed
#: per-job price (one fsync'd append per submit and per completion), so the
#: workload must be long enough to represent a real job, where solve time
#: dominates — nt=4 at 16^3 finishes in tens of milliseconds and would make
#: any constant cost look enormous.
JOURNAL_PHASE_STEPS = int(os.environ.get("REPRO_BENCH_JOURNAL_STEPS", "32"))


def _burst(service, grid, velocity, movings):
    """Submit the four-job burst, timing each submit call; gather results."""
    submit_seconds = []
    jobs = []
    for moving in movings:
        spec = TransportJobSpec(
            velocity=velocity,
            moving=moving,
            num_time_steps=JOURNAL_PHASE_STEPS,
            num_tasks=NUM_TASKS,
            grid=grid,
        )
        start = time.perf_counter()
        jobs.append(service.submit_transport(spec))
        submit_seconds.append(time.perf_counter() - start)
    results = service.gather(jobs, timeout=600)
    return submit_seconds, results


def _journal_run(grid, velocity, movings, journal_dir):
    reset_plan_pool()
    start = time.perf_counter()
    with RegistrationService(
        num_workers=1, max_batch=MAX_BATCH, journal_dir=journal_dir
    ) as service:
        submit_seconds, results = _burst(service, grid, velocity, movings)
        journal_stats = service.journal.stats() if service.journal else None
    wall = time.perf_counter() - start
    return {
        "submit_seconds_total": sum(submit_seconds),
        "submit_seconds_max": max(submit_seconds),
        "wall_seconds": wall,
        "results": results,
        "journal": journal_stats,
    }


def test_bench_journal_overhead(record_text, record_json, tmp_path):
    """The fsync'd journal must cost < 10 % of the in-memory burst wall."""
    grid, velocity, movings = _transport_workload()

    # warm the plan pool once so neither measured run pays the cold build
    _journal_run(grid, velocity, movings, journal_dir=None)

    memory = _journal_run(grid, velocity, movings, journal_dir=None)
    journaled = _journal_run(
        grid, velocity, movings, journal_dir=tmp_path / "journal"
    )

    bitwise_equal = all(
        np.array_equal(expected, got)
        for expected, got in zip(memory["results"], journaled["results"])
    )
    submit_overhead = (
        journaled["submit_seconds_total"] - memory["submit_seconds_total"]
    )
    overhead_ratio = submit_overhead / memory["wall_seconds"]

    def _public(section):
        return {key: value for key, value in section.items() if key != "results"}

    payload = {
        "grid": f"{N}^3",
        "num_jobs": NUM_JOBS,
        "num_time_steps": JOURNAL_PHASE_STEPS,
        "fsync_on_commit": True,
        "in_memory": _public(memory),
        "journaled": _public(journaled),
        "submit_overhead_seconds": submit_overhead,
        "submit_overhead_ratio_of_wall": overhead_ratio,
        "bitwise_equal": bitwise_equal,
        "acceptance": {
            "overhead_ratio_lt_10_percent": overhead_ratio < 0.10,
            "bitwise_equal": bitwise_equal,
        },
    }
    record_json("service_journal_overhead", payload)

    per_submit_us = journaled["submit_seconds_total"] / NUM_JOBS * 1e6
    record_text(
        "service_journal_overhead",
        "\n".join(
            [
                f"journal overhead: {NUM_JOBS} transport jobs at {N}^3, "
                f"nt={JOURNAL_PHASE_STEPS}, fsync on commit",
                "",
                f"  in-memory : submits {memory['submit_seconds_total'] * 1e3:8.3f} ms, "
                f"burst wall {memory['wall_seconds']:7.3f} s",
                f"  journaled : submits {journaled['submit_seconds_total'] * 1e3:8.3f} ms "
                f"({per_submit_us:,.0f} us/job), "
                f"burst wall {journaled['wall_seconds']:7.3f} s, "
                f"{journaled['journal']['bytes']:,} journal bytes",
                f"  submit-path overhead: {submit_overhead * 1e3:8.3f} ms "
                f"= {overhead_ratio:.1%} of the in-memory wall (pin: < 10%)",
                f"  results bitwise equal: {bitwise_equal}",
            ]
        ),
    )

    # durability is structural: assert it unconditionally
    assert bitwise_equal, "journaled submissions changed the results"
    assert journaled["journal"]["bytes"] > 0, "nothing was journaled"

    # the wall-clock pin; REPRO_BENCH_NONSTRICT=1 downgrades to a skip on
    # noisy shared runners
    if overhead_ratio >= 0.10:
        message = (
            f"journal submit overhead {overhead_ratio:.1%} of the in-memory "
            f"wall exceeds the 10% pin: {payload}"
        )
        if os.environ.get("REPRO_BENCH_NONSTRICT"):
            pytest.skip(message)
        raise AssertionError(message)
