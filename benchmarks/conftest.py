"""Shared fixtures and helpers for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper's
evaluation section (see DESIGN.md for the experiment index).  The harness

* runs the *measured* part (real solves at laptop-scale resolution),
* produces the *modeled* rows for the paper's node counts via the
  calibrated performance model,
* prints the paper's reference row next to the reproduced row, and
* writes the formatted comparison to ``benchmarks/results/<name>.txt`` so
  EXPERIMENTS.md can reference the artifacts.  Machine-readable twins go
  to ``benchmarks/results/<name>.json`` (the ``record_json`` fixture), so
  the perf trajectory can be tracked across PRs without parsing tables.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path

import pytest

#: Name and version of the machine-readable benchmark artifact envelope;
#: every ``record_json`` document carries it so collectors can dispatch on
#: the schema without knowing the individual bench payloads.
BENCH_SCHEMA = "repro.bench-result"
BENCH_SCHEMA_VERSION = 1

RESULTS_DIR = Path(__file__).parent / "results"


def _coerce(value):
    """JSON fallback for numpy scalars and other non-native payload values."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record_text(results_dir):
    """Write a text artifact into benchmarks/results and echo it to stdout."""

    def _write(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{'=' * 78}\n{name}\n{'=' * 78}\n{text}\n")
        return path

    return _write


@pytest.fixture(scope="session")
def record_json(results_dir):
    """Write a machine-readable artifact into benchmarks/results.

    The JSON twin of ``record_text``: one document per benchmark, stable
    key order, so successive PRs can diff the perf trajectory directly.
    Every document is wrapped in the ``repro.bench-result`` envelope
    (schema, bench name, UTC timestamp); the payload must not collide with
    the envelope keys.
    """

    def _write(name: str, payload: dict) -> Path:
        envelope = {
            "schema": BENCH_SCHEMA,
            "schema_version": BENCH_SCHEMA_VERSION,
            "bench": name,
            "timestamp": datetime.now(timezone.utc).isoformat(),
        }
        collisions = sorted(envelope.keys() & payload.keys())
        if collisions:
            raise ValueError(
                f"bench payload {name!r} collides with envelope keys: {collisions}"
            )
        document = {**envelope, **payload}
        path = results_dir / f"{name}.json"
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True, default=_coerce) + "\n"
        )
        print(f"json artifact written to {path}")
        return path

    return _write


@pytest.fixture(scope="session")
def measured_synthetic_counts():
    """Measured iteration counts of the scalability setup (2 GN iterations).

    Shared by the Table I/II/IV benches so the expensive solve runs once per
    session.
    """
    from repro.analysis.experiments import measure_solver_iterations

    return measure_solver_iterations(resolution=24, num_newton_iterations=2)


@pytest.fixture(scope="session")
def measured_incompressible_counts():
    from repro.analysis.experiments import measure_solver_iterations

    return measure_solver_iterations(
        resolution=24, num_newton_iterations=2, incompressible=True
    )
