"""Table IV — strong scaling on the brain images (runs #25-#29).

The paper registers the NIREP na01/na02 pair (256 x 300 x 256) with
beta = 1e-2 and two Newton iterations, from 1 task to 256 tasks on
Maverick, and reports a two-orders-of-magnitude reduction in wall-clock
time.  Here the algorithmic work is measured on the brain-phantom pair
(the NIREP substitute, see DESIGN.md) at reduced resolution and the
paper-scale rows come from the calibrated performance model.
"""

from repro.analysis.experiments import reproduce_scaling_table
from repro.analysis.paper_tables import TABLE_IV
from repro.analysis.reporting import format_breakdown_table, format_rows
from repro.core.optim.gauss_newton import SolverOptions
from repro.core.registration import RegistrationSolver
from repro.data.brain import brain_registration_pair


def test_table4_rows(benchmark, record_text, record_json, measured_synthetic_counts):
    counts = measured_synthetic_counts

    def build():
        return reproduce_scaling_table(
            "IV",
            num_newton_iterations=2,
            num_hessian_matvecs=max(counts["hessian_matvecs"], 1),
        )

    entries = benchmark.pedantic(build, rounds=1, iterations=1)
    record_text(
        "table4_brain_strong_scaling",
        format_breakdown_table(
            entries, title="Table IV (brain, 256x300x256, Maverick): paper vs model"
        ),
    )
    record_json("table4_brain_strong_scaling", {"entries": entries})
    assert len(entries) == 2 * len(TABLE_IV)
    model = [e for e in entries if e["source"] == "model"]
    # the paper's headline: going from 1 task to 256 tasks cuts the wall-clock
    # time by about two orders of magnitude
    speedup = model[0]["time_to_solution"] / model[-1]["time_to_solution"]
    assert speedup > 30.0


def test_table4_brain_phantom_registration_measured(benchmark, record_text, record_json):
    """Measured registration of the multi-subject brain phantom (2 GN iterations,
    beta = 1e-2, the setup of the paper's scalability runs)."""
    pair = brain_registration_pair(base_resolution=24, seed=42)

    def run():
        options = SolverOptions(
            gradient_tolerance=1e-2, max_newton_iterations=2, max_krylov_iterations=50
        )
        solver = RegistrationSolver(beta=1e-2, options=options)
        return solver.run(pair.template, pair.reference, grid=pair.grid)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = result.summary()
    summary["grid"] = "x".join(map(str, pair.grid.shape))
    record_text(
        "table4_brain_measured",
        format_rows([summary], title="Brain-phantom registration, 2 GN iterations (measured)"),
    )
    record_json("table4_brain_measured", {"summary": summary})
    assert summary["residual_after"] < summary["residual_before"]
    assert summary["det_grad_min"] > 0.0
