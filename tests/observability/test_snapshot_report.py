"""Tests for the snapshot document, its validators and the phase table."""

import pytest

from repro.observability import (
    SNAPSHOT_SCHEMA,
    SNAPSHOT_SCHEMA_VERSION,
    enable_tracing,
    format_phase_table,
    get_trace_recorder,
    snapshot,
    trace_span,
    validate_chrome_trace,
    validate_snapshot,
)


class TestSnapshot:
    def test_snapshot_is_versioned_and_valid(self):
        document = snapshot()
        assert document["schema"] == SNAPSHOT_SCHEMA
        assert document["schema_version"] == SNAPSHOT_SCHEMA_VERSION
        validate_snapshot(document)

    def test_snapshot_reflects_recorded_spans(self):
        enable_tracing()
        with trace_span("phase.a", count=3):
            pass
        document = snapshot()
        assert document["trace"]["enabled"] is True
        assert document["trace"]["spans"] == 1
        assert document["trace"]["span_counts"] == {"phase.a": 3}
        assert document["trace"]["span_durations_seconds"]["phase.a"] >= 0.0

    def test_snapshot_reflects_pool_activity(self, plan_pool):
        plan_pool.get(("snapshot-test", 1), lambda: object(), nbytes=lambda v: 64)
        plan_pool.get(("snapshot-test", 1), lambda: object(), nbytes=lambda v: 64)
        document = snapshot()
        assert document["plan_pool"]["misses"] >= 1
        assert document["plan_pool"]["hits"] >= 1
        assert "snapshot-test" in document["plan_pool_by_tag"]

    def test_snapshot_is_json_ready(self):
        import json

        enable_tracing()
        with trace_span("phase.a"):
            pass
        text = json.dumps(snapshot(), sort_keys=True)
        validate_snapshot(json.loads(text))


class TestValidators:
    def test_validate_snapshot_rejects_non_dict(self):
        with pytest.raises(ValueError, match="expected a dict"):
            validate_snapshot([])

    def test_validate_snapshot_rejects_wrong_schema(self):
        document = snapshot()
        document["schema"] = "something.else"
        with pytest.raises(ValueError, match="schema must be"):
            validate_snapshot(document)

    def test_validate_snapshot_rejects_missing_block(self):
        document = snapshot()
        del document["plan_pool"]
        with pytest.raises(ValueError, match="plan_pool"):
            validate_snapshot(document)

    def test_validate_chrome_trace_rejects_missing_events(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})

    def test_validate_chrome_trace_rejects_mistyped_event(self):
        bad = {"traceEvents": [{"name": "a", "ph": "X", "ts": "soon"}]}
        with pytest.raises(ValueError, match="ts"):
            validate_chrome_trace(bad)


class TestPhaseTable:
    def test_empty_without_spans(self):
        get_trace_recorder().clear()
        assert format_phase_table() == ""

    def test_renders_one_row_per_phase(self):
        enable_tracing()
        with trace_span("phase.outer"):
            with trace_span("phase.inner", count=4):
                pass
        table = format_phase_table()
        lines = table.splitlines()
        assert lines[0].split() == ["phase", "spans", "count", "total_s", "max_s"]
        assert len(lines) == 3
        by_name = {line.split()[0]: line.split() for line in lines[1:]}
        assert by_name["phase.outer"][1:3] == ["1", "1"]
        assert by_name["phase.inner"][1:3] == ["1", "4"]
