"""Tests for the metrics registry: families, labels, collectors."""

import threading

import pytest

from repro.observability.metrics import (
    MetricsRegistry,
    get_metrics_registry,
)


@pytest.fixture()
def registry():
    """A private registry so tests never disturb the process-wide one."""
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_collect(self, registry):
        counter = registry.counter("requests", "total requests")
        counter.inc()
        counter.inc(2.0)
        assert registry.collect() == {"requests": {"": 3.0}}

    def test_labelled_children_are_independent(self, registry):
        counter = registry.counter("fft", "transforms")
        counter.inc(direction="forward")
        counter.inc(3, direction="backward")
        counter.inc(direction="forward")
        assert registry.collect()["fft"] == {
            "direction=backward": 3.0,
            "direction=forward": 2.0,
        }

    def test_bound_child_is_cached(self, registry):
        counter = registry.counter("c")
        assert counter.labels(a=1) is counter.labels(a=1)
        assert counter.labels(a=1) is not counter.labels(a=2)

    def test_label_key_order_is_canonical(self, registry):
        counter = registry.counter("c")
        counter.labels(b=2, a=1).inc()
        counter.labels(a=1, b=2).inc()
        assert registry.collect()["c"] == {"a=1,b=2": 2.0}


class TestGaugeAndHistogram:
    def test_gauge_set_inc_dec(self, registry):
        gauge = registry.gauge("pool.bytes")
        child = gauge.labels()
        child.set(100.0)
        child.inc(10.0)
        child.dec(30.0)
        assert registry.collect()["pool.bytes"][""] == 80.0

    def test_histogram_aggregates(self, registry):
        histogram = registry.histogram("latency")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        stats = registry.collect()["latency"][""]
        assert stats == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0}


class TestRegistry:
    def test_create_or_get_returns_same_family(self, registry):
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_raises(self, registry):
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("x")

    def test_describe(self, registry):
        registry.counter("a", "first")
        registry.histogram("b", "second")
        assert registry.describe() == {
            "a": {"kind": "counter", "description": "first"},
            "b": {"kind": "histogram", "description": "second"},
        }

    def test_collector_merges_at_collect_time(self, registry):
        state = {"hits": 0}
        registry.register_collector(
            "pool", lambda: {"pool.hits": {"": state["hits"]}}
        )
        state["hits"] = 5
        assert registry.collect()["pool.hits"][""] == 5

    def test_collector_reregistration_replaces(self, registry):
        registry.register_collector("src", lambda: {"m": {"": 1}})
        registry.register_collector("src", lambda: {"m": {"": 2}})
        assert registry.collect()["m"][""] == 2
        assert registry.collector_names() == ["src"]

    def test_empty_families_are_omitted(self, registry):
        registry.counter("never.incremented")
        assert registry.collect() == {}

    def test_concurrent_increments_are_lossless(self, registry):
        counter = registry.counter("c").labels()

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 4000.0


class TestProcessRegistry:
    def test_kernel_frontends_registered_their_collectors(self):
        # importing the kernel layers registers the pull collectors for the
        # plan pool, field sources and layout decisions
        import repro.runtime.layout  # noqa: F401
        import repro.runtime.plan_pool  # noqa: F401
        import repro.transport.kernels  # noqa: F401

        names = get_metrics_registry().collector_names()
        assert "plan_pool" in names
        assert "field_sources" in names
        assert "layout_decisions" in names

    def test_push_metrics_flow_into_the_registry(self, small_grid, smooth_field):
        from repro.spectral.fft import FourierTransform

        registry = get_metrics_registry()

        def forward_total():
            series = registry.collect().get("fft.transforms", {})
            return series.get("direction=forward", 0.0)

        before = forward_total()
        FourierTransform(small_grid).forward(smooth_field)
        assert forward_total() == before + 1
