"""Tests for the tracing core: spans, nesting, counts, env knobs, export."""

import json
import threading

import pytest

from repro.observability.trace import (
    TRACE_ENV_VAR,
    TRACE_OUT_ENV_VAR,
    TraceRecorder,
    TraceSpan,
    chrome_trace_document,
    disable_tracing,
    enable_tracing,
    env_trace_enabled,
    env_trace_out,
    get_trace_recorder,
    trace_span,
    tracing_enabled,
    write_chrome_trace,
)
from repro.observability.snapshot import validate_chrome_trace


@pytest.fixture()
def recorder():
    """Tracing on, with a clean process-wide recorder."""
    rec = get_trace_recorder()
    rec.clear()
    enable_tracing()
    yield rec
    disable_tracing()
    rec.clear()


class TestDisabledPath:
    def test_disabled_by_default_in_tests(self):
        assert not tracing_enabled()

    def test_disabled_span_is_shared_noop(self):
        rec = get_trace_recorder()
        before = len(rec)
        a = trace_span("x", foo=1)
        b = trace_span("y")
        assert a is b  # one shared singleton, no allocation per call
        with a:
            a.set_attr("k", "v")
            a.set_count(7)
        assert len(rec) == before

    def test_enable_disable_round_trip(self):
        enable_tracing()
        assert tracing_enabled()
        disable_tracing()
        assert not tracing_enabled()


class TestSpanRecording:
    def test_span_records_name_duration_and_attrs(self, recorder):
        with trace_span("solve", shape=[8, 8, 8]):
            pass
        (span,) = recorder.spans()
        assert span.name == "solve"
        assert span.duration >= 0.0
        assert span.attrs == {"shape": [8, 8, 8]}
        assert span.count == 1
        assert span.thread_id == threading.get_ident()

    def test_nesting_tracks_parent_ids(self, recorder):
        with trace_span("outer"):
            with trace_span("inner"):
                pass
            with trace_span("inner"):
                pass
        spans = {span.span_id: span for span in recorder.spans()}
        outer = next(s for s in spans.values() if s.name == "outer")
        inners = [s for s in spans.values() if s.name == "inner"]
        assert outer.parent_id is None
        assert all(s.parent_id == outer.span_id for s in inners)

    def test_count_and_midflight_attrs(self, recorder):
        with trace_span("batch", count=4) as span:
            span.set_attr("bytes", 123)
            span.set_count(8)
        (span,) = recorder.spans()
        assert span.count == 8
        assert span.attrs["bytes"] == 123

    def test_span_counts_sum_count_fields(self, recorder):
        with trace_span("fft", count=3):
            pass
        with trace_span("fft", count=2):
            pass
        with trace_span("other"):
            pass
        counts = recorder.span_counts()
        assert counts == {"fft": 5, "other": 1}

    def test_span_recorded_when_body_raises(self, recorder):
        with pytest.raises(RuntimeError):
            with trace_span("failing"):
                raise RuntimeError("boom")
        (span,) = recorder.spans()
        assert span.name == "failing"

    def test_threaded_spans_nest_per_thread(self, recorder):
        def worker():
            with trace_span("thread.outer"):
                with trace_span("thread.inner"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(3)]
        with trace_span("main.outer"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        spans = recorder.spans()
        inners = [s for s in spans if s.name == "thread.inner"]
        outers = {s.span_id: s for s in spans if s.name == "thread.outer"}
        assert len(inners) == 3
        for inner in inners:
            # each inner nests under the outer of its *own* thread
            assert inner.parent_id in outers
            assert outers[inner.parent_id].thread_id == inner.thread_id

    def test_summary_sorted_by_total_time(self, recorder):
        recorder.record(TraceSpan("slow", 0.0, 2.0, 1, 1, None))
        recorder.record(TraceSpan("fast", 0.0, 0.5, 1, 2, None))
        rows = recorder.summary()
        assert [row["name"] for row in rows] == ["slow", "fast"]

    def test_clear_resets_epoch_and_ids(self):
        rec = TraceRecorder()
        rec.record(TraceSpan("a", 0.0, 1.0, 1, rec.next_span_id(), None))
        rec.clear()
        assert len(rec) == 0
        assert rec.next_span_id() == 1


class TestEnvKnobs:
    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("false", False), ("no", False), ("off", False), ("", False),
    ])
    def test_env_trace_enabled_values(self, value, expected):
        assert env_trace_enabled({TRACE_ENV_VAR: value}) is expected

    def test_env_trace_enabled_unset(self):
        assert env_trace_enabled({}) is None

    def test_env_trace_enabled_malformed_names_the_variable(self):
        with pytest.raises(ValueError, match=TRACE_ENV_VAR):
            env_trace_enabled({TRACE_ENV_VAR: "maybe"})

    def test_env_trace_out(self):
        assert env_trace_out({}) is None
        assert env_trace_out({TRACE_OUT_ENV_VAR: " "}) is None
        assert env_trace_out({TRACE_OUT_ENV_VAR: "run.json"}) == "run.json"


class TestChromeExport:
    def test_document_is_perfetto_shaped(self, recorder):
        with trace_span("a", count=3, tag="t"):
            with trace_span("b"):
                pass
        document = chrome_trace_document(recorder)
        validate_chrome_trace(document)
        events = document["traceEvents"]
        assert len(events) == 2
        by_name = {event["name"]: event for event in events}
        assert by_name["a"]["ph"] == "X"
        assert by_name["a"]["args"]["count"] == 3  # batched span carries count
        assert by_name["a"]["args"]["tag"] == "t"
        assert "count" not in by_name["b"]["args"]  # count == 1 stays implicit
        assert by_name["a"]["dur"] >= by_name["b"]["dur"]

    def test_write_chrome_trace_round_trips(self, recorder, tmp_path):
        with trace_span("a"):
            pass
        path = tmp_path / "run.trace.json"
        write_chrome_trace(str(path))
        document = json.loads(path.read_text())
        validate_chrome_trace(document)
        assert document["traceEvents"][0]["name"] == "a"
