"""Tests for repro.analysis: paper tables, reporting, experiment drivers."""

import pytest

from repro.analysis.experiments import (
    measure_solver_iterations,
    reproduce_scaling_table,
    reproduce_synthetic_problem,
)
from repro.analysis.paper_tables import (
    TABLE_I,
    TABLE_II,
    TABLE_III,
    TABLE_IV,
    TABLE_V,
    paper_table,
    strong_scaling_groups,
)
from repro.analysis.reporting import format_breakdown_table, format_rows


class TestPaperTables:
    def test_row_counts_match_paper(self):
        assert len(TABLE_I) == 13   # runs #1-#13
        assert len(TABLE_II) == 6   # runs #14-#19
        assert len(TABLE_III) == 5  # runs #20-#24
        assert len(TABLE_IV) == 5   # runs #25-#29
        assert len(TABLE_V) == 3    # runs #30-#32

    def test_run_ids_are_unique_and_sequential(self):
        ids = [run.run_id for run in TABLE_I + TABLE_II + TABLE_III + TABLE_IV]
        assert ids == list(range(1, 30))

    def test_lookup_by_name(self):
        assert paper_table("i") == TABLE_I
        assert paper_table("IV") == TABLE_IV
        with pytest.raises(ValueError):
            paper_table("VI")

    def test_headline_result(self):
        # the paper's headline: 256^3 registration in under five seconds on 64 nodes
        run10 = next(r for r in TABLE_I if r.run_id == 10)
        assert run10.grid == (256, 256, 256)
        assert run10.nodes == 64
        assert run10.time_to_solution < 5.0

    def test_kernel_sum_below_time_to_solution(self):
        for run in TABLE_I + TABLE_II + TABLE_IV:
            assert run.kernel_sum <= run.time_to_solution * 1.05

    def test_strong_scaling_groups(self):
        groups = strong_scaling_groups(TABLE_I)
        assert set(groups) == {(64,) * 3, (128,) * 3, (256,) * 3, (512,) * 3}
        for rows in groups.values():
            tasks = [r.tasks for r in rows]
            assert tasks == sorted(tasks)
            # within each group the time decreases as tasks increase
            times = [r.time_to_solution for r in rows]
            assert all(a > b for a, b in zip(times, times[1:]))

    def test_table5_growth(self):
        matvecs = [TABLE_V[b][0] for b in sorted(TABLE_V, reverse=True)]
        assert matvecs == sorted(matvecs)
        assert TABLE_V[1e-5][2] == pytest.approx(35.0)

    def test_incompressible_flag(self):
        assert all(r.incompressible for r in TABLE_III)
        assert not any(r.incompressible for r in TABLE_I)


class TestReporting:
    def test_format_rows_alignment_and_title(self):
        text = format_rows(
            [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.000123}], title="demo table"
        )
        lines = text.splitlines()
        assert lines[0] == "demo table"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_rows_empty(self):
        assert "(empty)" in format_rows([], title="nothing")

    def test_format_value_styles(self):
        text = format_rows([{"x": None, "flag": True, "big": 12345.0, "tiny": 1e-6}])
        assert "-" in text
        assert "yes" in text
        assert "e" in text.lower()

    def test_format_breakdown_table(self):
        entries = reproduce_scaling_table("I")[:4]
        text = format_breakdown_table(entries, title="Table I excerpt")
        assert "time_to_solution" in text
        assert "paper" in text and "model" in text


class TestExperimentDrivers:
    def test_reproduce_scaling_table_structure(self):
        entries = reproduce_scaling_table("I", num_hessian_matvecs=2)
        assert len(entries) == 2 * len(TABLE_I)
        paper_entries = [e for e in entries if e["source"] == "paper"]
        model_entries = [e for e in entries if e["source"] == "model"]
        assert len(paper_entries) == len(model_entries)
        for entry in model_entries:
            assert entry["time_to_solution"] > 0
            assert entry["interp_execution"] > 0

    def test_model_projection_shape_against_paper(self):
        """Shape check: modeled times within a factor of ~3 of the paper for
        the Maverick rows, and strong scaling preserved (more tasks -> faster)."""
        entries = reproduce_scaling_table("I", num_hessian_matvecs=2)
        by_run = {}
        for entry in entries:
            by_run.setdefault(entry["label"], {})[entry["source"]] = entry
        for label, pair in by_run.items():
            ratio = pair["model"]["time_to_solution"] / pair["paper"]["time_to_solution"]
            assert 0.2 < ratio < 3.5, label

    def test_measure_solver_iterations(self):
        counts = measure_solver_iterations(resolution=12, num_newton_iterations=2)
        assert counts["newton_iterations"] <= 2
        assert counts["hessian_matvecs"] >= 1
        assert counts["relative_residual"] < 1.0
        assert counts["source"] == "measured"

    def test_reproduce_synthetic_problem_small(self):
        summary = reproduce_synthetic_problem(resolution=12, max_newton_iterations=4)
        assert summary["relative_residual"] < 1.0
        assert summary["det_grad_min"] > 0.0
        assert summary["source"] == "measured"
