"""Tests for repro.utils.timing."""

import time

import pytest

from repro.utils.timing import (
    FFT_COMMUNICATION,
    FFT_EXECUTION,
    INTERP_COMMUNICATION,
    INTERP_EXECUTION,
    TIME_TO_SOLUTION,
    Timer,
    TimingRegistry,
)


class TestTimer:
    def test_accumulates_elapsed_time(self):
        timer = Timer("work")
        timer.start()
        time.sleep(0.01)
        elapsed = timer.stop()
        assert elapsed > 0.0
        assert timer.total == pytest.approx(elapsed)
        assert timer.calls == 1

    def test_multiple_cycles_accumulate(self):
        timer = Timer("work")
        for _ in range(3):
            timer.start()
            timer.stop()
        assert timer.calls == 3
        assert timer.total >= 0.0

    def test_double_start_raises(self):
        timer = Timer("work")
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer("work").stop()

    def test_mean_is_zero_without_calls(self):
        assert Timer("idle").mean == 0.0

    def test_running_flag(self):
        timer = Timer("x")
        assert not timer.running
        timer.start()
        assert timer.running
        timer.stop()
        assert not timer.running


class TestTimingRegistry:
    def test_section_context_manager(self):
        registry = TimingRegistry()
        with registry.section("fft"):
            time.sleep(0.005)
        assert registry.total("fft") > 0.0
        assert registry.timer("fft").calls == 1

    def test_unknown_section_total_is_zero(self):
        assert TimingRegistry().total("missing") == 0.0

    def test_as_dict_snapshot(self):
        registry = TimingRegistry()
        with registry.section("a"):
            pass
        with registry.section("b"):
            pass
        snapshot = registry.as_dict()
        assert set(snapshot) == {"a", "b"}

    def test_reset_clears_everything(self):
        registry = TimingRegistry()
        with registry.section("a"):
            pass
        registry.reset()
        assert registry.as_dict() == {}

    def test_merge_accumulates(self):
        a = TimingRegistry()
        b = TimingRegistry()
        with a.section("fft"):
            time.sleep(0.002)
        with b.section("fft"):
            time.sleep(0.002)
        with b.section("interp"):
            pass
        a.merge(b)
        assert a.timer("fft").calls == 2
        assert "interp" in a.timers

    def test_paper_breakdown_has_all_columns(self):
        registry = TimingRegistry()
        for name in (
            TIME_TO_SOLUTION,
            FFT_COMMUNICATION,
            FFT_EXECUTION,
            INTERP_COMMUNICATION,
            INTERP_EXECUTION,
        ):
            with registry.section(name):
                pass
        breakdown = registry.paper_breakdown()
        assert set(breakdown) == {
            "time_to_solution",
            "fft_communication",
            "fft_execution",
            "interp_communication",
            "interp_execution",
        }
        assert all(value >= 0.0 for value in breakdown.values())
