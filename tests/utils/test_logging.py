"""Tests for repro.utils.logging."""

import logging

import pytest

from repro.utils.logging import get_logger, set_verbosity


class TestGetLogger:
    def test_logger_is_namespaced_under_repro(self):
        logger = get_logger("core.optim")
        assert logger.name == "repro.core.optim"

    def test_existing_prefix_is_not_duplicated(self):
        logger = get_logger("repro.spectral")
        assert logger.name == "repro.spectral"

    def test_root_logger_has_handler(self):
        get_logger("anything")
        root = logging.getLogger("repro")
        assert root.handlers


class TestSetVerbosity:
    def test_accepts_string_levels(self):
        set_verbosity("debug")
        assert logging.getLogger("repro").level == logging.DEBUG
        set_verbosity("quiet")
        assert logging.getLogger("repro").level == logging.WARNING

    def test_accepts_numeric_level(self):
        set_verbosity(logging.INFO)
        assert logging.getLogger("repro").level == logging.INFO
        set_verbosity("quiet")

    def test_rejects_unknown_string(self):
        with pytest.raises(ValueError):
            set_verbosity("shout")

    def test_info_messages_propagate(self, caplog):
        set_verbosity("info")
        logger = get_logger("test.module")
        with caplog.at_level(logging.INFO, logger="repro"):
            logger.info("hello from the solver")
        assert any("hello from the solver" in rec.message for rec in caplog.records)
        set_verbosity("quiet")
