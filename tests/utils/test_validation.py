"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_positive,
    check_positive_int,
    check_probability,
    check_same_shape,
    check_shape_3d,
    check_velocity_shape,
)


class TestCheckPositive:
    def test_accepts_positive_float(self):
        assert check_positive(2.5, "x") == 2.5

    def test_accepts_integer_value(self):
        assert check_positive(3, "x") == 3.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, "beta")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_positive(float("inf"), "x")


class TestCheckPositiveInt:
    def test_accepts_positive_int(self):
        assert check_positive_int(4, "n") == 4

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(7), "n") == 7

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "n")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-3, "n")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, "n")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "n")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.1, 1.1, 5.0])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")


class TestCheckShape3d:
    def test_accepts_tuple(self):
        assert check_shape_3d((4, 6, 8)) == (4, 6, 8)

    def test_accepts_list(self):
        assert check_shape_3d([16, 16, 16]) == (16, 16, 16)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            check_shape_3d((4, 4))

    def test_rejects_too_small_entries(self):
        with pytest.raises(ValueError):
            check_shape_3d((4, 1, 4))


class TestCheckSameShape:
    def test_accepts_matching(self):
        a = np.zeros((3, 4))
        check_same_shape(a, np.ones((3, 4)))

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError, match="shapes"):
            check_same_shape(np.zeros((3, 4)), np.zeros((4, 3)))


class TestCheckVelocityShape:
    def test_accepts_correct_shape(self):
        v = np.zeros((3, 4, 5, 6))
        out = check_velocity_shape(v, (4, 5, 6))
        assert out.shape == (3, 4, 5, 6)

    def test_rejects_scalar_field(self):
        with pytest.raises(ValueError):
            check_velocity_shape(np.zeros((4, 5, 6)), (4, 5, 6))

    def test_rejects_wrong_grid(self):
        with pytest.raises(ValueError):
            check_velocity_shape(np.zeros((3, 4, 5, 6)), (4, 5, 7))
