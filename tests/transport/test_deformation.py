"""Tests for repro.transport.deformation."""

import numpy as np
import pytest

from repro.spectral.grid import Grid
from repro.spectral.operators import SpectralOperators
from repro.transport.deformation import DeformationMap, deformation_gradient_determinant

from tests.fixtures import smooth_scalar_field, smooth_vector_field


@pytest.fixture(scope="module")
def grid():
    return Grid((16, 16, 16))


@pytest.fixture(scope="module")
def ops(grid):
    return SpectralOperators(grid)


def solenoidal(grid, amplitude=0.5):
    x1, x2, x3 = grid.coordinates()
    return amplitude * np.stack(
        [np.sin(x2) * np.sin(x3), np.sin(x1) * np.sin(x3), np.sin(x1) * np.sin(x2)], axis=0
    )


class TestDeterminantHelper:
    def test_zero_displacement_gives_unit_determinant(self, grid, ops):
        det = deformation_gradient_determinant(grid.zeros_vector(), ops)
        np.testing.assert_allclose(det, 1.0, atol=1e-12)

    def test_small_displacement_linearization(self, grid, ops):
        # det(I + grad u) ~ 1 + div u for small u
        u = 1e-3 * smooth_vector_field(grid, seed=1)
        det = deformation_gradient_determinant(u, ops)
        div_u = ops.divergence(u)
        np.testing.assert_allclose(det - 1.0, div_u, atol=1e-5)

    def test_validates_shape(self, grid, ops):
        with pytest.raises(ValueError):
            deformation_gradient_determinant(grid.zeros(), ops)


class TestDeformationMap:
    def test_zero_velocity_is_identity_map(self, grid):
        dmap = DeformationMap(grid, grid.zeros_vector())
        np.testing.assert_allclose(dmap.displacement(), 0.0, atol=1e-12)
        np.testing.assert_allclose(dmap.map(), grid.coordinate_stack(), atol=1e-12)
        np.testing.assert_allclose(dmap.determinant(), 1.0, atol=1e-12)
        assert dmap.is_diffeomorphic()

    def test_constant_velocity_translation(self):
        grid = Grid((16, 16, 16))
        v = grid.zeros_vector()
        v[0] = 0.3
        dmap = DeformationMap(grid, v, num_time_steps=4)
        u = dmap.displacement()
        np.testing.assert_allclose(u[0], -0.3, atol=1e-6)
        np.testing.assert_allclose(u[1], 0.0, atol=1e-8)
        np.testing.assert_allclose(dmap.determinant(), 1.0, atol=1e-6)

    def test_divergence_free_velocity_preserves_volume(self, grid):
        dmap = DeformationMap(grid, solenoidal(grid, 0.5), num_time_steps=8)
        det = dmap.determinant()
        np.testing.assert_allclose(det, 1.0, atol=5e-2)
        stats = dmap.determinant_statistics()
        assert stats["deviation_from_volume_preservation"] < 5e-2

    def test_smooth_velocity_yields_diffeomorphic_map(self, grid):
        dmap = DeformationMap(grid, 0.3 * smooth_vector_field(grid, seed=2), num_time_steps=4)
        assert dmap.is_diffeomorphic()
        stats = dmap.determinant_statistics()
        assert stats["fraction_nonpositive"] == 0.0
        assert stats["min"] > 0.0

    def test_warp_consistent_with_state_transport(self, grid):
        # rho_T(y1(x)) must match the solution of the state equation at t=1
        from repro.transport.solvers import TransportSolver

        velocity = 0.4 * smooth_vector_field(grid, seed=3)
        rho0 = 0.5 * (1.0 + np.tanh(smooth_scalar_field(grid, seed=4)))
        transport = TransportSolver(grid, num_time_steps=8)
        transported = transport.solve_state(transport.plan(velocity), rho0)[-1]

        dmap = DeformationMap(grid, velocity, num_time_steps=8)
        warped = dmap.warp(rho0)
        error = grid.norm(warped - transported) / max(grid.norm(transported), 1e-12)
        assert error < 5e-2

    def test_warp_validates_shape(self, grid):
        dmap = DeformationMap(grid, grid.zeros_vector())
        with pytest.raises(ValueError):
            dmap.warp(np.zeros((4, 4, 4)))

    def test_velocity_shape_validated(self, grid):
        with pytest.raises(ValueError):
            DeformationMap(grid, np.zeros(grid.shape))

    def test_displacement_is_cached(self, grid):
        dmap = DeformationMap(grid, 0.2 * smooth_vector_field(grid, seed=5))
        first = dmap.displacement()
        second = dmap.displacement()
        assert first is second


class TestClassification:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (-0.5, "non-diffeomorphic (folding)"),
            (0.0, "singular"),
            (0.5, "compression"),
            (1.0, "volume preserving"),
            (2.0, "expansion"),
        ],
    )
    def test_classify_determinant(self, value, expected):
        assert DeformationMap.classify_determinant(value) == expected
