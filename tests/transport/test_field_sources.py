"""Tests of the out-of-core field pipeline (:mod:`repro.transport.sources`).

Three layers of guarantees:

* a shared **conformance suite** every registered source kind must pass —
  arbitrary plane subsets equal ``load_all()`` slices (Hypothesis), and
  gathers through any source are bitwise identical to the resident path on
  every plan layout and backend;
* the **wrapper semantics**: the pool-budgeted tile cache (warm re-gathers
  of the same file hit memory, ``field-tile`` tag accounting, budget-0 and
  eviction behavior) and the overlapped prefetcher (schedule consumption,
  out-of-order degradation, issued-ahead instrumentation);
* the **mode machinery**: ``REPRO_FIELD_SOURCE`` / ``--field-source``
  resolution and the forced-memmap path staying bitwise identical.
"""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.plan_pool import configure_plan_pool, get_plan_pool
from repro.spectral.backends import BackendUnavailableError
from repro.transport.interpolation import PeriodicInterpolator
from repro.transport.kernels import (
    PLAN_LAYOUTS,
    ArrayFieldSource,
    FieldSource,
    build_stencil_plan,
    chunk_plane_schedule,
    execute_stencil_plan,
    field_source_log,
)
from repro.transport.sources import (
    FIELD_SOURCE_ENV_VAR,
    FIELD_SOURCE_MODES,
    Hdf5FieldSource,
    MemmapFieldSource,
    PrefetchingFieldSource,
    SpooledMemmapFieldSource,
    TileCachingFieldSource,
    default_field_source,
    plan_scoped_source,
    set_default_field_source,
)

from tests.fixtures import interp_backend_params, make_grid, random_points

BACKENDS = interp_backend_params()

SHAPE = (12, 13, 14)
STACK = np.random.default_rng(7).standard_normal((2, *SHAPE))

SOURCE_NAMES = ("array", "memmap_npy", "memmap_npz", "spooled", "prefetching", "caching")


@pytest.fixture(scope="module")
def source_files(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("sources")
    npy = tmp / "stack.npy"
    npz = tmp / "stack.npz"
    np.save(npy, STACK)
    np.savez(npz, fields=STACK)
    return {"npy": npy, "npz": npz}


@pytest.fixture(scope="module")
def make_source(source_files):
    """Factory: a fresh source of the given kind over the module stack."""

    def build(name: str) -> FieldSource:
        if name == "array":
            return ArrayFieldSource(STACK)
        if name == "memmap_npy":
            return MemmapFieldSource.from_npy(source_files["npy"])
        if name == "memmap_npz":
            return MemmapFieldSource.from_npz(source_files["npz"], "fields")
        if name == "spooled":
            return SpooledMemmapFieldSource(STACK)
        if name == "prefetching":
            # empty schedule: every request degrades to a direct load,
            # which is exactly the conformance contract to verify
            return PrefetchingFieldSource(ArrayFieldSource(STACK), schedule=())
        if name == "caching":
            return TileCachingFieldSource(ArrayFieldSource(STACK))
        raise AssertionError(name)

    return build


@pytest.fixture(scope="module")
def grid():
    return make_grid(SHAPE)


@pytest.fixture(scope="module")
def points():
    return random_points(900, seed=6)


# --------------------------------------------------------------------------- #
# conformance suite: every source kind
# --------------------------------------------------------------------------- #
class TestSourceConformance:
    @pytest.mark.parametrize("name", SOURCE_NAMES)
    def test_shape_and_batch(self, name, make_source):
        source = make_source(name)
        assert tuple(source.shape) == SHAPE
        assert source.num_fields == 2
        assert isinstance(source, FieldSource)

    @pytest.mark.parametrize("name", SOURCE_NAMES)
    @given(
        planes=st.sets(st.integers(min_value=0, max_value=SHAPE[0] - 1), min_size=1)
    )
    @settings(max_examples=20, deadline=None)
    def test_any_plane_subset_equals_load_all_slice(self, name, make_source, planes):
        source = make_source(name)
        planes = np.array(sorted(planes))
        tile = source.load_planes(planes)
        assert tile.dtype == np.float64
        assert tile.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(tile, source.load_all()[:, planes])

    @pytest.mark.parametrize("name", SOURCE_NAMES)
    def test_load_all_matches_resident_stack(self, name, make_source):
        np.testing.assert_array_equal(
            make_source(name).load_all(), np.float64(STACK)
        )

    @pytest.mark.parametrize("name", SOURCE_NAMES)
    @pytest.mark.parametrize("layout", PLAN_LAYOUTS)
    def test_gather_matches_resident_every_layout(
        self, name, layout, make_source, grid, points
    ):
        coords = PeriodicInterpolator(grid, "catmull_rom").to_index_coordinates(points)
        plan = build_stencil_plan(grid.shape, coords, "catmull_rom", layout=layout)
        resident = execute_stencil_plan(
            np.ascontiguousarray(STACK.reshape(2, -1)), plan
        )
        tiled = execute_stencil_plan(make_source(name), plan)
        np.testing.assert_array_equal(tiled, resident)

    @pytest.mark.parametrize("name", SOURCE_NAMES)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backend_gathers_match_resident(
        self, name, backend, make_source, grid, points
    ):
        interp = PeriodicInterpolator(grid, "catmull_rom", backend=backend)
        plan = interp.plan(points)
        resident = interp.interpolate_many_planned(STACK, plan)
        tiled = interp.interpolate_many_planned(make_source(name), plan)
        np.testing.assert_array_equal(tiled, resident)

    @pytest.mark.parametrize("name", SOURCE_NAMES)
    def test_reset_stats_zeroes_counters(self, name, make_source):
        source = make_source(name)
        source.load_planes(np.array([0, 2]))
        source.reset_stats()
        assert all(value == 0 for value in source.stats().values())


# --------------------------------------------------------------------------- #
# fingerprints (tile-cache identity)
# --------------------------------------------------------------------------- #
class TestFingerprints:
    def test_memory_sources_are_distinct(self):
        a, b = ArrayFieldSource(STACK), ArrayFieldSource(STACK)
        assert a.fingerprint != b.fingerprint

    def test_file_identity_is_stable_across_reopens(self, source_files):
        a = MemmapFieldSource.from_npy(source_files["npy"])
        b = MemmapFieldSource.from_npy(source_files["npy"])
        assert a.fingerprint == b.fingerprint
        assert a.has_durable_fingerprint

    def test_file_identity_changes_with_content(self, tmp_path):
        path = tmp_path / "f.npy"
        np.save(path, STACK)
        before = MemmapFieldSource.from_npy(path).fingerprint
        np.save(path, STACK[:1])  # different size
        after = MemmapFieldSource.from_npy(path).fingerprint
        assert before != after

    def test_npz_members_are_distinct(self, tmp_path):
        path = tmp_path / "two.npz"
        np.savez(path, a=STACK, b=STACK)
        fa = MemmapFieldSource.from_npz(path, "a").fingerprint
        fb = MemmapFieldSource.from_npz(path, "b").fingerprint
        assert fa != fb

    def test_spooled_sources_are_ephemeral(self):
        source = SpooledMemmapFieldSource(STACK)
        assert source.out_of_core
        assert not source.has_durable_fingerprint


# --------------------------------------------------------------------------- #
# memmap leaf source
# --------------------------------------------------------------------------- #
class TestMemmapFieldSource:
    def test_bad_rank_rejected(self):
        with pytest.raises(ValueError, match="stacked"):
            MemmapFieldSource(np.zeros((4, 4)))

    def test_object_dtype_rejected(self):
        with pytest.raises(ValueError, match="numeric"):
            MemmapFieldSource(np.empty((1, 2, 2, 2), dtype=object))

    def test_complex_dtype_rejected(self):
        with pytest.raises(ValueError, match="numeric"):
            MemmapFieldSource(np.zeros((2, 2, 2), dtype=np.complex128))

    def test_compressed_npz_member_rejected_with_pointer(self, tmp_path):
        path = tmp_path / "compressed.npz"
        np.savez_compressed(path, fields=STACK)
        with pytest.raises(ValueError, match="compress=False"):
            MemmapFieldSource.from_npz(path, "fields")

    def test_missing_member_lists_available(self, tmp_path):
        path = tmp_path / "stack.npz"
        np.savez(path, fields=STACK)
        with pytest.raises(KeyError, match="fields"):
            MemmapFieldSource.from_npz(path, "nope")

    def test_tile_loads_stay_tile_sized(self, tmp_path):
        """Loading a 2-plane tile of a tall stack reads tile bytes, not the file."""
        tall = np.random.default_rng(1).standard_normal((1, 64, 8, 8))
        path = tmp_path / "tall.npy"
        np.save(path, tall)
        source = MemmapFieldSource.from_npy(path)
        tile = source.load_planes(np.array([3, 40]))
        assert source.bytes_loaded == tile.nbytes == 2 * 8 * 8 * 8
        assert source.peak_tile_bytes < tall.nbytes / 10

    def test_single_volume_promoted(self, tmp_path):
        path = tmp_path / "vol.npy"
        np.save(path, STACK[0])
        source = MemmapFieldSource.from_npy(path)
        assert source.num_fields == 1
        assert tuple(source.shape) == SHAPE


class TestHdf5FieldSource:
    def test_gated_cleanly_without_h5py(self):
        if importlib.util.find_spec("h5py") is not None:
            pytest.skip("h5py installed; the gate never fires")
        with pytest.raises(BackendUnavailableError, match="h5py"):
            Hdf5FieldSource("anything.h5")

    def test_roundtrip_with_h5py(self, tmp_path):
        h5py = pytest.importorskip("h5py")
        path = tmp_path / "fields.h5"
        with h5py.File(path, "w") as handle:
            handle.create_dataset("fields", data=STACK)
        with Hdf5FieldSource(path) as source:
            assert tuple(source.shape) == SHAPE
            assert source.num_fields == 2
            tile = source.load_planes(np.array([1, 5]))
            np.testing.assert_array_equal(tile, STACK[:, [1, 5]])
            assert source.has_durable_fingerprint


# --------------------------------------------------------------------------- #
# tile cache
# --------------------------------------------------------------------------- #
class TestTileCache:
    def test_repeated_tiles_hit(self):
        inner = ArrayFieldSource(STACK)
        cache = TileCachingFieldSource(inner)
        planes = np.array([0, 1, 2])
        first = cache.load_planes(planes)
        second = cache.load_planes(planes)
        np.testing.assert_array_equal(first, second)
        assert inner.loads == 1
        assert cache.tile_cache_misses == 1
        assert cache.tile_cache_hits == 1

    def test_warm_regather_of_same_file_hits_zero_disk_loads(
        self, source_files, grid, points
    ):
        """Re-opening the same volume (line search / Hessian matvec pattern)
        finds the previous gather's tiles warm in the pool."""
        coords = PeriodicInterpolator(grid, "catmull_rom").to_index_coordinates(points)
        plan = build_stencil_plan(grid.shape, coords, "catmull_rom")
        cold_source = MemmapFieldSource.from_npy(source_files["npy"])
        cold = execute_stencil_plan(cold_source, plan)
        assert cold_source.loads > 0

        warm_source = MemmapFieldSource.from_npy(source_files["npy"])
        warm = execute_stencil_plan(warm_source, plan)
        np.testing.assert_array_equal(warm, cold)
        assert warm_source.loads == 0  # cache hits only — no disk tiles

    def test_tiles_are_accounted_under_the_field_tile_tag(self, grid, points):
        coords = PeriodicInterpolator(grid, "catmull_rom").to_index_coordinates(points)
        plan = build_stencil_plan(grid.shape, coords, "catmull_rom")
        TileCachingFieldSource(ArrayFieldSource(STACK)).load_planes(np.array([0, 1]))
        tags = get_plan_pool().stats_by_tag()
        assert "field-tile" in tags
        assert tags["field-tile"].entries == 1
        assert tags["field-tile"].current_bytes == 2 * SHAPE[1] * SHAPE[2] * 2 * 8

    def test_zero_budget_disables_caching(self):
        budget = get_plan_pool().max_bytes
        try:
            configure_plan_pool(0)
            inner = ArrayFieldSource(STACK)
            cache = TileCachingFieldSource(inner)
            cache.load_planes(np.array([0]))
            cache.load_planes(np.array([0]))
            assert inner.loads == 2
            assert cache.tile_cache_hits == 0
        finally:
            configure_plan_pool(budget)

    def test_tile_bytes_compete_with_plans_under_one_budget(self):
        """A budget that fits only one tile evicts LRU across the shared pool."""
        tile_bytes = 2 * 1 * SHAPE[1] * SHAPE[2] * 8
        budget = get_plan_pool().max_bytes
        try:
            configure_plan_pool(tile_bytes)
            inner = ArrayFieldSource(STACK)
            cache = TileCachingFieldSource(inner)
            cache.load_planes(np.array([0]))
            cache.load_planes(np.array([1]))  # evicts the first tile
            cache.load_planes(np.array([0]))  # miss again
            assert inner.loads == 3
            assert get_plan_pool().stats.evictions >= 2
        finally:
            configure_plan_pool(budget)

    def test_log_aggregates_cache_traffic(self):
        before = field_source_log().snapshot()
        cache = TileCachingFieldSource(ArrayFieldSource(STACK))
        cache.load_planes(np.array([0]))
        cache.load_planes(np.array([0]))
        delta = field_source_log().snapshot() - before
        assert delta.tile_cache_misses == 1
        assert delta.tile_cache_hits == 1


# --------------------------------------------------------------------------- #
# overlapped prefetch
# --------------------------------------------------------------------------- #
class TestPrefetch:
    def _plan(self, grid, points, chunk=128):
        coords = PeriodicInterpolator(grid, "catmull_rom").to_index_coordinates(points)
        plan = build_stencil_plan(grid.shape, coords, "catmull_rom", layout="streaming")
        return plan, chunk_plane_schedule(grid.shape, plan, chunk)

    def test_schedule_matches_executor_requests(self, grid, points):
        """chunk_plane_schedule predicts exactly the tiles the executor loads."""
        plan, schedule = self._plan(grid, points)
        inner = ArrayFieldSource(STACK)
        execute_stencil_plan(inner, plan, chunk=128, workers=1)
        assert inner.loads == len(schedule)
        assert sum(len(planes) for _, planes in schedule) == inner.planes_loaded

    def test_in_order_consumption_prefetches_every_next_chunk(self, grid, points):
        plan, schedule = self._plan(grid, points)
        assert len(schedule) > 2
        inner = ArrayFieldSource(STACK)
        prefetcher = PrefetchingFieldSource(inner, schedule=schedule)
        for (_, planes) in schedule:
            tile = prefetcher.load_planes(np.array(planes))
            np.testing.assert_array_equal(tile, np.float64(STACK[:, list(planes)]))
        n = len(schedule)
        # first request has nothing in flight; every later one was issued
        # ahead while the previous chunk was still being served
        assert prefetcher.prefetch_misses == 1
        assert prefetcher.prefetch_hits == n - 1
        assert prefetcher.prefetch_issued == n - 1
        assert prefetcher.issued_ahead == n - 1

    def test_out_of_order_requests_degrade_gracefully(self, grid, points):
        plan, schedule = self._plan(grid, points)
        inner = ArrayFieldSource(STACK)
        prefetcher = PrefetchingFieldSource(inner, schedule=schedule)
        for (_, planes) in reversed(schedule):
            tile = prefetcher.load_planes(np.array(planes))
            np.testing.assert_array_equal(tile, np.float64(STACK[:, list(planes)]))
        assert prefetcher.prefetch_hits + prefetcher.prefetch_misses == len(schedule)

    def test_unscheduled_request_is_a_direct_load(self):
        prefetcher = PrefetchingFieldSource(ArrayFieldSource(STACK), schedule=((0, 1),))
        tile = prefetcher.load_planes(np.array([5, 7]))
        np.testing.assert_array_equal(tile, np.float64(STACK[:, [5, 7]]))
        assert prefetcher.prefetch_misses == 1
        assert prefetcher.prefetch_issued == 0

    def test_repeated_plane_tuples_consume_distinct_entries(self):
        """Consecutive chunks in one plane band request identical tuples."""
        schedule = ((0, 1), (0, 1), (0, 1))
        prefetcher = PrefetchingFieldSource(ArrayFieldSource(STACK), schedule=schedule)
        for _ in schedule:
            prefetcher.load_planes(np.array([0, 1]))
        assert prefetcher.prefetch_misses == 1
        assert prefetcher.prefetch_hits == 2

    def test_needs_a_schedule_or_plan(self):
        with pytest.raises(ValueError, match="schedule"):
            PrefetchingFieldSource(ArrayFieldSource(STACK))

    def test_executor_prefetches_disk_sources_automatically(
        self, source_files, grid, points
    ):
        """End-to-end: a memmap source handed to the executor gathers with
        chunk k+1's load issued before chunk k completes (instrumented)."""
        coords = PeriodicInterpolator(grid, "catmull_rom").to_index_coordinates(points)
        plan = build_stencil_plan(grid.shape, coords, "catmull_rom", layout="streaming")
        before = field_source_log().snapshot()
        source = MemmapFieldSource.from_npy(source_files["npy"])
        tiled = execute_stencil_plan(source, plan, chunk=128, workers=1)
        delta = field_source_log().snapshot() - before
        schedule = chunk_plane_schedule(grid.shape, plan, 128)
        num_chunks = len(plan.iter_chunks(128))
        distinct = len({planes for _, planes in schedule})
        assert num_chunks > 2
        # the cache wraps the prefetcher: repeated tuples are absorbed as
        # warm hits, every distinct tuple flows through the prefetcher, and
        # at least one background load was issued ahead of its consumer
        assert delta.tile_cache_misses == distinct
        assert delta.tile_cache_hits == num_chunks - distinct
        assert delta.prefetch_hits + delta.prefetch_misses == distinct
        assert delta.prefetch_issued >= 1
        resident = execute_stencil_plan(
            np.ascontiguousarray(STACK.reshape(2, -1)), plan, chunk=128
        )
        np.testing.assert_array_equal(tiled, resident)

    def test_plan_scoped_source_composition(self, source_files, grid, points):
        coords = PeriodicInterpolator(grid, "catmull_rom").to_index_coordinates(points)
        plan = build_stencil_plan(grid.shape, coords, "catmull_rom")
        resident = ArrayFieldSource(STACK)
        assert plan_scoped_source(resident, plan) is resident
        durable = plan_scoped_source(MemmapFieldSource.from_npy(source_files["npy"]), plan)
        assert isinstance(durable, TileCachingFieldSource)
        assert isinstance(durable.source, PrefetchingFieldSource)
        ephemeral = plan_scoped_source(SpooledMemmapFieldSource(STACK), plan)
        assert isinstance(ephemeral, PrefetchingFieldSource)


# --------------------------------------------------------------------------- #
# mode machinery (REPRO_FIELD_SOURCE / --field-source)
# --------------------------------------------------------------------------- #
class TestFieldSourceMode:
    def test_default_is_resident(self, monkeypatch):
        monkeypatch.delenv(FIELD_SOURCE_ENV_VAR, raising=False)
        assert default_field_source() == "resident"

    def test_env_selects_the_mode(self, monkeypatch):
        monkeypatch.setenv(FIELD_SOURCE_ENV_VAR, "memmap")
        assert default_field_source() == "memmap"

    def test_invalid_env_raises_with_choices(self, monkeypatch):
        monkeypatch.setenv(FIELD_SOURCE_ENV_VAR, "floppy")
        with pytest.raises(ValueError, match="resident"):
            default_field_source()

    def test_process_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(FIELD_SOURCE_ENV_VAR, "resident")
        set_default_field_source("memmap")
        assert default_field_source() == "memmap"
        set_default_field_source(None)
        assert default_field_source() == "resident"

    def test_setter_validates(self):
        with pytest.raises(ValueError, match="memmap"):
            set_default_field_source("floppy")

    def test_modes_tuple(self):
        assert FIELD_SOURCE_MODES == ("resident", "memmap")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_forced_memmap_mode_is_bitwise_identical(self, backend, grid, points):
        """--field-source memmap: every frontend gather runs through a
        spooled memory-mapped source and produces the same bits."""
        interp = PeriodicInterpolator(grid, "catmull_rom", backend=backend)
        plan = interp.plan(points)
        resident = interp.interpolate_many_planned(STACK, plan)
        set_default_field_source("memmap")
        forced = interp.interpolate_many_planned(STACK, plan)
        np.testing.assert_array_equal(forced, resident)

    def test_forced_mode_counts_points_identically(self, grid, points):
        interp = PeriodicInterpolator(grid, "catmull_rom")
        plan = interp.plan(points)
        interp.interpolate_many_planned(STACK, plan)
        resident_count = interp.points_interpolated
        set_default_field_source("memmap")
        interp.interpolate_many_planned(STACK, plan)
        assert interp.points_interpolated == 2 * resident_count

    def test_forced_mode_records_source_traffic(self, grid, points):
        set_default_field_source("memmap")
        interp = PeriodicInterpolator(grid, "catmull_rom")
        before = field_source_log().snapshot()
        interp.interpolate_many(STACK, points)
        delta = field_source_log().snapshot() - before
        assert delta.loads > 0
        assert delta.bytes_loaded > 0
