"""Tests for repro.transport.semi_lagrangian."""

import numpy as np
import pytest

from repro.spectral.grid import Grid
from repro.transport.interpolation import PeriodicInterpolator
from repro.transport.semi_lagrangian import SemiLagrangianStepper, compute_departure_points


def constant_velocity(grid, vector):
    v = grid.zeros_vector()
    for i in range(3):
        v[i] = vector[i]
    return v


class TestDeparturePoints:
    def test_zero_velocity_departure_is_identity(self):
        grid = Grid((8, 8, 8))
        X = compute_departure_points(grid, grid.zeros_vector(), dt=0.25)
        np.testing.assert_allclose(X, grid.coordinate_stack(), atol=1e-14)

    def test_constant_velocity_exact_shift(self):
        grid = Grid((8, 8, 8))
        v = constant_velocity(grid, (0.3, -0.2, 0.1))
        dt = 0.25
        X = compute_departure_points(grid, v, dt)
        expected = grid.coordinate_stack() - dt * v
        np.testing.assert_allclose(X, expected, atol=1e-10)

    def test_zero_dt_departure_is_identity(self):
        grid = Grid((8, 8, 8))
        rng = np.random.default_rng(0)
        v = rng.standard_normal((3, *grid.shape))
        X = compute_departure_points(grid, v, 0.0)
        np.testing.assert_allclose(X, grid.coordinate_stack(), atol=1e-14)

    def test_negative_dt_rejected(self):
        grid = Grid((8, 8, 8))
        with pytest.raises(ValueError):
            compute_departure_points(grid, grid.zeros_vector(), -0.1)

    def test_velocity_shape_validated(self):
        grid = Grid((8, 8, 8))
        with pytest.raises(ValueError):
            compute_departure_points(grid, np.zeros(grid.shape), 0.1)

    def test_second_order_accuracy_for_rotation(self):
        # rigid rotation in the x1-x2 plane about the domain center: the exact
        # departure point is known analytically; the two-stage trace is O(dt^3)
        # locally, i.e. O(dt^2) error per unit time.
        grid = Grid((16, 16, 16))
        center = np.pi
        x1, x2, x3 = grid.coordinates()
        omega = 0.5
        v = np.stack([-(x2 - center) * omega, (x1 - center) * omega, np.zeros_like(x3)], axis=0)
        errors = []
        for dt in (0.2, 0.1):
            X = compute_departure_points(grid, v, dt)
            angle = -omega * dt
            exact1 = center + np.cos(angle) * (x1 - center) - np.sin(angle) * (x2 - center)
            exact2 = center + np.sin(angle) * (x1 - center) + np.cos(angle) * (x2 - center)
            interior = (np.abs(x1 - center) < 2.0) & (np.abs(x2 - center) < 2.0)
            err = np.max(
                np.abs(X[0] - exact1)[interior] + np.abs(X[1] - exact2)[interior]
            )
            errors.append(err)
        # the local error of the two-stage trace is better than first order in dt
        assert errors[1] < errors[0] / 2.5


class TestStepper:
    def test_pure_advection_constant_velocity(self):
        # advecting sin(x1) with constant velocity c for time dt gives sin(x1 - c dt)
        grid = Grid((32, 32, 32))
        c = 0.7
        v = constant_velocity(grid, (c, 0.0, 0.0))
        dt = 0.25
        stepper = SemiLagrangianStepper(grid, v, dt)
        x1 = grid.coordinates()[0]
        nu0 = np.sin(x1)
        nu1 = stepper.step(nu0)
        np.testing.assert_allclose(nu1, np.sin(x1 - c * dt), atol=5e-4)

    def test_zero_velocity_is_identity(self, rng):
        grid = Grid((8, 8, 8))
        stepper = SemiLagrangianStepper(grid, grid.zeros_vector(), 0.25)
        nu = rng.standard_normal(grid.shape)
        np.testing.assert_allclose(stepper.step(nu), nu, atol=1e-10)

    def test_source_only_integration(self):
        # v = 0, f = 1 everywhere: nu(dt) = nu(0) + dt
        grid = Grid((8, 8, 8))
        stepper = SemiLagrangianStepper(grid, grid.zeros_vector(), 0.5)
        nu0 = grid.zeros()
        ones = np.ones(grid.shape)
        nu1 = stepper.step(nu0, source_old=ones, source_new=ones)
        np.testing.assert_allclose(nu1, 0.5, atol=1e-12)

    def test_callable_source_receives_predictor(self):
        # v = 0, f = nu: exact solution exp(dt); Heun gives 1 + dt + dt^2/2
        grid = Grid((8, 8, 8))
        dt = 0.1
        stepper = SemiLagrangianStepper(grid, grid.zeros_vector(), dt)
        nu0 = np.ones(grid.shape)
        nu1 = stepper.step(nu0, source_old=nu0.copy(), source_new=lambda p: p)
        np.testing.assert_allclose(nu1, 1 + dt + dt**2 / 2, atol=1e-12)

    def test_field_shape_validated(self):
        grid = Grid((8, 8, 8))
        stepper = SemiLagrangianStepper(grid, grid.zeros_vector(), 0.1)
        with pytest.raises(ValueError):
            stepper.step(np.zeros((4, 4, 4)))

    def test_source_shape_validated(self):
        grid = Grid((8, 8, 8))
        stepper = SemiLagrangianStepper(grid, grid.zeros_vector(), 0.1)
        with pytest.raises(ValueError):
            stepper.step(grid.zeros(), source_old=grid.zeros(), source_new=np.zeros((4, 4, 4)))

    def test_interpolate_at_departure_matches_manual(self, rng):
        grid = Grid((8, 8, 8))
        v = 0.2 * rng.standard_normal((3, *grid.shape))
        interp = PeriodicInterpolator(grid)
        stepper = SemiLagrangianStepper(grid, v, 0.25, interpolator=interp)
        field = rng.standard_normal(grid.shape)
        np.testing.assert_allclose(
            stepper.interpolate_at_departure(field),
            interp(field, stepper.departure_points),
            atol=1e-14,
        )

    def test_cfl_number(self):
        grid = Grid((8, 8, 8))
        v = constant_velocity(grid, (1.0, 0.0, 0.0))
        stepper = SemiLagrangianStepper(grid, v, dt=1.0)
        h = grid.spacing[0]
        assert stepper.cfl_number() == pytest.approx(1.0 / h)

    def test_stability_for_large_cfl(self):
        # the scheme is unconditionally stable: a single huge time step must not blow up
        grid = Grid((16, 16, 16))
        x1 = grid.coordinates()[0]
        v = constant_velocity(grid, (5.0, 3.0, -4.0))
        stepper = SemiLagrangianStepper(grid, v, dt=1.0)
        assert stepper.cfl_number() > 1.0
        nu = np.sin(x1)
        for _ in range(5):
            nu = stepper.step(nu)
        assert np.max(np.abs(nu)) < 1.5


class TestConservation:
    def test_advection_preserves_bounds_approximately(self):
        # semi-Lagrangian with cubic interpolation has small over/undershoots
        # only, provided the velocity is smooth (use a fixed band-limited field
        # so the test does not depend on shared random state)
        grid = Grid((16, 16, 16))
        x1, x2, x3 = grid.coordinates()
        v = 0.8 * np.stack(
            [np.sin(x2) * np.cos(x3), np.sin(x3) * np.cos(x1), np.sin(x1) * np.cos(x2)],
            axis=0,
        )
        stepper = SemiLagrangianStepper(grid, v, 0.25)
        nu = 0.5 * (1 + np.sin(x1) * np.sin(x2))
        for _ in range(4):
            nu = stepper.step(nu)
        assert nu.min() > -0.1
        assert nu.max() < 1.1
