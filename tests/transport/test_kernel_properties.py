"""Hypothesis property tests for the stencil-plan/executor layer.

The executor contract the whole subsystem rests on: a gather's bits depend
only on the (method, coordinates, field) content — never on the plan layout
(fat / lean / streaming), the executor's chunk size, or the worker count.
The PR-4 streaming layout rewrites the executor's chunk protocol, so these
sweeps pin the contract across the full randomized cross product instead of
a handful of hand-picked combinations.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.kernels import (
    PLAN_LAYOUTS,
    SUPPORTED_METHODS,
    STENCIL_CHUNK,
    ArrayFieldSource,
    StreamingStencilPlan,
    available_backends,
    build_stencil_plan,
    execute_stencil_plan,
    get_backend,
)

SHAPE = (8, 10, 9)


def _field_stack(seed: int) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((2, *SHAPE)).reshape(2, -1)


def _coords(seed: int, num_points: int) -> np.ndarray:
    rng = np.random.default_rng(seed + 10_000)
    scale = np.asarray(SHAPE, dtype=np.float64)[:, None]
    return rng.uniform(0.0, 1.0, size=(3, num_points)) * scale


class TestGatherBitwiseInvariance:
    @given(
        layout=st.sampled_from(PLAN_LAYOUTS),
        method=st.sampled_from(SUPPORTED_METHODS),
        chunk=st.integers(1, 700),
        workers=st.integers(1, 4),
        num_points=st.integers(1, 500),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_layout_chunk_workers_never_change_the_bits(
        self, layout, method, chunk, workers, num_points, seed
    ):
        """The tentpole pin: every (layout, chunk, workers) combination
        gathers bitwise identically to the fat single-threaded reference."""
        flat = _field_stack(seed)
        coords = _coords(seed, num_points)
        reference = execute_stencil_plan(
            flat, build_stencil_plan(SHAPE, coords, method, layout="fat"), workers=1
        )
        plan = build_stencil_plan(SHAPE, coords, method, layout=layout)
        candidate = execute_stencil_plan(flat, plan, chunk=chunk, workers=workers)
        np.testing.assert_array_equal(candidate, reference)

    @given(
        layout=st.sampled_from(PLAN_LAYOUTS),
        method=st.sampled_from(SUPPORTED_METHODS),
        num_points=st.integers(1, 400),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_non_periodic_layouts_agree(self, layout, method, num_points, seed):
        """Ghost-block (scatter-path) plans obey the same layout invariance."""
        rng = np.random.default_rng(seed)
        block = rng.standard_normal((12, 11, 13))
        # interior points: the full stencil stays inside the block
        coords = rng.uniform(2.0, 8.0, size=(3, num_points))
        flat = block.reshape(1, -1)
        reference = execute_stencil_plan(
            flat, build_stencil_plan(block.shape, coords, method, periodic=False, layout="fat")
        )
        candidate = execute_stencil_plan(
            flat, build_stencil_plan(block.shape, coords, method, periodic=False, layout=layout)
        )
        np.testing.assert_array_equal(candidate, reference)


class TestTiledGatherInvariance:
    """The PR-5 pin: tiling is invisible in the bits, on every backend."""

    @given(
        layout=st.sampled_from(PLAN_LAYOUTS),
        method=st.sampled_from(SUPPORTED_METHODS),
        tiled=st.booleans(),
        backend=st.sampled_from(available_backends()),
        num_points=st.integers(1, 500),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_layout_tiling_backend_never_change_the_bits(
        self, layout, method, tiled, backend, num_points, seed
    ):
        """Random layout x tiled/resident x gather engine: every combination
        produces the bits of that engine's resident fat-plan gather."""
        engine = get_backend(backend)
        fields = _field_stack(seed).reshape(2, *SHAPE)
        coords = _coords(seed, num_points)
        ref_payload = (
            build_stencil_plan(SHAPE, coords, method, layout="fat")
            if engine.supports_plan(method)
            else None
        )
        reference = engine.gather(fields, coords, ref_payload, method)
        payload = (
            build_stencil_plan(SHAPE, coords, method, layout=layout)
            if engine.supports_plan(method)
            else None
        )
        candidate_fields = ArrayFieldSource(fields) if tiled else fields
        candidate = engine.gather(candidate_fields, coords, payload, method)
        np.testing.assert_array_equal(candidate, reference)

    @given(
        layout=st.sampled_from(PLAN_LAYOUTS),
        method=st.sampled_from(SUPPORTED_METHODS),
        chunk=st.integers(1, 700),
        num_points=st.integers(1, 500),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_tiled_executor_matches_resident_across_chunks(
        self, layout, method, chunk, num_points, seed
    ):
        """The executor-level sweep: tiled == resident for every layout and
        chunk size (the tile set changes with the chunking; the bits don't)."""
        flat = _field_stack(seed)
        coords = _coords(seed, num_points)
        plan = build_stencil_plan(SHAPE, coords, method, layout=layout)
        resident = execute_stencil_plan(flat, plan, chunk=chunk)
        source = ArrayFieldSource(flat.reshape(2, *SHAPE))
        tiled = execute_stencil_plan(source, plan, chunk=chunk)
        np.testing.assert_array_equal(tiled, resident)


class TestChunkProtocolProperties:
    @given(
        layout=st.sampled_from(PLAN_LAYOUTS),
        num_points=st.integers(0, 2000),
        chunk=st.integers(1, 512),
    )
    @settings(max_examples=50, deadline=None)
    def test_spans_partition_the_point_range(self, layout, num_points, chunk):
        """iter_chunks always yields a disjoint ascending cover of [0, M)."""
        plan = build_stencil_plan(
            SHAPE, _coords(0, num_points) if num_points else np.empty((3, 0)), "linear",
            layout=layout,
        )
        spans = plan.iter_chunks(chunk)
        assert sum(hi - lo for lo, hi in spans) == num_points
        previous = 0
        for lo, hi in spans:
            assert lo == previous and hi > lo
            previous = hi
        if num_points:
            assert spans[-1][1] == num_points

    @given(num_points=st.integers(0, 60_000))
    @settings(max_examples=30, deadline=None)
    def test_streaming_resident_bytes_capped_at_one_chunk(self, num_points):
        """nbytes of a streaming plan is min(M, chunk) scratch — never O(M)."""
        coords = np.zeros((3, num_points)) + 1.5
        plan = build_stencil_plan(SHAPE, coords, "catmull_rom", layout="streaming")
        assert isinstance(plan, StreamingStencilPlan)
        per_point = 3 * (np.dtype(np.intp).itemsize + np.dtype(np.float64).itemsize)
        assert plan.nbytes == per_point * min(num_points, STENCIL_CHUNK)
