"""Tests for the tiled (out-of-core) gather mode and its FieldSource layer.

The tentpole contract: handing the executor a :class:`FieldSource` instead
of a resident flattened stack changes only *where the field bytes live*
(per-chunk plane tiles vs the whole array), never the gathered bits — on
every plan layout and every backend.  The 96^3 streaming+tiled pin shows
the peak resident field+stencil working set is bounded by the tile/chunk
sizes, not the grid size.
"""

import numpy as np
import pytest

from repro.spectral.grid import Grid
from repro.transport.interpolation import PeriodicInterpolator
from repro.transport.kernels import (
    PLAN_LAYOUTS,
    STENCIL_CHUNK,
    SUPPORTED_METHODS,
    ArrayFieldSource,
    FieldSource,
    as_field_source,
    build_stencil_plan,
    execute_stencil_plan,
)
from repro.transport.semi_lagrangian import SemiLagrangianStepper

from tests.fixtures import (
    interp_backend_params,
    make_grid,
    random_points,
    smooth_scalar_field,
    smooth_velocity_field,
)

BACKENDS = interp_backend_params()


@pytest.fixture(scope="module")
def grid():
    return make_grid(12)


@pytest.fixture(scope="module")
def fields(grid):
    rng = np.random.default_rng(5)
    return rng.standard_normal((3, *grid.shape))


@pytest.fixture(scope="module")
def points():
    return random_points(900, seed=6)


class TestArrayFieldSource:
    def test_shape_and_batch(self, fields):
        source = ArrayFieldSource(fields)
        assert tuple(source.shape) == fields.shape[1:]
        assert source.num_fields == 3
        assert isinstance(source, FieldSource)

    def test_single_field_promoted(self, fields):
        source = ArrayFieldSource(fields[0])
        assert source.num_fields == 1
        assert tuple(source.shape) == fields.shape[1:]

    def test_bad_rank_rejected(self):
        with pytest.raises(ValueError, match="stacked"):
            ArrayFieldSource(np.zeros((4, 4)))

    def test_load_planes_returns_float64_tiles_and_accounts(self, fields):
        source = ArrayFieldSource(fields.astype(np.float32))
        tile = source.load_planes(np.array([0, 3]))
        assert tile.dtype == np.float64
        assert tile.shape == (3, 2, *fields.shape[2:])
        assert source.loads == 1
        assert source.planes_loaded == 2
        assert source.peak_tile_bytes == tile.nbytes

    def test_as_field_source_passthrough(self, fields):
        source = ArrayFieldSource(fields)
        assert as_field_source(source) is source
        assert isinstance(as_field_source(fields), ArrayFieldSource)


class TestTiledExecutorBitwise:
    @pytest.mark.parametrize("layout", PLAN_LAYOUTS)
    @pytest.mark.parametrize("method", SUPPORTED_METHODS)
    def test_tiled_matches_resident_every_layout(self, layout, method, grid, fields, points):
        coords = PeriodicInterpolator(grid, method).to_index_coordinates(points)
        plan = build_stencil_plan(grid.shape, coords, method, layout=layout)
        flat = np.ascontiguousarray(fields.reshape(3, -1), dtype=np.float64)
        resident = execute_stencil_plan(flat, plan)
        tiled = execute_stencil_plan(ArrayFieldSource(fields), plan)
        np.testing.assert_array_equal(tiled, resident)

    def test_tiled_matches_resident_non_periodic_ghost_block(self):
        rng = np.random.default_rng(8)
        block = rng.standard_normal((12, 11, 13))
        coords = rng.uniform(2.0, 8.0, size=(3, 400))
        plan = build_stencil_plan(block.shape, coords, "catmull_rom", periodic=False)
        resident = execute_stencil_plan(block.reshape(1, -1), plan)
        tiled = execute_stencil_plan(ArrayFieldSource(block), plan)
        np.testing.assert_array_equal(tiled, resident)

    def test_tiled_is_bitwise_independent_of_chunk_and_workers(self, grid, fields, points):
        coords = PeriodicInterpolator(grid, "catmull_rom").to_index_coordinates(points)
        plan = build_stencil_plan(grid.shape, coords, "catmull_rom", layout="streaming")
        reference = execute_stencil_plan(ArrayFieldSource(fields), plan)
        for chunk, workers in ((64, 1), (200, 2), (901, 3)):
            candidate = execute_stencil_plan(
                ArrayFieldSource(fields), plan, chunk=chunk, workers=workers
            )
            np.testing.assert_array_equal(candidate, reference)


class TestTiledBackends:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("method", SUPPORTED_METHODS)
    def test_gather_from_source_matches_resident(self, backend, method, grid, fields, points):
        """Every backend, every kernel: tiled == resident, bitwise."""
        interp = PeriodicInterpolator(grid, method, backend=backend)
        plan = interp.plan(points)
        resident = interp.interpolate_many_planned(fields, plan)
        tiled = interp.interpolate_many_planned(ArrayFieldSource(fields), plan)
        np.testing.assert_array_equal(tiled, resident)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_counters_are_identical_for_tiled_gathers(self, backend, grid, fields, points):
        """Counting is frontend-owned: tiled and resident charge the same."""
        interp = PeriodicInterpolator(grid, "catmull_rom", backend=backend)
        plan = interp.plan(points)
        interp.interpolate_many_planned(fields, plan)
        resident_count = interp.points_interpolated
        interp.interpolate_many_planned(ArrayFieldSource(fields), plan)
        assert interp.points_interpolated == 2 * resident_count

    def test_source_shape_validated_by_frontend(self, grid, points):
        interp = PeriodicInterpolator(grid, "catmull_rom")
        plan = interp.plan(points)
        with pytest.raises(ValueError, match="field source"):
            interp.interpolate_many_planned(
                ArrayFieldSource(np.zeros((2, 8, 8, 8))), plan
            )


class TestTiledStepper:
    def test_step_many_accepts_a_source_for_pure_advection(self, grid):
        velocity = smooth_velocity_field(grid, seed=3)
        stepper = SemiLagrangianStepper(grid, velocity, dt=0.25)
        stack = np.stack([smooth_scalar_field(grid, seed=s) for s in (1, 2)])
        resident = stepper.step_many(stack)
        tiled = stepper.step_many(ArrayFieldSource(stack))
        np.testing.assert_array_equal(tiled, resident)

    def test_step_many_source_with_sources_rejected(self, grid):
        velocity = smooth_velocity_field(grid, seed=3)
        stepper = SemiLagrangianStepper(grid, velocity, dt=0.25)
        stack = np.stack([smooth_scalar_field(grid, seed=1)])
        with pytest.raises(ValueError, match="pure advection"):
            stepper.step_many(ArrayFieldSource(stack), sources_old=stack)


@pytest.mark.slow
class TestOutOfCoreMemoryPin:
    def test_96_cubed_streaming_tiled_working_set_is_tile_bounded(self):
        """The acceptance pin: peak resident field+stencil bytes of a 96^3
        streaming+tiled gather are bounded by the tile/chunk sizes (a few
        planes + one chunk of stencil scratch), not by the grid size."""
        n = 96
        grid = Grid((n, n, n))
        rng = np.random.default_rng(0)
        field = rng.standard_normal(grid.shape)
        # semi-Lagrangian access pattern: grid-ordered points displaced by
        # at most `disp` cells (bounded uniform, so the plane span is too)
        disp = 3.0
        spacing = np.asarray(grid.spacing)[:, None]
        points = grid.coordinate_stack().reshape(3, -1) + spacing * rng.uniform(
            -disp, disp, size=(3, grid.num_points)
        )
        interp = PeriodicInterpolator(grid, "catmull_rom", backend="numpy")
        coords = interp.to_index_coordinates(points)

        plan = build_stencil_plan(grid.shape, coords, "catmull_rom", layout="streaming")
        # stencil side: resident bytes are one chunk of scratch, not O(N^3)
        chunk_cap = 3 * STENCIL_CHUNK * (np.dtype(np.intp).itemsize + 8)
        assert plan.nbytes <= chunk_cap

        source = ArrayFieldSource(field)
        tiled = execute_stencil_plan(source, plan)

        # field side: a chunk of grid-ordered points spans at most
        # ceil(chunk / (N2*N3)) + 1 consecutive base planes, widened by the
        # displacement bound and the 4-tap stencil window — a handful of
        # planes regardless of N1
        plane_bytes = n * n * 8
        max_planes = int(np.ceil(STENCIL_CHUNK / (n * n))) + 1 + 2 * int(np.ceil(disp)) + 4
        assert source.peak_tile_bytes <= max_planes * plane_bytes
        # and the combined working set is a small fraction of the field
        working_set = source.peak_tile_bytes + plan.nbytes
        assert working_set < 0.2 * field.nbytes

        # bounded memory never changes the bits
        resident = execute_stencil_plan(
            np.ascontiguousarray(field.reshape(1, -1)), plan
        )
        np.testing.assert_array_equal(tiled, resident)
