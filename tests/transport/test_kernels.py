"""Tests for repro.transport.kernels (backend registry + gather plans)."""

import os

import numpy as np
import pytest

from repro.spectral.backends import BackendUnavailableError
from repro.spectral.grid import Grid
from repro.transport.interpolation import PeriodicInterpolator
from repro.transport.kernels import (
    BACKEND_ENV_VAR,
    PLAN_LAYOUT_CHOICES,
    PLAN_LAYOUT_ENV_VAR,
    PLAN_LAYOUTS,
    STENCIL_CHUNK,
    SUPPORTED_METHODS,
    LeanStencilPlan,
    NumbaInterpolationBackend,
    StencilPlan,
    StreamingStencilPlan,
    available_backends,
    build_stencil_plan,
    bspline_weights,
    default_backend_name,
    default_plan_layout,
    execute_stencil_plan,
    get_backend,
    periodic_bspline_prefilter,
    register_backend,
    registered_backends,
    resolve_plan_layout,
    set_default_plan_layout,
)

from tests.fixtures import interp_backend_params, random_points, smooth_scalar_field

BACKENDS = interp_backend_params()


@pytest.fixture(scope="module")
def grid():
    return Grid((16, 16, 16))


@pytest.fixture(scope="module")
def field(grid):
    return smooth_scalar_field(grid, seed=0, modes=2)


@pytest.fixture(scope="module")
def points():
    return random_points(500, seed=1)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(registered_backends()) >= {"scipy", "numpy", "numba"}

    def test_always_available_backends(self):
        assert "scipy" in available_backends()
        assert "numpy" in available_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown interpolation backend"):
            get_backend("cuda")

    def test_instances_are_cached_per_name(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_instance_passes_through(self):
        instance = get_backend("numpy")
        assert get_backend(instance) is instance

    def test_non_backend_object_rejected(self):
        with pytest.raises(TypeError):
            get_backend(42)

    def test_default_is_scipy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert default_backend_name() == "scipy"

    def test_environment_variable_selects_default(self, monkeypatch, grid):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert default_backend_name() == "numpy"
        assert PeriodicInterpolator(grid).backend_name == "numpy"

    def test_unavailable_backend_raises_cleanly(self):
        if NumbaInterpolationBackend.is_available():
            pytest.skip("numba is installed; unavailability path not testable")
        with pytest.raises(BackendUnavailableError, match="numba"):
            get_backend("numba")

    def test_malformed_env_backend_is_a_clear_error(self, monkeypatch):
        """An env typo names the variable and lists the registered backends."""
        monkeypatch.setenv(BACKEND_ENV_VAR, "scippy")
        with pytest.raises(ValueError, match=BACKEND_ENV_VAR) as excinfo:
            default_backend_name()
        assert "scipy" in str(excinfo.value) and "numpy" in str(excinfo.value)
        with pytest.raises(ValueError, match=BACKEND_ENV_VAR):
            get_backend(None)  # the env path of every consumer

    def test_register_backend_hook(self, grid, field, points):
        class EchoBackend:
            name = "echo"

            @classmethod
            def is_available(cls):
                return True

            def supports_plan(self, method):
                return False

            def build_plan(self, grid_shape, coordinates, method):
                return None

            def gather(self, fields, coordinates, payload, method):
                return np.zeros((fields.shape[0], coordinates.shape[1]))

        register_backend("echo", EchoBackend)
        try:
            interp = PeriodicInterpolator(grid, backend="echo")
            np.testing.assert_array_equal(interp(field, points), 0.0)
        finally:
            from repro.transport import kernels

            kernels._REGISTRY.pop("echo", None)
            kernels._INSTANCES.pop("echo", None)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("method", SUPPORTED_METHODS)
class TestBackendAgreement:
    def test_agrees_with_scipy_reference(self, backend, method, grid, field, points):
        """All engines agree to <= 1e-10 on a smooth-field evaluation."""
        reference = PeriodicInterpolator(grid, method, backend="scipy")(field, points)
        values = PeriodicInterpolator(grid, method, backend=backend)(field, points)
        np.testing.assert_allclose(values, reference, atol=1e-10)

    def test_smooth_field_round_trip(self, backend, method, grid, field):
        """Interpolating at the grid nodes reproduces the field itself."""
        interp = PeriodicInterpolator(grid, method, backend=backend)
        values = interp(field, grid.coordinate_stack())
        np.testing.assert_allclose(values, field, atol=1e-10)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("method", SUPPORTED_METHODS)
class TestGatherPlans:
    def test_planned_path_is_bitwise_identical(self, backend, method, grid, field, points):
        interp = PeriodicInterpolator(grid, method, backend=backend)
        unplanned = interp(field, points)
        plan = interp.plan(points)
        planned = interp.interpolate_planned(field, plan)
        np.testing.assert_array_equal(planned, unplanned)

    def test_batched_matches_scalar_bitwise(self, backend, method, grid, points):
        rng = np.random.default_rng(7)
        fields = rng.standard_normal((3, *grid.shape))
        interp = PeriodicInterpolator(grid, method, backend=backend)
        plan = interp.plan(points)
        batched = interp.interpolate_many_planned(fields, plan)
        for component in range(3):
            scalar = interp.interpolate_planned(fields[component], plan)
            np.testing.assert_array_equal(batched[component], scalar)

    def test_plan_reused_across_fields(self, backend, method, grid, points):
        rng = np.random.default_rng(8)
        interp = PeriodicInterpolator(grid, method, backend=backend)
        plan = interp.plan(points)
        for seed in (1, 2):
            f = rng.standard_normal(grid.shape)
            np.testing.assert_array_equal(
                interp.interpolate_planned(f, plan), interp(f, points)
            )

    def test_plan_records_caching_capability(self, backend, method, grid, points):
        interp = PeriodicInterpolator(grid, method, backend=backend)
        plan = interp.plan(points)
        assert plan.is_cached == interp.backend.supports_plan(method)
        assert plan.num_points == points.shape[1]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("method", SUPPORTED_METHODS)
class TestLowerPrecisionFields:
    def test_float32_grid_fields_are_upcast(self, backend, method):
        """Regression: float32 fields interpolate on every backend/kernel."""
        grid = Grid((8, 8, 8), dtype=np.float32)
        rng = np.random.default_rng(9)
        field = rng.standard_normal(grid.shape).astype(np.float32)
        points = rng.uniform(0, 2 * np.pi, size=(3, 50))
        interp = PeriodicInterpolator(grid, method, backend=backend)
        values = interp(field, points)
        assert values.dtype == np.float32
        reference = PeriodicInterpolator(Grid((8, 8, 8)), method, backend=backend)(
            field.astype(np.float64), points
        )
        np.testing.assert_allclose(values, reference, atol=1e-6)


class TestPlanValidation:
    def test_plan_grid_mismatch_rejected(self, grid, field, points):
        interp = PeriodicInterpolator(grid)
        other = PeriodicInterpolator(Grid((8, 8, 8)))
        plan = other.plan(np.zeros((3, 5)))
        with pytest.raises(ValueError, match="gather plan was built for grid"):
            interp.interpolate_planned(field, plan)

    def test_plan_method_mismatch_rejected(self, grid, field, points):
        plan = PeriodicInterpolator(grid, "linear").plan(points)
        with pytest.raises(ValueError, match="method"):
            PeriodicInterpolator(grid, "catmull_rom").interpolate_planned(field, plan)

    def test_batched_field_stack_validated(self, grid, points):
        interp = PeriodicInterpolator(grid)
        with pytest.raises(ValueError, match="stacked fields"):
            interp.interpolate_many(np.zeros((3, 8, 8, 8)), points)


class TestCounterParity:
    def test_counters_identical_across_backends(self, grid, field, points):
        counts = {}
        for backend in available_backends():
            interp = PeriodicInterpolator(grid, "catmull_rom", backend=backend)
            interp(field, points)
            plan = interp.plan(points)
            interp.interpolate_many_planned(np.stack([field] * 3), plan)
            counts[backend] = interp.points_interpolated
        assert len(set(counts.values())) == 1, counts

    def test_batched_counts_batch_times_points(self, grid, field, points):
        interp = PeriodicInterpolator(grid, backend="numpy")
        plan = interp.plan(points)
        interp.interpolate_many_planned(np.stack([field] * 4), plan)
        assert interp.points_interpolated == 4 * points.shape[1]


class TestLeanStencilPlans:
    """The memory-lean plan layout: bitwise identity + the ~4x memory cut."""

    def test_default_layout_is_auto_resolving_to_lean(self, monkeypatch):
        monkeypatch.delenv(PLAN_LAYOUT_ENV_VAR, raising=False)
        # the default *setting* is the budget-aware auto policy, which
        # resolves to the lean layout at laptop-scale point counts
        assert default_plan_layout() == "auto"
        assert resolve_plan_layout(16**3) == "lean"
        monkeypatch.setenv(PLAN_LAYOUT_ENV_VAR, "fat")
        assert default_plan_layout() == "fat"

    def test_malformed_layout_env_is_a_clear_error(self, monkeypatch):
        monkeypatch.setenv(PLAN_LAYOUT_ENV_VAR, "leann")
        with pytest.raises(ValueError, match="REPRO_PLAN_LAYOUT") as excinfo:
            default_plan_layout()
        # the error lists the valid choices instead of falling through
        for choice in PLAN_LAYOUT_CHOICES:
            assert choice in str(excinfo.value)

    def test_unknown_layout_rejected(self, grid, points):
        with pytest.raises(ValueError, match="unknown stencil-plan layout"):
            build_stencil_plan(grid.shape, np.zeros((3, 4)), "linear", layout="sparse")

    @pytest.mark.parametrize("method", SUPPORTED_METHODS)
    def test_lean_and_fat_gather_bitwise_identically(self, method, grid, field):
        rng = np.random.default_rng(11)
        coords = rng.uniform(0, 16, size=(3, 3000))
        flat = np.stack([field, field[::-1]]).reshape(2, -1)
        fat = build_stencil_plan(grid.shape, coords, method, layout="fat")
        lean = build_stencil_plan(grid.shape, coords, method, layout="lean")
        assert isinstance(fat, StencilPlan) and isinstance(lean, LeanStencilPlan)
        np.testing.assert_array_equal(
            execute_stencil_plan(flat, fat), execute_stencil_plan(flat, lean)
        )

    def test_lean_and_fat_agree_non_periodic(self):
        rng = np.random.default_rng(12)
        block = rng.standard_normal((12, 12, 12))
        coords = rng.uniform(2.0, 9.0, size=(3, 500))
        fat = build_stencil_plan(block.shape, coords, "catmull_rom", periodic=False, layout="fat")
        lean = build_stencil_plan(
            block.shape, coords, "catmull_rom", periodic=False, layout="lean"
        )
        flat = block.reshape(1, -1)
        np.testing.assert_array_equal(
            execute_stencil_plan(flat, fat), execute_stencil_plan(flat, lean)
        )

    @pytest.mark.parametrize("method", ["cubic_bspline", "catmull_rom"])
    def test_lean_tricubic_plan_is_under_thirty_percent(self, grid, method):
        """The ISSUE's memory criterion: lean <= ~30% of the fat layout."""
        rng = np.random.default_rng(13)
        coords = rng.uniform(0, 16, size=(3, 4096))
        fat = build_stencil_plan(grid.shape, coords, method, layout="fat")
        lean = build_stencil_plan(grid.shape, coords, method, layout="lean")
        assert lean.nbytes <= 0.30 * fat.nbytes
        # exact accounting: 3 int32 base + 3 float64 frac per point
        assert lean.nbytes == coords.shape[1] * 3 * (4 + 8)

    def test_lean_plan_chunk_matches_fat_views(self, grid):
        rng = np.random.default_rng(14)
        coords = rng.uniform(0, 16, size=(3, 1000))
        fat = build_stencil_plan(grid.shape, coords, "catmull_rom", layout="fat")
        lean = build_stencil_plan(grid.shape, coords, "catmull_rom", layout="lean")
        fat_idx, fat_w = fat.chunk_stencil(100, 300)
        lean_idx, lean_w = lean.chunk_stencil(100, 300)
        for d in range(3):
            np.testing.assert_array_equal(np.asarray(fat_idx[d]), np.asarray(lean_idx[d]))
            np.testing.assert_array_equal(np.asarray(fat_w[d]), np.asarray(lean_w[d]))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_plan_lean_by_default(self, backend, grid, points, monkeypatch):
        monkeypatch.delenv(PLAN_LAYOUT_ENV_VAR, raising=False)
        interp = PeriodicInterpolator(grid, "catmull_rom", backend=backend)
        plan = interp.plan(points)
        assert isinstance(plan.payload, LeanStencilPlan)
        assert plan.nbytes == plan.coordinates.nbytes + plan.payload.nbytes

    def test_fat_layout_env_opt_out_is_bitwise_identical(self, grid, field, points, monkeypatch):
        interp = PeriodicInterpolator(grid, "catmull_rom", backend="numpy")
        lean_values = interp.interpolate_planned(field, interp.plan(points))
        monkeypatch.setenv(PLAN_LAYOUT_ENV_VAR, "fat")
        fat_plan = interp.plan(points)
        assert isinstance(fat_plan.payload, StencilPlan)
        np.testing.assert_array_equal(
            interp.interpolate_planned(field, fat_plan), lean_values
        )


class TestStreamingStencilPlans:
    """The chunk-resident layout: bitwise identity + the one-chunk memory cap."""

    def test_layout_registered_and_env_selectable(self, monkeypatch):
        assert "streaming" in PLAN_LAYOUTS
        monkeypatch.setenv(PLAN_LAYOUT_ENV_VAR, "streaming")
        assert default_plan_layout() == "streaming"

    def test_set_default_plan_layout(self, monkeypatch):
        monkeypatch.setenv(PLAN_LAYOUT_ENV_VAR, "lean")
        try:
            set_default_plan_layout("streaming")  # overrides the environment
            assert default_plan_layout() == "streaming"
            with pytest.raises(ValueError, match="unknown stencil-plan layout"):
                set_default_plan_layout("sparse")
            assert default_plan_layout() == "streaming"  # invalid set changes nothing
        finally:
            set_default_plan_layout(None)  # clears the override, env wins again
        assert default_plan_layout() == "lean"
        # the override never leaks into the environment (child processes)
        assert PLAN_LAYOUT_ENV_VAR not in os.environ or os.environ[
            PLAN_LAYOUT_ENV_VAR
        ] == "lean"

    @pytest.mark.parametrize("method", SUPPORTED_METHODS)
    def test_streaming_gathers_bitwise_like_lean_and_fat(self, method, grid, field):
        coords = random_points(3000, seed=11, low=0.0, high=16.0)
        flat = np.stack([field, field[::-1]]).reshape(2, -1)
        outputs = {
            layout: execute_stencil_plan(
                flat, build_stencil_plan(grid.shape, coords, method, layout=layout)
            )
            for layout in PLAN_LAYOUTS
        }
        np.testing.assert_array_equal(outputs["streaming"], outputs["fat"])
        np.testing.assert_array_equal(outputs["streaming"], outputs["lean"])

    def test_streaming_agrees_non_periodic(self):
        rng = np.random.default_rng(12)
        block = rng.standard_normal((12, 12, 12))
        coords = rng.uniform(2.0, 9.0, size=(3, 500))
        flat = block.reshape(1, -1)
        fat = build_stencil_plan(block.shape, coords, "catmull_rom", periodic=False, layout="fat")
        streaming = build_stencil_plan(
            block.shape, coords, "catmull_rom", periodic=False, layout="streaming"
        )
        assert isinstance(streaming, StreamingStencilPlan)
        np.testing.assert_array_equal(
            execute_stencil_plan(flat, streaming), execute_stencil_plan(flat, fat)
        )

    def test_chunk_protocol_spans_cover_all_points(self, grid):
        coords = random_points(1000, seed=13, low=0.0, high=16.0)
        for layout in PLAN_LAYOUTS:
            plan = build_stencil_plan(grid.shape, coords, "catmull_rom", layout=layout)
            for chunk in (1, 7, 256, None):
                spans = plan.iter_chunks(chunk)
                assert spans[0][0] == 0 and spans[-1][1] == 1000
                for (lo_a, hi_a), (lo_b, _) in zip(spans, spans[1:]):
                    assert hi_a == lo_b and lo_a < hi_a

    def test_streaming_chunk_matches_lean_chunk(self, grid):
        coords = random_points(1000, seed=14, low=0.0, high=16.0)
        lean = build_stencil_plan(grid.shape, coords, "catmull_rom", layout="lean")
        streaming = build_stencil_plan(grid.shape, coords, "catmull_rom", layout="streaming")
        lean_idx, lean_w = lean.chunk_stencil(100, 300)
        stream_idx, stream_w = streaming.chunk_stencil(100, 300)
        for d in range(3):
            np.testing.assert_array_equal(stream_idx[d], lean_idx[d])
            np.testing.assert_array_equal(stream_w[d], lean_w[d])

    def test_resident_bytes_capped_at_one_chunk(self, grid):
        """The tentpole memory criterion, at the plan level: ``nbytes`` of a
        streaming plan never exceeds one chunk of base/frac scratch, no
        matter how many points the plan covers."""
        chunk_cap = 3 * STENCIL_CHUNK * (np.dtype(np.intp).itemsize + 8)
        for num_points in (100, STENCIL_CHUNK, 5 * STENCIL_CHUNK + 17):
            coords = random_points(num_points, seed=15, low=0.0, high=16.0)
            plan = build_stencil_plan(grid.shape, coords, "catmull_rom", layout="streaming")
            assert plan.nbytes <= chunk_cap
            if num_points >= STENCIL_CHUNK:
                assert plan.nbytes == chunk_cap
        # and the cap is independent of the point count, unlike lean/fat
        big = build_stencil_plan(
            grid.shape,
            random_points(4 * STENCIL_CHUNK, seed=16, low=0.0, high=16.0),
            "catmull_rom",
            layout="streaming",
        )
        small = build_stencil_plan(
            grid.shape,
            random_points(STENCIL_CHUNK, seed=16, low=0.0, high=16.0),
            "catmull_rom",
            layout="streaming",
        )
        assert big.nbytes == small.nbytes == chunk_cap

    def test_streaming_payload_borrows_gather_plan_coordinates(self, grid, points, monkeypatch):
        """No copy: the GatherPlan and its streaming payload share one buffer,
        and the pool accounting counts it exactly once."""
        monkeypatch.setenv(PLAN_LAYOUT_ENV_VAR, "streaming")
        interp = PeriodicInterpolator(grid, "catmull_rom", backend="numpy")
        plan = interp.plan(points)
        assert isinstance(plan.payload, StreamingStencilPlan)
        assert plan.payload.coordinates is plan.coordinates
        assert plan.nbytes == plan.coordinates.nbytes + plan.payload.nbytes

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_streaming_env_is_bitwise_identical_on_every_backend(
        self, backend, grid, field, points, monkeypatch
    ):
        monkeypatch.delenv(PLAN_LAYOUT_ENV_VAR, raising=False)
        interp = PeriodicInterpolator(grid, "catmull_rom", backend=backend)
        lean_values = interp.interpolate_planned(field, interp.plan(points))
        monkeypatch.setenv(PLAN_LAYOUT_ENV_VAR, "streaming")
        streaming_plan = interp.plan(points)
        assert isinstance(streaming_plan.payload, StreamingStencilPlan)
        np.testing.assert_array_equal(
            interp.interpolate_planned(field, streaming_plan), lean_values
        )


@pytest.mark.slow
class TestStreamingMemoryCapAt96:
    """The ISSUE's 96^3 acceptance pins: pool-accounted memory + bitwise output."""

    N = 96

    @pytest.fixture(autouse=True)
    def _roomy_pool(self):
        """A 1 GiB budget so even the fat 96^3 entry is stored (the byte
        comparison needs every layout's entry resident, which the pressure
        CI leg's 64 MB ambient budget would oversize-reject)."""
        from repro.runtime.plan_pool import configure_plan_pool

        configure_plan_pool(1 << 30)
        yield
        configure_plan_pool(None)

    def _steppers(self, monkeypatch, layout):
        from repro.runtime.plan_pool import get_plan_pool, reset_plan_pool
        from repro.transport.semi_lagrangian import SemiLagrangianStepper

        from tests.fixtures import make_grid, smooth_velocity_field

        grid = make_grid(self.N)
        velocity = smooth_velocity_field(grid, seed=21, amplitude=0.4)
        monkeypatch.setenv(PLAN_LAYOUT_ENV_VAR, layout)
        reset_plan_pool()
        interp = PeriodicInterpolator(grid, "catmull_rom", backend="numpy")
        stepper = SemiLagrangianStepper(grid, velocity, dt=0.25, interpolator=interp)
        return grid, stepper, get_plan_pool()

    def test_resident_plan_bytes_capped_at_one_chunk(self, monkeypatch):
        """At 96^3 the pooled streaming entry carries no per-point stencil
        payload: the stencil's resident bytes are <= one chunk (vs ~30 MB
        for the lean layout), and the pool's byte accounting shows it."""
        chunk_cap = 3 * STENCIL_CHUNK * (np.dtype(np.intp).itemsize + 8)
        grid, stepper, pool = self._steppers(monkeypatch, "streaming")
        payload = stepper.departure_plan.payload
        assert isinstance(payload, StreamingStencilPlan)
        assert payload.num_points == self.N**3
        assert payload.nbytes <= chunk_cap
        streaming_bytes = pool.current_bytes
        assert streaming_bytes == pool.stats.peak_bytes

        grid, lean_stepper, pool = self._steppers(monkeypatch, "lean")
        lean_payload = lean_stepper.departure_plan.payload
        assert isinstance(lean_payload, LeanStencilPlan)
        lean_bytes = pool.current_bytes
        # the pooled entries differ by exactly the stencil payload: the
        # lean base/frac arrays (36 B/point) vs the one-chunk scratch cap
        assert lean_payload.nbytes == 36 * self.N**3
        assert lean_bytes - streaming_bytes == lean_payload.nbytes - payload.nbytes
        assert streaming_bytes < 0.65 * lean_bytes

    def test_streaming_step_bitwise_matches_lean_and_fat(self, monkeypatch):
        field = smooth_scalar_field(Grid((self.N,) * 3), seed=22)
        outputs = {}
        for layout in PLAN_LAYOUTS:
            grid, stepper, _ = self._steppers(monkeypatch, layout)
            outputs[layout] = stepper.step(field)
        np.testing.assert_array_equal(outputs["streaming"], outputs["fat"])
        np.testing.assert_array_equal(outputs["streaming"], outputs["lean"])


class TestStencilPrimitives:
    def test_bspline_weights_partition_of_unity(self):
        t = np.linspace(0.0, 1.0, 33)
        np.testing.assert_allclose(sum(bspline_weights(t)), 1.0, atol=1e-12)

    def test_prefilter_matches_scipy_spline_filter(self):
        from scipy import ndimage

        rng = np.random.default_rng(3)
        f = rng.standard_normal((8, 10, 12))
        ours = periodic_bspline_prefilter(f)
        theirs = ndimage.spline_filter(f, order=3, mode="grid-wrap")
        np.testing.assert_allclose(ours, theirs, atol=1e-12)

    def test_non_periodic_stencil_matches_periodic_interior(self):
        """The ghost-block (non-wrapping) plan agrees with the periodic one."""
        rng = np.random.default_rng(4)
        block = rng.standard_normal((12, 12, 12))
        # interior coordinates: the full 4x4x4 stencil stays inside the block
        coords = rng.uniform(2.0, 9.0, size=(3, 200))
        periodic = build_stencil_plan(block.shape, coords, "catmull_rom", periodic=True)
        interior = build_stencil_plan(block.shape, coords, "catmull_rom", periodic=False)
        flat = block.reshape(1, -1)
        np.testing.assert_array_equal(
            execute_stencil_plan(flat, periodic), execute_stencil_plan(flat, interior)
        )
