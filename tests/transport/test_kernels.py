"""Tests for repro.transport.kernels (backend registry + gather plans)."""

import numpy as np
import pytest

from repro.spectral.backends import BackendUnavailableError
from repro.spectral.grid import Grid
from repro.transport.interpolation import PeriodicInterpolator
from repro.transport.kernels import (
    BACKEND_ENV_VAR,
    PLAN_LAYOUT_ENV_VAR,
    SUPPORTED_METHODS,
    LeanStencilPlan,
    NumbaInterpolationBackend,
    StencilPlan,
    available_backends,
    build_stencil_plan,
    bspline_weights,
    default_backend_name,
    default_plan_layout,
    execute_stencil_plan,
    get_backend,
    periodic_bspline_prefilter,
    register_backend,
    registered_backends,
)

from tests.conftest import smooth_scalar_field

BACKENDS = available_backends()


@pytest.fixture(scope="module")
def grid():
    return Grid((16, 16, 16))


@pytest.fixture(scope="module")
def field(grid):
    return smooth_scalar_field(grid, seed=0, modes=2)


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(1)
    return rng.uniform(-2 * np.pi, 4 * np.pi, size=(3, 500))


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(registered_backends()) >= {"scipy", "numpy", "numba"}

    def test_always_available_backends(self):
        assert "scipy" in available_backends()
        assert "numpy" in available_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown interpolation backend"):
            get_backend("cuda")

    def test_instances_are_cached_per_name(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_instance_passes_through(self):
        instance = get_backend("numpy")
        assert get_backend(instance) is instance

    def test_non_backend_object_rejected(self):
        with pytest.raises(TypeError):
            get_backend(42)

    def test_default_is_scipy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert default_backend_name() == "scipy"

    def test_environment_variable_selects_default(self, monkeypatch, grid):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert default_backend_name() == "numpy"
        assert PeriodicInterpolator(grid).backend_name == "numpy"

    def test_unavailable_backend_raises_cleanly(self):
        if NumbaInterpolationBackend.is_available():
            pytest.skip("numba is installed; unavailability path not testable")
        with pytest.raises(BackendUnavailableError, match="numba"):
            get_backend("numba")

    def test_register_backend_hook(self, grid, field, points):
        class EchoBackend:
            name = "echo"

            @classmethod
            def is_available(cls):
                return True

            def supports_plan(self, method):
                return False

            def build_plan(self, grid_shape, coordinates, method):
                return None

            def gather(self, fields, coordinates, payload, method):
                return np.zeros((fields.shape[0], coordinates.shape[1]))

        register_backend("echo", EchoBackend)
        try:
            interp = PeriodicInterpolator(grid, backend="echo")
            np.testing.assert_array_equal(interp(field, points), 0.0)
        finally:
            from repro.transport import kernels

            kernels._REGISTRY.pop("echo", None)
            kernels._INSTANCES.pop("echo", None)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("method", SUPPORTED_METHODS)
class TestBackendAgreement:
    def test_agrees_with_scipy_reference(self, backend, method, grid, field, points):
        """All engines agree to <= 1e-10 on a smooth-field evaluation."""
        reference = PeriodicInterpolator(grid, method, backend="scipy")(field, points)
        values = PeriodicInterpolator(grid, method, backend=backend)(field, points)
        np.testing.assert_allclose(values, reference, atol=1e-10)

    def test_smooth_field_round_trip(self, backend, method, grid, field):
        """Interpolating at the grid nodes reproduces the field itself."""
        interp = PeriodicInterpolator(grid, method, backend=backend)
        values = interp(field, grid.coordinate_stack())
        np.testing.assert_allclose(values, field, atol=1e-10)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("method", SUPPORTED_METHODS)
class TestGatherPlans:
    def test_planned_path_is_bitwise_identical(self, backend, method, grid, field, points):
        interp = PeriodicInterpolator(grid, method, backend=backend)
        unplanned = interp(field, points)
        plan = interp.plan(points)
        planned = interp.interpolate_planned(field, plan)
        np.testing.assert_array_equal(planned, unplanned)

    def test_batched_matches_scalar_bitwise(self, backend, method, grid, points):
        rng = np.random.default_rng(7)
        fields = rng.standard_normal((3, *grid.shape))
        interp = PeriodicInterpolator(grid, method, backend=backend)
        plan = interp.plan(points)
        batched = interp.interpolate_many_planned(fields, plan)
        for component in range(3):
            scalar = interp.interpolate_planned(fields[component], plan)
            np.testing.assert_array_equal(batched[component], scalar)

    def test_plan_reused_across_fields(self, backend, method, grid, points):
        rng = np.random.default_rng(8)
        interp = PeriodicInterpolator(grid, method, backend=backend)
        plan = interp.plan(points)
        for seed in (1, 2):
            f = rng.standard_normal(grid.shape)
            np.testing.assert_array_equal(
                interp.interpolate_planned(f, plan), interp(f, points)
            )

    def test_plan_records_caching_capability(self, backend, method, grid, points):
        interp = PeriodicInterpolator(grid, method, backend=backend)
        plan = interp.plan(points)
        assert plan.is_cached == interp.backend.supports_plan(method)
        assert plan.num_points == points.shape[1]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("method", SUPPORTED_METHODS)
class TestLowerPrecisionFields:
    def test_float32_grid_fields_are_upcast(self, backend, method):
        """Regression: float32 fields interpolate on every backend/kernel."""
        grid = Grid((8, 8, 8), dtype=np.float32)
        rng = np.random.default_rng(9)
        field = rng.standard_normal(grid.shape).astype(np.float32)
        points = rng.uniform(0, 2 * np.pi, size=(3, 50))
        interp = PeriodicInterpolator(grid, method, backend=backend)
        values = interp(field, points)
        assert values.dtype == np.float32
        reference = PeriodicInterpolator(Grid((8, 8, 8)), method, backend=backend)(
            field.astype(np.float64), points
        )
        np.testing.assert_allclose(values, reference, atol=1e-6)


class TestPlanValidation:
    def test_plan_grid_mismatch_rejected(self, grid, field, points):
        interp = PeriodicInterpolator(grid)
        other = PeriodicInterpolator(Grid((8, 8, 8)))
        plan = other.plan(np.zeros((3, 5)))
        with pytest.raises(ValueError, match="gather plan was built for grid"):
            interp.interpolate_planned(field, plan)

    def test_plan_method_mismatch_rejected(self, grid, field, points):
        plan = PeriodicInterpolator(grid, "linear").plan(points)
        with pytest.raises(ValueError, match="method"):
            PeriodicInterpolator(grid, "catmull_rom").interpolate_planned(field, plan)

    def test_batched_field_stack_validated(self, grid, points):
        interp = PeriodicInterpolator(grid)
        with pytest.raises(ValueError, match="stacked fields"):
            interp.interpolate_many(np.zeros((3, 8, 8, 8)), points)


class TestCounterParity:
    def test_counters_identical_across_backends(self, grid, field, points):
        counts = {}
        for backend in BACKENDS:
            interp = PeriodicInterpolator(grid, "catmull_rom", backend=backend)
            interp(field, points)
            plan = interp.plan(points)
            interp.interpolate_many_planned(np.stack([field] * 3), plan)
            counts[backend] = interp.points_interpolated
        assert len(set(counts.values())) == 1, counts

    def test_batched_counts_batch_times_points(self, grid, field, points):
        interp = PeriodicInterpolator(grid, backend="numpy")
        plan = interp.plan(points)
        interp.interpolate_many_planned(np.stack([field] * 4), plan)
        assert interp.points_interpolated == 4 * points.shape[1]


class TestLeanStencilPlans:
    """The memory-lean plan layout: bitwise identity + the ~4x memory cut."""

    def test_default_layout_is_lean(self, monkeypatch):
        monkeypatch.delenv(PLAN_LAYOUT_ENV_VAR, raising=False)
        assert default_plan_layout() == "lean"
        monkeypatch.setenv(PLAN_LAYOUT_ENV_VAR, "fat")
        assert default_plan_layout() == "fat"

    def test_unknown_layout_rejected(self, grid, points):
        with pytest.raises(ValueError, match="unknown stencil-plan layout"):
            build_stencil_plan(grid.shape, np.zeros((3, 4)), "linear", layout="sparse")

    @pytest.mark.parametrize("method", SUPPORTED_METHODS)
    def test_lean_and_fat_gather_bitwise_identically(self, method, grid, field):
        rng = np.random.default_rng(11)
        coords = rng.uniform(0, 16, size=(3, 3000))
        flat = np.stack([field, field[::-1]]).reshape(2, -1)
        fat = build_stencil_plan(grid.shape, coords, method, layout="fat")
        lean = build_stencil_plan(grid.shape, coords, method, layout="lean")
        assert isinstance(fat, StencilPlan) and isinstance(lean, LeanStencilPlan)
        np.testing.assert_array_equal(
            execute_stencil_plan(flat, fat), execute_stencil_plan(flat, lean)
        )

    def test_lean_and_fat_agree_non_periodic(self):
        rng = np.random.default_rng(12)
        block = rng.standard_normal((12, 12, 12))
        coords = rng.uniform(2.0, 9.0, size=(3, 500))
        fat = build_stencil_plan(block.shape, coords, "catmull_rom", periodic=False, layout="fat")
        lean = build_stencil_plan(
            block.shape, coords, "catmull_rom", periodic=False, layout="lean"
        )
        flat = block.reshape(1, -1)
        np.testing.assert_array_equal(
            execute_stencil_plan(flat, fat), execute_stencil_plan(flat, lean)
        )

    @pytest.mark.parametrize("method", ["cubic_bspline", "catmull_rom"])
    def test_lean_tricubic_plan_is_under_thirty_percent(self, grid, method):
        """The ISSUE's memory criterion: lean <= ~30% of the fat layout."""
        rng = np.random.default_rng(13)
        coords = rng.uniform(0, 16, size=(3, 4096))
        fat = build_stencil_plan(grid.shape, coords, method, layout="fat")
        lean = build_stencil_plan(grid.shape, coords, method, layout="lean")
        assert lean.nbytes <= 0.30 * fat.nbytes
        # exact accounting: 3 int32 base + 3 float64 frac per point
        assert lean.nbytes == coords.shape[1] * 3 * (4 + 8)

    def test_lean_plan_chunk_matches_fat_views(self, grid):
        rng = np.random.default_rng(14)
        coords = rng.uniform(0, 16, size=(3, 1000))
        fat = build_stencil_plan(grid.shape, coords, "catmull_rom", layout="fat")
        lean = build_stencil_plan(grid.shape, coords, "catmull_rom", layout="lean")
        fat_idx, fat_w = fat.chunk_stencil(100, 300)
        lean_idx, lean_w = lean.chunk_stencil(100, 300)
        for d in range(3):
            np.testing.assert_array_equal(np.asarray(fat_idx[d]), np.asarray(lean_idx[d]))
            np.testing.assert_array_equal(np.asarray(fat_w[d]), np.asarray(lean_w[d]))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_plan_lean_by_default(self, backend, grid, points, monkeypatch):
        monkeypatch.delenv(PLAN_LAYOUT_ENV_VAR, raising=False)
        interp = PeriodicInterpolator(grid, "catmull_rom", backend=backend)
        plan = interp.plan(points)
        assert isinstance(plan.payload, LeanStencilPlan)
        assert plan.nbytes == plan.coordinates.nbytes + plan.payload.nbytes

    def test_fat_layout_env_opt_out_is_bitwise_identical(self, grid, field, points, monkeypatch):
        interp = PeriodicInterpolator(grid, "catmull_rom", backend="numpy")
        lean_values = interp.interpolate_planned(field, interp.plan(points))
        monkeypatch.setenv(PLAN_LAYOUT_ENV_VAR, "fat")
        fat_plan = interp.plan(points)
        assert isinstance(fat_plan.payload, StencilPlan)
        np.testing.assert_array_equal(
            interp.interpolate_planned(field, fat_plan), lean_values
        )


class TestStencilPrimitives:
    def test_bspline_weights_partition_of_unity(self):
        t = np.linspace(0.0, 1.0, 33)
        np.testing.assert_allclose(sum(bspline_weights(t)), 1.0, atol=1e-12)

    def test_prefilter_matches_scipy_spline_filter(self):
        from scipy import ndimage

        rng = np.random.default_rng(3)
        f = rng.standard_normal((8, 10, 12))
        ours = periodic_bspline_prefilter(f)
        theirs = ndimage.spline_filter(f, order=3, mode="grid-wrap")
        np.testing.assert_allclose(ours, theirs, atol=1e-12)

    def test_non_periodic_stencil_matches_periodic_interior(self):
        """The ghost-block (non-wrapping) plan agrees with the periodic one."""
        rng = np.random.default_rng(4)
        block = rng.standard_normal((12, 12, 12))
        # interior coordinates: the full 4x4x4 stencil stays inside the block
        coords = rng.uniform(2.0, 9.0, size=(3, 200))
        periodic = build_stencil_plan(block.shape, coords, "catmull_rom", periodic=True)
        interior = build_stencil_plan(block.shape, coords, "catmull_rom", periodic=False)
        flat = block.reshape(1, -1)
        np.testing.assert_array_equal(
            execute_stencil_plan(flat, periodic), execute_stencil_plan(flat, interior)
        )
