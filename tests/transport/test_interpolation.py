"""Tests for repro.transport.interpolation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spectral.grid import Grid
from repro.transport.interpolation import (
    PeriodicInterpolator,
    catmull_rom_weights,
    linear_weights,
)

from tests.fixtures import smooth_scalar_field

METHODS = ("cubic_bspline", "catmull_rom", "linear")


class TestWeights:
    def test_catmull_rom_partition_of_unity(self):
        t = np.linspace(0.0, 1.0, 33)
        w = catmull_rom_weights(t)
        np.testing.assert_allclose(sum(w), 1.0, atol=1e-12)

    def test_catmull_rom_interpolates_nodes(self):
        w0, w1, w2, w3 = catmull_rom_weights(np.array([0.0]))
        np.testing.assert_allclose([w0[0], w1[0], w2[0], w3[0]], [0, 1, 0, 0], atol=1e-14)

    def test_catmull_rom_reproduces_linear_functions(self):
        # exact for polynomials up to degree 3; check degree 1 explicitly
        t = np.linspace(0, 1, 11)
        w = catmull_rom_weights(t)
        nodes = np.array([-1.0, 0.0, 1.0, 2.0])
        interpolated = sum(wi * ni for wi, ni in zip(w, nodes))
        np.testing.assert_allclose(interpolated, t, atol=1e-12)

    def test_linear_weights_partition_of_unity(self):
        t = np.linspace(0, 1, 17)
        w0, w1 = linear_weights(t)
        np.testing.assert_allclose(w0 + w1, 1.0, atol=1e-14)


class TestConstructionAndValidation:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            PeriodicInterpolator(Grid((8, 8, 8)), method="quintic")

    def test_field_shape_validated(self):
        interp = PeriodicInterpolator(Grid((8, 8, 8)))
        with pytest.raises(ValueError):
            interp(np.zeros((4, 4, 4)), np.zeros((3, 5)))

    def test_points_leading_dimension_validated(self):
        interp = PeriodicInterpolator(Grid((8, 8, 8)))
        with pytest.raises(ValueError):
            interp(np.zeros((8, 8, 8)), np.zeros((2, 5)))

    def test_vector_field_shape_validated(self):
        interp = PeriodicInterpolator(Grid((8, 8, 8)))
        with pytest.raises(ValueError):
            interp.interpolate_vector(np.zeros((2, 8, 8, 8)), np.zeros((3, 5)))

    def test_counts_interpolated_points(self):
        grid = Grid((8, 8, 8))
        interp = PeriodicInterpolator(grid)
        interp(np.zeros(grid.shape), np.zeros((3, 10)))
        assert interp.points_interpolated == 10
        assert interp.flops() > 0


@pytest.mark.parametrize("method", METHODS)
class TestExactnessOnGridPoints:
    def test_reproduces_values_at_grid_points(self, method, rng):
        grid = Grid((8, 8, 8))
        field = rng.standard_normal(grid.shape)
        interp = PeriodicInterpolator(grid, method)
        points = grid.coordinate_stack()
        values = interp(field, points)
        # cubic b-splines and Catmull-Rom both interpolate (pass through) the data
        np.testing.assert_allclose(values, field, atol=1e-9)

    def test_constant_field_reproduced_anywhere(self, method, rng):
        grid = Grid((8, 8, 8))
        field = np.full(grid.shape, 3.14)
        interp = PeriodicInterpolator(grid, method)
        points = rng.uniform(-10, 10, size=(3, 200))
        np.testing.assert_allclose(interp(field, points), 3.14, atol=1e-9)

    def test_output_shape_follows_points_shape(self, method):
        grid = Grid((8, 8, 8))
        interp = PeriodicInterpolator(grid, method)
        points = np.zeros((3, 4, 5))
        assert interp(np.zeros(grid.shape), points).shape == (4, 5)


@pytest.mark.parametrize("method", METHODS)
class TestPeriodicity:
    def test_wraps_around_domain(self, method, rng):
        grid = Grid((8, 8, 8))
        field = rng.standard_normal(grid.shape)
        interp = PeriodicInterpolator(grid, method)
        points = rng.uniform(0, 2 * np.pi, size=(3, 50))
        shifted = points + 2 * np.pi * np.array([[1.0], [-2.0], [3.0]])
        np.testing.assert_allclose(interp(field, points), interp(field, shifted), atol=1e-9)

    def test_negative_coordinates_allowed(self, method, rng):
        grid = Grid((8, 8, 8))
        field = rng.standard_normal(grid.shape)
        interp = PeriodicInterpolator(grid, method)
        points = rng.uniform(-2 * np.pi, 0, size=(3, 50))
        out = interp(field, points)
        assert np.all(np.isfinite(out))


class TestAccuracy:
    def test_cubic_more_accurate_than_linear(self):
        grid = Grid((16, 16, 16))
        field = smooth_scalar_field(grid, seed=1, modes=2)
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 2 * np.pi, size=(3, 500))

        x1, x2, x3 = points
        # rebuild the analytic field value at the query points
        exact = np.zeros(points.shape[1])
        rng_local = np.random.default_rng(1)
        for _ in range(4):
            k = rng_local.integers(1, 3, size=3)
            phase = rng_local.uniform(0, 2 * np.pi, size=3)
            amp = rng_local.uniform(0.2, 1.0)
            exact += amp * (
                np.sin(k[0] * x1 + phase[0])
                * np.sin(k[1] * x2 + phase[1])
                * np.sin(k[2] * x3 + phase[2])
            )

        errors = {}
        for method in METHODS:
            interp = PeriodicInterpolator(grid, method)
            errors[method] = np.max(np.abs(interp(field, points) - exact))
        assert errors["cubic_bspline"] < errors["linear"]
        assert errors["catmull_rom"] < errors["linear"]

    def test_cubic_convergence_order(self):
        # error of tricubic interpolation should drop by roughly 2^4 per refinement
        errors = []
        for n in (8, 16, 32):
            grid = Grid((n, n, n))
            x1, x2, x3 = grid.coordinates()
            field = np.sin(x1) * np.sin(x2) * np.sin(x3)
            interp = PeriodicInterpolator(grid, "catmull_rom")
            rng = np.random.default_rng(3)
            pts = rng.uniform(0, 2 * np.pi, size=(3, 300))
            exact = np.sin(pts[0]) * np.sin(pts[1]) * np.sin(pts[2])
            errors.append(np.max(np.abs(interp(field, pts) - exact)))
        assert errors[1] < errors[0] / 6
        assert errors[2] < errors[1] / 6

    def test_methods_agree_on_smooth_field(self):
        grid = Grid((16, 16, 16))
        field = smooth_scalar_field(grid, seed=4, modes=1)
        rng = np.random.default_rng(5)
        points = rng.uniform(0, 2 * np.pi, size=(3, 100))
        a = PeriodicInterpolator(grid, "cubic_bspline")(field, points)
        b = PeriodicInterpolator(grid, "catmull_rom")(field, points)
        np.testing.assert_allclose(a, b, atol=5e-3)


class TestVectorInterpolation:
    def test_vector_interpolation_matches_componentwise(self, rng):
        grid = Grid((8, 8, 8))
        v = rng.standard_normal((3, *grid.shape))
        interp = PeriodicInterpolator(grid)
        points = rng.uniform(0, 2 * np.pi, size=(3, 40))
        out = interp.interpolate_vector(v, points)
        for comp in range(3):
            np.testing.assert_allclose(out[comp], interp(v[comp], points), atol=1e-12)


class TestPropertyBased:
    @given(seed=st.integers(0, 1000), shift=st.integers(-3, 3))
    @settings(max_examples=10, deadline=None)
    def test_periodic_shift_invariance(self, seed, shift):
        grid = Grid((8, 8, 8))
        rng = np.random.default_rng(seed)
        field = rng.standard_normal(grid.shape)
        interp = PeriodicInterpolator(grid, "catmull_rom")
        pts = rng.uniform(0, 2 * np.pi, size=(3, 20))
        np.testing.assert_allclose(
            interp(field, pts), interp(field, pts + shift * 2 * np.pi), atol=1e-9
        )

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_interpolation_is_linear_in_the_field(self, seed):
        grid = Grid((8, 8, 8))
        rng = np.random.default_rng(seed)
        f = rng.standard_normal(grid.shape)
        g = rng.standard_normal(grid.shape)
        interp = PeriodicInterpolator(grid, "catmull_rom")
        pts = rng.uniform(0, 2 * np.pi, size=(3, 25))
        np.testing.assert_allclose(
            interp(f + 2.0 * g, pts), interp(f, pts) + 2.0 * interp(g, pts), atol=1e-9
        )
