"""Tests for repro.transport.solvers (state/adjoint/incremental transport)."""

import numpy as np
import pytest

from repro.spectral.grid import Grid
from repro.transport.kernels import available_backends
from repro.transport.solvers import TransportSolver

from tests.fixtures import smooth_scalar_field, smooth_vector_field


@pytest.fixture(scope="module")
def grid():
    return Grid((16, 16, 16))


@pytest.fixture(scope="module")
def solver(grid):
    return TransportSolver(grid, num_time_steps=4)


def solenoidal(grid, amplitude=0.5):
    x1, x2, x3 = grid.coordinates()
    return amplitude * np.stack(
        [np.sin(x2) * np.sin(x3), np.sin(x1) * np.sin(x3), np.sin(x1) * np.sin(x2)], axis=0
    )


class TestPlan:
    def test_dt_is_inverse_of_nt(self, grid):
        assert TransportSolver(grid, num_time_steps=8).dt == pytest.approx(0.125)

    def test_invalid_nt_rejected(self, grid):
        with pytest.raises(ValueError):
            TransportSolver(grid, num_time_steps=0)

    def test_plan_detects_divergence_free_velocity(self, grid, solver):
        plan = solver.plan(solenoidal(grid))
        assert plan.is_divergence_free

    def test_plan_detects_compressible_velocity(self, grid, solver):
        v = smooth_vector_field(grid, seed=1)
        plan = solver.plan(0.3 * v)
        assert not plan.is_divergence_free

    def test_plan_validates_velocity_shape(self, grid, solver):
        with pytest.raises(ValueError):
            solver.plan(np.zeros(grid.shape))


class TestStateEquation:
    def test_zero_velocity_keeps_template(self, grid, solver, rng):
        rho0 = rng.standard_normal(grid.shape)
        history = solver.solve_state(solver.plan(grid.zeros_vector()), rho0)
        assert history.shape == (5, *grid.shape)
        for level in history:
            np.testing.assert_allclose(level, rho0, atol=1e-10)

    def test_constant_advection_matches_analytic(self, grid):
        solver16 = TransportSolver(Grid((32, 32, 32)), num_time_steps=4)
        g = solver16.grid
        v = g.zeros_vector()
        v[0] = 0.8
        x1 = g.coordinates()[0]
        rho0 = np.sin(x1)
        history = solver16.solve_state(solver16.plan(v), rho0)
        np.testing.assert_allclose(history[-1], np.sin(x1 - 0.8), atol=2e-3)

    def test_initial_condition_preserved(self, grid, solver, rng):
        rho0 = rng.standard_normal(grid.shape)
        history = solver.solve_state(solver.plan(0.1 * smooth_vector_field(grid)), rho0)
        np.testing.assert_array_equal(history[0], rho0)

    def test_state_shape_validated(self, grid, solver):
        with pytest.raises(ValueError):
            solver.solve_state(solver.plan(grid.zeros_vector()), np.zeros((4, 4, 4)))

    def test_solve_state_final_matches_history_end(self, grid, solver, rng):
        """The history-free path: same steps, same bits, same counters."""
        rho0 = rng.standard_normal(grid.shape)
        plan = solver.plan(0.1 * smooth_vector_field(grid))
        start = solver.interpolator.points_interpolated
        history = solver.solve_state(plan, rho0)
        after_history = solver.interpolator.points_interpolated
        final = solver.solve_state_final(plan, rho0)
        after_final = solver.interpolator.points_interpolated
        np.testing.assert_array_equal(final, history[-1])
        # identical interpolation work as one full solve_state
        assert after_final - after_history == after_history - start

    def test_solve_state_final_shape_validated(self, grid, solver):
        with pytest.raises(ValueError):
            solver.solve_state_final(solver.plan(grid.zeros_vector()), np.zeros((4, 4, 4)))

    def test_mass_conserved_for_divergence_free_velocity(self, grid, solver):
        # for div v = 0 the transport preserves the integral of rho well
        rho0 = 1.0 + 0.5 * smooth_scalar_field(grid, seed=2)
        plan = solver.plan(solenoidal(grid, 0.5))
        history = solver.solve_state(plan, rho0)
        assert history[-1].mean() == pytest.approx(rho0.mean(), rel=2e-3)


class TestAdjointEquation:
    def test_zero_velocity_keeps_terminal_condition(self, grid, solver, rng):
        terminal = rng.standard_normal(grid.shape)
        history = solver.solve_adjoint(solver.plan(grid.zeros_vector()), terminal)
        for level in history:
            np.testing.assert_allclose(level, terminal, atol=1e-10)

    def test_terminal_condition_stored_at_last_level(self, grid, solver, rng):
        terminal = rng.standard_normal(grid.shape)
        plan = solver.plan(0.2 * smooth_vector_field(grid, seed=3))
        history = solver.solve_adjoint(plan, terminal)
        np.testing.assert_array_equal(history[-1], terminal)

    def test_adjoint_conserves_integral(self, grid, solver):
        # the adjoint equation is in conservative (divergence) form, so the
        # space integral of lambda is conserved exactly in the continuum
        terminal = 1.0 + 0.3 * smooth_scalar_field(grid, seed=4)
        plan = solver.plan(0.4 * smooth_vector_field(grid, seed=5))
        history = solver.solve_adjoint(plan, terminal)
        assert history[0].mean() == pytest.approx(terminal.mean(), rel=5e-3)

    def test_adjoint_shape_validated(self, grid, solver):
        with pytest.raises(ValueError):
            solver.solve_adjoint(solver.plan(grid.zeros_vector()), np.zeros((4, 4, 4)))

    def test_state_adjoint_duality_divergence_free(self, grid, solver):
        # For div v = 0: d/dt <rho, lam> = 0, hence
        # <rho(1), lam(1)> = <rho(0), lam(0)>.
        plan = solver.plan(solenoidal(grid, 0.6))
        rho0 = smooth_scalar_field(grid, seed=6)
        lam1 = smooth_scalar_field(grid, seed=7)
        rho = solver.solve_state(plan, rho0)
        lam = solver.solve_adjoint(plan, lam1)
        lhs = grid.inner(rho[-1], lam[-1])
        rhs = grid.inner(rho[0], lam[0])
        assert lhs == pytest.approx(rhs, rel=2e-2)


class TestIncrementalState:
    def test_zero_perturbation_gives_zero(self, grid, solver, rng):
        plan = solver.plan(0.3 * smooth_vector_field(grid, seed=8))
        state = solver.solve_state(plan, smooth_scalar_field(grid, seed=9))
        rho_tilde = solver.solve_incremental_state(plan, grid.zeros_vector(), state)
        np.testing.assert_allclose(rho_tilde, 0.0, atol=1e-12)

    def test_linearity_in_perturbation(self, grid, solver):
        plan = solver.plan(0.3 * smooth_vector_field(grid, seed=10))
        state = solver.solve_state(plan, smooth_scalar_field(grid, seed=11))
        va = 0.2 * smooth_vector_field(grid, seed=12)
        vb = 0.2 * smooth_vector_field(grid, seed=13)
        a = solver.solve_incremental_state(plan, va, state)
        b = solver.solve_incremental_state(plan, vb, state)
        ab = solver.solve_incremental_state(plan, va + 2.0 * vb, state)
        np.testing.assert_allclose(ab, a + 2.0 * b, atol=1e-8)

    def test_matches_finite_difference_of_state(self, grid):
        # rho~(1) should approximate d/d eps rho(1; v + eps v~)
        solver = TransportSolver(grid, num_time_steps=4)
        v = 0.3 * smooth_vector_field(grid, seed=14)
        vt = 0.3 * smooth_vector_field(grid, seed=15)
        rho0 = smooth_scalar_field(grid, seed=16)
        plan = solver.plan(v)
        state = solver.solve_state(plan, rho0)
        rho_tilde = solver.solve_incremental_state(plan, vt, state)

        eps = 1e-4
        plus = solver.solve_state(solver.plan(v + eps * vt), rho0)[-1]
        minus = solver.solve_state(solver.plan(v - eps * vt), rho0)[-1]
        fd = (plus - minus) / (2 * eps)
        error = grid.norm(fd - rho_tilde[-1]) / max(grid.norm(fd), 1e-12)
        assert error < 5e-2

    def test_history_shape_validated(self, grid, solver):
        plan = solver.plan(grid.zeros_vector())
        with pytest.raises(ValueError):
            solver.solve_incremental_state(plan, grid.zeros_vector(), np.zeros((2, *grid.shape)))


class TestIncrementalAdjoint:
    def test_zero_terminal_zero_solution_gauss_newton(self, grid, solver):
        plan = solver.plan(solenoidal(grid, 0.4))
        lam_tilde = solver.solve_incremental_adjoint(plan, grid.zeros())
        np.testing.assert_allclose(lam_tilde, 0.0, atol=1e-12)

    def test_terminal_condition_at_last_level(self, grid, solver, rng):
        plan = solver.plan(0.3 * smooth_vector_field(grid, seed=17))
        terminal = rng.standard_normal(grid.shape)
        lam_tilde = solver.solve_incremental_adjoint(plan, terminal)
        np.testing.assert_array_equal(lam_tilde[-1], terminal)

    def test_full_newton_requires_extra_arguments(self, grid, solver):
        plan = solver.plan(grid.zeros_vector())
        with pytest.raises(ValueError):
            solver.solve_incremental_adjoint(plan, grid.zeros(), gauss_newton=False)

    def test_full_newton_reduces_to_gauss_newton_for_zero_adjoint(self, grid, solver, rng):
        plan = solver.plan(0.3 * smooth_vector_field(grid, seed=18))
        terminal = rng.standard_normal(grid.shape)
        zero_adjoint = np.zeros((solver.num_time_steps + 1, *grid.shape))
        gn = solver.solve_incremental_adjoint(plan, terminal, gauss_newton=True)
        fn = solver.solve_incremental_adjoint(
            plan,
            terminal,
            perturbation=0.3 * smooth_vector_field(grid, seed=19),
            adjoint_history=zero_adjoint,
            gauss_newton=False,
        )
        np.testing.assert_allclose(fn, gn, atol=1e-10)

    def test_matches_gauss_newton_adjoint_structure(self, grid, solver, rng):
        # For div v = 0 the GN incremental adjoint is a pure (backward) advection
        # of the terminal condition, i.e. it has the same structure as the adjoint.
        plan = solver.plan(solenoidal(grid, 0.5))
        terminal = smooth_scalar_field(grid, seed=20)
        lam_tilde = solver.solve_incremental_adjoint(plan, terminal)
        lam = solver.solve_adjoint(plan, terminal)
        np.testing.assert_allclose(lam_tilde, lam, atol=1e-10)


@pytest.mark.parametrize("backend", available_backends())
class TestNonDivergenceFreeAdjoint:
    """State/adjoint round-trip consistency with ``div v != 0``, per backend.

    For a general (compressible) velocity the adjoint equation keeps its
    conservative form, so two exact invariants survive the discretization:

    * duality: ``d/dt <rho, lam> = 0`` for *any* velocity, hence
      ``<rho(1), lam(1)> = <rho(0), lam(0)>``;
    * conservation: ``d/dt int lam dx = 0``.

    Both exercise the ``lam * div v`` source branch of ``solve_adjoint``
    (and the gather plans of every registered interpolation backend).
    """

    @staticmethod
    def _compressible_velocity(grid, amplitude=0.4):
        x1, x2, x3 = grid.coordinates()
        return amplitude * np.stack(
            [np.sin(x1) * np.cos(x2), np.cos(x2) * np.sin(x3), np.sin(x3) * np.cos(x1)],
            axis=0,
        )

    def test_velocity_is_not_divergence_free(self, grid, backend):
        solver = TransportSolver(grid, interp_backend=backend)
        plan = solver.plan(self._compressible_velocity(grid))
        assert not plan.is_divergence_free

    def test_state_adjoint_duality(self, grid, backend):
        solver = TransportSolver(grid, num_time_steps=4, interp_backend=backend)
        plan = solver.plan(self._compressible_velocity(grid))
        rho0 = 1.0 + 0.3 * smooth_scalar_field(grid, seed=30)
        lam1 = 1.0 + 0.3 * smooth_scalar_field(grid, seed=31)
        rho = solver.solve_state(plan, rho0)
        lam = solver.solve_adjoint(plan, lam1)
        lhs = grid.inner(rho[-1], lam[-1])
        rhs = grid.inner(rho[0], lam[0])
        assert lhs == pytest.approx(rhs, rel=2e-2)

    def test_adjoint_integral_conserved(self, grid, backend):
        solver = TransportSolver(grid, num_time_steps=4, interp_backend=backend)
        plan = solver.plan(self._compressible_velocity(grid))
        terminal = 1.0 + 0.3 * smooth_scalar_field(grid, seed=32)
        history = solver.solve_adjoint(plan, terminal)
        assert history[0].mean() == pytest.approx(terminal.mean(), rel=5e-3)

    def test_backends_agree_on_adjoint_history(self, grid, backend):
        velocity = self._compressible_velocity(grid)
        terminal = smooth_scalar_field(grid, seed=33)
        reference = TransportSolver(
            grid, num_time_steps=4, interp_backend="scipy"
        )
        ours = TransportSolver(grid, num_time_steps=4, interp_backend=backend)
        lam_ref = reference.solve_adjoint(reference.plan(velocity), terminal)
        lam = ours.solve_adjoint(ours.plan(velocity), terminal)
        np.testing.assert_allclose(lam, lam_ref, atol=1e-8)

    def test_incremental_adjoint_source_branch(self, grid, backend):
        """GN incremental adjoint equals the adjoint when ``div v != 0``."""
        solver = TransportSolver(grid, num_time_steps=4, interp_backend=backend)
        plan = solver.plan(self._compressible_velocity(grid))
        terminal = smooth_scalar_field(grid, seed=34)
        lam = solver.solve_adjoint(plan, terminal)
        lam_tilde = solver.solve_incremental_adjoint(plan, terminal)
        np.testing.assert_allclose(lam_tilde, lam, atol=1e-10)


class TestTimeIntegral:
    def test_constant_history_integrates_to_itself(self, grid, solver):
        history = np.ones((5, *grid.shape))
        np.testing.assert_allclose(solver.time_integral(history), 1.0, atol=1e-14)

    def test_linear_in_time_history(self, grid, solver):
        # f(t) = t integrates to 1/2
        nt = solver.num_time_steps
        times = np.linspace(0, 1, nt + 1)
        history = np.stack([np.full(grid.shape, t) for t in times], axis=0)
        np.testing.assert_allclose(solver.time_integral(history), 0.5, atol=1e-12)

    def test_requires_at_least_two_levels(self, grid, solver):
        with pytest.raises(ValueError):
            solver.time_integral(np.ones((1, *grid.shape)))

    def test_vector_history_supported(self, grid, solver):
        history = np.ones((5, 3, *grid.shape))
        out = solver.time_integral(history)
        assert out.shape == (3, *grid.shape)
        np.testing.assert_allclose(out, 1.0, atol=1e-14)
