"""Cross-cutting property-based tests (hypothesis) on the core invariants.

These complement the per-module unit tests with randomized checks of the
mathematical invariants the solver relies on:

* spectral operators: linearity, self-adjointness, projector properties,
* transport: constants are invariant, advection is linear, forward/backward
  duality for divergence-free velocities,
* regularization: homogeneity, convexity along segments, positivity,
* performance model: monotonicity in problem size and task count,
* pencil decomposition: scatter/gather is a bijection for every admissible
  process grid.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regularization import make_regularization
from repro.parallel.machines import MAVERICK
from repro.parallel.pencil import PencilDecomposition
from repro.parallel.performance import RegistrationCostModel
from repro.spectral.grid import Grid
from repro.spectral.operators import SpectralOperators
from repro.transport.semi_lagrangian import SemiLagrangianStepper
from repro.transport.solvers import TransportSolver

GRID = Grid((8, 8, 8))
OPS = SpectralOperators(GRID)


def random_scalar(seed: int) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(GRID.shape)


def random_vector(seed: int, amplitude: float = 0.5) -> np.ndarray:
    return amplitude * np.random.default_rng(seed).standard_normal((3, *GRID.shape))


def smooth_solenoidal(seed: int, amplitude: float = 0.5) -> np.ndarray:
    return OPS.leray_project(
        amplitude * GRID.zeros_vector()
        + OPS.apply_vector_symbol(
            random_vector(seed, amplitude),
            np.exp(GRID.laplacian_symbol() / 4.0),
        )
    )


class TestSpectralProperties:
    @given(seed=st.integers(0, 5000), alpha=st.floats(-2.0, 2.0))
    @settings(max_examples=15, deadline=None)
    def test_gradient_linearity(self, seed, alpha):
        f = random_scalar(seed)
        g = random_scalar(seed + 1)
        lhs = OPS.gradient(f + alpha * g)
        rhs = OPS.gradient(f) + alpha * OPS.gradient(g)
        np.testing.assert_allclose(lhs, rhs, atol=1e-9)

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=15, deadline=None)
    def test_divergence_is_adjoint_of_minus_gradient(self, seed):
        f = random_scalar(seed)
        v = random_vector(seed + 7)
        lhs = GRID.inner(OPS.gradient(f), v)
        rhs = -GRID.inner(f, OPS.divergence(v))
        assert lhs == pytest.approx(rhs, rel=1e-8, abs=1e-9)

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=15, deadline=None)
    def test_leray_projection_is_contractive(self, seed):
        v = random_vector(seed)
        assert GRID.norm(OPS.leray_project(v)) <= GRID.norm(v) * (1 + 1e-12)

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=10, deadline=None)
    def test_inverse_laplacian_is_negative_semidefinite(self, seed):
        f = random_scalar(seed)
        f -= f.mean()
        # <lap^-1 f, f> <= 0 because the Laplacian is negative definite on
        # zero-mean fields
        assert GRID.inner(OPS.inverse_laplacian(f), f) <= 1e-10


class TestTransportProperties:
    @given(seed=st.integers(0, 5000), constant=st.floats(-5.0, 5.0))
    @settings(max_examples=10, deadline=None)
    def test_constants_are_transport_invariant(self, seed, constant):
        velocity = random_vector(seed, amplitude=0.3)
        stepper = SemiLagrangianStepper(GRID, velocity, dt=0.25)
        field = np.full(GRID.shape, constant)
        np.testing.assert_allclose(stepper.step(field), constant, atol=1e-9)

    @given(seed=st.integers(0, 5000), alpha=st.floats(-2.0, 2.0))
    @settings(max_examples=10, deadline=None)
    def test_advection_is_linear_in_the_transported_field(self, seed, alpha):
        velocity = random_vector(seed, amplitude=0.3)
        stepper = SemiLagrangianStepper(GRID, velocity, dt=0.25)
        a = random_scalar(seed + 1)
        b = random_scalar(seed + 2)
        lhs = stepper.step(a + alpha * b)
        rhs = stepper.step(a) + alpha * stepper.step(b)
        np.testing.assert_allclose(lhs, rhs, atol=1e-9)

    @given(seed=st.integers(0, 2000))
    @settings(max_examples=6, deadline=None)
    def test_state_adjoint_duality_for_solenoidal_velocity(self, seed):
        velocity = smooth_solenoidal(seed, amplitude=0.4)
        solver = TransportSolver(GRID, num_time_steps=4)
        plan = solver.plan(velocity)
        rho0 = 1.0 + 0.2 * np.sin(GRID.coordinates()[0])
        lam1 = 1.0 + 0.2 * np.cos(GRID.coordinates()[1])
        rho = solver.solve_state(plan, rho0)
        lam = solver.solve_adjoint(plan, lam1)
        lhs = GRID.inner(rho[-1], lam[-1])
        rhs = GRID.inner(rho[0], lam[0])
        assert lhs == pytest.approx(rhs, rel=5e-2)

    @given(nt=st.integers(1, 8))
    @settings(max_examples=8, deadline=None)
    def test_time_integral_of_ones_is_one(self, nt):
        solver = TransportSolver(GRID, num_time_steps=nt)
        history = np.ones((nt + 1, *GRID.shape))
        np.testing.assert_allclose(solver.time_integral(history), 1.0, atol=1e-12)


class TestRegularizationProperties:
    @given(
        name=st.sampled_from(["h1", "h2", "h3"]),
        seed=st.integers(0, 5000),
        scale=st.floats(0.1, 3.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_energy_is_quadratically_homogeneous(self, name, seed, scale):
        reg = make_regularization(name, OPS, beta=1e-2)
        v = random_vector(seed)
        assert reg.energy(scale * v) == pytest.approx(scale**2 * reg.energy(v), rel=1e-9)

    @given(name=st.sampled_from(["h1", "h2"]), seed=st.integers(0, 5000), t=st.floats(0.0, 1.0))
    @settings(max_examples=15, deadline=None)
    def test_energy_is_convex_along_segments(self, name, seed, t):
        reg = make_regularization(name, OPS, beta=1e-2)
        a = random_vector(seed)
        b = random_vector(seed + 1)
        lhs = reg.energy(t * a + (1 - t) * b)
        rhs = t * reg.energy(a) + (1 - t) * reg.energy(b)
        assert lhs <= rhs + 1e-10

    @given(name=st.sampled_from(["h1", "h2", "h3"]), seed=st.integers(0, 5000))
    @settings(max_examples=15, deadline=None)
    def test_gradient_is_consistent_with_energy(self, name, seed):
        reg = make_regularization(name, OPS, beta=1e-1)
        v = random_vector(seed)
        # for a quadratic energy: E(v) = 1/2 <grad E(v), v>
        assert reg.energy(v) == pytest.approx(0.5 * GRID.inner(reg.gradient(v), v), rel=1e-8)


class TestPerformanceModelProperties:
    @given(
        exponent=st.integers(5, 9),
        tasks=st.sampled_from([1, 4, 16, 64, 256]),
        matvecs=st.integers(1, 30),
    )
    @settings(max_examples=25, deadline=None)
    def test_breakdown_is_positive_and_consistent(self, exponent, tasks, matvecs):
        n = 2**exponent
        if tasks > n:
            return
        model = RegistrationCostModel(
            (n, n, n), tasks, MAVERICK, num_hessian_matvecs=matvecs
        )
        b = model.breakdown()
        assert b.time_to_solution > 0
        assert b.time_to_solution == pytest.approx(b.kernel_sum + b.other)
        assert b.interp_execution > 0
        if tasks == 1:
            assert b.fft_communication == 0.0

    @given(exponent=st.integers(6, 9), matvecs=st.integers(1, 20))
    @settings(max_examples=15, deadline=None)
    def test_more_work_costs_more(self, exponent, matvecs):
        n = 2**exponent
        small = RegistrationCostModel((n, n, n), 16, MAVERICK, num_hessian_matvecs=matvecs)
        big = RegistrationCostModel((n, n, n), 16, MAVERICK, num_hessian_matvecs=matvecs + 5)
        assert big.breakdown().time_to_solution > small.breakdown().time_to_solution

    @given(exponent=st.integers(6, 9))
    @settings(max_examples=10, deadline=None)
    def test_doubling_resolution_costs_more(self, exponent):
        n = 2**exponent
        coarse = RegistrationCostModel((n, n, n), 16, MAVERICK).breakdown()
        fine = RegistrationCostModel((2 * n,) * 3, 16, MAVERICK).breakdown()
        assert fine.time_to_solution > coarse.time_to_solution


class TestPencilProperties:
    @given(
        n1=st.integers(4, 12),
        n2=st.integers(4, 12),
        n3=st.integers(4, 12),
        p1=st.integers(1, 4),
        p2=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_scatter_gather_identity(self, n1, n2, n3, p1, p2, seed):
        if p1 > n1 or p2 > n2:
            return
        deco = PencilDecomposition((n1, n2, n3), p1, p2)
        data = np.random.default_rng(seed).standard_normal((n1, n2, n3))
        np.testing.assert_array_equal(deco.gather(deco.scatter(data)), data)

    @given(p1=st.integers(1, 4), p2=st.integers(1, 4))
    @settings(max_examples=16, deadline=None)
    def test_every_index_has_exactly_one_owner(self, p1, p2):
        deco = PencilDecomposition((8, 8, 8), p1, p2)
        counts = np.zeros(deco.num_tasks, dtype=int)
        for rank in range(deco.num_tasks):
            counts[rank] = np.prod(deco.local_shape(rank))
        assert counts.sum() == 8**3
        assert np.all(counts > 0)
